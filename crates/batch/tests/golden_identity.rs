//! Batch-of-1 byte-identity pins against the classic engine's golden
//! schedule hashes.
//!
//! `crates/netsim/tests/golden_schedule.rs` pins `(seed → event-sequence
//! hash)` constants for the single-run `Simulator`. The batch executor
//! promises that a batch of one tenant replays that engine *exactly* —
//! same schedule draws, same fault draws, same payload bits, same
//! detection callbacks, same transport counters. These tests drive
//! [`BatchSim`] through the identical event hasher and assert the very
//! same constants (for every pin in the supported regime: synchronous
//! activation, zero delay, oracle detector).
//!
//! A second family runs *mixed* batches and checks that each tenant's
//! event stream — with node ids mapped back to tenant-local — still
//! reproduces its standalone constant, pinning tenant isolation at the
//! event-sequence level.

use gr_batch::{BatchHost, BatchOptions, BatchSim, TenantProtocol, TenantSpec};
use gr_netsim::{FaultPlan, LinkFailure, NodeCrash, Protocol, SimStats};
use gr_topology::{complete, hypercube, ring, Graph, NodeId};

/// FNV-1a, identical to the netsim golden tests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u32(&mut self, v: u32) {
        v.to_le_bytes().into_iter().for_each(|b| self.byte(b));
    }
    fn u64(&mut self, v: u64) {
        v.to_le_bytes().into_iter().for_each(|b| self.byte(b));
    }
}

/// Per-tenant event hasher over the union graph: every protocol-visible
/// event is routed to its tenant's stream with node ids mapped back to
/// tenant-local, so each stream is byte-comparable with a standalone
/// run. Message payloads carry the *local* sender id (as the classic
/// hasher's do), keeping corruption draws pinned too.
struct TenantHasher {
    /// Exclusive node-block ends, ascending — node → tenant by search.
    ends: Vec<NodeId>,
    bases: Vec<NodeId>,
    h: Vec<Fnv>,
}

impl TenantHasher {
    fn new(host: &BatchHost) -> Self {
        let ends: Vec<NodeId> = (0..host.tenant_count())
            .map(|t| host.tenant_nodes(t).end)
            .collect();
        let bases = (0..host.tenant_count())
            .map(|t| host.tenant_nodes(t).start)
            .collect();
        let h = (0..host.tenant_count()).map(|_| Fnv::new()).collect();
        TenantHasher { ends, bases, h }
    }

    #[inline]
    fn tenant(&self, node: NodeId) -> usize {
        self.ends.partition_point(|&e| e <= node)
    }
}

impl Protocol for TenantHasher {
    type Msg = f64;
    fn on_send(&mut self, node: NodeId, target: NodeId) -> f64 {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'S');
        self.h[t].u32(node - b);
        self.h[t].u32(target - b);
        (node - b) as f64
    }
    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut f64) {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'R');
        self.h[t].u32(node - b);
        self.h[t].u32(from - b);
        self.h[t].u64(msg.to_bits());
    }
    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'F');
        self.h[t].u32(node - b);
        self.h[t].u32(neighbor - b);
    }
    fn on_suspect(&mut self, node: NodeId, neighbor: NodeId) {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'U');
        self.h[t].u32(node - b);
        self.h[t].u32(neighbor - b);
    }
    fn on_rehabilitate(&mut self, node: NodeId, neighbor: NodeId) {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'H');
        self.h[t].u32(node - b);
        self.h[t].u32(neighbor - b);
    }
    fn on_restart(&mut self, node: NodeId) {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'T');
        self.h[t].u32(node - b);
    }
    fn on_neighbor_restarted(&mut self, node: NodeId, neighbor: NodeId) {
        let t = self.tenant(node);
        let b = self.bases[t];
        self.h[t].byte(b'N');
        self.h[t].u32(node - b);
        self.h[t].u32(neighbor - b);
    }
}

impl TenantProtocol for TenantHasher {
    fn estimate(&self, _node: NodeId) -> f64 {
        0.0
    }
    fn update_local_value(&mut self, _node: NodeId, _value: f64) {}
}

/// Fold tenant `t`'s transport counters exactly as the classic
/// `run_hash` does, closing the hash.
fn fold_stats(h: &mut Fnv, s: SimStats) {
    for v in [s.sent, s.delivered, s.lost_random, s.lost_dead, s.bit_flips] {
        h.u64(v);
    }
}

/// Run `specs` as one batch for `rounds` rounds and return the closed
/// per-tenant hashes.
fn batch_hashes(specs: Vec<TenantSpec>, rounds: u64) -> Vec<u64> {
    let host = BatchHost::assemble(&specs).expect("valid batch");
    let hasher = TenantHasher::new(&host);
    let mut sim =
        BatchSim::new(&host, hasher, &specs, BatchOptions::default()).expect("valid options");
    sim.run(rounds);
    (0..specs.len())
        .map(|t| {
            let stats = sim.tenant_stats(t);
            let mut h = std::mem::replace(&mut sim.protocol_mut().h[t], Fnv::new());
            fold_stats(&mut h, stats);
            h.0
        })
        .collect()
}

fn batch_of_one(graph: Graph, plan: FaultPlan, seed: u64, rounds: u64) -> u64 {
    let n = graph.len();
    let spec = TenantSpec {
        graph,
        seed,
        plan,
        values: vec![0.0; n],
        max_rounds: rounds,
    };
    batch_hashes(vec![spec], rounds)[0]
}

/// The netsim golden tests' fault plan, verbatim: two link failures (one
/// pair listed out of round order, plus a same-round pair pinning stable
/// firing order), a delayed-detection crash, and both probabilistic
/// fault classes.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 0.01,
        link_failures: vec![
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 20,
                detect_delay: 5,
            },
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 10,
                detect_delay: 0,
            },
            LinkFailure {
                a: 4,
                b: 5,
                at_round: 20,
                detect_delay: 5,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 7,
            at_round: 40,
            detect_delay: 3,
        }],
        ..FaultPlan::none()
    }
}

fn heal_plan() -> FaultPlan {
    FaultPlan::none()
        .fail_link(0, 1, 20)
        .fail_link(2, 6, 20)
        .heal_link(0, 1, 90)
        .heal_link(2, 6, 140)
}

fn restart_plan() -> FaultPlan {
    FaultPlan::none().crash_node(5, 30).restart_node(5, 110)
}

// ---- batch-of-1: every sync/zero-delay/oracle pin, same constants ----

#[test]
fn golden_sync_ring_fault_free() {
    assert_eq!(
        batch_of_one(ring(32), FaultPlan::none(), 42, 300),
        0xd266358f85ce5f31
    );
}

#[test]
fn golden_sync_complete_fault_free() {
    assert_eq!(
        batch_of_one(complete(16), FaultPlan::none(), 7, 300),
        0xeb896ff87e44e615
    );
}

#[test]
fn golden_sync_hypercube_fault_free() {
    assert_eq!(
        batch_of_one(hypercube(6), FaultPlan::none(), 9, 300),
        0x9b3917a34bfdc941
    );
}

#[test]
fn golden_sync_hypercube_faulty() {
    assert_eq!(
        batch_of_one(hypercube(6), faulty_plan(), 9, 300),
        0xfeeca303de40f051
    );
}

#[test]
fn golden_sync_ring_faulty() {
    assert_eq!(
        batch_of_one(ring(32), faulty_plan(), 42, 300),
        0x94ca750f639101b7
    );
}

#[test]
fn golden_sync_link_heal() {
    assert_eq!(
        batch_of_one(hypercube(4), heal_plan(), 11, 200),
        0xa93b8e731fb7c51d
    );
}

#[test]
fn golden_sync_node_restart() {
    assert_eq!(
        batch_of_one(hypercube(4), restart_plan(), 19, 200),
        0x59ba996945a1c04c
    );
}

// ---- mixed batches: every tenant still hits its standalone pin ----

#[test]
fn mixed_batch_tenants_reproduce_standalone_pins() {
    let specs = vec![
        TenantSpec {
            graph: ring(32),
            seed: 42,
            plan: FaultPlan::none(),
            values: vec![0.0; 32],
            max_rounds: 300,
        },
        TenantSpec {
            graph: hypercube(6),
            seed: 9,
            plan: faulty_plan(),
            values: vec![0.0; 64],
            max_rounds: 300,
        },
        TenantSpec {
            graph: complete(16),
            seed: 7,
            plan: FaultPlan::none(),
            values: vec![0.0; 16],
            max_rounds: 300,
        },
    ];
    assert_eq!(
        batch_hashes(specs, 300),
        vec![0xd266358f85ce5f31, 0xfeeca303de40f051, 0xeb896ff87e44e615]
    );
}

#[test]
fn mixed_batch_with_heals_and_restarts_reproduces_pins() {
    // Tenants with different round budgets: the hc4 tenants stop at 200
    // while their neighbors run to 300 — per-tenant budgets must not
    // bleed into each other.
    let specs = vec![
        TenantSpec {
            graph: hypercube(4),
            seed: 11,
            plan: heal_plan(),
            values: vec![0.0; 16],
            max_rounds: 200,
        },
        TenantSpec {
            graph: ring(32),
            seed: 42,
            plan: faulty_plan(),
            values: vec![0.0; 32],
            max_rounds: 300,
        },
        TenantSpec {
            graph: hypercube(4),
            seed: 19,
            plan: restart_plan(),
            values: vec![0.0; 16],
            max_rounds: 200,
        },
        TenantSpec {
            graph: hypercube(6),
            seed: 9,
            plan: FaultPlan::none(),
            values: vec![0.0; 64],
            max_rounds: 300,
        },
    ];
    assert_eq!(
        batch_hashes(specs, 300),
        vec![
            0xa93b8e731fb7c51d,
            0x94ca750f639101b7,
            0x59ba996945a1c04c,
            0x9b3917a34bfdc941,
        ]
    );
}
