//! Streaming value updates and lock-free snapshot queries.
//!
//! The batch executor is a *service* surface: inputs change mid-run
//! ([`BatchSim::push_update`]) and a monitoring plane polls progress
//! through the [`SnapshotBoard`] while the batch is stepping. These
//! tests pin the re-convergence semantics and exercise the board from a
//! concurrent reader thread.

use gr_batch::{BatchHost, BatchOptions, BatchSim, TenantSpec};
use gr_netsim::Schedule;
use gr_reduction::PushCancelFlow;
use gr_topology::hypercube;

fn opts_checked() -> BatchOptions {
    BatchOptions {
        schedule: Schedule::uniform(),
        threads: 1,
        check_every: 1,
        target_accuracy: Some(1e-9),
    }
}

#[test]
fn push_update_reconverges_to_new_mean() {
    let n = 16usize;
    let specs = [TenantSpec::clean(hypercube(4), 71, vec![1.0; n], 100_000)];
    let host = BatchHost::assemble(&specs).unwrap();
    let data = host.union_data(&specs);
    let pcf = PushCancelFlow::new(host.graph(), &data);
    let mut sim = BatchSim::new(&host, pcf, &specs, opts_checked()).unwrap();

    sim.run_until_converged(0, 2_000);
    let board = sim.snapshots();
    let snap = board.get(0);
    assert!(snap.converged, "initial convergence within budget");
    assert!(
        (snap.estimate - 1.0).abs() < 1e-6,
        "estimate {}",
        snap.estimate
    );

    // Node 3's sensor jumps: the tenant must re-converge to the new mean
    // (1·15 + 17) / 16 = 2 without a restart.
    sim.push_update(0, 3, 17.0);
    let r0 = sim.tenant_round(0);
    sim.run_until_converged(0, 2_000);
    let snap = board.get(0);
    assert!(snap.converged, "re-convergence within budget");
    assert!(snap.round > r0);
    assert!(
        (snap.estimate - 2.0).abs() < 1e-6,
        "estimate {}",
        snap.estimate
    );
    // Every node agrees, not just the probe node.
    for i in 0..n as u32 {
        assert!((sim.tenant_estimate(0, i) - 2.0).abs() < 1e-6);
    }
}

#[test]
fn updates_apply_at_round_boundary_in_push_order() {
    // Two updates to the same node: the later push wins, and both are
    // folded into the convergence target exactly once.
    let specs = [TenantSpec::clean(hypercube(3), 5, vec![0.0; 8], 100_000)];
    let host = BatchHost::assemble(&specs).unwrap();
    let data = host.union_data(&specs);
    let pcf = PushCancelFlow::new(host.graph(), &data);
    let mut sim = BatchSim::new(&host, pcf, &specs, opts_checked()).unwrap();
    sim.push_update(0, 0, 100.0);
    sim.push_update(0, 0, 8.0);
    sim.run_until_converged(0, 2_000);
    let snap = sim.snapshots().get(0);
    assert!(snap.converged);
    assert!(
        (snap.estimate - 1.0).abs() < 1e-6,
        "estimate {}",
        snap.estimate
    );
}

#[test]
fn snapshot_board_is_readable_while_stepping() {
    // A reader thread polls every tenant's snapshot concurrently with
    // the stepping thread. Rounds must be non-decreasing per tenant and
    // each tenant must finish with its done flag published.
    let specs: Vec<TenantSpec> = (0..8)
        .map(|t| TenantSpec::clean(hypercube(4), t as u64, vec![t as f64; 16], 400))
        .collect();
    let host = BatchHost::assemble(&specs).unwrap();
    let data = host.union_data(&specs);
    let pcf = PushCancelFlow::new(host.graph(), &data);
    let opts = BatchOptions {
        threads: 2,
        check_every: 4,
        target_accuracy: Some(1e-9),
        ..BatchOptions::default()
    };
    let mut sim = BatchSim::new(&host, pcf, &specs, opts).unwrap();
    let board = sim.snapshots();

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut last = vec![0u64; board.len()];
            let mut polls = 0u64;
            while board.get(board.len() - 1).round < 400 {
                for (t, prev) in last.iter_mut().enumerate() {
                    let snap = board.get(t);
                    assert!(
                        snap.round >= *prev,
                        "tenant {t} round went backwards: {} < {}",
                        snap.round,
                        *prev
                    );
                    *prev = snap.round;
                }
                polls += 1;
            }
            polls
        });
        sim.run(400);
        let polls = reader.join().unwrap();
        assert!(polls > 0);
    });

    for t in 0..specs.len() {
        let snap = board.get(t);
        assert!(snap.done, "tenant {t} done flag");
        assert_eq!(snap.round, 400);
        assert!(snap.converged, "tenant {t} converged");
        assert!((snap.estimate - t as f64).abs() < 1e-6);
    }
    assert!(sim.all_done());
}
