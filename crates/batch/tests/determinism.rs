//! Batch determinism contracts on the real flow protocols.
//!
//! Three properties, per ISSUE/DESIGN §15:
//!
//! 1. **Batch-of-1 ≡ single-run engine** — a one-tenant batch produces
//!    the same transport counters and bit-identical per-node estimates
//!    as a classic [`Simulator`] run of the same spec.
//! 2. **Composition invariance** — a tenant's results do not change when
//!    other tenants join the batch, or when the batch order is permuted.
//! 3. **Thread invariance** — worker count is an execution hint only;
//!    results are byte-identical for every `threads` value.

use gr_batch::{BatchConfigError, BatchHost, BatchOptions, BatchSim, TenantSpec};
use gr_netsim::{FaultPlan, LinkFailure, NodeCrash, SimStats, Simulator};
use gr_reduction::{
    AggregateKind, FlowUpdating, InitialData, PushCancelFlow, PushFlow, ReductionProtocol,
};
use gr_topology::{complete, hypercube, ring, Graph};
use proptest::prelude::*;

/// A tenant's observable outcome: transport counters plus the exact bit
/// pattern of every node's estimate.
type Fingerprint = (SimStats, Vec<u64>);

fn lossy_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.08,
        bit_flip_prob: 0.02,
        ..FaultPlan::none()
    }
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 0.01,
        link_failures: vec![
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 20,
                detect_delay: 5,
            },
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 10,
                detect_delay: 0,
            },
            LinkFailure {
                a: 4,
                b: 5,
                at_round: 20,
                detect_delay: 5,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 7,
            at_round: 40,
            detect_delay: 3,
        }],
        ..FaultPlan::none()
    }
}

/// Run `specs` as one PCF batch with `threads` workers and fingerprint
/// every tenant.
fn run_batch(specs: &[TenantSpec], threads: usize, rounds: u64) -> Vec<Fingerprint> {
    let host = BatchHost::assemble(specs).expect("valid batch");
    let data = host.union_data(specs);
    let pcf = PushCancelFlow::new(host.graph(), &data);
    let opts = BatchOptions {
        threads,
        ..BatchOptions::default()
    };
    let mut sim = BatchSim::new(&host, pcf, specs, opts).expect("valid options");
    sim.run(rounds);
    (0..specs.len())
        .map(|t| {
            let n = specs[t].graph.len() as u32;
            let bits = (0..n)
                .map(|i| sim.tenant_estimate(t, i).to_bits())
                .collect();
            (sim.tenant_stats(t), bits)
        })
        .collect()
}

/// Classic-engine reference run of one spec.
fn run_classic_pcf(spec: &TenantSpec, rounds: u64) -> Fingerprint {
    let data = InitialData::with_kind(spec.values.clone(), AggregateKind::Average);
    let pcf = PushCancelFlow::new(&spec.graph, &data);
    let mut sim = Simulator::new(&spec.graph, pcf, spec.plan.clone(), spec.seed);
    sim.run(rounds);
    let bits = (0..spec.graph.len() as u32)
        .map(|i| sim.protocol().scalar_estimate(i).to_bits())
        .collect();
    (sim.stats(), bits)
}

fn ramp(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

#[test]
fn pcf_batch_of_one_matches_simulator_fault_free() {
    let spec = TenantSpec::clean(hypercube(6), 9, ramp(64), 300);
    assert_eq!(
        run_batch(std::slice::from_ref(&spec), 1, 300)[0],
        run_classic_pcf(&spec, 300)
    );
}

#[test]
fn pcf_batch_of_one_matches_simulator_faulty() {
    let spec = TenantSpec {
        graph: hypercube(6),
        seed: 9,
        plan: faulty_plan(),
        values: ramp(64),
        max_rounds: 300,
    };
    assert_eq!(
        run_batch(std::slice::from_ref(&spec), 1, 300)[0],
        run_classic_pcf(&spec, 300)
    );
}

#[test]
fn pf_and_fu_batch_of_one_match_simulator() {
    // The other two flow protocols ride the same TenantProtocol impl:
    // spot-check both against the classic engine under loss + flips.
    let graph = hypercube(4);
    let spec = TenantSpec {
        graph: graph.clone(),
        seed: 23,
        plan: lossy_plan(),
        values: ramp(16),
        max_rounds: 150,
    };
    let specs = [spec.clone()];
    let host = BatchHost::assemble(&specs).unwrap();
    let data = host.union_data(&specs);

    let pf = PushFlow::new(host.graph(), &data);
    let mut bsim = BatchSim::new(&host, pf, &specs, BatchOptions::default()).unwrap();
    bsim.run(150);
    let ref_data = InitialData::with_kind(spec.values.clone(), AggregateKind::Average);
    let mut csim = Simulator::new(
        &graph,
        PushFlow::new(&graph, &ref_data),
        spec.plan.clone(),
        spec.seed,
    );
    csim.run(150);
    assert_eq!(bsim.tenant_stats(0), csim.stats());
    for i in 0..16u32 {
        assert_eq!(
            bsim.tenant_estimate(0, i).to_bits(),
            csim.protocol().scalar_estimate(i).to_bits()
        );
    }

    let fu = FlowUpdating::new(host.graph(), &data);
    let mut bsim = BatchSim::new(&host, fu, &specs, BatchOptions::default()).unwrap();
    bsim.run(150);
    let mut csim = Simulator::new(
        &graph,
        FlowUpdating::new(&graph, &ref_data),
        spec.plan.clone(),
        spec.seed,
    );
    csim.run(150);
    assert_eq!(bsim.tenant_stats(0), csim.stats());
    for i in 0..16u32 {
        assert_eq!(
            bsim.tenant_estimate(0, i).to_bits(),
            csim.protocol().scalar_estimate(i).to_bits()
        );
    }
}

#[test]
fn tenant_results_invariant_to_batch_neighbors_and_threads() {
    let a = TenantSpec::clean(hypercube(4), 5, ramp(16), 120);
    let b = TenantSpec {
        graph: ring(24),
        seed: 77,
        plan: lossy_plan(),
        values: ramp(24),
        max_rounds: 120,
    };
    let c = TenantSpec {
        graph: complete(8),
        seed: 3,
        plan: FaultPlan::none().crash_node(2, 15),
        values: ramp(8),
        max_rounds: 120,
    };
    let solo: Vec<Fingerprint> = [&a, &b, &c]
        .iter()
        .map(|s| run_batch(std::slice::from_ref(*s), 1, 120).remove(0))
        .collect();
    // Every ordering, every worker count: identical per-tenant results.
    let abc = [a.clone(), b.clone(), c.clone()];
    let cba = [c, b, a];
    for threads in [1, 2, 4] {
        let got = run_batch(&abc, threads, 120);
        assert_eq!(got, solo, "order abc, threads {threads}");
        let got = run_batch(&cba, threads, 120);
        assert_eq!(got[2], solo[0], "order cba, threads {threads}");
        assert_eq!(got[1], solo[1], "order cba, threads {threads}");
        assert_eq!(got[0], solo[2], "order cba, threads {threads}");
    }
}

#[test]
fn config_errors_are_typed() {
    assert_eq!(
        BatchHost::assemble(&[]).err(),
        Some(BatchConfigError::NoTenants)
    );
    let bad_values = TenantSpec::clean(hypercube(3), 1, vec![0.0; 7], 10);
    assert_eq!(
        BatchHost::assemble(&[bad_values]).err(),
        Some(BatchConfigError::ValueCountMismatch {
            tenant: 0,
            values: 7,
            nodes: 8,
        })
    );
    let bad_plan = TenantSpec {
        graph: hypercube(3),
        seed: 1,
        plan: FaultPlan::none().crash_node(99, 5),
        values: vec![0.0; 8],
        max_rounds: 10,
    };
    assert!(matches!(
        BatchHost::assemble(&[bad_plan]).err(),
        Some(BatchConfigError::Fault { tenant: 0, .. })
    ));
    let ok = [TenantSpec::clean(hypercube(3), 1, vec![0.0; 8], 10)];
    let host = BatchHost::assemble(&ok).unwrap();
    let data = host.union_data(&ok);
    let pcf = PushCancelFlow::new(host.graph(), &data);
    let opts = BatchOptions {
        threads: 0,
        ..BatchOptions::default()
    };
    assert_eq!(
        BatchSim::new(&host, pcf, &ok, opts).err(),
        Some(BatchConfigError::ZeroThreads)
    );
}

fn pick_graph(kind: u8, size: u8) -> Graph {
    match kind % 3 {
        0 => hypercube(2 + (size % 3) as u32), // 4..16 nodes
        1 => ring(4 + (size % 12) as usize),
        _ => complete(3 + (size % 6) as usize),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random batches: every tenant's fingerprint equals its solo run,
    /// under a rotated batch order and under 1/2/4 workers.
    #[test]
    fn random_batches_are_composition_and_thread_invariant(
        kinds in proptest::collection::vec(0u8..=255, 2..6),
        sizes in proptest::collection::vec(0u8..=255, 6),
        seeds in proptest::collection::vec(0u64..1_000_000, 6),
        lossy in proptest::bool::ANY,
        rot in 0usize..6,
    ) {
        let specs: Vec<TenantSpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let graph = pick_graph(k, sizes[i]);
                let n = graph.len();
                TenantSpec {
                    graph,
                    seed: seeds[i],
                    plan: if lossy { lossy_plan() } else { FaultPlan::none() },
                    values: ramp(n),
                    max_rounds: 40,
                }
            })
            .collect();
        let solo: Vec<Fingerprint> = specs
            .iter()
            .map(|s| run_batch(std::slice::from_ref(s), 1, 40).remove(0))
            .collect();
        // Rotated composition, multiple worker counts.
        let k = rot % specs.len();
        let rotated: Vec<TenantSpec> =
            specs[k..].iter().chain(&specs[..k]).cloned().collect();
        for threads in [1usize, 2, 4] {
            let got = run_batch(&rotated, threads, 40);
            for (j, fp) in got.iter().enumerate() {
                let orig = (j + k) % specs.len();
                prop_assert_eq!(
                    fp, &solo[orig],
                    "tenant {} (rotated slot {}), threads {}", orig, j, threads
                );
            }
        }
    }
}
