//! Multi-tenant batch executor: N independent reductions, one runtime.
//!
//! The production shape of a reduction service is not one giant aggregate
//! — it is thousands of *small, independent* aggregations in flight at
//! once (one per user cohort, per metric, per shard). Running N isolated
//! [`Simulator`](gr_netsim::Simulator)s gives N private arenas, N cold
//! caches and N allocation pools; this crate multiplexes all tenants
//! through **one** round engine with shared arenas instead.
//!
//! # The union-graph trick
//!
//! A batch is assembled as the [`disjoint_union`] of every tenant's
//! topology: tenant `t`'s nodes occupy the contiguous id block
//! `[node_base, node_base + n_t)` and its directed arcs the contiguous
//! slab rows `[arc_base, arc_base + a_t)`. One protocol instance is then
//! constructed over the union graph — and because the flow protocols lay
//! per-arc state out in CSR order, the existing SoA flow bank *is* the
//! tenant-strided slab, and the protocol's message pool *is* the shared
//! wire-buffer pool. No protocol code changes; the slab layout falls out
//! of the graph construction.
//!
//! [`BatchSim`] then drives per-tenant synchronous rounds exactly as the
//! classic engine would: each tenant owns the same three RNG streams
//! ([`RngStream::Schedule`]/[`Faults`](RngStream::Faults)/
//! [`Burst`](RngStream::Burst)) seeded from *its own* seed, its own fault
//! queues, its own pending-detection list and its own [`SimStats`]. A
//! tenant's node block never exchanges a message with another block, so:
//!
//! * **batch-of-1 is bit-identical to the single-run engine** — with
//!   `node_base = 0` every id, every schedule draw and every fault draw
//!   replays the classic `Simulator` exactly (pinned against the golden
//!   schedule hashes in `tests/golden_identity.rs`);
//! * **per-tenant results are invariant to batch composition and worker
//!   count** — a tenant's block is order-isomorphic to its standalone
//!   graph under the uniform id offset, its RNG streams are derived from
//!   its own seed only, and workers step whole tenants (never splitting
//!   one), so neither neighbors-in-the-batch nor thread count can perturb
//!   a single draw.
//!
//! # Execution model
//!
//! The batch engine supports the paper's model — synchronous activation,
//! zero delay, oracle failure detection — which is exactly the regime in
//! which the delivery ring degenerates to a single bucket drained every
//! round. Per-tenant fault plans carry the full scheduled-event set
//! (link failures/heals, crashes/restarts, partition cuts/heals) plus the
//! probabilistic loss / bit-flip / burst models.
//!
//! Tenants are stepped in cache-friendly batches by a
//! [`WorkerPool`]: worker `w` owns a contiguous tenant chunk and routes
//! protocol calls through the `part_*` hooks with its worker index, so
//! the per-partition arenas (message pools, scratches) that the
//! partitioned engine introduced double as per-worker arenas here. The
//! pool is only engaged when the protocol declares
//! [`PARALLEL_SAFE`](Protocol::PARALLEL_SAFE).
//!
//! # Live queries and streaming updates
//!
//! * [`BatchSim::snapshots`] hands out an [`Arc<SnapshotBoard>`]: a
//!   lock-free table of every tenant's current estimate / round /
//!   converged flag, readable from any thread *while the batch is
//!   stepping* (see [`SnapshotBoard`] for the consistency model).
//! * [`BatchSim::push_update`] queues a mid-run change to a tenant
//!   node's local input value (cf. `live_monitoring.rs`); updates apply
//!   at the owning tenant's next round boundary, deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gr_netsim::{
    stream_rng, BurstModel, Corrupt, FaultPlan, LinkFailure, LinkHeal, NetPartition, NodeCrash,
    NodeRestart, PartitionHeal, Protocol, RngStream, Schedule, SimConfigError, SimStats,
    WorkerPool,
};
use gr_reduction::{
    AggregateKind, FlowUpdating, InitialData, PushCancelFlow, PushFlow, ReductionProtocol,
};
use gr_topology::{disjoint_union, Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// One tenant of a batch: its own topology, seed, fault plan, initial
/// values and round budget — the same knobs a standalone `Simulator` run
/// would take.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// The tenant's topology (hc6-class sizes are the design center).
    pub graph: Graph,
    /// Master seed for the tenant's schedule/fault/burst RNG streams.
    pub seed: u64,
    /// Fault plan in *tenant-local* node ids.
    pub plan: FaultPlan,
    /// Initial scalar value per node (`values.len() == graph.len()`).
    pub values: Vec<f64>,
    /// Rounds after which the tenant stops stepping.
    pub max_rounds: u64,
}

impl TenantSpec {
    /// A fault-free tenant averaging `values` for up to `max_rounds`.
    pub fn clean(graph: Graph, seed: u64, values: Vec<f64>, max_rounds: u64) -> Self {
        TenantSpec {
            graph,
            seed,
            plan: FaultPlan::none(),
            values,
            max_rounds,
        }
    }
}

/// A rejected batch configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchConfigError {
    /// A batch needs at least one tenant.
    NoTenants,
    /// `values.len() != graph.len()` for a tenant.
    ValueCountMismatch {
        /// Offending tenant index.
        tenant: usize,
        /// Supplied value count.
        values: usize,
        /// The tenant topology's node count.
        nodes: usize,
    },
    /// The union of all tenant topologies exceeds `u32` node ids.
    TooManyNodes {
        /// Total node count across tenants.
        total: usize,
    },
    /// A tenant's fault plan failed validation against its topology.
    Fault {
        /// Offending tenant index.
        tenant: usize,
        /// The underlying simulator config error.
        error: SimConfigError,
    },
    /// `threads == 0` — the worker count includes the caller's thread.
    ZeroThreads,
}

impl std::fmt::Display for BatchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchConfigError::NoTenants => write!(f, "batch has no tenants"),
            BatchConfigError::ValueCountMismatch {
                tenant,
                values,
                nodes,
            } => write!(
                f,
                "tenant {tenant}: {values} initial values for {nodes} nodes"
            ),
            BatchConfigError::TooManyNodes { total } => {
                write!(f, "batch union of {total} nodes exceeds u32 node ids")
            }
            BatchConfigError::Fault { tenant, error } => {
                write!(f, "tenant {tenant}: {error}")
            }
            BatchConfigError::ZeroThreads => {
                write!(f, "thread count must be at least 1")
            }
        }
    }
}

impl std::error::Error for BatchConfigError {}

/// Execution knobs for a batch run.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Partner-selection policy (instantiated per tenant; round-robin
    /// cursors are tenant-local).
    pub schedule: Schedule,
    /// Worker threads stepping tenant chunks. `1` runs on the caller's
    /// thread; clamped to `1` unless the protocol is
    /// [`PARALLEL_SAFE`](Protocol::PARALLEL_SAFE). Purely an execution
    /// hint — per-tenant results are byte-identical for every value.
    pub threads: usize,
    /// Check tenant convergence every `check_every` rounds (`0` = never;
    /// the throughput benchmarks run with `0`).
    pub check_every: u64,
    /// Relative-error threshold against the tenant's input mean for the
    /// snapshot `converged` flag (`None` disables the flag).
    pub target_accuracy: Option<f64>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            schedule: Schedule::uniform(),
            threads: 1,
            check_every: 0,
            target_accuracy: None,
        }
    }
}

/// A protocol the batch executor can query and live-update. Implemented
/// for the scalar flow protocols; test drivers implement it trivially.
pub trait TenantProtocol: Protocol {
    /// Node `node`'s current scalar estimate (may be NaN early on).
    fn estimate(&self, node: NodeId) -> f64;
    /// Replace node `node`'s local input value mid-run.
    fn update_local_value(&mut self, node: NodeId, value: f64);
}

impl TenantProtocol for PushCancelFlow<'_, f64> {
    fn estimate(&self, node: NodeId) -> f64 {
        self.scalar_estimate(node)
    }
    fn update_local_value(&mut self, node: NodeId, value: f64) {
        self.set_local_value(node, value);
    }
}

impl TenantProtocol for PushFlow<'_, f64> {
    fn estimate(&self, node: NodeId) -> f64 {
        self.scalar_estimate(node)
    }
    fn update_local_value(&mut self, node: NodeId, value: f64) {
        self.set_local_value(node, value);
    }
}

impl TenantProtocol for FlowUpdating<'_, f64> {
    fn estimate(&self, node: NodeId) -> f64 {
        self.scalar_estimate(node)
    }
    fn update_local_value(&mut self, node: NodeId, value: f64) {
        self.set_local_value(node, value);
    }
}

/// A tenant's block in the union graph.
#[derive(Clone, Copy, Debug)]
struct Extent {
    node_base: NodeId,
    nodes: u32,
    arc_base: usize,
    arcs: usize,
}

/// The assembled union topology plus per-tenant extents. Owns the union
/// [`Graph`] so the (graph-borrowing) protocol and [`BatchSim`] can both
/// point into it.
pub struct BatchHost {
    graph: Graph,
    extents: Vec<Extent>,
}

impl BatchHost {
    /// Assemble the disjoint-union topology for `specs` and validate
    /// every tenant's plan and value vector.
    pub fn assemble(specs: &[TenantSpec]) -> Result<BatchHost, BatchConfigError> {
        if specs.is_empty() {
            return Err(BatchConfigError::NoTenants);
        }
        let total: usize = specs.iter().map(|s| s.graph.len()).sum();
        if total > NodeId::MAX as usize {
            return Err(BatchConfigError::TooManyNodes { total });
        }
        let mut extents = Vec::with_capacity(specs.len());
        let (mut node_base, mut arc_base) = (0u32, 0usize);
        for (t, spec) in specs.iter().enumerate() {
            if spec.values.len() != spec.graph.len() {
                return Err(BatchConfigError::ValueCountMismatch {
                    tenant: t,
                    values: spec.values.len(),
                    nodes: spec.graph.len(),
                });
            }
            spec.plan
                .validate(&spec.graph)
                .map_err(|error| BatchConfigError::Fault { tenant: t, error })?;
            extents.push(Extent {
                node_base,
                nodes: spec.graph.len() as u32,
                arc_base,
                arcs: spec.graph.arc_count(),
            });
            node_base += spec.graph.len() as u32;
            arc_base += spec.graph.arc_count();
        }
        let parts: Vec<&Graph> = specs.iter().map(|s| &s.graph).collect();
        Ok(BatchHost {
            graph: disjoint_union(&parts),
            extents,
        })
    }

    /// The union topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.extents.len()
    }

    /// The union-graph node-id range of tenant `t`.
    pub fn tenant_nodes(&self, t: usize) -> std::ops::Range<NodeId> {
        let e = self.extents[t];
        e.node_base..e.node_base + e.nodes
    }

    /// Concatenated initial data over the union graph (every tenant
    /// computes an average, the paper's aggregate).
    pub fn union_data(&self, specs: &[TenantSpec]) -> InitialData<f64> {
        let values: Vec<f64> = specs
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .collect();
        InitialData::with_kind(values, AggregateKind::Average)
    }
}

/// One due oracle detection: `node` learns `neighbor` is unreachable.
#[derive(Clone, Copy, Debug)]
struct Detection {
    round: u64,
    node: NodeId,
    neighbor: NodeId,
}

/// Per-tenant runtime state: RNG streams, fault queues, transit models
/// and counters — everything the classic engine keeps globally, struck
/// per tenant. Node ids in queues are already offset into union space.
struct Tenant {
    node_base: NodeId,
    node_end: NodeId,
    arc_base: usize,
    sched_rng: StdRng,
    fault_rng: StdRng,
    burst_rng: StdRng,
    schedule: Schedule,
    loss: f64,
    flip: f64,
    burst: Option<BurstModel>,
    burst_bad: bool,
    link_queue: Vec<LinkFailure>,
    link_cursor: usize,
    crash_queue: Vec<NodeCrash>,
    crash_cursor: usize,
    heal_queue: Vec<LinkHeal>,
    heal_cursor: usize,
    restart_queue: Vec<NodeRestart>,
    restart_cursor: usize,
    cut_queue: Vec<NetPartition>,
    cut_cursor: usize,
    cut_heal_queue: Vec<PartitionHeal>,
    cut_heal_cursor: usize,
    pending_detections: Vec<Detection>,
    /// Physically-dead arc bitmask, indexed by *tenant-local* arc —
    /// word-aligned per tenant so concurrent workers never share a word.
    dead_arcs: Vec<u64>,
    physical_faults: bool,
    stats: SimStats,
    round: u64,
    max_rounds: u64,
    active: bool,
    converged: bool,
    /// Running sum of the tenant's input values (kept current under
    /// streaming updates) — the convergence target is `input_sum / n`.
    input_sum: f64,
}

/// Lock-free per-tenant progress table, readable while the batch steps.
///
/// # Consistency model
///
/// Each field is an independent atomic: `estimate` (f64 bits), `round`,
/// and a flag word (`converged`, `done`). Writers publish estimate and
/// flags first and the round counter last with `Release`; a reader that
/// loads `round` with `Acquire` therefore observes an estimate at least
/// as fresh as the *previous* round of the value it read. Fields read
/// together are not a transactional tuple — a snapshot is "some state no
/// older than round − 1", which is exactly what a monitoring plane needs
/// and costs no locks on the round path.
pub struct SnapshotBoard {
    est_bits: Vec<AtomicU64>,
    rounds: Vec<AtomicU64>,
    flags: Vec<AtomicU64>,
}

/// One tenant's published progress.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantSnapshot {
    /// Node 0's current estimate (the tenant's designated probe node).
    pub estimate: f64,
    /// Rounds the tenant has completed.
    pub round: u64,
    /// Within `target_accuracy` of the input mean at the last check.
    pub converged: bool,
    /// The tenant has stopped stepping (round budget exhausted).
    pub done: bool,
}

const FLAG_CONVERGED: u64 = 1;
const FLAG_DONE: u64 = 2;

impl SnapshotBoard {
    fn new(tenants: usize) -> Arc<SnapshotBoard> {
        Arc::new(SnapshotBoard {
            est_bits: (0..tenants)
                .map(|_| AtomicU64::new(f64::NAN.to_bits()))
                .collect(),
            rounds: (0..tenants).map(|_| AtomicU64::new(0)).collect(),
            flags: (0..tenants).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Number of tenants on the board.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` for an empty board (never produced by a valid batch).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Tenant `t`'s current snapshot. Lock-free; see the type docs for
    /// the cross-field consistency model.
    pub fn get(&self, t: usize) -> TenantSnapshot {
        let round = self.rounds[t].load(Ordering::Acquire);
        let flags = self.flags[t].load(Ordering::Relaxed);
        TenantSnapshot {
            estimate: f64::from_bits(self.est_bits[t].load(Ordering::Relaxed)),
            round,
            converged: flags & FLAG_CONVERGED != 0,
            done: flags & FLAG_DONE != 0,
        }
    }

    fn publish(&self, t: usize, estimate: f64, round: u64, converged: bool, done: bool) {
        let mut flags = 0;
        if converged {
            flags |= FLAG_CONVERGED;
        }
        if done {
            flags |= FLAG_DONE;
        }
        self.est_bits[t].store(estimate.to_bits(), Ordering::Relaxed);
        self.flags[t].store(flags, Ordering::Relaxed);
        self.rounds[t].store(round, Ordering::Release);
    }
}

/// `*mut` wrapper asserting the phase-disjointness discipline: workers
/// touch only tenant-owned state of their own chunk (plus their own
/// worker-indexed arenas), and the pool barrier retires every worker
/// before the caller resumes exclusive use.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// The multi-tenant round engine. See the crate docs for the execution
/// and determinism model.
pub struct BatchSim<'h, P: TenantProtocol> {
    host: &'h BatchHost,
    protocol: P,
    tenants: Vec<Tenant>,
    /// Union-wide liveness (tenant-strided; workers touch disjoint
    /// ranges).
    alive_node: Vec<bool>,
    /// Union-CSR believed-alive lists, one segment per node.
    believed_flat: Vec<NodeId>,
    believed_len: Vec<u32>,
    /// Current input value per union node (convergence targets and
    /// streaming-update deltas).
    inputs: Vec<f64>,
    /// Queued streaming updates per tenant, applied at its next round
    /// boundary: `(union node, new value)` in push order.
    updates: Vec<Vec<(NodeId, f64)>>,
    /// Per-worker wire buffers (one round's sends of one tenant).
    send_bufs: Vec<Vec<(NodeId, NodeId, <P as Protocol>::Msg)>>,
    workers: usize,
    pool: Option<WorkerPool>,
    board: Arc<SnapshotBoard>,
    check_every: u64,
    target: Option<f64>,
    round: u64,
}

impl<'h, P: TenantProtocol> BatchSim<'h, P> {
    /// Build the batch engine over an assembled host. `protocol` must
    /// have been constructed over [`BatchHost::graph`]; `specs` must be
    /// the slice `host` was assembled from.
    pub fn new(
        host: &'h BatchHost,
        mut protocol: P,
        specs: &[TenantSpec],
        opts: BatchOptions,
    ) -> Result<Self, BatchConfigError> {
        assert_eq!(
            specs.len(),
            host.extents.len(),
            "spec count does not match the assembled host"
        );
        if opts.threads == 0 {
            return Err(BatchConfigError::ZeroThreads);
        }
        let graph = &host.graph;
        let n = graph.len();
        let mut believed_flat = Vec::with_capacity(graph.arc_count());
        let mut believed_len = Vec::with_capacity(n);
        for i in 0..n as NodeId {
            believed_flat.extend_from_slice(graph.neighbors(i));
            believed_len.push(graph.degree(i) as u32);
        }
        let mut inputs = Vec::with_capacity(n);
        let mut tenants = Vec::with_capacity(specs.len());
        for (spec, e) in specs.iter().zip(&host.extents) {
            inputs.extend_from_slice(&spec.values);
            tenants.push(Tenant::new(spec, *e, &opts.schedule));
        }
        let workers = if P::PARALLEL_SAFE {
            opts.threads.min(tenants.len()).max(1)
        } else {
            1
        };
        if workers > 1 {
            protocol.set_partitions(workers);
        }
        let pool = (workers > 1).then(|| WorkerPool::new(workers));
        let board = SnapshotBoard::new(tenants.len());
        Ok(BatchSim {
            host,
            protocol,
            updates: vec![Vec::new(); tenants.len()],
            tenants,
            alive_node: vec![true; n],
            believed_flat,
            believed_len,
            inputs,
            send_bufs: (0..workers).map(|_| Vec::new()).collect(),
            workers,
            pool,
            board,
            check_every: opts.check_every,
            target: opts.target_accuracy,
            round: 0,
        })
    }

    /// The shared snapshot table (clone the `Arc` into reader threads).
    pub fn snapshots(&self) -> Arc<SnapshotBoard> {
        Arc::clone(&self.board)
    }

    /// The protocol (for estimate inspection between rounds).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable protocol access.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Resolved worker count (1 = caller's thread only).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Batch rounds completed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Tenant `t`'s transport counters.
    pub fn tenant_stats(&self, t: usize) -> SimStats {
        self.tenants[t].stats
    }

    /// Rounds tenant `t` has completed.
    pub fn tenant_round(&self, t: usize) -> u64 {
        self.tenants[t].round
    }

    /// `true` once tenant `t` has exhausted its round budget.
    pub fn tenant_done(&self, t: usize) -> bool {
        !self.tenants[t].active
    }

    /// Tenant `t`'s current estimate at tenant-local node `node`.
    pub fn tenant_estimate(&self, t: usize, node: NodeId) -> f64 {
        let tn = &self.tenants[t];
        assert!(
            node < tn.node_end - tn.node_base,
            "node out of tenant range"
        );
        self.protocol.estimate(tn.node_base + node)
    }

    /// `true` if tenant-local `node` of tenant `t` is alive.
    pub fn tenant_node_alive(&self, t: usize, node: NodeId) -> bool {
        let tn = &self.tenants[t];
        assert!(
            node < tn.node_end - tn.node_base,
            "node out of tenant range"
        );
        self.alive_node[(tn.node_base + node) as usize]
    }

    /// Tenant `t`'s alive nodes in *union-graph* ids, ascending — the
    /// id space the protocol's introspection hooks (estimates, mass,
    /// flows) speak, so external checkers can audit a tenant in place.
    pub fn tenant_alive_nodes(&self, t: usize) -> impl Iterator<Item = NodeId> + '_ {
        let tn = &self.tenants[t];
        (tn.node_base..tn.node_end).filter(|&i| self.alive_node[i as usize])
    }

    /// The union-graph nodes `node` currently believes alive (sorted
    /// ascending) — the batch analogue of `Simulator::believed_alive`.
    pub fn believed_alive(&self, node: NodeId) -> &[NodeId] {
        let base = self.host.graph.arc_base(node);
        let len = self.believed_len[node as usize] as usize;
        &self.believed_flat[base..base + len]
    }

    /// `true` when every tenant has stopped stepping.
    pub fn all_done(&self) -> bool {
        self.tenants.iter().all(|t| !t.active)
    }

    /// Queue a streaming update: tenant `t`'s *local* node `node` changes
    /// its input value to `value` at the start of the tenant's next
    /// round. Updates apply in push order; the aggregate re-converges to
    /// the new mean (LiMoSense-style live monitoring).
    pub fn push_update(&mut self, t: usize, node: NodeId, value: f64) {
        let tn = &self.tenants[t];
        assert!(
            node < tn.node_end - tn.node_base,
            "node out of tenant range"
        );
        self.updates[t].push((tn.node_base + node, value));
        // The old flag describes the old target: force a fresh check.
        self.tenants[t].converged = false;
    }

    /// Step every active tenant one round.
    pub fn step_round(&mut self) {
        let nw = self.workers;
        if let Some(pool) = self.pool.take() {
            let ptr = SendPtr(self as *mut Self);
            pool.run(nw, move |w| {
                // Capture the whole wrapper (not the raw-pointer field)
                // so the closure inherits SendPtr's Send + Sync.
                let ptr = ptr;
                // SAFETY: worker `w` steps only tenants in its fixed
                // chunk; every mutable touch is tenant-owned (the tenant
                // struct, its update queue, its contiguous node/arc
                // ranges of the strided vectors, its nodes' protocol
                // state per the PARALLEL_SAFE contract) or worker-owned
                // (send_bufs[w], the protocol's part-`w` arenas). The
                // snapshot board is written through atomics. The pool's
                // barrier retires all workers before `run` returns, so
                // these aliased `&mut`s never overlap the caller's
                // exclusive use.
                let sim = unsafe { &mut *ptr.0 };
                sim.run_worker(w);
            });
            self.pool = Some(pool);
        } else {
            self.run_worker(0);
        }
        self.round += 1;
    }

    /// Step until every tenant is done, at most `max_rounds` batch
    /// rounds.
    pub fn run(&mut self, max_rounds: u64) {
        for _ in 0..max_rounds {
            if self.all_done() {
                break;
            }
            self.step_round();
        }
    }

    /// Step the whole batch until tenant `t`'s converged flag is set
    /// (per the `check_every` cadence) or it stops, at most `max_rounds`
    /// additional batch rounds.
    pub fn run_until_converged(&mut self, t: usize, max_rounds: u64) {
        for _ in 0..max_rounds {
            if self.tenants[t].converged || !self.tenants[t].active {
                break;
            }
            self.step_round();
        }
    }

    /// Tenant chunk of worker `w`: `[w·T/W, (w+1)·T/W)` — fixed by
    /// construction, so the tenant→worker map never depends on timing.
    #[inline]
    fn chunk(&self, w: usize) -> (usize, usize) {
        let t = self.tenants.len();
        (w * t / self.workers, (w + 1) * t / self.workers)
    }

    fn run_worker(&mut self, w: usize) {
        let (t0, t1) = self.chunk(w);
        for t in t0..t1 {
            if self.tenants[t].active {
                self.step_tenant(w, t);
            }
        }
    }

    /// One tenant round: the classic engine's phase order exactly —
    /// streaming updates, scheduled faults, due detections, then the
    /// synchronous send/deliver/reply sweep.
    fn step_tenant(&mut self, w: usize, t: usize) {
        self.apply_updates(t);
        self.fire_scheduled_faults(t);
        self.deliver_detections(t);
        self.sync_round(w, t);
        let tn = &mut self.tenants[t];
        tn.round += 1;
        tn.stats.rounds += 1;
        if tn.round >= tn.max_rounds {
            tn.active = false;
        }
        let due_check = self.check_every > 0
            && (self.tenants[t].round.is_multiple_of(self.check_every) || !self.tenants[t].active);
        if due_check {
            self.check_convergence(t);
        }
        let tn = &self.tenants[t];
        let est = self.protocol.estimate(tn.node_base);
        self.board
            .publish(t, est, tn.round, tn.converged, !tn.active);
    }

    /// Drain tenant `t`'s queued streaming updates, in push order.
    fn apply_updates(&mut self, t: usize) {
        if self.updates[t].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.updates[t]);
        for &(node, value) in &batch {
            let old = self.inputs[node as usize];
            self.inputs[node as usize] = value;
            self.tenants[t].input_sum += value - old;
            self.protocol.update_local_value(node, value);
        }
        // Hand the allocation back for the next burst of updates.
        let mut batch = batch;
        batch.clear();
        self.updates[t] = batch;
    }

    /// Refresh tenant `t`'s converged flag: every alive node within
    /// `target` relative error of the input mean. (The mean is *not*
    /// re-based after crashes — the campaign oracle does the rigorous
    /// survivor-mass accounting; this flag serves live dashboards.)
    fn check_convergence(&mut self, t: usize) {
        let Some(target) = self.target else { return };
        let tn = &self.tenants[t];
        let n = (tn.node_end - tn.node_base) as f64;
        let mean = tn.input_sum / n;
        let scale = mean.abs().max(1.0);
        let mut converged = true;
        for i in tn.node_base..tn.node_end {
            if !self.alive_node[i as usize] {
                continue;
            }
            let rel = (self.protocol.estimate(i) - mean).abs() / scale;
            if rel > target || rel.is_nan() {
                converged = false;
                break;
            }
        }
        self.tenants[t].converged = converged;
    }

    /// Mark the arcs of link `(a, b)` physically dead, both directions.
    fn mark_link_dead(&mut self, t: usize, a: NodeId, b: NodeId) {
        let graph = &self.host.graph;
        let tn = &mut self.tenants[t];
        tn.physical_faults = true;
        for (x, y) in [(a, b), (b, a)] {
            if let Some(slot) = graph.neighbor_slot(x, y) {
                let arc = graph.arc_base(x) + slot - tn.arc_base;
                tn.dead_arcs[arc / 64] |= 1 << (arc % 64);
            }
        }
    }

    #[inline]
    fn arc_is_dead(graph: &Graph, tn: &Tenant, src: NodeId, dst: NodeId) -> bool {
        match graph.neighbor_slot(src, dst) {
            Some(slot) => {
                let arc = graph.arc_base(src) + slot - tn.arc_base;
                tn.dead_arcs[arc / 64] & (1 << (arc % 64)) != 0
            }
            None => false,
        }
    }

    /// Insert keeping `pending_detections` sorted descending by
    /// `(round, node, neighbor)` — the classic engine's exact queue
    /// discipline, so due detections pop in ascending handling order.
    fn push_detection(&mut self, t: usize, d: Detection) {
        let key = (d.round, d.node, d.neighbor);
        let q = &mut self.tenants[t].pending_detections;
        let pos = q.partition_point(|p| (p.round, p.node, p.neighbor) > key);
        q.insert(pos, d);
    }

    fn remove_believed(&mut self, node: NodeId, neighbor: NodeId) -> bool {
        let base = self.host.graph.arc_base(node);
        let len = self.believed_len[node as usize] as usize;
        let list = &mut self.believed_flat[base..base + len];
        match list.binary_search(&neighbor) {
            Ok(pos) => {
                list.copy_within(pos + 1.., pos);
                self.believed_len[node as usize] = (len - 1) as u32;
                true
            }
            Err(_) => false,
        }
    }

    fn readmit_believed(&mut self, node: NodeId, neighbor: NodeId) -> bool {
        let base = self.host.graph.arc_base(node);
        let len = self.believed_len[node as usize] as usize;
        match self.believed_flat[base..base + len].binary_search(&neighbor) {
            Ok(_) => false,
            Err(pos) => {
                self.believed_flat
                    .copy_within(base + pos..base + len, base + pos + 1);
                self.believed_flat[base + pos] = neighbor;
                self.believed_len[node as usize] = (len + 1) as u32;
                true
            }
        }
    }

    /// Phase 1 for tenant `t`: fire scheduled physical faults due this
    /// round and enqueue their oracle detections — cursor advances over
    /// pre-sorted queues, in the classic engine's fire order (link
    /// failures, partition cuts, crashes, link heals, partition heals,
    /// restarts).
    fn fire_scheduled_faults(&mut self, t: usize) {
        let round = self.tenants[t].round;
        while let Some(&f) = {
            let tn = &self.tenants[t];
            tn.link_queue.get(tn.link_cursor)
        } {
            if f.at_round > round {
                break;
            }
            self.tenants[t].link_cursor += 1;
            self.mark_link_dead(t, f.a, f.b);
            let at = round + f.detect_delay;
            self.push_detection(
                t,
                Detection {
                    round: at,
                    node: f.a,
                    neighbor: f.b,
                },
            );
            self.push_detection(
                t,
                Detection {
                    round: at,
                    node: f.b,
                    neighbor: f.a,
                },
            );
        }
        while let Some(p) = {
            let tn = &self.tenants[t];
            tn.cut_queue.get(tn.cut_cursor).cloned()
        } {
            if p.at_round > round {
                break;
            }
            self.tenants[t].cut_cursor += 1;
            self.fire_partition(t, &p);
        }
        while let Some(&c) = {
            let tn = &self.tenants[t];
            tn.crash_queue.get(tn.crash_cursor)
        } {
            if c.at_round > round {
                break;
            }
            self.tenants[t].crash_cursor += 1;
            self.alive_node[c.node as usize] = false;
            self.tenants[t].physical_faults = true;
            let at = round + c.detect_delay;
            let deg = self.host.graph.degree(c.node);
            for k in 0..deg {
                let j = self.host.graph.neighbors(c.node)[k];
                self.push_detection(
                    t,
                    Detection {
                        round: at,
                        node: j,
                        neighbor: c.node,
                    },
                );
            }
        }
        while let Some(&h) = {
            let tn = &self.tenants[t];
            tn.heal_queue.get(tn.heal_cursor)
        } {
            if h.at_round > round {
                break;
            }
            self.tenants[t].heal_cursor += 1;
            self.fire_link_heal(t, h.a, h.b);
        }
        while let Some(p) = {
            let tn = &self.tenants[t];
            tn.cut_heal_queue.get(tn.cut_heal_cursor).cloned()
        } {
            if p.at_round > round {
                break;
            }
            self.tenants[t].cut_heal_cursor += 1;
            self.fire_partition_heal(t, &p);
        }
        while let Some(&r) = {
            let tn = &self.tenants[t];
            tn.restart_queue.get(tn.restart_cursor)
        } {
            if r.at_round > round {
                break;
            }
            self.tenants[t].restart_cursor += 1;
            self.fire_node_restart(t, r.node);
        }
    }

    /// Scripted partition cut for tenant `t`: every live crossing link of
    /// the member set dies, with per-link oracle detections.
    fn fire_partition(&mut self, t: usize, p: &NetPartition) {
        let round = self.tenants[t].round;
        let (nb, ne) = (self.tenants[t].node_base, self.tenants[t].node_end);
        let mut in_group = vec![false; (ne - nb) as usize];
        for &m in &p.members {
            in_group[(m - nb) as usize] = true;
        }
        for &m in &p.members {
            let deg = self.host.graph.degree(m);
            for k in 0..deg {
                let j = self.host.graph.neighbors(m)[k];
                if in_group[(j - nb) as usize]
                    || Self::arc_is_dead(&self.host.graph, &self.tenants[t], m, j)
                {
                    continue;
                }
                self.mark_link_dead(t, m, j);
                let at = round + p.detect_delay;
                self.push_detection(
                    t,
                    Detection {
                        round: at,
                        node: m,
                        neighbor: j,
                    },
                );
                self.push_detection(
                    t,
                    Detection {
                        round: at,
                        node: j,
                        neighbor: m,
                    },
                );
            }
        }
    }

    /// Scripted partition heal for tenant `t`: every severed crossing
    /// link returns via the ordinary per-link heal path.
    fn fire_partition_heal(&mut self, t: usize, p: &PartitionHeal) {
        let (nb, ne) = (self.tenants[t].node_base, self.tenants[t].node_end);
        let mut in_group = vec![false; (ne - nb) as usize];
        for &m in &p.members {
            in_group[(m - nb) as usize] = true;
        }
        for &m in &p.members {
            let deg = self.host.graph.degree(m);
            for k in 0..deg {
                let j = self.host.graph.neighbors(m)[k];
                if in_group[(j - nb) as usize]
                    || !Self::arc_is_dead(&self.host.graph, &self.tenants[t], m, j)
                {
                    continue;
                }
                self.fire_link_heal(t, m, j);
            }
        }
    }

    /// Bring link `(a, b)` of tenant `t` back: clear dead bits, cancel
    /// pending detections for the pair, re-admit alive endpoints with the
    /// protocol's rehabilitation hook.
    fn fire_link_heal(&mut self, t: usize, a: NodeId, b: NodeId) {
        {
            let graph = &self.host.graph;
            let tn = &mut self.tenants[t];
            for (x, y) in [(a, b), (b, a)] {
                if let Some(slot) = graph.neighbor_slot(x, y) {
                    let arc = graph.arc_base(x) + slot - tn.arc_base;
                    tn.dead_arcs[arc / 64] &= !(1 << (arc % 64));
                }
            }
            tn.pending_detections.retain(|d| {
                !((d.node == a && d.neighbor == b) || (d.node == b && d.neighbor == a))
            });
        }
        for (x, y) in [(a, b), (b, a)] {
            if !self.alive_node[x as usize] || !self.alive_node[y as usize] {
                continue;
            }
            if self.readmit_believed(x, y) {
                self.tenants[t].stats.rehabilitated += 1;
                self.protocol.on_rehabilitate(x, y);
            }
        }
    }

    /// Rejoin crashed `node` of tenant `t` with fresh state — the classic
    /// engine's restart path minus the in-flight purges (the zero-delay
    /// ring is drained every round, so nothing can be in flight here).
    fn fire_node_restart(&mut self, t: usize, node: NodeId) {
        assert!(
            !self.alive_node[node as usize],
            "fault plan restarts node, which is alive"
        );
        self.alive_node[node as usize] = true;
        {
            let graph = &self.host.graph;
            let tn = &mut self.tenants[t];
            let arc_dead = |src: NodeId, dst: NodeId| match graph.neighbor_slot(src, dst) {
                Some(slot) => {
                    let arc = graph.arc_base(src) + slot - tn.arc_base;
                    tn.dead_arcs[arc / 64] & (1 << (arc % 64)) != 0
                }
                None => false,
            };
            tn.pending_detections
                .retain(|d| d.node != node && (d.neighbor != node || arc_dead(d.node, d.neighbor)));
        }
        // The rebooted node believes exactly its alive neighbors over
        // live links; the CSR segment re-expands within its extent.
        let base = self.host.graph.arc_base(node);
        let deg = self.host.graph.degree(node);
        let mut len = 0usize;
        for k in 0..deg {
            let j = self.host.graph.neighbors(node)[k];
            if self.alive_node[j as usize]
                && !Self::arc_is_dead(&self.host.graph, &self.tenants[t], node, j)
            {
                self.believed_flat[base + len] = j;
                len += 1;
            }
        }
        self.believed_len[node as usize] = len as u32;
        self.protocol.on_restart(node);
        for k in 0..deg {
            let j = self.host.graph.neighbors(node)[k];
            if !self.alive_node[j as usize]
                || Self::arc_is_dead(&self.host.graph, &self.tenants[t], j, node)
            {
                continue;
            }
            if self.readmit_believed(j, node) {
                self.tenants[t].stats.rehabilitated += 1;
            }
            self.protocol.on_neighbor_restarted(j, node);
        }
    }

    /// Phase 2 for tenant `t`: deliver due detections to alive endpoints
    /// in the deterministic `(node, neighbor)` order.
    fn deliver_detections(&mut self, t: usize) {
        if self.tenants[t].pending_detections.is_empty() {
            return;
        }
        let round = self.tenants[t].round;
        while let Some(&d) = self.tenants[t].pending_detections.last() {
            if d.round > round {
                break;
            }
            self.tenants[t].pending_detections.pop();
            if self.alive_node[d.node as usize] && self.remove_believed(d.node, d.neighbor) {
                self.protocol.on_link_failed(d.node, d.neighbor);
            }
        }
    }

    /// Transit fault pipeline for one tenant message — dead link, burst
    /// chain, i.i.d. loss, bit corruption — drawing from the tenant's
    /// own streams in the classic engine's order.
    #[inline]
    fn transit(
        &mut self,
        t: usize,
        src: NodeId,
        dst: NodeId,
        msg: &mut <P as Protocol>::Msg,
    ) -> bool {
        let graph = &self.host.graph;
        let tn = &mut self.tenants[t];
        if tn.physical_faults
            && (!self.alive_node[src as usize] || !self.alive_node[dst as usize] || {
                match graph.neighbor_slot(src, dst) {
                    Some(slot) => {
                        let arc = graph.arc_base(src) + slot - tn.arc_base;
                        tn.dead_arcs[arc / 64] & (1 << (arc % 64)) != 0
                    }
                    None => false,
                }
            })
        {
            tn.stats.lost_dead += 1;
            return false;
        }
        if let Some(b) = tn.burst {
            let u = tn.burst_rng.random::<f64>();
            tn.burst_bad = if tn.burst_bad {
                u >= b.exit
            } else {
                u < b.enter
            };
            if tn.burst_bad && tn.burst_rng.random::<f64>() < b.loss {
                tn.stats.lost_burst += 1;
                return false;
            }
        }
        if tn.loss > 0.0 && tn.fault_rng.random::<f64>() < tn.loss {
            tn.stats.lost_random += 1;
            return false;
        }
        if tn.flip > 0.0 && tn.fault_rng.random::<f64>() < tn.flip {
            let bits = msg.corruptible_bits();
            if bits > 0 {
                let bit = tn.fault_rng.random_range(0..bits);
                msg.flip_bit(bit);
                tn.stats.bit_flips += 1;
            }
        }
        true
    }

    /// Push-pull reply hook, through the ordinary transit pipeline.
    fn deliver_reply(&mut self, w: usize, t: usize, replier: NodeId, to: NodeId) {
        if let Some(mut reply) = self.protocol.part_reply(w, replier, to) {
            self.tenants[t].stats.sent += 1;
            if self.transit(t, replier, to, &mut reply) {
                self.protocol.part_receive(w, to, replier, &mut reply);
                self.tenants[t].stats.delivered += 1;
            }
            self.protocol.part_reclaim(w, reply);
        }
    }

    /// Phases 3–5 for tenant `t` on worker `w`: every alive node sends
    /// once (partner from the tenant's schedule stream), then in-order
    /// delivery through the fault pipeline with reply hooks — the classic
    /// zero-delay synchronous round, node ids offset by the tenant base.
    fn sync_round(&mut self, w: usize, t: usize) {
        let (nb, ne) = (self.tenants[t].node_base, self.tenants[t].node_end);
        let mut buf = std::mem::take(&mut self.send_bufs[w]);
        debug_assert!(buf.is_empty());
        for i in nb..ne {
            if !self.alive_node[i as usize] {
                continue;
            }
            let base = self.host.graph.arc_base(i);
            let len = self.believed_len[i as usize] as usize;
            let tn = &mut self.tenants[t];
            let alive = &self.believed_flat[base..base + len];
            let target = tn.schedule.pick(i - nb, alive, &mut tn.sched_rng);
            let Some(target) = target else { continue };
            let msg = self.protocol.part_send(w, i, target);
            self.tenants[t].stats.sent += 1;
            buf.push((i, target, msg));
        }
        let tn = &self.tenants[t];
        let clean = !tn.physical_faults && tn.loss <= 0.0 && tn.flip <= 0.0 && tn.burst.is_none();
        const LOOKAHEAD: usize = 8;
        for k in 0..buf.len() {
            if let Some(ahead) = buf.get(k + LOOKAHEAD) {
                self.protocol.prewarm(ahead.1, ahead.0);
            }
            let entry = &mut buf[k];
            let (src, dst) = (entry.0, entry.1);
            if clean || self.transit(t, src, dst, &mut entry.2) {
                self.protocol.part_receive(w, dst, src, &mut entry.2);
                self.tenants[t].stats.delivered += 1;
                self.deliver_reply(w, t, dst, src);
            }
        }
        for (_, _, msg) in buf.drain(..) {
            self.protocol.part_reclaim(w, msg);
        }
        self.send_bufs[w] = buf;
    }
}

impl Tenant {
    fn new(spec: &TenantSpec, e: Extent, schedule: &Schedule) -> Tenant {
        let offset = e.node_base;
        let mut link_queue: Vec<LinkFailure> = spec
            .plan
            .link_failures
            .iter()
            .map(|f| LinkFailure {
                a: f.a + offset,
                b: f.b + offset,
                ..*f
            })
            .collect();
        link_queue.sort_by_key(|f| f.at_round);
        let mut crash_queue: Vec<NodeCrash> = spec
            .plan
            .node_crashes
            .iter()
            .map(|c| NodeCrash {
                node: c.node + offset,
                ..*c
            })
            .collect();
        crash_queue.sort_by_key(|c| c.at_round);
        let mut heal_queue: Vec<LinkHeal> = spec
            .plan
            .link_heals
            .iter()
            .map(|h| LinkHeal {
                a: h.a + offset,
                b: h.b + offset,
                ..*h
            })
            .collect();
        heal_queue.sort_by_key(|h| h.at_round);
        let mut restart_queue: Vec<NodeRestart> = spec
            .plan
            .node_restarts
            .iter()
            .map(|r| NodeRestart {
                node: r.node + offset,
                ..*r
            })
            .collect();
        restart_queue.sort_by_key(|r| r.at_round);
        let mut cut_queue: Vec<NetPartition> = spec
            .plan
            .partitions
            .iter()
            .map(|p| NetPartition {
                members: p.members.iter().map(|&m| m + offset).collect(),
                ..p.clone()
            })
            .collect();
        cut_queue.sort_by_key(|p| p.at_round);
        let mut cut_heal_queue: Vec<PartitionHeal> = spec
            .plan
            .partition_heals
            .iter()
            .map(|p| PartitionHeal {
                members: p.members.iter().map(|&m| m + offset).collect(),
                ..p.clone()
            })
            .collect();
        cut_heal_queue.sort_by_key(|p| p.at_round);
        Tenant {
            node_base: e.node_base,
            node_end: e.node_base + e.nodes,
            arc_base: e.arc_base,
            sched_rng: stream_rng(spec.seed, RngStream::Schedule),
            fault_rng: stream_rng(spec.seed, RngStream::Faults),
            burst_rng: stream_rng(spec.seed, RngStream::Burst),
            schedule: match schedule {
                Schedule::UniformRandom => Schedule::uniform(),
                Schedule::RoundRobin { .. } => Schedule::round_robin(e.nodes as usize),
            },
            loss: spec.plan.msg_loss_prob,
            flip: spec.plan.bit_flip_prob,
            burst: spec.plan.burst,
            burst_bad: false,
            link_queue,
            link_cursor: 0,
            crash_queue,
            crash_cursor: 0,
            heal_queue,
            heal_cursor: 0,
            restart_queue,
            restart_cursor: 0,
            cut_queue,
            cut_cursor: 0,
            cut_heal_queue,
            cut_heal_cursor: 0,
            pending_detections: Vec::new(),
            dead_arcs: vec![0; e.arcs.div_ceil(64)],
            physical_faults: false,
            stats: SimStats::default(),
            round: 0,
            max_rounds: spec.max_rounds,
            active: spec.max_rounds > 0,
            converged: false,
            input_sum: spec.values.iter().sum(),
        }
    }
}
