//! Property-based simulator invariants: transport accounting, determinism
//! and fault bookkeeping under arbitrary parameters.

use gr_netsim::{Activation, Corrupt, DelayModel, FaultPlan, Protocol, SimOptions, Simulator};
use gr_topology::{complete, ring, NodeId};
use proptest::prelude::*;

/// A protocol that remembers everything it saw.
struct Log {
    deliveries: Vec<(NodeId, NodeId)>,
    failures: Vec<(NodeId, NodeId)>,
}

impl Log {
    fn new() -> Self {
        Log {
            deliveries: Vec::new(),
            failures: Vec::new(),
        }
    }
}

impl Protocol for Log {
    type Msg = f64;
    fn on_send(&mut self, node: NodeId, _t: NodeId) -> f64 {
        node as f64
    }
    fn on_receive(&mut self, node: NodeId, from: NodeId, _m: &mut f64) {
        self.deliveries.push((from, node));
    }
    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        self.failures.push((node, neighbor));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// sent = delivered + lost, for any loss rate, delay and activation.
    #[test]
    fn transport_accounting_balances(
        seed in 0u64..500,
        loss in 0.0f64..1.0,
        rounds in 1u64..60,
        delay in 0u64..4,
        async_mode in proptest::bool::ANY,
    ) {
        let g = complete(7);
        let opts = SimOptions {
            activation: if async_mode { Activation::Asynchronous } else { Activation::Synchronous },
            delay: if async_mode || delay == 0 { DelayModel::None } else { DelayModel::Fixed(delay) },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Log::new(), FaultPlan::with_loss(loss), seed, opts);
        sim.run(rounds);
        let s = sim.stats();
        let in_flight = if async_mode { 0 } else { delay.min(rounds) * 7 };
        prop_assert!(s.sent >= s.delivered + s.lost_random + s.lost_dead);
        prop_assert!(s.sent - (s.delivered + s.lost_random + s.lost_dead) <= in_flight);
        prop_assert_eq!(s.delivered as usize, sim.protocol().deliveries.len());
        prop_assert_eq!(s.rounds, rounds);
    }

    /// Bit-for-bit determinism: two simulators with identical parameters
    /// observe identical delivery sequences.
    #[test]
    fn identical_parameters_identical_history(
        seed in 0u64..200,
        loss in 0.0f64..0.5,
        flips in 0.0f64..0.3,
    ) {
        let g = ring(9);
        let run = || {
            let plan = FaultPlan {
                msg_loss_prob: loss,
                bit_flip_prob: flips,
                ..FaultPlan::none()
            };
            let mut sim = Simulator::new(&g, Log::new(), plan, seed);
            sim.run(30);
            (sim.protocol().deliveries.clone(), sim.stats())
        };
        let (d1, s1) = run();
        let (d2, s2) = run();
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(s1, s2);
    }

    /// Every scheduled link failure is detected exactly once per alive
    /// endpoint, wherever it is placed in time.
    #[test]
    fn link_failures_detected_once(
        seed in 0u64..200,
        at in 0u64..40,
        edge in 0usize..9,
    ) {
        let g = ring(9);
        let (a, b) = g.edges().nth(edge).unwrap();
        let plan = FaultPlan::none().fail_link(a, b, at);
        let mut sim = Simulator::new(&g, Log::new(), plan, seed);
        sim.run(50);
        let mut f = sim.protocol().failures.clone();
        f.sort_unstable();
        prop_assert_eq!(f, vec![(a, b), (b, a)]);
        // and the believed-alive lists shrank accordingly
        prop_assert_eq!(sim.believed_alive(a).len(), 1);
        prop_assert_eq!(sim.believed_alive(b).len(), 1);
    }

    /// Corruption coverage: flipping any bit index of a composite payload
    /// changes it, and flipping twice restores it.
    #[test]
    fn corruption_is_involutive(
        v1 in proptest::num::f64::NORMAL,
        v2 in proptest::num::f64::NORMAL,
        bit in 0u32..128,
    ) {
        let original = (v1, v2);
        let mut m = original;
        m.flip_bit(bit);
        prop_assert!(m != original || v1.is_nan() || v2.is_nan());
        m.flip_bit(bit);
        prop_assert_eq!(m, original);
    }
}
