//! Golden-schedule pins: `(seed → event-sequence hash)` must never change.
//!
//! The hot-loop refactors promise *byte-identical* executions: the same
//! seed must produce the same schedule (who talks to whom, in order), the
//! same deliveries (including payload bits, so corruption draws are
//! pinned too) and the same failure-detection callbacks, before and after
//! any optimisation. These tests hash the full event sequence through a
//! protocol shim and compare against constants captured on the
//! pre-refactor simulator. If one fails, the change being tested altered
//! the execution — a correctness bug under this crate's determinism
//! contract, not a tuning matter.

use gr_netsim::{
    Activation, DelayModel, DetectorModel, FaultPlan, LinkFailure, NodeCrash, Protocol, SimOptions,
    Simulator,
};
use gr_topology::{complete, hypercube, ring, Graph, NodeId};

/// FNV-1a, folded over the tagged event stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u32(&mut self, v: u32) {
        v.to_le_bytes().into_iter().for_each(|b| self.byte(b));
    }
    fn u64(&mut self, v: u64) {
        v.to_le_bytes().into_iter().for_each(|b| self.byte(b));
    }
}

/// Hashes every protocol-visible event in order: sends (`S`), deliveries
/// with payload bits (`R`), failure detections (`F`), timeout suspicions
/// (`U`), rehabilitations (`H`), restarts (`T`) and neighbor-restart
/// notifications (`N`). Messages carry the sender id, so corruption
/// draws change the hash too.
struct EventHasher(Fnv);

impl Protocol for EventHasher {
    type Msg = f64;
    fn on_send(&mut self, node: NodeId, target: NodeId) -> f64 {
        self.0.byte(b'S');
        self.0.u32(node);
        self.0.u32(target);
        node as f64
    }
    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut f64) {
        self.0.byte(b'R');
        self.0.u32(node);
        self.0.u32(from);
        self.0.u64(msg.to_bits());
    }
    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        self.0.byte(b'F');
        self.0.u32(node);
        self.0.u32(neighbor);
    }
    fn on_suspect(&mut self, node: NodeId, neighbor: NodeId) {
        self.0.byte(b'U');
        self.0.u32(node);
        self.0.u32(neighbor);
    }
    fn on_rehabilitate(&mut self, node: NodeId, neighbor: NodeId) {
        self.0.byte(b'H');
        self.0.u32(node);
        self.0.u32(neighbor);
    }
    fn on_restart(&mut self, node: NodeId) {
        self.0.byte(b'T');
        self.0.u32(node);
    }
    fn on_neighbor_restarted(&mut self, node: NodeId, neighbor: NodeId) {
        self.0.byte(b'N');
        self.0.u32(node);
        self.0.u32(neighbor);
    }
}

fn run_hash(graph: &Graph, plan: FaultPlan, seed: u64, options: SimOptions, rounds: u64) -> u64 {
    let mut sim = Simulator::with_options(graph, EventHasher(Fnv::new()), plan, seed, options);
    sim.run(rounds);
    let mut h = std::mem::replace(&mut sim.protocol_mut().0, Fnv::new());
    // Fold the transport counters in as well: stats must stay identical,
    // not merely the protocol-visible sequence.
    let s = sim.stats();
    for v in [s.sent, s.delivered, s.lost_random, s.lost_dead, s.bit_flips] {
        h.u64(v);
    }
    h.0
}

/// Like [`run_hash`], but also folds in the failure-detector counters —
/// used by the suspicion/heal/restart pins, where the detector traffic
/// (including liveness probes on suspected arcs) is part of the pinned
/// behaviour. A separate fold list keeps the pre-detector pins intact.
fn run_hash_detector(
    graph: &Graph,
    plan: FaultPlan,
    seed: u64,
    options: SimOptions,
    rounds: u64,
) -> u64 {
    let mut sim = Simulator::with_options(graph, EventHasher(Fnv::new()), plan, seed, options);
    sim.run(rounds);
    let mut h = std::mem::replace(&mut sim.protocol_mut().0, Fnv::new());
    let s = sim.stats();
    for v in [
        s.sent,
        s.delivered,
        s.lost_random,
        s.lost_dead,
        s.bit_flips,
        s.suspected,
        s.rehabilitated,
        s.probes_sent,
    ] {
        h.u64(v);
    }
    h.0
}

/// A fault plan exercising every scheduled-event path: two link failures
/// (one pair deliberately listed out of round order, plus a same-round
/// pair to pin stable firing order), a delayed-detection crash, and both
/// probabilistic fault classes.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 0.01,
        link_failures: vec![
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 20,
                detect_delay: 5,
            },
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 10,
                detect_delay: 0,
            },
            LinkFailure {
                a: 4,
                b: 5,
                at_round: 20,
                detect_delay: 5,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 7,
            at_round: 40,
            detect_delay: 3,
        }],
        ..FaultPlan::none()
    }
}

fn sync() -> SimOptions {
    SimOptions::default()
}

fn asynchronous() -> SimOptions {
    SimOptions {
        activation: Activation::Asynchronous,
        ..SimOptions::default()
    }
}

#[test]
fn golden_sync_ring_fault_free() {
    assert_eq!(
        run_hash(&ring(32), FaultPlan::none(), 42, sync(), 300),
        0xd266358f85ce5f31
    );
}

#[test]
fn golden_sync_complete_fault_free() {
    assert_eq!(
        run_hash(&complete(16), FaultPlan::none(), 7, sync(), 300),
        0xeb896ff87e44e615
    );
}

#[test]
fn golden_sync_hypercube_fault_free() {
    assert_eq!(
        run_hash(&hypercube(6), FaultPlan::none(), 9, sync(), 300),
        0x9b3917a34bfdc941
    );
}

#[test]
fn golden_sync_hypercube_faulty() {
    assert_eq!(
        run_hash(&hypercube(6), faulty_plan(), 9, sync(), 300),
        0xfeeca303de40f051
    );
}

#[test]
fn golden_sync_ring_faulty() {
    assert_eq!(
        run_hash(&ring(32), faulty_plan(), 42, sync(), 300),
        0x94ca750f639101b7
    );
}

#[test]
fn golden_async_ring_fault_free() {
    assert_eq!(
        run_hash(&ring(32), FaultPlan::none(), 42, asynchronous(), 300),
        0x2b0209983d9c2824
    );
}

#[test]
fn golden_async_complete_faulty() {
    assert_eq!(
        run_hash(&complete(16), faulty_plan(), 5, asynchronous(), 300),
        0x9714f8c45d29f1a4
    );
}

#[test]
fn golden_async_hypercube_crash() {
    let plan = FaultPlan::none().crash_node(11, 50).crash_node(3, 120);
    assert_eq!(
        run_hash(&hypercube(6), plan, 3, asynchronous(), 300),
        0x600385f60cee6b7e
    );
}

#[test]
fn golden_sync_uniform_delay() {
    let opts = SimOptions {
        delay: DelayModel::Uniform { min: 0, max: 4 },
        ..SimOptions::default()
    };
    assert_eq!(
        run_hash(&complete(16), faulty_plan(), 13, opts, 300),
        0x35fb9d4763b15758
    );
}

#[test]
fn golden_sync_timeout_detector() {
    // Delay-induced false suspicions, probe-driven rehabilitation: pins
    // the suspicion scan order, the probe ring discipline and the
    // `U`/`H` hook sequence.
    let opts = SimOptions {
        delay: DelayModel::Uniform { min: 0, max: 4 },
        detector: DetectorModel::Timeout { window: 6 },
        ..SimOptions::default()
    };
    assert_eq!(
        run_hash_detector(&hypercube(4), FaultPlan::none(), 17, opts, 200),
        0x16d9bc9fc874941e
    );
}

#[test]
fn golden_sync_link_heal() {
    // Oracle detection of a scheduled link failure, then a heal: pins the
    // `F` detections and the heal-driven `H` rehabilitations.
    let plan = FaultPlan::none()
        .fail_link(0, 1, 20)
        .fail_link(2, 6, 20)
        .heal_link(0, 1, 90)
        .heal_link(2, 6, 140);
    assert_eq!(
        run_hash(&hypercube(4), plan, 11, sync(), 200),
        0xa93b8e731fb7c51d
    );
}

#[test]
fn golden_sync_node_restart() {
    // Crash then restart under the oracle detector: pins the `T` restart
    // hook, the neighbors' `N` notifications and the believed-set
    // rebuild order.
    let plan = FaultPlan::none().crash_node(5, 30).restart_node(5, 110);
    assert_eq!(
        run_hash(&hypercube(4), plan, 19, sync(), 200),
        0x59ba996945a1c04c
    );
}

#[test]
fn golden_timeout_heal_restart_cross() {
    // The full robustness cross-product: timeout detector + delay + loss,
    // a link failure later healed, and a crash later restarted. Pins the
    // probe/suspicion interleaving against every scheduled-event path.
    let opts = SimOptions {
        delay: DelayModel::Uniform { min: 0, max: 3 },
        detector: DetectorModel::Timeout { window: 8 },
        ..SimOptions::default()
    };
    let plan = FaultPlan {
        msg_loss_prob: 0.02,
        ..FaultPlan::none()
    }
    .fail_link(1, 3, 40)
    .heal_link(1, 3, 120)
    .crash_node(9, 60)
    .restart_node(9, 150);
    assert_eq!(
        run_hash_detector(&hypercube(4), plan, 23, opts, 250),
        0xb985c0e8f816cd6b
    );
}

#[test]
fn golden_sync_fixed_delay_link_death() {
    let opts = SimOptions {
        delay: DelayModel::Fixed(3),
        ..SimOptions::default()
    };
    let plan = FaultPlan::none().fail_link(0, 1, 5).fail_link(2, 3, 5);
    assert_eq!(
        run_hash(&hypercube(4), plan, 21, opts, 200),
        0x420851072cbed04f
    );
}
