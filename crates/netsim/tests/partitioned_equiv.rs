//! Partitioned-engine equivalence: thread count must never change results.
//!
//! The partitioned engine's determinism contract (DESIGN §13) is that
//! results are a function of `SimOptions::partitions` only — the worker
//! thread count is purely an execution hint. These tests drive a
//! parallel-safe recording protocol through the partitioned engine and
//! assert the full digest (per-node event folds + transport counters) is
//! byte-identical for every thread count, across topologies, fault
//! plans, the timeout detector, and (via proptest) arbitrary partition
//! counts. A second group pins partitioned-run hashes as golden
//! constants, and a third checks the typed configuration errors.

use gr_netsim::{
    Activation, DelayModel, DetectorModel, FaultPlan, LinkFailure, LinkHeal, MachineCosts,
    NodeCrash, NodeRestart, PartitionSource, Protocol, SimConfigError, SimOptions, Simulator,
};
use gr_topology::{hypercube, ring, torus2d, Graph, NodeId};
use proptest::prelude::*;

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x100_0000_01b3).rotate_left(17);
}

/// Parallel-safe event recorder: every hook folds into the accumulator of
/// its *own* node, so all mutable state is node-owned and the protocol
/// honestly satisfies the [`Protocol::PARALLEL_SAFE`] contract — unlike
/// the golden-schedule `EventHasher`, whose single global hasher is order
/// sensitive and must stay on the sequential path.
struct PartMix {
    acc: Vec<u64>,
    sent: Vec<u64>,
}

impl PartMix {
    fn new(n: usize) -> Self {
        PartMix {
            acc: vec![0; n],
            sent: vec![0; n],
        }
    }

    fn note(&mut self, node: NodeId, tag: u8, a: u64, b: u64) {
        let h = &mut self.acc[node as usize];
        mix(h, tag as u64);
        mix(h, a);
        mix(h, b);
    }
}

impl Protocol for PartMix {
    type Msg = u64;

    // All state is indexed by the hook's own `node`; nothing is shared
    // across partitions, so no `set_partitions` arena sizing is needed.
    const PARALLEL_SAFE: bool = true;

    fn on_send(&mut self, node: NodeId, target: NodeId) -> u64 {
        self.sent[node as usize] += 1;
        let count = self.sent[node as usize];
        self.note(node, b'S', target as u64, count);
        ((node as u64) << 32) | (count & 0xffff_ffff)
    }

    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut u64) {
        self.note(node, b'R', from as u64, *msg);
    }

    fn reply(&mut self, node: NodeId, from: NodeId) -> Option<u64> {
        // Deterministic, node-local choice: reply to roughly a third of
        // deliveries so the reply lanes carry real (fault-exposed)
        // traffic in both engines.
        if self.acc[node as usize].is_multiple_of(3) {
            Some((node as u64) << 32 | from as u64)
        } else {
            None
        }
    }

    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        self.note(node, b'F', neighbor as u64, 0);
    }

    fn on_suspect(&mut self, node: NodeId, neighbor: NodeId) {
        self.note(node, b'U', neighbor as u64, 0);
    }

    fn on_rehabilitate(&mut self, node: NodeId, neighbor: NodeId) {
        self.note(node, b'H', neighbor as u64, 0);
    }

    fn on_restart(&mut self, node: NodeId) {
        self.note(node, b'T', 0, 0);
    }

    fn on_neighbor_restarted(&mut self, node: NodeId, neighbor: NodeId) {
        self.note(node, b'N', neighbor as u64, 0);
    }
}

/// Fold the whole observable outcome — per-node event accumulators, send
/// counters and every transport/detector stat — into one digest.
fn digest(sim: &Simulator<PartMix>) -> u64 {
    let p = sim.protocol();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (&a, &s) in p.acc.iter().zip(&p.sent) {
        mix(&mut h, a);
        mix(&mut h, s);
    }
    let s = sim.stats();
    for v in [
        s.rounds,
        s.sent,
        s.delivered,
        s.lost_random,
        s.lost_dead,
        s.bit_flips,
        s.suspected,
        s.rehabilitated,
        s.probes_sent,
    ] {
        mix(&mut h, v);
    }
    h
}

/// Every scheduled-fault class plus both probabilistic ones, on node ids
/// valid for any graph with ≥ 10 nodes.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 0.01,
        link_failures: vec![
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 20,
                detect_delay: 5,
            },
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 10,
                detect_delay: 0,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 7,
            at_round: 40,
            detect_delay: 3,
        }],
        link_heals: vec![LinkHeal {
            a: 0,
            b: 1,
            at_round: 60,
        }],
        node_restarts: vec![NodeRestart {
            node: 7,
            at_round: 80,
        }],
        burst: None,
        partitions: vec![],
        partition_heals: vec![],
    }
}

fn options(partitions: usize, threads: usize, detector: DetectorModel) -> SimOptions {
    SimOptions {
        partitions,
        threads,
        detector,
        ..SimOptions::default()
    }
}

fn run_digest(graph: &Graph, plan: &FaultPlan, seed: u64, opts: SimOptions, rounds: u64) -> u64 {
    let mut sim =
        Simulator::with_options(graph, PartMix::new(graph.len()), plan.clone(), seed, opts);
    sim.run(rounds);
    digest(&sim)
}

fn timeout() -> DetectorModel {
    DetectorModel::Timeout { window: 8 }
}

#[test]
fn thread_count_never_changes_results() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("hypercube6", hypercube(6)),
        ("ring96", ring(96)),
        ("torus16x16", torus2d(16, 16)),
    ];
    let plan = faulty_plan();
    for (name, g) in &graphs {
        for detector in [DetectorModel::Oracle, timeout()] {
            let baseline = run_digest(g, &plan, 42, options(4, 1, detector), 200);
            for threads in [2, 4, 8] {
                let d = run_digest(g, &plan, 42, options(4, threads, detector), 200);
                assert_eq!(
                    d, baseline,
                    "{name}/{detector:?}: threads={threads} diverged from threads=1"
                );
            }
        }
    }
}

#[test]
fn every_partition_count_is_thread_invariant() {
    let g = hypercube(6);
    let plan = faulty_plan();
    for partitions in [2, 3, 5, 7, 64] {
        let one = run_digest(&g, &plan, 9, options(partitions, 1, timeout()), 150);
        let many = run_digest(&g, &plan, 9, options(partitions, 4, timeout()), 150);
        assert_eq!(one, many, "partitions={partitions}");
        assert_ne!(one, 0);
    }
}

#[test]
fn partition_count_above_node_count_is_clamped() {
    let g = ring(10);
    let sim = Simulator::with_options(
        &g,
        PartMix::new(10),
        FaultPlan::none(),
        1,
        options(50, 2, DetectorModel::Oracle),
    );
    assert_eq!(sim.partitions(), 10);
}

#[test]
fn auto_partitioning_kicks_in_at_scale_only() {
    let small = ring(4096);
    let sim = Simulator::with_options(
        &small,
        PartMix::new(4096),
        FaultPlan::none(),
        1,
        SimOptions::default(),
    );
    assert_eq!(
        sim.partitions(),
        1,
        "small graphs stay on the classic engine"
    );
    assert_eq!(
        sim.partition_plan().source,
        PartitionSource::SingleStream,
        "below the node floor the cost model is never consulted"
    );
    assert!(sim.partition_plan().model.is_none());

    // At scale with `partitions: 0` the measured model decides. The
    // count depends on this machine (that is the point), but the plan
    // must say so, stay within the engine's bounds, and still run.
    let big = ring(100_000);
    let mut sim = Simulator::with_options(
        &big,
        PartMix::new(100_000),
        FaultPlan::none(),
        1,
        SimOptions::default(),
    );
    let plan = *sim.partition_plan();
    assert_eq!(plan.source, PartitionSource::AutoMeasured);
    assert!((1..=64).contains(&plan.partitions));
    let model = plan.model.expect("auto-measured plans carry their model");
    assert_eq!((model.nodes, model.arcs), (100_000, 200_000));
    assert!(model.predicted_ns > 0.0 && model.predicted_ns <= model.single_stream_ns);
    sim.run(2);
    // Every node sends each round; PartMix replies add more on top.
    assert!(sim.stats().sent >= 2 * 100_000);
}

/// The cost model itself, pinned with synthetic machine costs so the
/// choice is deterministic regardless of what hardware runs the tests.
#[test]
fn cost_model_choice_is_deterministic_under_fixed_costs() {
    let opts = |threads: usize| SimOptions {
        threads,
        ..SimOptions::default()
    };
    // Cheap coordination, 8 workers: the win from parallel flow work
    // dominates and the model picks more than one partition, but never
    // meaningfully more than the parallelism on offer.
    let cheap_coord = MachineCosts {
        component_ns: 1.0,
        barrier_ns: 50.0,
        job_ns: 5.0,
        lane_ns: 5.0,
    };
    let plan = opts(8).partition_plan_with_costs(1_000_000, 2_000_000, &cheap_coord);
    assert_eq!(plan.source, PartitionSource::AutoMeasured);
    assert!(
        (8..=16).contains(&plan.partitions),
        "8 cheap workers → about 8 partitions, got {}",
        plan.partitions
    );

    // One worker: partitioning buys zero parallel speedup and still
    // pays barriers and the lane sweep — the model must keep p = 1.
    let plan = opts(1).partition_plan_with_costs(1_000_000, 2_000_000, &cheap_coord);
    assert_eq!(plan.partitions, 1);
    assert_eq!(plan.source, PartitionSource::AutoMeasured);

    // Pathologically expensive coordination: even with many workers the
    // overhead swamps the parallel win and the model stays serial.
    let dear_coord = MachineCosts {
        component_ns: 0.01,
        barrier_ns: 1e9,
        job_ns: 1e6,
        lane_ns: 1e6,
    };
    let plan = opts(16).partition_plan_with_costs(1_000_000, 2_000_000, &dear_coord);
    assert_eq!(plan.partitions, 1);

    // Same inputs → same plan, bit for bit (no hidden probe, no RNG).
    let a = opts(8).partition_plan_with_costs(1_000_000, 2_000_000, &cheap_coord);
    let b = opts(8).partition_plan_with_costs(1_000_000, 2_000_000, &cheap_coord);
    assert_eq!(a, b);
}

/// Explicit `partitions: N` bypasses the model entirely: the plan is
/// marked explicit, carries no model, and ignores the machine costs —
/// this is what keeps every pinned fingerprint and golden hash
/// machine-independent.
#[test]
fn explicit_partitions_bypass_the_cost_model() {
    let g = ring(100_000);
    let sim = Simulator::with_options(
        &g,
        PartMix::new(100_000),
        FaultPlan::none(),
        1,
        options(4, 4, DetectorModel::Oracle),
    );
    assert_eq!(sim.partitions(), 4);
    let plan = sim.partition_plan();
    assert_eq!(plan.source, PartitionSource::Explicit);
    assert!(plan.model.is_none(), "explicit plans never probe or model");

    // Even when handed absurd costs, an explicit configuration returns
    // the explicit count — the costs argument is dead on this path.
    let silly = MachineCosts {
        component_ns: 1e12,
        barrier_ns: 1e12,
        job_ns: 1e12,
        lane_ns: 1e12,
    };
    let plan =
        options(4, 4, DetectorModel::Oracle).partition_plan_with_costs(100_000, 200_000, &silly);
    assert_eq!(plan.partitions, 4);
    assert_eq!(plan.source, PartitionSource::Explicit);
    assert!(plan.model.is_none());
}

// ---- pinned partitioned-run hashes ------------------------------------
//
// Like the golden-schedule pins, but for `partitions = 4`: the digest of
// a partitioned run is part of the determinism contract and must never
// drift across refactors. (The constants were captured when the
// partitioned engine landed.)

#[test]
fn golden_partitioned_hypercube_faulty() {
    assert_eq!(
        run_digest(
            &hypercube(6),
            &faulty_plan(),
            42,
            options(4, 4, timeout()),
            200
        ),
        GOLDEN_HC6_P4
    );
}

#[test]
fn golden_partitioned_torus_fault_free() {
    assert_eq!(
        run_digest(
            &torus2d(16, 16),
            &FaultPlan::none(),
            7,
            options(4, 4, DetectorModel::Oracle),
            200
        ),
        GOLDEN_TORUS_P4
    );
}

const GOLDEN_HC6_P4: u64 = 0xcf21_8c6f_fff3_01f5;
const GOLDEN_TORUS_P4: u64 = 0xab58_c4f8_77e0_1571;

// ---- typed configuration errors ---------------------------------------

#[test]
fn zero_threads_is_a_typed_error() {
    let g = ring(8);
    let err = Simulator::try_with_options(
        &g,
        PartMix::new(8),
        FaultPlan::none(),
        1,
        SimOptions {
            threads: 0,
            ..SimOptions::default()
        },
    )
    .err()
    .expect("threads = 0 must be rejected");
    assert_eq!(err, SimConfigError::ZeroThreads);
}

#[test]
fn partitioned_async_is_a_typed_error() {
    let g = ring(8);
    let err = Simulator::try_with_options(
        &g,
        PartMix::new(8),
        FaultPlan::none(),
        1,
        SimOptions {
            partitions: 2,
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        },
    )
    .err()
    .expect("partitions ≥ 2 under async activation must be rejected");
    assert_eq!(err, SimConfigError::PartitionedAsync);
}

#[test]
fn partitioned_delay_is_a_typed_error() {
    let g = ring(8);
    for delay in [DelayModel::Fixed(2), DelayModel::Uniform { min: 0, max: 3 }] {
        let err = Simulator::try_with_options(
            &g,
            PartMix::new(8),
            FaultPlan::none(),
            1,
            SimOptions {
                partitions: 2,
                delay,
                ..SimOptions::default()
            },
        )
        .err()
        .expect("partitions ≥ 2 with delays must be rejected");
        assert_eq!(err, SimConfigError::PartitionedDelay);
    }
}

// ---- proptest: thread invariance over random partitionings -------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_partitionings_are_thread_invariant(
        partitions in 1usize..=32,
        seed in 0u64..1_000_000,
        lossy in proptest::bool::ANY,
    ) {
        let g = hypercube(5);
        let plan = if lossy { faulty_plan() } else { FaultPlan::none() };
        let one = run_digest(&g, &plan, seed, options(partitions, 1, timeout()), 60);
        for threads in [3, 8] {
            let d = run_digest(&g, &plan, seed, options(partitions, threads, timeout()), 60);
            prop_assert_eq!(d, one, "partitions={}, threads={}", partitions, threads);
        }
    }
}
