//! Execution-model options: activation discipline and message latency.
//!
//! The paper (and the default here) uses the *synchronous* gossip model:
//! discrete iterations in which every node sends once and all messages
//! arrive within the iteration. Two relaxations matter in practice and
//! are supported natively:
//!
//! * **asynchronous activation** (the model of Boyd et al.'s randomized
//!   gossip): there is no global round — single nodes wake up one at a
//!   time, uniformly at random, and their exchange completes before the
//!   next activation. For comparability, one [`Simulator::step`]
//!   (one "round") executes `n` activations, so the per-node send rate
//!   matches the synchronous model;
//! * **message delay**: a message sent in round `r` is delivered in round
//!   `r + d` with `d` fixed or sampled per message. The flow algorithms
//!   transmit absolute state, so stale messages are safe — but delay does
//!   interact with crossing exchanges, and the ablation benches quantify
//!   the convergence cost.
//!
//! [`Simulator::step`]: crate::Simulator::step

use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::RngExt;

/// Who acts when.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activation {
    /// Every alive node sends once per round; deliveries happen at the
    /// end of the round (the paper's model).
    #[default]
    Synchronous,
    /// `n` single-node activations per round, each an immediate complete
    /// exchange (classical randomized gossip).
    Asynchronous,
}

/// Per-message delivery latency, in rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DelayModel {
    /// Delivered at the end of the sending round (the paper's model).
    #[default]
    None,
    /// Delivered exactly `d` rounds after sending (`Fixed(0)` ≡ `None`).
    Fixed(u64),
    /// Delivered `d ∈ [min, max]` rounds after sending, `d` sampled
    /// uniformly per message from the fault stream.
    Uniform {
        /// Smallest delay (inclusive).
        min: u64,
        /// Largest delay (inclusive).
        max: u64,
    },
}

impl DelayModel {
    /// Largest possible delay (sizes the delivery ring buffer).
    pub fn max_delay(self) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { max, .. } => max,
        }
    }

    /// Sample one delay.
    pub(crate) fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.random_range(min..=max)
            }
        }
    }
}

/// How permanent failures become known to the protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectorModel {
    /// Scheduled faults are reported exactly once after their plan's
    /// `detect_delay`, to exactly the affected nodes, and never wrongly
    /// (the paper's model).
    #[default]
    Oracle,
    /// Local timeout detector: node `i` *suspects* neighbor `j` after
    /// `window` consecutive rounds without a delivery from `j`, and
    /// *rehabilitates* `j` the moment a message from `j` arrives. Derived
    /// only from locally observable arrivals — under message delay or
    /// loss, suspicions can be false, and the protocol must survive the
    /// suspect → rehabilitate cycle without corrupting the aggregate.
    Timeout {
        /// Rounds of silence before suspicion (must be ≥ 1).
        window: u64,
    },
}

/// A rejected execution-model configuration.
///
/// Returned by [`SimOptions::validate`] and
/// [`Simulator::try_with_options`](crate::Simulator::try_with_options)
/// so embedders (the campaign scenario validator) can surface the problem
/// without a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// Asynchronous activation models atomic exchanges, which is
    /// incompatible with a nonzero-latency delay model.
    AsyncWithDelay,
    /// A timeout detector with `window == 0` would suspect every neighbor
    /// before its first message could possibly arrive.
    ZeroTimeoutWindow,
    /// `threads == 0` — the worker count includes the caller's thread, so
    /// zero threads cannot execute anything.
    ZeroThreads,
    /// The partitioned round engine (`partitions ≥ 2`) is defined only for
    /// synchronous activation; asynchronous activation interleaves single
    /// nodes globally and has no partition-local round structure.
    PartitionedAsync,
    /// The partitioned round engine requires the zero-delay model: its
    /// mailbox lanes are drained every round, so messages cannot stay in
    /// flight across rounds.
    PartitionedDelay,
    /// A scheduled fault-plan event names a node outside the topology
    /// (`node >= nodes`). Caught at construction time so a typo'd plan is
    /// a typed error, not a silent no-op or a fire-time panic.
    FaultNodeOutOfRange {
        /// The offending node id.
        node: gr_topology::NodeId,
        /// The topology's node count.
        nodes: usize,
    },
    /// A scheduled fault-plan event names a link `(a, b)` that is not an
    /// edge of the topology.
    FaultLinkMissing {
        /// One endpoint.
        a: gr_topology::NodeId,
        /// Other endpoint.
        b: gr_topology::NodeId,
    },
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::AsyncWithDelay => {
                write!(f, "asynchronous activation requires the zero-delay model")
            }
            SimConfigError::ZeroTimeoutWindow => {
                write!(f, "timeout detector window must be at least 1 round")
            }
            SimConfigError::ZeroThreads => {
                write!(
                    f,
                    "thread count must be at least 1 (1 = run on the caller's thread)"
                )
            }
            SimConfigError::PartitionedAsync => {
                write!(
                    f,
                    "the partitioned round engine (partitions >= 2) requires synchronous activation"
                )
            }
            SimConfigError::PartitionedDelay => {
                write!(
                    f,
                    "the partitioned round engine (partitions >= 2) requires the zero-delay model"
                )
            }
            SimConfigError::FaultNodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault plan names node {node}, but the topology has {nodes} nodes"
                )
            }
            SimConfigError::FaultLinkMissing { a, b } => {
                write!(f, "fault plan names nonexistent link ({a}, {b})")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Bundle of execution-model knobs accepted by
/// [`Simulator::with_options`](crate::Simulator::with_options).
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Partner-selection policy.
    pub schedule: Schedule,
    /// Activation discipline.
    pub activation: Activation,
    /// Message latency model (must be [`DelayModel::None`] under
    /// asynchronous activation, where exchanges are atomic).
    pub delay: DelayModel,
    /// Failure-detection model.
    pub detector: DetectorModel,
    /// Worker threads for the partitioned round engine. `1` (the default)
    /// runs everything on the caller's thread. Thread count is purely an
    /// execution hint: for a fixed partition count, results are
    /// byte-identical for every `threads` value. `0` is a config error.
    pub threads: usize,
    /// Partition count for the partitioned round engine. This — not
    /// `threads` — is what determinism is keyed on:
    ///
    /// * `1` forces the classic single-stream engine (today's exact
    ///   semantics and RNG draws);
    /// * `k ≥ 2` partitions the node range into `k` contiguous CSR
    ///   blocks, each with its own schedule/fault RNG stream
    ///   (requires synchronous activation and zero delay);
    /// * `0` (the default) picks automatically: large synchronous
    ///   zero-delay topologies get partitioned, everything else runs the
    ///   classic engine. Small graphs therefore keep their historical
    ///   schedules bit-for-bit.
    pub partitions: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            schedule: Schedule::default(),
            activation: Activation::default(),
            delay: DelayModel::default(),
            detector: DetectorModel::default(),
            threads: 1,
            partitions: 0,
        }
    }
}

/// Node count at or above which `partitions: 0` auto-selects the
/// partitioned engine (when the activation/delay model allows it).
pub(crate) const AUTO_PARTITION_MIN_NODES: usize = 65_536;

/// Target nodes per partition under auto-selection.
pub(crate) const AUTO_PARTITION_TARGET: usize = 65_536;

/// Upper bound on auto-selected partition count.
pub(crate) const AUTO_PARTITION_MAX: usize = 64;

impl SimOptions {
    /// Check the option combination for internal consistency.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.activation == Activation::Asynchronous && self.delay.max_delay() != 0 {
            return Err(SimConfigError::AsyncWithDelay);
        }
        if self.detector == (DetectorModel::Timeout { window: 0 }) {
            return Err(SimConfigError::ZeroTimeoutWindow);
        }
        if self.threads == 0 {
            return Err(SimConfigError::ZeroThreads);
        }
        if self.partitions >= 2 {
            if self.activation != Activation::Synchronous {
                return Err(SimConfigError::PartitionedAsync);
            }
            if self.delay.max_delay() != 0 {
                return Err(SimConfigError::PartitionedDelay);
            }
        }
        Ok(())
    }

    /// Resolve the effective partition count for an `n`-node topology.
    /// Assumes `validate()` passed.
    pub(crate) fn resolve_partitions(&self, n: usize) -> usize {
        let auto_eligible = self.activation == Activation::Synchronous
            && self.delay.max_delay() == 0
            && n >= AUTO_PARTITION_MIN_NODES;
        let p = match self.partitions {
            0 if auto_eligible => n.div_ceil(AUTO_PARTITION_TARGET).min(AUTO_PARTITION_MAX),
            0 | 1 => 1,
            k => k,
        };
        p.clamp(1, n.max(1))
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, RngStream};

    #[test]
    fn max_delays() {
        assert_eq!(DelayModel::None.max_delay(), 0);
        assert_eq!(DelayModel::Fixed(3).max_delay(), 3);
        assert_eq!(DelayModel::Uniform { min: 1, max: 5 }.max_delay(), 5);
    }

    #[test]
    fn sampling_in_range() {
        let mut rng = stream_rng(1, RngStream::Faults);
        for _ in 0..100 {
            let d = DelayModel::Uniform { min: 2, max: 4 }.sample(&mut rng);
            assert!((2..=4).contains(&d));
        }
        assert_eq!(DelayModel::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn defaults_match_paper_model() {
        let o = SimOptions::default();
        assert_eq!(o.activation, Activation::Synchronous);
        assert_eq!(o.delay, DelayModel::None);
        assert_eq!(o.detector, DetectorModel::Oracle);
        assert_eq!(o.validate(), Ok(()));
    }

    #[test]
    fn async_with_delay_is_a_config_error() {
        let o = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(1),
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Err(SimConfigError::AsyncWithDelay));
        assert!(SimConfigError::AsyncWithDelay
            .to_string()
            .contains("zero-delay"));
        // Fixed(0) is equivalent to None and stays legal.
        let o = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(0),
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Ok(()));
    }

    #[test]
    fn zero_timeout_window_is_a_config_error() {
        let o = SimOptions {
            detector: DetectorModel::Timeout { window: 0 },
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Err(SimConfigError::ZeroTimeoutWindow));
        let o = SimOptions {
            detector: DetectorModel::Timeout { window: 1 },
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Ok(()));
    }
}
