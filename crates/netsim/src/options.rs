//! Execution-model options: activation discipline and message latency.
//!
//! The paper (and the default here) uses the *synchronous* gossip model:
//! discrete iterations in which every node sends once and all messages
//! arrive within the iteration. Two relaxations matter in practice and
//! are supported natively:
//!
//! * **asynchronous activation** (the model of Boyd et al.'s randomized
//!   gossip): there is no global round — single nodes wake up one at a
//!   time, uniformly at random, and their exchange completes before the
//!   next activation. For comparability, one [`Simulator::step`]
//!   (one "round") executes `n` activations, so the per-node send rate
//!   matches the synchronous model;
//! * **message delay**: a message sent in round `r` is delivered in round
//!   `r + d` with `d` fixed or sampled per message. The flow algorithms
//!   transmit absolute state, so stale messages are safe — but delay does
//!   interact with crossing exchanges, and the ablation benches quantify
//!   the convergence cost.
//!
//! [`Simulator::step`]: crate::Simulator::step

use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::RngExt;

/// Who acts when.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activation {
    /// Every alive node sends once per round; deliveries happen at the
    /// end of the round (the paper's model).
    #[default]
    Synchronous,
    /// `n` single-node activations per round, each an immediate complete
    /// exchange (classical randomized gossip).
    Asynchronous,
}

/// Per-message delivery latency, in rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DelayModel {
    /// Delivered at the end of the sending round (the paper's model).
    #[default]
    None,
    /// Delivered exactly `d` rounds after sending (`Fixed(0)` ≡ `None`).
    Fixed(u64),
    /// Delivered `d ∈ [min, max]` rounds after sending, `d` sampled
    /// uniformly per message from the fault stream.
    Uniform {
        /// Smallest delay (inclusive).
        min: u64,
        /// Largest delay (inclusive).
        max: u64,
    },
}

impl DelayModel {
    /// Largest possible delay (sizes the delivery ring buffer).
    pub fn max_delay(self) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { max, .. } => max,
        }
    }

    /// Sample one delay.
    pub(crate) fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.random_range(min..=max)
            }
        }
    }
}

/// Bundle of execution-model knobs accepted by
/// [`Simulator::with_options`](crate::Simulator::with_options).
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Partner-selection policy.
    pub schedule: Schedule,
    /// Activation discipline.
    pub activation: Activation,
    /// Message latency model (must be [`DelayModel::None`] under
    /// asynchronous activation, where exchanges are atomic).
    pub delay: DelayModel,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, RngStream};

    #[test]
    fn max_delays() {
        assert_eq!(DelayModel::None.max_delay(), 0);
        assert_eq!(DelayModel::Fixed(3).max_delay(), 3);
        assert_eq!(DelayModel::Uniform { min: 1, max: 5 }.max_delay(), 5);
    }

    #[test]
    fn sampling_in_range() {
        let mut rng = stream_rng(1, RngStream::Faults);
        for _ in 0..100 {
            let d = DelayModel::Uniform { min: 2, max: 4 }.sample(&mut rng);
            assert!((2..=4).contains(&d));
        }
        assert_eq!(DelayModel::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn defaults_match_paper_model() {
        let o = SimOptions::default();
        assert_eq!(o.activation, Activation::Synchronous);
        assert_eq!(o.delay, DelayModel::None);
    }
}
