//! Execution-model options: activation discipline and message latency.
//!
//! The paper (and the default here) uses the *synchronous* gossip model:
//! discrete iterations in which every node sends once and all messages
//! arrive within the iteration. Two relaxations matter in practice and
//! are supported natively:
//!
//! * **asynchronous activation** (the model of Boyd et al.'s randomized
//!   gossip): there is no global round — single nodes wake up one at a
//!   time, uniformly at random, and their exchange completes before the
//!   next activation. For comparability, one [`Simulator::step`]
//!   (one "round") executes `n` activations, so the per-node send rate
//!   matches the synchronous model;
//! * **message delay**: a message sent in round `r` is delivered in round
//!   `r + d` with `d` fixed or sampled per message. The flow algorithms
//!   transmit absolute state, so stale messages are safe — but delay does
//!   interact with crossing exchanges, and the ablation benches quantify
//!   the convergence cost.
//!
//! [`Simulator::step`]: crate::Simulator::step

use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::RngExt;

/// Who acts when.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activation {
    /// Every alive node sends once per round; deliveries happen at the
    /// end of the round (the paper's model).
    #[default]
    Synchronous,
    /// `n` single-node activations per round, each an immediate complete
    /// exchange (classical randomized gossip).
    Asynchronous,
}

/// Per-message delivery latency, in rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DelayModel {
    /// Delivered at the end of the sending round (the paper's model).
    #[default]
    None,
    /// Delivered exactly `d` rounds after sending (`Fixed(0)` ≡ `None`).
    Fixed(u64),
    /// Delivered `d ∈ [min, max]` rounds after sending, `d` sampled
    /// uniformly per message from the fault stream.
    Uniform {
        /// Smallest delay (inclusive).
        min: u64,
        /// Largest delay (inclusive).
        max: u64,
    },
}

impl DelayModel {
    /// Largest possible delay (sizes the delivery ring buffer).
    pub fn max_delay(self) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { max, .. } => max,
        }
    }

    /// Sample one delay.
    pub(crate) fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.random_range(min..=max)
            }
        }
    }
}

/// How permanent failures become known to the protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectorModel {
    /// Scheduled faults are reported exactly once after their plan's
    /// `detect_delay`, to exactly the affected nodes, and never wrongly
    /// (the paper's model).
    #[default]
    Oracle,
    /// Local timeout detector: node `i` *suspects* neighbor `j` after
    /// `window` consecutive rounds without a delivery from `j`, and
    /// *rehabilitates* `j` the moment a message from `j` arrives. Derived
    /// only from locally observable arrivals — under message delay or
    /// loss, suspicions can be false, and the protocol must survive the
    /// suspect → rehabilitate cycle without corrupting the aggregate.
    Timeout {
        /// Rounds of silence before suspicion (must be ≥ 1).
        window: u64,
    },
}

/// A rejected execution-model configuration.
///
/// Returned by [`SimOptions::validate`] and
/// [`Simulator::try_with_options`](crate::Simulator::try_with_options)
/// so embedders (the campaign scenario validator) can surface the problem
/// without a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// Asynchronous activation models atomic exchanges, which is
    /// incompatible with a nonzero-latency delay model.
    AsyncWithDelay,
    /// A timeout detector with `window == 0` would suspect every neighbor
    /// before its first message could possibly arrive.
    ZeroTimeoutWindow,
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::AsyncWithDelay => {
                write!(f, "asynchronous activation requires the zero-delay model")
            }
            SimConfigError::ZeroTimeoutWindow => {
                write!(f, "timeout detector window must be at least 1 round")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Bundle of execution-model knobs accepted by
/// [`Simulator::with_options`](crate::Simulator::with_options).
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Partner-selection policy.
    pub schedule: Schedule,
    /// Activation discipline.
    pub activation: Activation,
    /// Message latency model (must be [`DelayModel::None`] under
    /// asynchronous activation, where exchanges are atomic).
    pub delay: DelayModel,
    /// Failure-detection model.
    pub detector: DetectorModel,
}

impl SimOptions {
    /// Check the option combination for internal consistency.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.activation == Activation::Asynchronous && self.delay.max_delay() != 0 {
            return Err(SimConfigError::AsyncWithDelay);
        }
        if self.detector == (DetectorModel::Timeout { window: 0 }) {
            return Err(SimConfigError::ZeroTimeoutWindow);
        }
        Ok(())
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, RngStream};

    #[test]
    fn max_delays() {
        assert_eq!(DelayModel::None.max_delay(), 0);
        assert_eq!(DelayModel::Fixed(3).max_delay(), 3);
        assert_eq!(DelayModel::Uniform { min: 1, max: 5 }.max_delay(), 5);
    }

    #[test]
    fn sampling_in_range() {
        let mut rng = stream_rng(1, RngStream::Faults);
        for _ in 0..100 {
            let d = DelayModel::Uniform { min: 2, max: 4 }.sample(&mut rng);
            assert!((2..=4).contains(&d));
        }
        assert_eq!(DelayModel::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn defaults_match_paper_model() {
        let o = SimOptions::default();
        assert_eq!(o.activation, Activation::Synchronous);
        assert_eq!(o.delay, DelayModel::None);
        assert_eq!(o.detector, DetectorModel::Oracle);
        assert_eq!(o.validate(), Ok(()));
    }

    #[test]
    fn async_with_delay_is_a_config_error() {
        let o = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(1),
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Err(SimConfigError::AsyncWithDelay));
        assert!(SimConfigError::AsyncWithDelay
            .to_string()
            .contains("zero-delay"));
        // Fixed(0) is equivalent to None and stays legal.
        let o = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(0),
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Ok(()));
    }

    #[test]
    fn zero_timeout_window_is_a_config_error() {
        let o = SimOptions {
            detector: DetectorModel::Timeout { window: 0 },
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Err(SimConfigError::ZeroTimeoutWindow));
        let o = SimOptions {
            detector: DetectorModel::Timeout { window: 1 },
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Ok(()));
    }
}
