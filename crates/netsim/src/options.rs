//! Execution-model options: activation discipline and message latency.
//!
//! The paper (and the default here) uses the *synchronous* gossip model:
//! discrete iterations in which every node sends once and all messages
//! arrive within the iteration. Two relaxations matter in practice and
//! are supported natively:
//!
//! * **asynchronous activation** (the model of Boyd et al.'s randomized
//!   gossip): there is no global round — single nodes wake up one at a
//!   time, uniformly at random, and their exchange completes before the
//!   next activation. For comparability, one [`Simulator::step`]
//!   (one "round") executes `n` activations, so the per-node send rate
//!   matches the synchronous model;
//! * **message delay**: a message sent in round `r` is delivered in round
//!   `r + d` with `d` fixed or sampled per message. The flow algorithms
//!   transmit absolute state, so stale messages are safe — but delay does
//!   interact with crossing exchanges, and the ablation benches quantify
//!   the convergence cost.
//!
//! [`Simulator::step`]: crate::Simulator::step

use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::RngExt;

/// Who acts when.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activation {
    /// Every alive node sends once per round; deliveries happen at the
    /// end of the round (the paper's model).
    #[default]
    Synchronous,
    /// `n` single-node activations per round, each an immediate complete
    /// exchange (classical randomized gossip).
    Asynchronous,
}

/// Per-message delivery latency, in rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DelayModel {
    /// Delivered at the end of the sending round (the paper's model).
    #[default]
    None,
    /// Delivered exactly `d` rounds after sending (`Fixed(0)` ≡ `None`).
    Fixed(u64),
    /// Delivered `d ∈ [min, max]` rounds after sending, `d` sampled
    /// uniformly per message from the fault stream.
    Uniform {
        /// Smallest delay (inclusive).
        min: u64,
        /// Largest delay (inclusive).
        max: u64,
    },
}

impl DelayModel {
    /// Largest possible delay (sizes the delivery ring buffer).
    pub fn max_delay(self) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { max, .. } => max,
        }
    }

    /// Sample one delay.
    pub(crate) fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::None => 0,
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.random_range(min..=max)
            }
        }
    }
}

/// How permanent failures become known to the protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectorModel {
    /// Scheduled faults are reported exactly once after their plan's
    /// `detect_delay`, to exactly the affected nodes, and never wrongly
    /// (the paper's model).
    #[default]
    Oracle,
    /// Local timeout detector: node `i` *suspects* neighbor `j` after
    /// `window` consecutive rounds without a delivery from `j`, and
    /// *rehabilitates* `j` the moment a message from `j` arrives. Derived
    /// only from locally observable arrivals — under message delay or
    /// loss, suspicions can be false, and the protocol must survive the
    /// suspect → rehabilitate cycle without corrupting the aggregate.
    Timeout {
        /// Rounds of silence before suspicion (must be ≥ 1).
        window: u64,
    },
}

/// A rejected execution-model configuration.
///
/// Returned by [`SimOptions::validate`] and
/// [`Simulator::try_with_options`](crate::Simulator::try_with_options)
/// so embedders (the campaign scenario validator) can surface the problem
/// without a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// Asynchronous activation models atomic exchanges, which is
    /// incompatible with a nonzero-latency delay model.
    AsyncWithDelay,
    /// A timeout detector with `window == 0` would suspect every neighbor
    /// before its first message could possibly arrive.
    ZeroTimeoutWindow,
    /// `threads == 0` — the worker count includes the caller's thread, so
    /// zero threads cannot execute anything.
    ZeroThreads,
    /// The partitioned round engine (`partitions ≥ 2`) is defined only for
    /// synchronous activation; asynchronous activation interleaves single
    /// nodes globally and has no partition-local round structure.
    PartitionedAsync,
    /// The partitioned round engine requires the zero-delay model: its
    /// mailbox lanes are drained every round, so messages cannot stay in
    /// flight across rounds.
    PartitionedDelay,
    /// A scheduled fault-plan event names a node outside the topology
    /// (`node >= nodes`). Caught at construction time so a typo'd plan is
    /// a typed error, not a silent no-op or a fire-time panic.
    FaultNodeOutOfRange {
        /// The offending node id.
        node: gr_topology::NodeId,
        /// The topology's node count.
        nodes: usize,
    },
    /// A scheduled fault-plan event names a link `(a, b)` that is not an
    /// edge of the topology.
    FaultLinkMissing {
        /// One endpoint.
        a: gr_topology::NodeId,
        /// Other endpoint.
        b: gr_topology::NodeId,
    },
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::AsyncWithDelay => {
                write!(f, "asynchronous activation requires the zero-delay model")
            }
            SimConfigError::ZeroTimeoutWindow => {
                write!(f, "timeout detector window must be at least 1 round")
            }
            SimConfigError::ZeroThreads => {
                write!(
                    f,
                    "thread count must be at least 1 (1 = run on the caller's thread)"
                )
            }
            SimConfigError::PartitionedAsync => {
                write!(
                    f,
                    "the partitioned round engine (partitions >= 2) requires synchronous activation"
                )
            }
            SimConfigError::PartitionedDelay => {
                write!(
                    f,
                    "the partitioned round engine (partitions >= 2) requires the zero-delay model"
                )
            }
            SimConfigError::FaultNodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault plan names node {node}, but the topology has {nodes} nodes"
                )
            }
            SimConfigError::FaultLinkMissing { a, b } => {
                write!(f, "fault plan names nonexistent link ({a}, {b})")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Bundle of execution-model knobs accepted by
/// [`Simulator::with_options`](crate::Simulator::with_options).
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Partner-selection policy.
    pub schedule: Schedule,
    /// Activation discipline.
    pub activation: Activation,
    /// Message latency model (must be [`DelayModel::None`] under
    /// asynchronous activation, where exchanges are atomic).
    pub delay: DelayModel,
    /// Failure-detection model.
    pub detector: DetectorModel,
    /// Worker threads for the partitioned round engine. `1` (the default)
    /// runs everything on the caller's thread. Thread count is purely an
    /// execution hint: for a fixed partition count, results are
    /// byte-identical for every `threads` value. `0` is a config error.
    pub threads: usize,
    /// Partition count for the partitioned round engine. This — not
    /// `threads` — is what determinism is keyed on:
    ///
    /// * `1` forces the classic single-stream engine (today's exact
    ///   semantics and RNG draws);
    /// * `k ≥ 2` partitions the node range into `k` contiguous CSR
    ///   blocks, each with its own schedule/fault RNG stream
    ///   (requires synchronous activation and zero delay);
    /// * `0` (the default) picks automatically: large synchronous
    ///   zero-delay topologies get partitioned, everything else runs the
    ///   classic engine. Small graphs therefore keep their historical
    ///   schedules bit-for-bit.
    pub partitions: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            schedule: Schedule::default(),
            activation: Activation::default(),
            delay: DelayModel::default(),
            detector: DetectorModel::default(),
            threads: 1,
            partitions: 0,
        }
    }
}

/// Node count at or above which `partitions: 0` auto-selects the
/// partitioned engine (when the activation/delay model allows it).
/// Below this, runs keep the classic single-stream engine and their
/// historical RNG draws bit-for-bit — the cost model is never consulted.
pub(crate) const AUTO_PARTITION_MIN_NODES: usize = 65_536;

/// Upper bound on auto-selected partition count.
pub(crate) const AUTO_PARTITION_MAX: usize = 64;

/// Pool phases per partitioned round (send, deliver/merge, detector) —
/// each one dispatch + barrier on the worker pool.
const ROUND_PHASES: f64 = 3.0;

/// Modeled componentwise ops per arc per round: both directions of the
/// estimate scan plus the send/receive flow updates of a scalar-payload
/// flow protocol. Vector payloads do proportionally more work per arc,
/// which only strengthens the case the model makes from this floor.
const ARC_OPS: f64 = 16.0;

/// Modeled componentwise-op equivalents per node per round (scheduling,
/// activation bookkeeping, estimate finalization).
const NODE_OPS: f64 = 8.0;

/// How the effective partition count was chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum PartitionSource {
    /// `partitions: N` was set explicitly — the cost model is bypassed
    /// entirely (no calibration probe runs).
    Explicit,
    /// `partitions: 0` but the run is not auto-eligible (asynchronous
    /// activation, nonzero delay, or below the node floor): the classic
    /// single-stream engine, bit-identical to history.
    SingleStream,
    /// `partitions: 0` on an auto-eligible topology: the measured cost
    /// model picked the count; its inputs are in
    /// [`PartitionPlan::model`].
    AutoMeasured,
}

impl PartitionSource {
    /// Stable lowercase label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PartitionSource::Explicit => "explicit",
            PartitionSource::SingleStream => "single-stream",
            PartitionSource::AutoMeasured => "auto-measured",
        }
    }
}

/// The measured cost model behind one [`PartitionSource::AutoMeasured`]
/// decision: machine constants from the calibration probe, topology
/// shape, and the predicted per-round cost at the chosen count vs. the
/// single-stream baseline. All times in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct PartitionModel {
    /// Topology node count.
    pub nodes: usize,
    /// Topology directed-arc count.
    pub arcs: usize,
    /// Worker threads available to the engine.
    pub threads: usize,
    /// Probed cost of one streaming componentwise `f64` op.
    pub component_ns: f64,
    /// Probed fixed cost of one pool dispatch + barrier.
    pub barrier_ns: f64,
    /// Probed marginal cost per dispatched job.
    pub job_ns: f64,
    /// Probed cost of visiting one mailbox lane during the merge.
    pub lane_ns: f64,
    /// Predicted per-round cost at the chosen partition count.
    pub predicted_ns: f64,
    /// Predicted per-round cost of the single-stream engine (`p = 1`).
    pub single_stream_ns: f64,
}

/// The resolved partitioning of one simulator run: the effective count,
/// how it was chosen, and (for measured-auto decisions) the model that
/// chose it. Surfaced by
/// [`Simulator::partition_plan`](crate::Simulator::partition_plan) and
/// embedded in campaign / transport JSON reports.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct PartitionPlan {
    /// Effective partition count (≥ 1; this is simulation identity).
    pub partitions: usize,
    /// How the count was chosen.
    pub source: PartitionSource,
    /// Cost-model details, present only for [`PartitionSource::AutoMeasured`].
    pub model: Option<PartitionModel>,
}

impl PartitionPlan {
    fn explicit(partitions: usize) -> PartitionPlan {
        PartitionPlan {
            partitions,
            source: PartitionSource::Explicit,
            model: None,
        }
    }

    fn single_stream() -> PartitionPlan {
        PartitionPlan {
            partitions: 1,
            source: PartitionSource::SingleStream,
            model: None,
        }
    }
}

/// Predicted per-round wall-clock of the partitioned engine at `p`
/// partitions: parallel flow work over `min(p, threads)` workers, plus
/// `ROUND_PHASES` pool phases of `p` jobs each, plus the `p²` mailbox
/// lane sweep. `p = 1` has no pool and no lanes — pure serial work.
fn predicted_round_ns(
    costs: &crate::MachineCosts,
    nodes: usize,
    arcs: usize,
    threads: usize,
    p: usize,
) -> f64 {
    let work = (arcs as f64 * ARC_OPS + nodes as f64 * NODE_OPS) * costs.component_ns;
    if p == 1 {
        return work;
    }
    let workers = p.min(threads.max(1)) as f64;
    let phase_overhead = ROUND_PHASES * (costs.barrier_ns + costs.job_ns * p as f64);
    let lane_sweep = costs.lane_ns * (p * p) as f64;
    work / workers + phase_overhead + lane_sweep
}

impl SimOptions {
    /// Check the option combination for internal consistency.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.activation == Activation::Asynchronous && self.delay.max_delay() != 0 {
            return Err(SimConfigError::AsyncWithDelay);
        }
        if self.detector == (DetectorModel::Timeout { window: 0 }) {
            return Err(SimConfigError::ZeroTimeoutWindow);
        }
        if self.threads == 0 {
            return Err(SimConfigError::ZeroThreads);
        }
        if self.partitions >= 2 {
            if self.activation != Activation::Synchronous {
                return Err(SimConfigError::PartitionedAsync);
            }
            if self.delay.max_delay() != 0 {
                return Err(SimConfigError::PartitionedDelay);
            }
        }
        Ok(())
    }

    /// Resolve the effective partitioning for a topology of `nodes`
    /// nodes and `arcs` directed arcs. Assumes `validate()` passed.
    ///
    /// Explicit `partitions: N` and non-auto-eligible runs never touch
    /// the cost model (and never run the calibration probe); only
    /// `partitions: 0` on a large synchronous zero-delay topology
    /// probes the machine and minimizes the modeled round cost.
    pub fn partition_plan(&self, nodes: usize, arcs: usize) -> PartitionPlan {
        if self.auto_eligible(nodes) {
            let costs = crate::calibrate::cached(self.threads);
            self.partition_plan_with_costs(nodes, arcs, &costs)
        } else {
            self.fixed_plan(nodes)
        }
    }

    /// [`partition_plan`](Self::partition_plan) with the machine costs
    /// supplied by the caller instead of the cached calibration probe —
    /// deterministic, for tests and for reporting hypotheticals. The
    /// costs are ignored (and the result identical to `partition_plan`)
    /// unless the configuration is auto-eligible.
    pub fn partition_plan_with_costs(
        &self,
        nodes: usize,
        arcs: usize,
        costs: &crate::MachineCosts,
    ) -> PartitionPlan {
        if !self.auto_eligible(nodes) {
            return self.fixed_plan(nodes);
        }
        let threads = self.threads.max(1);
        let max_p = AUTO_PARTITION_MAX.min(nodes.max(1));
        // Candidate counts: powers of two up to the cap, the thread
        // count itself (the parallelism knee), and the legacy 64Ki-nodes
        // per-partition point, all deduplicated via the scan below.
        let mut best_p = 1usize;
        let mut best_ns = f64::INFINITY;
        let mut consider = |p: usize| {
            if p == 0 || p > max_p {
                return;
            }
            let ns = predicted_round_ns(costs, nodes, arcs, threads, p);
            // Strict `<`: ties keep the smaller count (fewer RNG
            // streams, less merge state).
            if ns < best_ns {
                best_ns = ns;
                best_p = p;
            }
        };
        let mut p = 1;
        while p <= max_p {
            consider(p);
            p *= 2;
        }
        consider(threads);
        consider(nodes.div_ceil(AUTO_PARTITION_MIN_NODES));
        PartitionPlan {
            partitions: best_p,
            source: PartitionSource::AutoMeasured,
            model: Some(PartitionModel {
                nodes,
                arcs,
                threads,
                component_ns: costs.component_ns,
                barrier_ns: costs.barrier_ns,
                job_ns: costs.job_ns,
                lane_ns: costs.lane_ns,
                predicted_ns: best_ns,
                single_stream_ns: predicted_round_ns(costs, nodes, arcs, threads, 1),
            }),
        }
    }

    fn auto_eligible(&self, nodes: usize) -> bool {
        self.partitions == 0
            && self.activation == Activation::Synchronous
            && self.delay.max_delay() == 0
            && nodes >= AUTO_PARTITION_MIN_NODES
    }

    /// The non-model outcomes: explicit counts (clamped to the node
    /// count, as before) and ineligible-auto single-stream runs.
    fn fixed_plan(&self, nodes: usize) -> PartitionPlan {
        match self.partitions {
            0 => PartitionPlan::single_stream(),
            k => PartitionPlan::explicit(k.clamp(1, nodes.max(1))),
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, RngStream};

    #[test]
    fn max_delays() {
        assert_eq!(DelayModel::None.max_delay(), 0);
        assert_eq!(DelayModel::Fixed(3).max_delay(), 3);
        assert_eq!(DelayModel::Uniform { min: 1, max: 5 }.max_delay(), 5);
    }

    #[test]
    fn sampling_in_range() {
        let mut rng = stream_rng(1, RngStream::Faults);
        for _ in 0..100 {
            let d = DelayModel::Uniform { min: 2, max: 4 }.sample(&mut rng);
            assert!((2..=4).contains(&d));
        }
        assert_eq!(DelayModel::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn defaults_match_paper_model() {
        let o = SimOptions::default();
        assert_eq!(o.activation, Activation::Synchronous);
        assert_eq!(o.delay, DelayModel::None);
        assert_eq!(o.detector, DetectorModel::Oracle);
        assert_eq!(o.validate(), Ok(()));
    }

    #[test]
    fn async_with_delay_is_a_config_error() {
        let o = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(1),
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Err(SimConfigError::AsyncWithDelay));
        assert!(SimConfigError::AsyncWithDelay
            .to_string()
            .contains("zero-delay"));
        // Fixed(0) is equivalent to None and stays legal.
        let o = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(0),
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Ok(()));
    }

    #[test]
    fn zero_timeout_window_is_a_config_error() {
        let o = SimOptions {
            detector: DetectorModel::Timeout { window: 0 },
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Err(SimConfigError::ZeroTimeoutWindow));
        let o = SimOptions {
            detector: DetectorModel::Timeout { window: 1 },
            ..SimOptions::default()
        };
        assert_eq!(o.validate(), Ok(()));
    }
}
