//! The round-driven simulator core.

use crate::delivery::RingDelivery;
use crate::faults::{
    BurstModel, Corrupt, FaultPlan, LinkFailure, LinkHeal, NetPartition, NodeCrash, NodeRestart,
    PartitionHeal,
};
use crate::options::{Activation, DelayModel, DetectorModel, SimConfigError, SimOptions};
use crate::rng::{stream_rng, RngStream};
use crate::schedule::Schedule;
use crate::trace::{Event, Trace};
use gr_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// A gossip protocol as seen by the simulator.
///
/// The protocol object owns the state of *all* nodes (structure-of-arrays —
/// one allocation-free object instead of `n` boxed actors); the simulator
/// tells it which node acts and whom it talks to. The partner choice is
/// made by the simulator's schedule, never by the protocol, so that
/// identical seeds yield identical schedules across protocols (the paper's
/// Fig. 4/7 methodology).
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Msg: Clone + Corrupt;

    /// Node `node` performs its per-round send to `target` (a believed-alive
    /// neighbor chosen by the schedule) and returns the message to ship.
    fn on_send(&mut self, node: NodeId, target: NodeId) -> Self::Msg;

    /// Node `node` processes a message that arrived from `from`. The
    /// message is passed by mutable reference so delivery reads it in
    /// place from the transport buffer (no per-message move of large
    /// payloads); protocols that want to keep (parts of) it may steal the
    /// contents with `std::mem::take`/`replace` — the buffer slot is dead
    /// after the call either way.
    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut Self::Msg);

    /// Hint that `on_receive(node, from, _)` is about to run. The delivery
    /// loop calls this a few messages ahead so implementations can prefetch
    /// the per-arc state the handler will touch — receivers arrive in
    /// random order, so those accesses otherwise stall on a cache miss
    /// right on the critical path. Must not mutate observable state.
    /// Default: do nothing.
    #[inline]
    fn prewarm(&self, node: NodeId, from: NodeId) {
        let _ = (node, from);
    }

    /// Node `node` has detected that the link to `neighbor` is permanently
    /// gone and should run its failure handling (PF/PCF: excise the flow
    /// variables for that link). Default: do nothing.
    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        let _ = (node, neighbor);
    }

    /// Node `node`'s local detector *suspects* `neighbor` has failed
    /// ([`DetectorModel::Timeout`] silence). Unlike `on_link_failed`, a
    /// suspicion may be wrong — the protocol must handle it so that a
    /// later [`on_rehabilitate`](Self::on_rehabilitate) leaves the
    /// aggregate intact. Default: treat like a detected link failure
    /// (correct for flow algorithms whose excision is a local,
    /// mass-conserving fold).
    fn on_suspect(&mut self, node: NodeId, neighbor: NodeId) {
        self.on_link_failed(node, neighbor);
    }

    /// A previously suspected (or failed) `neighbor` of `node` proved
    /// alive again — a message arrived, or the link healed — and has been
    /// re-admitted to the believed-alive set. Default: do nothing (PCF
    /// resynchronises the edge through its wire-carried incarnation
    /// counter; overwrite protocols self-heal on the next exchange).
    fn on_rehabilitate(&mut self, node: NodeId, neighbor: NodeId) {
        let _ = (node, neighbor);
    }

    /// Node `node` restarts after a crash: reset its local state to the
    /// initial data (pre-crash mass is lost — the node must contribute
    /// its value exactly once, not twice). Default: do nothing.
    fn on_restart(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Node `node` learns that its neighbor `restarted` rebooted with
    /// fresh state: any per-edge bookkeeping toward it is stale. Default:
    /// treat like a detected link failure (excise, then rebuild from
    /// scratch — the mass-conserving choice for flow algorithms).
    fn on_neighbor_restarted(&mut self, node: NodeId, restarted: NodeId) {
        self.on_link_failed(node, restarted);
    }

    /// Called right after `node` processed a message from `from`: return
    /// `Some(reply)` to send an immediate response back over the same
    /// link (push-**pull** gossip). The reply passes through the same
    /// transit fault pipeline but cannot itself be replied to. Default:
    /// no reply (pure push protocols).
    fn reply(&mut self, node: NodeId, from: NodeId) -> Option<Self::Msg> {
        let _ = (node, from);
        None
    }

    /// Take back ownership of a message buffer the transport is done with
    /// (it was delivered — possibly gutted by an `on_receive` steal — or
    /// dropped in transit). Protocols that pool wire buffers push it onto
    /// their free list so the next `on_send` can refill it instead of
    /// allocating; the recycling mirrors the simulator's delivery-bucket
    /// slot reuse. Must not mutate observable protocol state. Default:
    /// drop the buffer.
    #[inline]
    fn reclaim(&mut self, msg: Self::Msg) {
        let _ = msg;
    }

    // ----- partitioned round engine (see DESIGN §13) -------------------
    //
    // With `SimOptions::partitions >= 2` the simulator splits the node
    // range into contiguous CSR blocks and runs the send/deliver/reply
    // phases once per partition, always through the `part_*` hooks below.
    // The default implementations delegate to the base hooks, so every
    // protocol works under the partitioned engine unchanged (sequential
    // execution). A protocol opts into *parallel* execution of those
    // phases by setting [`PARALLEL_SAFE`](Self::PARALLEL_SAFE) — at which
    // point it promises the contract documented there, typically by
    // keeping one arena (message pool, scratch buffer, stat counters)
    // per partition, indexed by the `part` argument.

    /// Declares the partition-phase hooks safe to run concurrently, one
    /// thread per partition. A protocol may set this to `true` iff:
    ///
    /// * `part_send(part, node, ..)` / `part_receive(part, node, ..)` /
    ///   `part_reply(part, node, ..)` touch only (a) state owned by
    ///   `node` — its per-node record and the per-arc state of *its own*
    ///   directed arcs — and (b) arenas indexed by `part`;
    /// * the failure hooks (`on_link_failed`, `on_suspect`,
    ///   `on_rehabilitate`, `on_neighbor_restarted`) touch only state
    ///   owned by their first argument;
    /// * `part_reclaim(part, ..)` touches only the `part` arena.
    ///
    /// Nodes are partition-contiguous, so "state owned by `node`" is
    /// disjoint across concurrently-running partitions. Thread count
    /// never changes results either way — it is purely an execution
    /// hint; `false` (the default) merely forces sequential execution.
    const PARALLEL_SAFE: bool = false;

    /// Called once before the first round when the partitioned engine is
    /// active, with the resolved partition count. Protocols that keep
    /// per-partition arenas size them here. Default: do nothing.
    fn set_partitions(&mut self, partitions: usize) {
        let _ = partitions;
    }

    /// Partition-phase variant of [`on_send`](Self::on_send); `node`
    /// belongs to partition `part`. Default: delegate.
    #[inline]
    fn part_send(&mut self, part: usize, node: NodeId, target: NodeId) -> Self::Msg {
        let _ = part;
        self.on_send(node, target)
    }

    /// Partition-phase variant of [`on_receive`](Self::on_receive);
    /// `node` belongs to partition `part`. Default: delegate.
    #[inline]
    fn part_receive(&mut self, part: usize, node: NodeId, from: NodeId, msg: &mut Self::Msg) {
        let _ = part;
        self.on_receive(node, from, msg);
    }

    /// Partition-phase variant of [`reply`](Self::reply); `node` belongs
    /// to partition `part`. Default: delegate.
    #[inline]
    fn part_reply(&mut self, part: usize, node: NodeId, from: NodeId) -> Option<Self::Msg> {
        let _ = part;
        self.reply(node, from)
    }

    /// Partition-phase variant of [`reclaim`](Self::reclaim), handing the
    /// buffer back to partition `part`'s arena. Default: delegate.
    #[inline]
    fn part_reclaim(&mut self, part: usize, msg: Self::Msg) {
        let _ = part;
        self.reclaim(msg)
    }
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct SimStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to a receive handler.
    pub delivered: u64,
    /// Messages lost to the probabilistic loss model.
    pub lost_random: u64,
    /// Messages lost to the correlated-burst chain (bad-state drops).
    pub lost_burst: u64,
    /// Messages lost because the link or an endpoint was physically dead.
    pub lost_dead: u64,
    /// Bit flips injected.
    pub bit_flips: u64,
    /// Timeout-detector suspicions raised (0 under the oracle detector).
    pub suspected: u64,
    /// Neighbors re-admitted to a believed-alive set (timeout
    /// rehabilitations, link heals, and node restarts).
    pub rehabilitated: u64,
    /// Liveness probes sent on suspected arcs (timeout mode only).
    pub probes_sent: u64,
}

impl SimStats {
    /// Sum another run's transport counters into this one. `rounds` is
    /// deliberately NOT summed — it is per-run bookkeeping, not a
    /// transport counter; aggregators (partition merges, multi-tenant
    /// batch roll-ups) set it themselves.
    pub fn merge(&mut self, d: &SimStats) {
        self.sent += d.sent;
        self.delivered += d.delivered;
        self.lost_random += d.lost_random;
        self.lost_burst += d.lost_burst;
        self.lost_dead += d.lost_dead;
        self.bit_flips += d.bit_flips;
        self.suspected += d.suspected;
        self.rehabilitated += d.rehabilitated;
        self.probes_sent += d.probes_sent;
    }

    /// Fold a per-partition delta into the global counters.
    fn absorb(&mut self, d: &SimStats) {
        self.merge(d);
    }
}

/// Mutable per-partition state of the partitioned round engine. Worker
/// `p` owns `parts[p]` exclusively during a parallel phase; the stats
/// delta and buffered trace events are merged into the global sinks in
/// fixed partition order at the end of every round, so the observable
/// result is independent of thread count.
struct Part {
    node_start: NodeId,
    node_end: NodeId,
    sched_rng: StdRng,
    fault_rng: StdRng,
    /// Partition-local Gilbert–Elliott chain (stream
    /// [`RngStream::BurstPart`]): each partition runs its own burst
    /// process over its own deliveries, so the draws are a pure function
    /// of `(seed, partition)` like every other per-partition stream.
    burst_rng: StdRng,
    burst_bad: bool,
    stats: SimStats,
    events: Vec<Event>,
}

/// Shuttles the `&mut Simulator` into pool workers. Soundness rests on
/// the phase-disjointness contract documented at
/// [`Simulator::par_run`]: every thread dereferencing this pointer
/// touches only partition-owned or read-only state, and the dispatching
/// thread blocks until all workers retire the phase.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — edition-2021 disjoint capture of `.0` would grab the
    /// bare `*mut T`, which is deliberately not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Packs a timing-wheel / suspect-list entry: owner node in the high 32
/// bits, global arc index in the low 32. Sorting packed entries ascending
/// is exactly (node asc, arc asc) order.
#[inline]
fn pack_arc(node: NodeId, arc: usize) -> u64 {
    ((node as u64) << 32) | arc as u64
}

/// O(active) timeout-detector state for one partition's arc range
/// (`P == 1`: a single part covering every arc).
///
/// The legacy detector scanned every believed arc every round. Here each
/// *monitored* arc — owner alive, neighbor believed — keeps exactly one
/// entry in a timing wheel, parked in the slot of its current deadline
/// `last_heard + window`. A round's scan touches only the entries whose
/// slot comes due: an entry whose silence clock was reset re-parks at its
/// new deadline, an entry that stopped being monitored is dropped
/// (re-armed by the heal/restart/arrival paths that resume monitoring),
/// and the remainder fire as suspicions — at exactly the round the full
/// scan would have found them, which keeps golden detector hashes
/// byte-identical.
#[derive(Default)]
struct DetectorPart {
    /// First global arc index of this part's range; bit `arc - arc_start`
    /// in the masks below. Per-part masks are separate allocations, so
    /// parallel workers never touch the same word.
    arc_start: usize,
    /// `i` suspects `j` ⇔ bit for `arc(i→j)` set.
    suspected: Vec<u64>,
    /// Arc currently holds a timing-wheel entry.
    in_wheel: Vec<u64>,
    /// `wheel[deadline % wheel.len()]` holds the entries to examine when
    /// `round ≡ deadline`; length `min(window, 4096) + 1` so a re-park
    /// never lands back in the slot being drained (deadlines beyond one
    /// lap just take extra no-op hops).
    wheel: Vec<Vec<u64>>,
    /// Scratch: entries due this round, sorted (node asc, arc desc) to
    /// replay the legacy backward believed-list walk.
    due: Vec<u64>,
    /// Sorted packed entries for every suspected arc — the probe fan-out
    /// iterates this instead of scanning the bitmask over all nodes.
    suspects: Vec<u64>,
}

impl DetectorPart {
    fn new(arc_start: usize, arc_end: usize, window: u64) -> Self {
        let arcs = arc_end - arc_start;
        let wheel_len = (window.min(4096) + 1) as usize;
        DetectorPart {
            arc_start,
            suspected: vec![0; arcs.div_ceil(64)],
            in_wheel: vec![0; arcs.div_ceil(64)],
            wheel: (0..wheel_len).map(|_| Vec::new()).collect(),
            due: Vec::new(),
            suspects: Vec::new(),
        }
    }

    #[inline]
    fn is_suspected(&self, arc: usize) -> bool {
        let a = arc - self.arc_start;
        self.suspected[a / 64] & (1 << (a % 64)) != 0
    }

    #[inline]
    fn set_suspected(&mut self, arc: usize) {
        let a = arc - self.arc_start;
        self.suspected[a / 64] |= 1 << (a % 64);
    }

    #[inline]
    fn clear_suspected_bit(&mut self, arc: usize) {
        let a = arc - self.arc_start;
        self.suspected[a / 64] &= !(1 << (a % 64));
    }

    #[inline]
    fn clear_in_wheel(&mut self, arc: usize) {
        let a = arc - self.arc_start;
        self.in_wheel[a / 64] &= !(1 << (a % 64));
    }

    /// Ensure `arc` (owned by `node`) has a wheel entry; parks it at
    /// `deadline` if it had none. Callers pass the arc's current
    /// `last_heard + window`, which is `> round` on every arm path.
    #[inline]
    fn arm(&mut self, node: NodeId, arc: usize, deadline: u64) {
        let a = arc - self.arc_start;
        let (w, b) = (a / 64, 1u64 << (a % 64));
        if self.in_wheel[w] & b == 0 {
            self.in_wheel[w] |= b;
            let slot = (deadline % self.wheel.len() as u64) as usize;
            self.wheel[slot].push(pack_arc(node, arc));
        }
    }

    #[inline]
    fn suspects_insert(&mut self, entry: u64) {
        if let Err(pos) = self.suspects.binary_search(&entry) {
            self.suspects.insert(pos, entry);
        }
    }

    #[inline]
    fn suspects_remove(&mut self, entry: u64) {
        if let Ok(pos) = self.suspects.binary_search(&entry) {
            self.suspects.remove(pos);
        }
    }
}

/// One pending "link (a,b) is detected failed at `round`" event.
#[derive(Clone, Copy, Debug)]
struct Detection {
    round: u64,
    node: NodeId,
    neighbor: NodeId,
}

/// Snapshot a plan's scheduled events into fire-order queues. The sort is
/// stable, so events sharing an `at_round` fire in plan order — exactly
/// the order the old per-round scan produced.
struct EventQueues {
    links: Vec<LinkFailure>,
    crashes: Vec<NodeCrash>,
    heals: Vec<LinkHeal>,
    restarts: Vec<NodeRestart>,
    cuts: Vec<NetPartition>,
    cut_heals: Vec<PartitionHeal>,
}

fn sorted_queues(plan: &FaultPlan) -> EventQueues {
    let mut links = plan.link_failures.clone();
    links.sort_by_key(|f| f.at_round);
    let mut crashes = plan.node_crashes.clone();
    crashes.sort_by_key(|c| c.at_round);
    let mut heals = plan.link_heals.clone();
    heals.sort_by_key(|h| h.at_round);
    let mut restarts = plan.node_restarts.clone();
    restarts.sort_by_key(|r| r.at_round);
    let mut cuts = plan.partitions.clone();
    cuts.sort_by_key(|p| p.at_round);
    let mut cut_heals = plan.partition_heals.clone();
    cut_heals.sort_by_key(|p| p.at_round);
    EventQueues {
        links,
        crashes,
        heals,
        restarts,
        cuts,
        cut_heals,
    }
}

/// The simulator: drives a [`Protocol`] over a [`Graph`] under a
/// [`FaultPlan`].
pub struct Simulator<'g, P: Protocol> {
    graph: &'g Graph,
    protocol: P,
    schedule: Schedule,
    schedule_rng: StdRng,
    fault_rng: StdRng,
    plan: FaultPlan,
    /// Scheduled link failures, stable-sorted by `at_round` at
    /// construction; `link_cursor` points at the first unfired event, so
    /// firing is a cursor advance instead of a per-round scan+collect.
    link_queue: Vec<LinkFailure>,
    link_cursor: usize,
    /// Scheduled crashes, same discipline as `link_queue`.
    crash_queue: Vec<NodeCrash>,
    crash_cursor: usize,
    /// Scheduled link heals, same discipline as `link_queue`.
    heal_queue: Vec<LinkHeal>,
    heal_cursor: usize,
    /// Scheduled node restarts, same discipline as `link_queue`.
    restart_queue: Vec<NodeRestart>,
    restart_cursor: usize,
    /// Scripted partition cuts, same discipline as `link_queue`.
    cut_queue: Vec<NetPartition>,
    cut_cursor: usize,
    /// Scripted partition heals, same discipline as `link_queue`.
    cut_heal_queue: Vec<PartitionHeal>,
    cut_heal_cursor: usize,
    round: u64,
    alive_node: Vec<bool>,
    /// Believed-alive neighbor lists (shrink on detection/suspicion, grow
    /// back on rehabilitation/heal/restart), kept sorted, stored flat in
    /// the graph's CSR layout: node `i`'s list lives at
    /// `believed_flat[arc_base(i)..][..believed_len[i]]`. A list never
    /// outgrows the node's degree, so each segment stays within its
    /// original extent — and the per-round schedule pick reads straight
    /// from one flat array instead of chasing a per-node `Vec` header.
    believed_flat: Vec<NodeId>,
    believed_len: Vec<u32>,
    /// Per-arc dead bits (`arc_base(i) + neighbor_slot(i, j)`), both
    /// directions set when a link dies: an O(log deg) bitmask probe per
    /// message instead of a `HashSet` hash+lookup.
    dead_arcs: Vec<u64>,
    /// False until the first crash or link death fires; lets `transit`
    /// skip every liveness check on the healthy path.
    physical_faults: bool,
    /// The plan's burst model, copied out for branch-cheap access
    /// (`None` keeps the clean fast path intact).
    burst: Option<BurstModel>,
    /// Gilbert–Elliott chain state + stream for the classic engine (the
    /// partitioned engine keeps one per [`Part`]). The RNG exists even
    /// with bursts off but is never drawn from then.
    burst_rng: StdRng,
    burst_bad: bool,
    /// Detections not yet delivered, kept sorted descending by
    /// `(round, node, neighbor)` so delivery pops due events off the end
    /// in deterministic order without a per-round sort or allocation.
    pending_detections: Vec<Detection>,
    activation: Activation,
    delay: DelayModel,
    /// `true` when the timeout detector replaces the oracle: scheduled
    /// faults are *not* reported to the protocol; silence is. Everything
    /// the detector touches is gated on this flag, so the oracle path is
    /// bit-identical to the pre-detector simulator.
    detector_timeout: bool,
    /// Silence threshold in rounds (only read when `detector_timeout`).
    detector_window: u64,
    /// `last_heard[arc_base(i) + neighbor_slot(i, j)]` = last round a
    /// message from `j` reached `i`'s receive handler (timeout mode only;
    /// empty under the oracle detector). One global array — partitions
    /// touch element-disjoint, partition-contiguous ranges.
    last_heard: Vec<u64>,
    /// Per-partition timeout-detector state (one part covering all arcs
    /// when `partitions == 1`); empty under the oracle detector.
    det: Vec<DetectorPart>,
    /// Resolved partition count; `1` selects the classic single-stream
    /// engine (byte-identical to the pre-partitioning simulator), `≥ 2`
    /// the partitioned engine with per-partition RNG streams.
    partitions: usize,
    /// How `partitions` was chosen (explicit / single-stream /
    /// measured-cost auto), with the model inputs when measured.
    partition_plan: crate::PartitionPlan,
    /// `part_starts[p]` = first node of partition `p` (`partitions + 1`
    /// entries); empty when `partitions == 1`.
    part_starts: Vec<NodeId>,
    /// Per-partition mutable state; empty when `partitions == 1`.
    parts: Vec<Part>,
    /// Cross-partition mailbox lanes, `lanes[p * partitions + q]` =
    /// messages sent this round from partition `p` to partition `q`.
    /// The send phase has worker `p` write row `p`; after the barrier the
    /// deliver phase has worker `q` drain column `q` in ascending `p`
    /// order — disjoint index sets per phase, fixed merge order.
    lanes: Vec<Vec<(NodeId, NodeId, P::Msg)>>,
    /// Same shape for push-pull replies: the deliver phase has worker `q`
    /// write row `q`, the reply phase has worker `p` drain column `p`.
    reply_lanes: Vec<Vec<(NodeId, NodeId, P::Msg)>>,
    /// Same shape for liveness probes (timeout mode), keyed by the
    /// *target*'s partition and delivered at the start of the next round.
    probe_lanes: Vec<Vec<(NodeId, NodeId)>>,
    /// Persistent worker pool, present iff `partitions > 1`, `threads >
    /// 1` and the protocol declared `PARALLEL_SAFE`. Without it the
    /// partition phases run sequentially — same results either way.
    pool: Option<crate::par::WorkerPool>,
    /// The delivery substrate (see [`RingDelivery`]): `buckets[r % len]`
    /// holds the messages due in round `r`, in send order. With the
    /// default zero-delay model this is a single reused buffer. Extracted
    /// behind the [`Delivery`](crate::Delivery) seam so the same protocol
    /// state machines run over the real transports in `gr-transport`.
    ring: RingDelivery<P::Msg>,
    /// Liveness-probe ring (timeout mode only), same slot discipline as
    /// `buckets`: `probe_ring[r % len]` holds the `(prober, target)`
    /// probes due at the start of round `r`. Probes exist because
    /// suspicion is symmetric-deadlock-prone: once both endpoints of a
    /// falsely suspected arc stop sending, neither would ever hear the
    /// other again and the believed-alive graph partitions permanently.
    probe_ring: Vec<Vec<(NodeId, NodeId)>>,
    /// Scratch list of alive node ids (async activation sampling),
    /// rebuilt only after a crash invalidates it.
    alive_scratch: Vec<NodeId>,
    alive_scratch_dirty: bool,
    /// Optional bounded event recorder (see [`Simulator::enable_trace`]).
    trace: Option<Trace>,
    /// Optional per-arc delivered-message counters
    /// (see [`Simulator::enable_link_load`]).
    link_load: Option<Vec<u64>>,
    stats: SimStats,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Build a simulator with the uniform-random schedule of the paper.
    pub fn new(graph: &'g Graph, protocol: P, plan: FaultPlan, seed: u64) -> Self {
        Self::with_schedule(graph, protocol, plan, seed, Schedule::uniform())
    }

    /// Build a simulator with an explicit schedule policy.
    pub fn with_schedule(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        schedule: Schedule,
    ) -> Self {
        Self::with_options(
            graph,
            protocol,
            plan,
            seed,
            SimOptions {
                schedule,
                ..SimOptions::default()
            },
        )
    }

    /// Build a simulator with full execution-model control.
    ///
    /// # Panics
    /// Panics on an invalid option combination (see
    /// [`SimOptions::validate`]); [`Simulator::try_with_options`] is the
    /// non-panicking variant.
    pub fn with_options(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        options: SimOptions,
    ) -> Self {
        match Self::try_with_options(graph, protocol, plan, seed, options) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build a simulator, rejecting invalid option combinations with a
    /// typed [`SimConfigError`] instead of panicking.
    pub fn try_with_options(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        options: SimOptions,
    ) -> Result<Self, SimConfigError> {
        options.validate()?;
        plan.validate(graph)?;
        let n = graph.len();
        let believed_flat: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|i| graph.neighbors(i).iter().copied())
            .collect();
        let believed_len = (0..n as NodeId).map(|i| graph.degree(i) as u32).collect();
        let ring = RingDelivery::new(options.delay.max_delay());
        let queues = sorted_queues(&plan);
        let (detector_timeout, detector_window) = match options.detector {
            DetectorModel::Oracle => (false, 0),
            DetectorModel::Timeout { window } => (true, window),
        };
        let partition_plan = options.partition_plan(n, graph.arc_count());
        let partitions = partition_plan.partitions;
        let part_starts: Vec<NodeId> = if partitions > 1 {
            (0..=partitions)
                .map(|p| (p * n / partitions) as NodeId)
                .collect()
        } else {
            Vec::new()
        };
        let part_arc_start = |p: usize| -> usize {
            if p == partitions {
                graph.arc_count()
            } else {
                graph.arc_base(part_starts[p])
            }
        };
        let parts: Vec<Part> = (0..if partitions > 1 { partitions } else { 0 })
            .map(|p| Part {
                node_start: part_starts[p],
                node_end: part_starts[p + 1],
                sched_rng: stream_rng(seed, RngStream::SchedulePart(p as u32)),
                fault_rng: stream_rng(seed, RngStream::FaultsPart(p as u32)),
                burst_rng: stream_rng(seed, RngStream::BurstPart(p as u32)),
                burst_bad: false,
                stats: SimStats::default(),
                events: Vec::new(),
            })
            .collect();
        let det: Vec<DetectorPart> = if detector_timeout {
            assert!(
                graph.arc_count() <= u32::MAX as usize,
                "timeout detector packs arc ids into 32 bits"
            );
            let nparts = partitions.max(1);
            (0..nparts)
                .map(|p| {
                    let (a0, a1) = if partitions > 1 {
                        (part_arc_start(p), part_arc_start(p + 1))
                    } else {
                        (0, graph.arc_count())
                    };
                    let mut d = DetectorPart::new(a0, a1, detector_window);
                    // Initially every arc is monitored with an untouched
                    // silence clock (`last_heard == 0`).
                    let (ns, ne) = if partitions > 1 {
                        (part_starts[p], part_starts[p + 1])
                    } else {
                        (0, n as NodeId)
                    };
                    for i in ns..ne {
                        let base = graph.arc_base(i);
                        for s in 0..graph.degree(i) {
                            d.arm(i, base + s, detector_window);
                        }
                    }
                    d
                })
                .collect()
        } else {
            Vec::new()
        };
        let nlanes = if partitions > 1 {
            partitions * partitions
        } else {
            0
        };
        let pool = if partitions > 1 && options.threads > 1 && P::PARALLEL_SAFE {
            Some(crate::par::WorkerPool::new(options.threads.min(partitions)))
        } else {
            None
        };
        let mut protocol = protocol;
        if partitions > 1 {
            protocol.set_partitions(partitions);
        }
        let burst = plan.burst;
        Ok(Simulator {
            graph,
            protocol,
            schedule: options.schedule,
            schedule_rng: stream_rng(seed, RngStream::Schedule),
            fault_rng: stream_rng(seed, RngStream::Faults),
            plan,
            link_queue: queues.links,
            link_cursor: 0,
            crash_queue: queues.crashes,
            crash_cursor: 0,
            heal_queue: queues.heals,
            heal_cursor: 0,
            restart_queue: queues.restarts,
            restart_cursor: 0,
            cut_queue: queues.cuts,
            cut_cursor: 0,
            cut_heal_queue: queues.cut_heals,
            cut_heal_cursor: 0,
            round: 0,
            alive_node: vec![true; n],
            believed_flat,
            believed_len,
            dead_arcs: vec![0; graph.arc_count().div_ceil(64)],
            physical_faults: false,
            burst,
            burst_rng: stream_rng(seed, RngStream::Burst),
            burst_bad: false,
            pending_detections: Vec::new(),
            activation: options.activation,
            delay: options.delay,
            detector_timeout,
            detector_window,
            last_heard: if detector_timeout {
                vec![0; graph.arc_count()]
            } else {
                Vec::new()
            },
            det,
            partitions,
            partition_plan,
            part_starts,
            parts,
            lanes: (0..nlanes).map(|_| Vec::new()).collect(),
            reply_lanes: (0..nlanes).map(|_| Vec::new()).collect(),
            probe_lanes: if detector_timeout && partitions > 1 {
                (0..nlanes).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            pool,
            ring,
            probe_ring: if detector_timeout && partitions == 1 {
                (0..options.delay.max_delay() + 1)
                    .map(|_| Vec::new())
                    .collect()
            } else {
                Vec::new()
            },
            alive_scratch: Vec::new(),
            alive_scratch_dirty: true,
            trace: None,
            link_load: None,
            stats: SimStats::default(),
        })
    }

    /// Start recording the most recent `capacity` transport/fault events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The event trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Start counting delivered messages per directed arc.
    pub fn enable_link_load(&mut self) {
        self.link_load = Some(vec![0; self.graph.arc_count()]);
    }

    /// Delivered messages over arc `src → dst`, if counting is enabled.
    pub fn link_load(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let counts = self.link_load.as_ref()?;
        let slot = self.graph.neighbor_slot(src, dst)?;
        Some(counts[self.graph.arc_base(src) + slot])
    }

    #[inline]
    fn record(&mut self, e: Event) {
        if let Some(t) = self.trace.as_mut() {
            t.push(e);
        }
    }

    /// The protocol (for estimate inspection between rounds).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable protocol access (e.g. to reinitialise node data).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// `true` if `node` has not crashed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive_node[node as usize]
    }

    /// Iterator over currently-alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.len() as NodeId).filter(move |&i| self.alive_node[i as usize])
    }

    /// The believed-alive neighbor list of `node` (shrinks as failures are
    /// detected).
    pub fn believed_alive(&self, node: NodeId) -> &[NodeId] {
        let base = self.graph.arc_base(node);
        &self.believed_flat[base..base + self.believed_len[node as usize] as usize]
    }

    /// Mark the arcs of link `(a, b)` physically dead, both directions.
    fn mark_link_dead(&mut self, a: NodeId, b: NodeId) {
        self.physical_faults = true;
        for (x, y) in [(a, b), (b, a)] {
            if let Some(slot) = self.graph.neighbor_slot(x, y) {
                let arc = self.graph.arc_base(x) + slot;
                self.dead_arcs[arc / 64] |= 1 << (arc % 64);
            }
        }
    }

    #[inline]
    fn arc_is_dead(&self, src: NodeId, dst: NodeId) -> bool {
        match self.graph.neighbor_slot(src, dst) {
            Some(slot) => {
                let arc = self.graph.arc_base(src) + slot;
                self.dead_arcs[arc / 64] & (1 << (arc % 64)) != 0
            }
            None => false,
        }
    }

    /// Insert keeping `pending_detections` sorted descending by
    /// `(round, node, neighbor)`; plans hold a handful of events, so the
    /// shift is cheap and only the fault window ever allocates.
    fn push_detection(&mut self, d: Detection) {
        let key = (d.round, d.node, d.neighbor);
        let pos = self
            .pending_detections
            .partition_point(|p| (p.round, p.node, p.neighbor) > key);
        self.pending_detections.insert(pos, d);
    }

    fn remove_believed(&mut self, node: NodeId, neighbor: NodeId) -> bool {
        let base = self.graph.arc_base(node);
        let len = self.believed_len[node as usize] as usize;
        let list = &mut self.believed_flat[base..base + len];
        match list.binary_search(&neighbor) {
            Ok(pos) => {
                list.copy_within(pos + 1.., pos);
                self.believed_len[node as usize] = (len - 1) as u32;
                true
            }
            Err(_) => false,
        }
    }

    /// Sorted insert into `node`'s believed-alive list; `true` if the
    /// neighbor was actually absent. The list can never outgrow the
    /// node's degree, so the segment stays within its CSR extent.
    fn readmit_believed(&mut self, node: NodeId, neighbor: NodeId) -> bool {
        let base = self.graph.arc_base(node);
        let len = self.believed_len[node as usize] as usize;
        match self.believed_flat[base..base + len].binary_search(&neighbor) {
            Ok(_) => false,
            Err(pos) => {
                self.believed_flat
                    .copy_within(base + pos..base + len, base + pos + 1);
                self.believed_flat[base + pos] = neighbor;
                self.believed_len[node as usize] = (len + 1) as u32;
                true
            }
        }
    }

    /// Partition index of `node` under the partitioned engine (`0` for
    /// the classic engine). `starts[p] = ⌊p·n/P⌋`, whose exact inverse is
    /// the division below.
    #[inline]
    fn part_of(&self, node: NodeId) -> usize {
        if self.partitions <= 1 {
            return 0;
        }
        let p =
            (((node as u64 + 1) * self.partitions as u64 - 1) / self.graph.len() as u64) as usize;
        debug_assert!(self.part_starts[p] <= node && node < self.part_starts[p + 1]);
        p
    }

    /// Forget any suspicion of `neighbor` by `node` and restart the arc's
    /// silence clock (heal/restart bookkeeping). Also re-arms the arc's
    /// timing-wheel entry: the arc is (back) under monitoring.
    #[inline]
    fn clear_suspected(&mut self, node: NodeId, neighbor: NodeId) {
        if let Some(slot) = self.graph.neighbor_slot(node, neighbor) {
            let arc = self.graph.arc_base(node) + slot;
            self.last_heard[arc] = self.round;
            let deadline = self.round.saturating_add(self.detector_window);
            let p = self.part_of(node);
            let det = &mut self.det[p];
            if det.is_suspected(arc) {
                det.clear_suspected_bit(arc);
                det.suspects_remove(pack_arc(node, arc));
            }
            det.arm(node, arc, deadline);
        }
    }

    /// Phase 1: fire physical faults scheduled for this round and enqueue
    /// their detections. The queues are pre-sorted by `at_round`, so this
    /// is a cursor advance — zero work and zero allocation on rounds with
    /// nothing scheduled.
    fn fire_scheduled_faults(&mut self) {
        let round = self.round;
        // Link failures.
        while let Some(&f) = self.link_queue.get(self.link_cursor) {
            if f.at_round > round {
                break;
            }
            debug_assert_eq!(f.at_round, round);
            self.link_cursor += 1;
            // Edge existence was checked by `FaultPlan::validate` at
            // construction time.
            debug_assert!(self.graph.has_edge(f.a, f.b));
            self.record(Event::LinkFailed {
                round,
                a: f.a,
                b: f.b,
            });
            self.mark_link_dead(f.a, f.b);
            // Under the timeout detector the oracle stays silent: the
            // endpoints find out through silence, like everyone else.
            if !self.detector_timeout {
                let at = round + f.detect_delay;
                self.push_detection(Detection {
                    round: at,
                    node: f.a,
                    neighbor: f.b,
                });
                self.push_detection(Detection {
                    round: at,
                    node: f.b,
                    neighbor: f.a,
                });
            }
        }
        // Partition cuts (after individual link failures: a cut is a batch
        // of link deaths and fires with the same semantics).
        while let Some(p) = self.cut_queue.get(self.cut_cursor) {
            if p.at_round > round {
                break;
            }
            debug_assert_eq!(p.at_round, round);
            let p = p.clone();
            self.cut_cursor += 1;
            self.fire_partition(&p);
        }
        // Node crashes.
        while let Some(&c) = self.crash_queue.get(self.crash_cursor) {
            if c.at_round > round {
                break;
            }
            debug_assert_eq!(c.at_round, round);
            self.crash_cursor += 1;
            self.record(Event::NodeCrashed {
                round,
                node: c.node,
            });
            self.alive_node[c.node as usize] = false;
            self.physical_faults = true;
            self.alive_scratch_dirty = true;
            if !self.detector_timeout {
                let at = round + c.detect_delay;
                let graph = self.graph;
                for &j in graph.neighbors(c.node) {
                    self.push_detection(Detection {
                        round: at,
                        node: j,
                        neighbor: c.node,
                    });
                }
            }
        }
        // Link heals.
        while let Some(&h) = self.heal_queue.get(self.heal_cursor) {
            if h.at_round > round {
                break;
            }
            debug_assert_eq!(h.at_round, round);
            self.heal_cursor += 1;
            self.fire_link_heal(h);
        }
        // Partition heals (after individual link heals, mirroring the cut
        // position in the fire order).
        while let Some(p) = self.cut_heal_queue.get(self.cut_heal_cursor) {
            if p.at_round > round {
                break;
            }
            debug_assert_eq!(p.at_round, round);
            let p = p.clone();
            self.cut_heal_cursor += 1;
            self.fire_partition_heal(&p);
        }
        // Node restarts.
        while let Some(&r) = self.restart_queue.get(self.restart_cursor) {
            if r.at_round > round {
                break;
            }
            debug_assert_eq!(r.at_round, round);
            self.restart_cursor += 1;
            self.fire_node_restart(r.node);
        }
    }

    /// Fire a scripted partition cut: every live link with exactly one
    /// endpoint in the member set dies at once, each with its own
    /// [`Event::LinkFailed`] and (oracle mode) per-link detections;
    /// already-dead crossing links are skipped. A summary
    /// [`Event::PartitionStarted`] closes the batch.
    fn fire_partition(&mut self, p: &NetPartition) {
        let round = self.round;
        let mut in_group = vec![false; self.graph.len()];
        for &m in &p.members {
            in_group[m as usize] = true;
        }
        let graph = self.graph;
        let mut cut = 0u32;
        for &m in &p.members {
            for &j in graph.neighbors(m) {
                if in_group[j as usize] || self.arc_is_dead(m, j) {
                    continue;
                }
                cut += 1;
                self.record(Event::LinkFailed { round, a: m, b: j });
                self.mark_link_dead(m, j);
                if !self.detector_timeout {
                    let at = round + p.detect_delay;
                    self.push_detection(Detection {
                        round: at,
                        node: m,
                        neighbor: j,
                    });
                    self.push_detection(Detection {
                        round: at,
                        node: j,
                        neighbor: m,
                    });
                }
            }
        }
        self.record(Event::PartitionStarted { round, cut });
    }

    /// Fire a scripted partition heal: every *severed* crossing link of
    /// the member set returns to service via the ordinary per-link heal
    /// path, then a summary [`Event::PartitionHealed`] closes the batch.
    fn fire_partition_heal(&mut self, p: &PartitionHeal) {
        let round = self.round;
        let mut in_group = vec![false; self.graph.len()];
        for &m in &p.members {
            in_group[m as usize] = true;
        }
        let graph = self.graph;
        let mut cut = 0u32;
        for &m in &p.members {
            for &j in graph.neighbors(m) {
                if in_group[j as usize] || !self.arc_is_dead(m, j) {
                    continue;
                }
                cut += 1;
                self.fire_link_heal(LinkHeal {
                    a: m,
                    b: j,
                    at_round: round,
                });
            }
        }
        self.record(Event::PartitionHealed { round, cut });
    }

    /// Bring a failed link back: clear its dead bits, cancel any pending
    /// oracle detections for the pair, and re-admit each alive endpoint
    /// into the other's believed set (with the protocol's rehabilitation
    /// hook). Healing a link that never died is a no-op.
    fn fire_link_heal(&mut self, h: LinkHeal) {
        let round = self.round;
        // Edge existence was checked by `FaultPlan::validate` at
        // construction time.
        debug_assert!(self.graph.has_edge(h.a, h.b));
        self.record(Event::LinkHealed {
            round,
            a: h.a,
            b: h.b,
        });
        for (x, y) in [(h.a, h.b), (h.b, h.a)] {
            if let Some(slot) = self.graph.neighbor_slot(x, y) {
                let arc = self.graph.arc_base(x) + slot;
                self.dead_arcs[arc / 64] &= !(1 << (arc % 64));
            }
        }
        self.pending_detections.retain(|d| {
            !((d.node == h.a && d.neighbor == h.b) || (d.node == h.b && d.neighbor == h.a))
        });
        for (x, y) in [(h.a, h.b), (h.b, h.a)] {
            if !self.alive_node[x as usize] || !self.alive_node[y as usize] {
                continue;
            }
            if self.detector_timeout {
                self.clear_suspected(x, y);
            }
            if self.readmit_believed(x, y) {
                self.stats.rehabilitated += 1;
                self.record(Event::NodeRehabilitated {
                    round,
                    node: x,
                    neighbor: y,
                });
                self.protocol.on_rehabilitate(x, y);
            }
        }
    }

    /// Rejoin a crashed node with fresh state: purge everything stale the
    /// transport or detector still holds about it, rebuild mutual
    /// believed-alive sets over live links, and run the protocol's
    /// restart hooks on both sides.
    fn fire_node_restart(&mut self, node: NodeId) {
        let round = self.round;
        assert!(
            !self.alive_node[node as usize],
            "fault plan restarts node {node}, which is alive"
        );
        self.record(Event::NodeRestarted { round, node });
        self.alive_node[node as usize] = true;
        self.alive_scratch_dirty = true;
        // Messages the node sent before crashing (or addressed to it while
        // dead) must not surface after the reboot: the restarted node's
        // edge state is fresh, and a stale in-flight payload would be
        // processed as if it belonged to the new incarnation.
        self.ring
            .retain(|&(src, dst, _)| src != node && dst != node);
        // In-flight probes from the old incarnation are stale proof of
        // life; probes addressed to the dead node would have been dropped
        // anyway.
        for bucket in &mut self.probe_ring {
            bucket.retain(|&(src, dst)| src != node && dst != node);
        }
        for lane in &mut self.probe_lanes {
            lane.retain(|&(src, dst)| src != node && dst != node);
        }
        // Pending oracle detections about the node are stale too — except
        // a neighbor's detection of a *link* that is still physically
        // dead, which must survive the reboot.
        let graph = self.graph;
        let dead_arcs = &self.dead_arcs;
        let arc_dead = |src: NodeId, dst: NodeId| match graph.neighbor_slot(src, dst) {
            Some(slot) => {
                let arc = graph.arc_base(src) + slot;
                dead_arcs[arc / 64] & (1 << (arc % 64)) != 0
            }
            None => false,
        };
        self.pending_detections
            .retain(|d| d.node != node && (d.neighbor != node || arc_dead(d.node, d.neighbor)));
        // The rebooted node believes exactly its alive neighbors over live
        // links; the CSR segment re-expands within its original extent.
        let base = self.graph.arc_base(node);
        let mut len = 0usize;
        for &j in graph.neighbors(node) {
            if self.alive_node[j as usize] && !self.arc_is_dead(node, j) {
                self.believed_flat[base + len] = j;
                len += 1;
            }
        }
        self.believed_len[node as usize] = len as u32;
        if self.detector_timeout {
            // Fresh detector state in both directions.
            for &j in graph.neighbors(node) {
                self.clear_suspected(node, j);
            }
        }
        self.protocol.on_restart(node);
        // Neighbors re-admit the node and excise their stale edge state.
        for &j in graph.neighbors(node) {
            if !self.alive_node[j as usize] || self.arc_is_dead(j, node) {
                continue;
            }
            if self.detector_timeout {
                self.clear_suspected(j, node);
            }
            if self.readmit_believed(j, node) {
                self.stats.rehabilitated += 1;
                self.record(Event::NodeRehabilitated {
                    round,
                    node: j,
                    neighbor: node,
                });
            }
            self.protocol.on_neighbor_restarted(j, node);
        }
    }

    /// Phase 2: deliver due detections to alive endpoints. The queue is
    /// sorted descending, so everything due pops off the end already in
    /// the deterministic `(node, neighbor)` handling order.
    fn deliver_detections(&mut self) {
        if self.pending_detections.is_empty() {
            return;
        }
        let round = self.round;
        while let Some(&d) = self.pending_detections.last() {
            if d.round > round {
                break;
            }
            self.pending_detections.pop();
            if self.alive_node[d.node as usize] && self.remove_believed(d.node, d.neighbor) {
                self.record(Event::Detected {
                    round,
                    node: d.node,
                    neighbor: d.neighbor,
                });
                self.protocol.on_link_failed(d.node, d.neighbor);
            }
        }
    }

    /// Apply the transit fault pipeline (dead link, probabilistic loss,
    /// bit corruption) to one message in place; `true` means it survives.
    /// Until the first physical fault fires, the liveness checks are a
    /// single branch, and clean plans skip the probabilistic draws too.
    #[inline]
    fn transit(&mut self, src: NodeId, dst: NodeId, msg: &mut P::Msg) -> bool {
        let round = self.round;
        if self.physical_faults
            && (!self.alive_node[src as usize]
                || !self.alive_node[dst as usize]
                || self.arc_is_dead(src, dst))
        {
            self.stats.lost_dead += 1;
            self.record(Event::LostDead { round, src, dst });
            return false;
        }
        if let Some(b) = self.burst {
            // Advance the Gilbert–Elliott chain one message, then flip the
            // drop coin only while in the bad state — all on the dedicated
            // burst stream, so the i.i.d. draws below are untouched.
            let u = self.burst_rng.random::<f64>();
            self.burst_bad = if self.burst_bad {
                u >= b.exit
            } else {
                u < b.enter
            };
            if self.burst_bad && self.burst_rng.random::<f64>() < b.loss {
                self.stats.lost_burst += 1;
                self.record(Event::LostBurst { round, src, dst });
                return false;
            }
        }
        if self.plan.msg_loss_prob > 0.0 && self.fault_rng.random::<f64>() < self.plan.msg_loss_prob
        {
            self.stats.lost_random += 1;
            self.record(Event::LostRandom { round, src, dst });
            return false;
        }
        if self.plan.bit_flip_prob > 0.0 && self.fault_rng.random::<f64>() < self.plan.bit_flip_prob
        {
            let bits = msg.corruptible_bits();
            if bits > 0 {
                let bit = self.fault_rng.random_range(0..bits);
                msg.flip_bit(bit);
                self.stats.bit_flips += 1;
                self.record(Event::BitFlipped {
                    round,
                    src,
                    dst,
                    bit,
                });
            }
        }
        true
    }

    /// Offer `replier` the chance to answer `to` immediately (push-pull).
    /// The reply takes the ordinary transit pipeline; replies to replies
    /// are not solicited.
    fn deliver_reply(&mut self, replier: NodeId, to: NodeId) {
        if let Some(mut reply) = self.protocol.reply(replier, to) {
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: replier,
                dst: to,
            });
            if self.transit(replier, to, &mut reply) {
                if self.detector_timeout {
                    self.note_arrival(to, replier);
                }
                self.protocol.on_receive(to, replier, &mut reply);
                self.note_delivery(replier, to);
            }
            self.protocol.reclaim(reply);
        }
    }

    /// Timeout-detector bookkeeping for one successful delivery `src →
    /// dst`: a message from a suspected neighbor proves it alive, so the
    /// rehabilitation fires *before* the receive handler — the protocol
    /// re-admits the edge, then processes the message over it.
    #[inline]
    fn note_arrival(&mut self, dst: NodeId, src: NodeId) {
        let slot = self
            .graph
            .neighbor_slot(dst, src)
            .expect("delivery on a non-edge");
        let arc = self.graph.arc_base(dst) + slot;
        let was_suspected = {
            let det = &mut self.det[0];
            if det.is_suspected(arc) {
                det.clear_suspected_bit(arc);
                det.suspects_remove(pack_arc(dst, arc));
                true
            } else {
                false
            }
        };
        if was_suspected {
            self.readmit_believed(dst, src);
            self.stats.rehabilitated += 1;
            self.record(Event::NodeRehabilitated {
                round: self.round,
                node: dst,
                neighbor: src,
            });
            self.protocol.on_rehabilitate(dst, src);
        }
        self.last_heard[arc] = self.round;
        let deadline = self.round.saturating_add(self.detector_window);
        self.det[0].arm(dst, arc, deadline);
    }

    /// [`note_arrival`](Self::note_arrival) for the partitioned engine:
    /// detector state of partition `p` (owning `dst`), stats/events into
    /// `p`'s buffers.
    #[inline]
    fn note_arrival_part(&mut self, p: usize, dst: NodeId, src: NodeId) {
        let slot = self
            .graph
            .neighbor_slot(dst, src)
            .expect("delivery on a non-edge");
        let arc = self.graph.arc_base(dst) + slot;
        let was_suspected = {
            let det = &mut self.det[p];
            if det.is_suspected(arc) {
                det.clear_suspected_bit(arc);
                det.suspects_remove(pack_arc(dst, arc));
                true
            } else {
                false
            }
        };
        if was_suspected {
            self.readmit_believed(dst, src);
            self.parts[p].stats.rehabilitated += 1;
            if self.trace.is_some() {
                let e = Event::NodeRehabilitated {
                    round: self.round,
                    node: dst,
                    neighbor: src,
                };
                self.parts[p].events.push(e);
            }
            self.protocol.on_rehabilitate(dst, src);
        }
        self.last_heard[arc] = self.round;
        let deadline = self.round.saturating_add(self.detector_window);
        self.det[p].arm(dst, arc, deadline);
    }

    /// Timing-wheel maintenance for one detector part: drain the slot due
    /// at `round` into `det.due` (the arcs to suspect), re-parking entries
    /// whose silence clock was reset and dropping entries that stopped
    /// being monitored. `det` is moved out of `self.det` by the caller,
    /// so this borrows the rest of the simulator freely. Read-only on
    /// simulator state; consumes no RNG.
    fn collect_due(&mut self, det: &mut DetectorPart, round: u64) {
        let wheel_len = det.wheel.len() as u64;
        let si = (round % wheel_len) as usize;
        let len0 = det.wheel[si].len();
        det.due.clear();
        for k in 0..len0 {
            let e = det.wheel[si][k];
            let node = (e >> 32) as NodeId;
            let arc = (e & 0xFFFF_FFFF) as usize;
            let deadline = self.last_heard[arc].saturating_add(self.detector_window);
            if deadline > round {
                // Heard from since parking: re-park at the new deadline
                // (same-slot pushes land past `len0` and are not re-read).
                let slot = (deadline % wheel_len) as usize;
                det.wheel[slot].push(e);
                continue;
            }
            // Due. The entry leaves the wheel either way: a suspicion
            // stops monitoring until rehabilitation, and an unmonitored
            // arc (owner dead / neighbor already excised) is re-armed by
            // whichever heal/restart/arrival path resumes monitoring.
            det.clear_in_wheel(arc);
            if !self.alive_node[node as usize] {
                continue;
            }
            let base = self.graph.arc_base(node);
            let blen = self.believed_len[node as usize] as usize;
            let j = self.graph.neighbors(node)[arc - base];
            if self.believed_flat[base..base + blen]
                .binary_search(&j)
                .is_err()
            {
                continue;
            }
            det.due.push(e);
        }
        det.wheel[si].drain(..len0);
        // The legacy scan walked each believed list backwards: node
        // ascending, neighbor (≡ arc, lists are sorted) descending.
        det.due
            .sort_unstable_by(|a, b| (a >> 32).cmp(&(b >> 32)).then(b.cmp(a)));
    }

    /// End-of-round silence scan (timeout mode): every alive node drops
    /// each believed neighbor it has not heard from for `window` rounds.
    /// Suspicion is one-directional and purely local — under delay or
    /// loss it can be wrong, which is the point. O(due + arrivals), not
    /// O(believed arcs): see [`DetectorPart`].
    fn scan_silence(&mut self) {
        let round = self.round;
        let mut det = std::mem::take(&mut self.det[0]);
        self.collect_due(&mut det, round);
        for k in 0..det.due.len() {
            let e = det.due[k];
            let i = (e >> 32) as NodeId;
            let arc = (e & 0xFFFF_FFFF) as usize;
            let j = self.graph.neighbors(i)[arc - self.graph.arc_base(i)];
            self.remove_believed(i, j);
            det.set_suspected(arc);
            det.suspects_insert(e);
            self.stats.suspected += 1;
            self.record(Event::NodeSuspected {
                round,
                node: i,
                neighbor: j,
            });
            self.protocol.on_suspect(i, j);
        }
        self.det[0] = det;
    }

    /// End-of-round probe fan-out (timeout mode): every alive node sends
    /// a liveness probe to each neighbor it currently suspects. Suspicion
    /// must not stop outbound probing — a falsely suspected (or healed)
    /// link rehabilitates only because probes keep crossing it, while
    /// probes to a genuinely dead peer keep vanishing and the suspicion
    /// stands. Probes ride the same delay model as payload messages but
    /// carry no protocol state.
    fn send_probes(&mut self) {
        if self.det[0].suspects.is_empty() {
            return;
        }
        let nbuckets = self.probe_ring.len() as u64;
        // The suspect list is sorted by packed (node, arc) — exactly the
        // node-ascending, adjacency-slot-ascending order of the old
        // full-bitmask sweep, so the per-probe delay draws replay
        // identically.
        let mut k = 0;
        while k < self.det[0].suspects.len() {
            let e = self.det[0].suspects[k];
            k += 1;
            let i = (e >> 32) as NodeId;
            if !self.alive_node[i as usize] {
                continue;
            }
            let arc = (e & 0xFFFF_FFFF) as usize;
            let j = self.graph.neighbors(i)[arc - self.graph.arc_base(i)];
            // Probes issue at the end of round `r`, so a delay-`d`
            // probe is due at the start of round `r + 1 + d`; the
            // arrival rounds `r+1 ..= r+len` map onto distinct ring
            // slots, each drained before it can be refilled.
            let d = self.delay.sample(&mut self.fault_rng);
            let due = ((self.round + 1 + d) % nbuckets) as usize;
            self.probe_ring[due].push((i, j));
            self.stats.probes_sent += 1;
        }
    }

    /// Start-of-round probe delivery (timeout mode): a probe that crosses
    /// a live link is proof of life for its sender — pure
    /// [`note_arrival`](Self::note_arrival) bookkeeping, no protocol
    /// receive. Dead endpoints, dead arcs and the probabilistic loss
    /// model swallow probes exactly like payload messages.
    fn deliver_probes(&mut self) {
        let due = (self.round % self.probe_ring.len() as u64) as usize;
        if self.probe_ring[due].is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.probe_ring[due]);
        for &(src, dst) in &batch {
            if self.physical_faults
                && (!self.alive_node[src as usize]
                    || !self.alive_node[dst as usize]
                    || self.arc_is_dead(src, dst))
            {
                continue;
            }
            if self.plan.msg_loss_prob > 0.0
                && self.fault_rng.random::<f64>() < self.plan.msg_loss_prob
            {
                continue;
            }
            self.note_arrival(dst, src);
        }
        batch.clear();
        self.probe_ring[due] = batch; // hand the allocation back
    }

    #[inline]
    fn note_delivery(&mut self, src: NodeId, dst: NodeId) {
        self.stats.delivered += 1;
        let round = self.round;
        self.record(Event::Delivered { round, src, dst });
        if let Some(counts) = self.link_load.as_mut() {
            if let Some(slot) = self.graph.neighbor_slot(src, dst) {
                counts[self.graph.arc_base(src) + slot] += 1;
            }
        }
    }

    /// Execute one round (synchronous) or `n` activations (asynchronous).
    pub fn step(&mut self) {
        if self.partitions > 1 {
            self.step_partitioned();
            return;
        }
        self.fire_scheduled_faults();
        self.deliver_detections();
        if self.detector_timeout {
            self.deliver_probes();
        }
        match self.activation {
            Activation::Synchronous => self.step_synchronous(),
            Activation::Asynchronous => self.step_asynchronous(),
        }
        if self.detector_timeout {
            self.scan_silence();
            self.send_probes();
        }
        self.round += 1;
        self.stats.rounds += 1;
    }

    fn step_synchronous(&mut self) {
        // Phase 3: sends, enqueued for delivery `delay` rounds from now.
        let nbuckets = self.ring.slots() as u64;
        for i in 0..self.graph.len() as NodeId {
            if !self.alive_node[i as usize] {
                continue;
            }
            let base = self.graph.arc_base(i);
            let alive = &self.believed_flat[base..base + self.believed_len[i as usize] as usize];
            let target = self.schedule.pick(i, alive, &mut self.schedule_rng);
            let Some(target) = target else { continue };
            let msg = self.protocol.on_send(i, target);
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: i,
                dst: target,
            });
            let d = self.delay.sample(&mut self.fault_rng);
            let slot = if nbuckets == 1 {
                0
            } else {
                ((self.round + d) % nbuckets) as usize
            };
            self.ring.ship_at(slot, i, target, msg);
        }

        // Phase 4+5: transit faults, then in-order delivery of everything
        // due this round.
        let slot = if nbuckets == 1 {
            0
        } else {
            (self.round % nbuckets) as usize
        };
        // Nothing in this phase can introduce a fault, so one check
        // covers the whole batch: the fully-clean case (no physical
        // faults, no probabilistic models) skips `transit` entirely.
        let clean = !self.physical_faults
            && self.plan.msg_loss_prob <= 0.0
            && self.plan.bit_flip_prob <= 0.0
            && self.burst.is_none();
        let mut batch = self.ring.take_slot(slot);
        // Receivers are in random order while the batch is walked
        // sequentially: warm the state a few deliveries ahead so the
        // handler's first loads come out of cache.
        const LOOKAHEAD: usize = 8;
        for i in 0..batch.len() {
            if let Some(ahead) = batch.get(i + LOOKAHEAD) {
                self.protocol.prewarm(ahead.1, ahead.0);
            }
            let entry = &mut batch[i];
            let (src, dst) = (entry.0, entry.1);
            let msg = &mut entry.2;
            if clean || self.transit(src, dst, msg) {
                if self.detector_timeout {
                    self.note_arrival(dst, src);
                }
                self.protocol.on_receive(dst, src, msg);
                self.note_delivery(src, dst);
                self.deliver_reply(dst, src);
            }
        }
        // Hand every wire buffer back to the protocol's free list (and the
        // batch Vec's allocation back to the bucket ring). Dropped-in-
        // transit messages recycle the same way as delivered ones.
        for (_, _, msg) in batch.drain(..) {
            self.protocol.reclaim(msg);
        }
        self.ring.put_back(slot, batch);
    }

    fn step_asynchronous(&mut self) {
        // n single-node activations; each is an atomic send+deliver, so
        // no crossing exchanges exist in this model.
        if self.alive_scratch_dirty {
            self.alive_scratch.clear();
            self.alive_scratch
                .extend((0..self.graph.len() as NodeId).filter(|&i| self.alive_node[i as usize]));
            self.alive_scratch_dirty = false;
        }
        if self.alive_scratch.is_empty() {
            return;
        }
        // One activation per alive node per round in expectation (dead
        // nodes' Poisson clocks stop ticking).
        for _ in 0..self.alive_scratch.len() {
            let k = self.schedule_rng.random_range(0..self.alive_scratch.len());
            let i = self.alive_scratch[k];
            let base = self.graph.arc_base(i);
            let alive = &self.believed_flat[base..base + self.believed_len[i as usize] as usize];
            let target = self.schedule.pick(i, alive, &mut self.schedule_rng);
            let Some(target) = target else { continue };
            let mut msg = self.protocol.on_send(i, target);
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: i,
                dst: target,
            });
            if self.transit(i, target, &mut msg) {
                if self.detector_timeout {
                    self.note_arrival(target, i);
                }
                self.protocol.on_receive(target, i, &mut msg);
                self.note_delivery(i, target);
                self.deliver_reply(target, i);
            }
            self.protocol.reclaim(msg);
        }
    }

    // ----- partitioned round engine ------------------------------------
    //
    // One round with `partitions = P ≥ 2`: sequential fault bookkeeping
    // brackets barrier-separated per-partition phases. Every phase is a
    // pure function of `(seed, partition)` — per-partition RNG streams,
    // fixed lane merge order — so the result is byte-identical whether
    // the phases run on one thread or sixteen. Determinism is keyed on
    // the partition count, never on the thread count.

    /// One round under the partitioned engine.
    fn step_partitioned(&mut self) {
        self.fire_scheduled_faults();
        self.deliver_detections();
        if self.detector_timeout {
            self.par_run(Self::par_deliver_probes);
        }
        self.par_run(Self::par_send);
        self.par_run(Self::par_deliver);
        self.par_run(Self::par_reply);
        if self.detector_timeout {
            self.par_run(Self::par_scan);
        }
        self.merge_parts();
        self.round += 1;
        self.stats.rounds += 1;
    }

    /// Run `phase(self, p)` for every partition — on the worker pool when
    /// the protocol opted into parallel execution, inline otherwise.
    /// Results are identical either way.
    fn par_run(&mut self, phase: fn(&mut Self, usize)) {
        let np = self.partitions;
        if let Some(pool) = self.pool.take() {
            let ptr = SendPtr(self as *mut Self);
            pool.run(np, |p| {
                // SAFETY: each phase function touches only state owned by
                // its partition argument (parts[p], det[p], its lane
                // row/column, partition-contiguous ranges of the believed
                // lists and last_heard, and — per the PARALLEL_SAFE
                // contract — partition-owned protocol state), plus shared
                // state that is read-only during parallel phases (graph,
                // plan, alive/dead masks, schedule cursors of own nodes).
                // The pool guarantees the phase is fully retired before
                // `run` returns, so these aliased `&mut`s never overlap
                // in time with the caller's exclusive use.
                let sim = unsafe { &mut *ptr.get() };
                phase(sim, p);
            });
            self.pool = Some(pool);
        } else {
            for p in 0..np {
                phase(self, p);
            }
        }
    }

    /// Send phase for partition `p`: node order within the partition,
    /// partner picks from `p`'s own schedule stream, outgoing messages
    /// pushed onto the `(p, target-partition)` lane.
    fn par_send(&mut self, p: usize) {
        let np = self.partitions;
        let round = self.round;
        let trace_on = self.trace.is_some();
        let (ns, ne) = (self.parts[p].node_start, self.parts[p].node_end);
        for i in ns..ne {
            if !self.alive_node[i as usize] {
                continue;
            }
            let base = self.graph.arc_base(i);
            let alive = &self.believed_flat[base..base + self.believed_len[i as usize] as usize];
            let target = self.schedule.pick(i, alive, &mut self.parts[p].sched_rng);
            let Some(target) = target else { continue };
            let msg = self.protocol.part_send(p, i, target);
            self.parts[p].stats.sent += 1;
            if trace_on {
                self.parts[p].events.push(Event::Sent {
                    round,
                    src: i,
                    dst: target,
                });
            }
            let q = self.part_of(target);
            self.lanes[p * np + q].push((i, target, msg));
        }
    }

    /// Deliver phase for partition `q`: drain lane column `q` in
    /// ascending source-partition order — the fixed merge order that
    /// makes `q`'s fault-stream draws (and therefore everything
    /// downstream) independent of which thread ran which send phase.
    /// Replies are collected onto the reply lanes for the next phase
    /// instead of being delivered inline.
    fn par_deliver(&mut self, q: usize) {
        let np = self.partitions;
        let round = self.round;
        let clean = !self.physical_faults
            && self.plan.msg_loss_prob <= 0.0
            && self.plan.bit_flip_prob <= 0.0
            && self.burst.is_none();
        const LOOKAHEAD: usize = 8;
        for p in 0..np {
            let li = p * np + q;
            let mut lane = std::mem::take(&mut self.lanes[li]);
            for k in 0..lane.len() {
                if let Some(ahead) = lane.get(k + LOOKAHEAD) {
                    self.protocol.prewarm(ahead.1, ahead.0);
                }
                let entry = &mut lane[k];
                let (src, dst) = (entry.0, entry.1);
                if clean || self.transit_part(q, src, dst, &mut entry.2) {
                    if self.detector_timeout {
                        self.note_arrival_part(q, dst, src);
                    }
                    self.protocol.part_receive(q, dst, src, &mut entry.2);
                    self.note_delivery_part(q, src, dst);
                    if let Some(reply) = self.protocol.part_reply(q, dst, src) {
                        self.parts[q].stats.sent += 1;
                        if self.trace.is_some() {
                            self.parts[q].events.push(Event::Sent {
                                round,
                                src: dst,
                                dst: src,
                            });
                        }
                        self.reply_lanes[q * np + p].push((dst, src, reply));
                    }
                }
            }
            for (_, _, msg) in lane.drain(..) {
                self.protocol.part_reclaim(q, msg);
            }
            self.lanes[li] = lane;
        }
    }

    /// Reply phase for partition `p`: drain reply-lane column `p` in
    /// ascending replier-partition order and deliver the push-pull
    /// responses back to `p`'s nodes.
    fn par_reply(&mut self, p: usize) {
        let np = self.partitions;
        for q in 0..np {
            let li = q * np + p;
            let mut lane = std::mem::take(&mut self.reply_lanes[li]);
            for entry in lane.iter_mut() {
                let (replier, to) = (entry.0, entry.1);
                if self.transit_part(p, replier, to, &mut entry.2) {
                    if self.detector_timeout {
                        self.note_arrival_part(p, to, replier);
                    }
                    self.protocol.part_receive(p, to, replier, &mut entry.2);
                    self.note_delivery_part(p, replier, to);
                }
            }
            for (_, _, msg) in lane.drain(..) {
                self.protocol.part_reclaim(p, msg);
            }
            self.reply_lanes[li] = lane;
        }
    }

    /// Start-of-round probe delivery for partition `q` (timeout mode):
    /// same merge discipline as [`par_deliver`](Self::par_deliver), pure
    /// detector bookkeeping like the classic
    /// [`deliver_probes`](Self::deliver_probes).
    fn par_deliver_probes(&mut self, q: usize) {
        let np = self.partitions;
        for p in 0..np {
            let li = p * np + q;
            let mut lane = std::mem::take(&mut self.probe_lanes[li]);
            for &(src, dst) in &lane {
                if self.physical_faults
                    && (!self.alive_node[src as usize]
                        || !self.alive_node[dst as usize]
                        || self.arc_is_dead(src, dst))
                {
                    continue;
                }
                if self.plan.msg_loss_prob > 0.0
                    && self.parts[q].fault_rng.random::<f64>() < self.plan.msg_loss_prob
                {
                    continue;
                }
                self.note_arrival_part(q, dst, src);
            }
            lane.clear();
            self.probe_lanes[li] = lane;
        }
    }

    /// End-of-round detector scan + probe fan-out for partition `p`
    /// (timeout mode): the wheel scan of [`scan_silence`]
    /// (Self::scan_silence) over `p`'s arcs, with stats/events buffered
    /// per partition; probes go out on the probe lanes (zero delay — all
    /// due next round).
    fn par_scan(&mut self, p: usize) {
        let round = self.round;
        let np = self.partitions;
        let mut det = std::mem::take(&mut self.det[p]);
        self.collect_due(&mut det, round);
        for k in 0..det.due.len() {
            let e = det.due[k];
            let i = (e >> 32) as NodeId;
            let arc = (e & 0xFFFF_FFFF) as usize;
            let j = self.graph.neighbors(i)[arc - self.graph.arc_base(i)];
            self.remove_believed(i, j);
            det.set_suspected(arc);
            det.suspects_insert(e);
            self.parts[p].stats.suspected += 1;
            if self.trace.is_some() {
                self.parts[p].events.push(Event::NodeSuspected {
                    round,
                    node: i,
                    neighbor: j,
                });
            }
            self.protocol.on_suspect(i, j);
        }
        for k in 0..det.suspects.len() {
            let e = det.suspects[k];
            let i = (e >> 32) as NodeId;
            if !self.alive_node[i as usize] {
                continue;
            }
            let arc = (e & 0xFFFF_FFFF) as usize;
            let j = self.graph.neighbors(i)[arc - self.graph.arc_base(i)];
            let q = self.part_of(j);
            self.probe_lanes[p * np + q].push((i, j));
            self.parts[p].stats.probes_sent += 1;
        }
        self.det[p] = det;
    }

    /// Partitioned-engine variant of [`transit`](Self::transit): draws
    /// from partition `p`'s fault stream, counts into `p`'s buffers.
    #[inline]
    fn transit_part(&mut self, p: usize, src: NodeId, dst: NodeId, msg: &mut P::Msg) -> bool {
        let round = self.round;
        let trace_on = self.trace.is_some();
        if self.physical_faults
            && (!self.alive_node[src as usize]
                || !self.alive_node[dst as usize]
                || self.arc_is_dead(src, dst))
        {
            self.parts[p].stats.lost_dead += 1;
            if trace_on {
                self.parts[p]
                    .events
                    .push(Event::LostDead { round, src, dst });
            }
            return false;
        }
        if let Some(b) = self.burst {
            let part = &mut self.parts[p];
            let u = part.burst_rng.random::<f64>();
            part.burst_bad = if part.burst_bad {
                u >= b.exit
            } else {
                u < b.enter
            };
            if part.burst_bad && part.burst_rng.random::<f64>() < b.loss {
                part.stats.lost_burst += 1;
                if trace_on {
                    part.events.push(Event::LostBurst { round, src, dst });
                }
                return false;
            }
        }
        if self.plan.msg_loss_prob > 0.0
            && self.parts[p].fault_rng.random::<f64>() < self.plan.msg_loss_prob
        {
            self.parts[p].stats.lost_random += 1;
            if trace_on {
                self.parts[p]
                    .events
                    .push(Event::LostRandom { round, src, dst });
            }
            return false;
        }
        if self.plan.bit_flip_prob > 0.0
            && self.parts[p].fault_rng.random::<f64>() < self.plan.bit_flip_prob
        {
            let bits = msg.corruptible_bits();
            if bits > 0 {
                let bit = self.parts[p].fault_rng.random_range(0..bits);
                msg.flip_bit(bit);
                self.parts[p].stats.bit_flips += 1;
                if trace_on {
                    self.parts[p].events.push(Event::BitFlipped {
                        round,
                        src,
                        dst,
                        bit,
                    });
                }
            }
        }
        true
    }

    /// Partitioned-engine variant of
    /// [`note_delivery`](Self::note_delivery). The link-load counter is
    /// indexed by the *source* arc, which can belong to another
    /// partition — but each `(src, dst)` arc appears in exactly one lane,
    /// so the element is still touched by exactly one worker.
    #[inline]
    fn note_delivery_part(&mut self, p: usize, src: NodeId, dst: NodeId) {
        self.parts[p].stats.delivered += 1;
        if self.trace.is_some() {
            let round = self.round;
            self.parts[p]
                .events
                .push(Event::Delivered { round, src, dst });
        }
        if let Some(counts) = self.link_load.as_mut() {
            if let Some(slot) = self.graph.neighbor_slot(src, dst) {
                counts[self.graph.arc_base(src) + slot] += 1;
            }
        }
    }

    /// Sequential end-of-round merge: fold every partition's stats delta
    /// and buffered trace events into the global sinks, in ascending
    /// partition order. This fixed order is what pins the trace/report
    /// bytes across thread counts.
    fn merge_parts(&mut self) {
        let parts = &mut self.parts;
        if let Some(t) = self.trace.as_mut() {
            for part in parts.iter_mut() {
                for e in part.events.drain(..) {
                    t.push(e);
                }
            }
        } else {
            for part in parts.iter_mut() {
                part.events.clear();
            }
        }
        for part in parts.iter_mut() {
            let d = part.stats;
            part.stats = SimStats::default();
            self.stats.absorb(&d);
        }
    }

    /// Resolved partition count (`1` = classic engine).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// How the partition count was chosen: explicitly, by the ineligible
    /// single-stream default, or by the measured cost model (in which
    /// case the probe constants and predicted costs are included).
    pub fn partition_plan(&self) -> &crate::PartitionPlan {
        &self.partition_plan
    }

    /// Execute `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Replace the fault plan from the next round on. Scheduled events
    /// whose `at_round` is already past never fire; probabilistic loss and
    /// corruption switch immediately. Used to model fault episodes ("flip
    /// bits for 200 rounds, then run clean and watch recovery").
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`] against the
    /// topology (same check `try_with_options` applies at construction).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate(self.graph) {
            panic!("{e}");
        }
        let queues = sorted_queues(&plan);
        // Skip events already in the past, preserving the "never fire"
        // contract; the cursors then only ever see current-round events.
        self.link_cursor = queues.links.partition_point(|f| f.at_round < self.round);
        self.crash_cursor = queues.crashes.partition_point(|c| c.at_round < self.round);
        self.heal_cursor = queues.heals.partition_point(|h| h.at_round < self.round);
        self.restart_cursor = queues.restarts.partition_point(|r| r.at_round < self.round);
        self.cut_cursor = queues.cuts.partition_point(|p| p.at_round < self.round);
        self.cut_heal_cursor = queues
            .cut_heals
            .partition_point(|p| p.at_round < self.round);
        self.link_queue = queues.links;
        self.crash_queue = queues.crashes;
        self.heal_queue = queues.heals;
        self.restart_queue = queues.restarts;
        self.cut_queue = queues.cuts;
        self.cut_heal_queue = queues.cut_heals;
        // The burst RNG keeps its stream position and chain state across
        // plan swaps: an episode that turns bursts off and back on
        // resumes the same deterministic chain.
        self.burst = plan.burst;
        self.plan = plan;
    }

    /// Manually kill a link right now (physical + immediate detection).
    /// Convenience for tests and interactive examples; scheduled plans are
    /// the primary interface.
    pub fn fail_link_now(&mut self, a: NodeId, b: NodeId) {
        assert!(self.graph.has_edge(a, b), "no link ({a},{b}) to fail");
        self.mark_link_dead(a, b);
        for (x, y) in [(a, b), (b, a)] {
            if self.alive_node[x as usize] && self.remove_believed(x, y) {
                self.protocol.on_link_failed(x, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_topology::{bus, complete, ring};

    /// Test protocol: every node counts what it receives and remembers
    /// every failure-interface callback; messages carry the sender id as
    /// f64.
    #[derive(Default)]
    struct Recorder {
        received: Vec<Vec<(NodeId, f64)>>,
        failed_links: Vec<(NodeId, NodeId)>,
        suspects: Vec<(NodeId, NodeId)>,
        rehabs: Vec<(NodeId, NodeId)>,
        restarts: Vec<NodeId>,
        neighbor_restarts: Vec<(NodeId, NodeId)>,
        sends: u64,
    }

    impl Recorder {
        fn new(n: usize) -> Self {
            Recorder {
                received: vec![Vec::new(); n],
                ..Recorder::default()
            }
        }
    }

    impl Protocol for Recorder {
        type Msg = f64;
        fn on_send(&mut self, node: NodeId, _target: NodeId) -> f64 {
            self.sends += 1;
            node as f64
        }
        fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut f64) {
            self.received[node as usize].push((from, *msg));
        }
        fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
            self.failed_links.push((node, neighbor));
        }
        fn on_suspect(&mut self, node: NodeId, neighbor: NodeId) {
            self.suspects.push((node, neighbor));
        }
        fn on_rehabilitate(&mut self, node: NodeId, neighbor: NodeId) {
            self.rehabs.push((node, neighbor));
        }
        fn on_restart(&mut self, node: NodeId) {
            self.restarts.push(node);
        }
        fn on_neighbor_restarted(&mut self, node: NodeId, restarted: NodeId) {
            self.neighbor_restarts.push((node, restarted));
        }
    }

    #[test]
    fn every_alive_node_sends_once_per_round() {
        let g = ring(10);
        let mut sim = Simulator::new(&g, Recorder::new(10), FaultPlan::none(), 1);
        sim.run(5);
        assert_eq!(sim.stats().sent, 50);
        assert_eq!(sim.stats().delivered, 50);
        assert_eq!(sim.protocol().sends, 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = complete(8);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Recorder::new(8), FaultPlan::none(), seed);
            sim.run(20);
            sim.protocol()
                .received
                .iter()
                .map(|v| v.iter().map(|&(f, _)| f).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn messages_only_flow_on_edges() {
        let g = bus(5);
        let mut sim = Simulator::new(&g, Recorder::new(5), FaultPlan::none(), 3);
        sim.run(50);
        for node in 0..5u32 {
            for &(from, _) in &sim.protocol().received[node as usize] {
                assert!(g.has_edge(node, from), "non-edge delivery {from}->{node}");
            }
        }
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let g = ring(6);
        let mut sim = Simulator::new(&g, Recorder::new(6), FaultPlan::with_loss(1.0), 5);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_random, 60);
    }

    #[test]
    fn link_failure_detected_and_excluded() {
        let g = bus(3); // 0-1-2
        let plan = FaultPlan::none().fail_link(0, 1, 5);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 11);
        sim.run(20);
        // Both endpoints got the callback exactly once.
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(0, 1), (1, 0)]);
        // Node 0 is isolated afterwards: believed-alive list empty.
        assert!(sim.believed_alive(0).is_empty());
        assert_eq!(sim.believed_alive(1), &[2]);
        // After the failure, node 0 sends nothing; all rounds: pre-failure
        // 3 sends/round * 5 rounds, post: 2 sends/round * 15 rounds.
        assert_eq!(sim.stats().sent, 15 + 30);
        assert_eq!(sim.stats().lost_dead, 0); // detection was immediate
    }

    #[test]
    fn detection_delay_loses_messages_silently() {
        let g = bus(2); // single link 0-1
        let plan = FaultPlan {
            link_failures: vec![crate::faults::LinkFailure {
                a: 0,
                b: 1,
                at_round: 0,
                detect_delay: 4,
            }],
            ..FaultPlan::none()
        };
        let mut sim = Simulator::new(&g, Recorder::new(2), plan, 2);
        sim.run(10);
        // Rounds 0..4: both nodes still address the dead link; messages lost.
        assert_eq!(sim.stats().lost_dead, 8);
        assert_eq!(sim.stats().delivered, 0);
        // After detection both nodes are isolated and stop sending.
        assert_eq!(sim.stats().sent, 8);
    }

    #[test]
    fn node_crash_stops_traffic_and_notifies_neighbors() {
        let g = ring(5);
        let plan = FaultPlan::none().crash_node(2, 3);
        let mut sim = Simulator::new(&g, Recorder::new(5), plan, 17);
        sim.run(30);
        assert!(!sim.is_alive(2));
        assert_eq!(sim.alive_nodes().count(), 4);
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(1, 2), (3, 2)]);
        // Nothing was delivered to node 2 after the crash round.
        // (Ring neighbors detected instantly, so no lost_dead either.)
        assert_eq!(sim.stats().lost_dead, 0);
    }

    #[test]
    fn bit_flips_corrupt_payloads() {
        let g = bus(2);
        let mut sim = Simulator::new(&g, Recorder::new(2), FaultPlan::with_bit_flips(1.0), 23);
        sim.run(50);
        assert_eq!(sim.stats().bit_flips, 100);
        // At least one delivered payload must differ from the sender id.
        let corrupted = sim
            .protocol()
            .received
            .iter()
            .flatten()
            .any(|&(from, v)| v != from as f64);
        assert!(corrupted);
    }

    #[test]
    fn fail_link_now_is_immediate() {
        let g = bus(3);
        let mut sim = Simulator::new(&g, Recorder::new(3), FaultPlan::none(), 0);
        sim.fail_link_now(1, 2);
        assert_eq!(sim.believed_alive(1), &[0]);
        assert!(sim.believed_alive(2).is_empty());
        assert_eq!(sim.protocol().failed_links.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn plan_with_bogus_link_panics() {
        // Caught by `FaultPlan::validate` at construction, long before the
        // event would have fired.
        let g = bus(3); // 0-1-2; (0,2) is not an edge
        let plan = FaultPlan::none().fail_link(0, 2, 0);
        let _ = Simulator::new(&g, Recorder::new(3), plan, 0);
    }

    #[test]
    fn bogus_plans_are_typed_errors_at_construction() {
        let g = bus(3);
        let plan = FaultPlan::none().fail_link(0, 2, 7);
        let err = Simulator::try_with_options(&g, Recorder::new(3), plan, 0, SimOptions::default())
            .err()
            .unwrap();
        assert_eq!(err, SimConfigError::FaultLinkMissing { a: 0, b: 2 });
        let plan = FaultPlan::none().crash_node(9, 7);
        let err = Simulator::try_with_options(&g, Recorder::new(3), plan, 0, SimOptions::default())
            .err()
            .unwrap();
        assert_eq!(
            err,
            SimConfigError::FaultNodeOutOfRange { node: 9, nodes: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn set_fault_plan_validates_too() {
        let g = bus(3);
        let mut sim = Simulator::new(&g, Recorder::new(3), FaultPlan::none(), 0);
        sim.run(2);
        sim.set_fault_plan(FaultPlan::none().fail_link(0, 2, 5));
    }

    #[test]
    fn async_activation_sends_n_per_round() {
        let g = ring(10);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(10), FaultPlan::none(), 5, opts);
        sim.run(7);
        // n activations per round, every one delivered immediately
        assert_eq!(sim.stats().sent, 70);
        assert_eq!(sim.stats().delivered, 70);
    }

    #[test]
    fn async_skips_dead_nodes() {
        let g = ring(6);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().crash_node(2, 3);
        let mut sim = Simulator::with_options(&g, Recorder::new(6), plan, 6, opts);
        sim.run(20);
        // after the crash, node 2 neither sends nor receives: total
        // activations drop from 6 to 5 per round
        assert!(!sim.is_alive(2));
        assert!(sim.stats().sent < 120);
        assert!(sim.stats().sent >= 3 * 6 + 17 * 5);
    }

    #[test]
    #[should_panic(expected = "zero-delay")]
    fn async_plus_delay_rejected() {
        let g = ring(4);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(2),
            ..SimOptions::default()
        };
        let _ = Simulator::with_options(&g, Recorder::new(4), FaultPlan::none(), 0, opts);
    }

    #[test]
    fn fixed_delay_shifts_delivery() {
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(3),
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(2), FaultPlan::none(), 1, opts);
        sim.run(3);
        // nothing delivered yet: messages from round r arrive at r+3
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().sent, 6);
        sim.run(1);
        // round 3 delivers the round-0 messages
        assert_eq!(sim.stats().delivered, 2);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 2 * 11); // rounds 0..=10 delivered by round 13
    }

    #[test]
    fn uniform_delay_delivers_everything_eventually() {
        let g = complete(6);
        let opts = SimOptions {
            delay: DelayModel::Uniform { min: 0, max: 4 },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(6), FaultPlan::none(), 9, opts);
        sim.run(50);
        let s = sim.stats();
        // everything sent at least 4 rounds ago has been delivered
        assert!(s.delivered >= 6 * (50 - 4));
        assert!(s.delivered <= s.sent);
        // and deliveries only flow along edges
        for node in 0..6u32 {
            for &(from, _) in &sim.protocol().received[node as usize] {
                assert!(g.has_edge(node, from));
            }
        }
    }

    #[test]
    fn delayed_messages_die_with_the_link() {
        // A message in flight when its link fails is lost.
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(5),
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().fail_link(0, 1, 2);
        let mut sim = Simulator::with_options(&g, Recorder::new(2), plan, 3, opts);
        sim.run(20);
        // rounds 0 and 1 produced 4 in-flight messages; all die when the
        // link fails at round 2, before any could be delivered at round 5.
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_dead, 4);
    }

    #[test]
    fn trace_records_transport_and_faults() {
        let g = bus(3);
        let plan = FaultPlan::with_loss(0.3)
            .fail_link(0, 1, 5)
            .crash_node(2, 8);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 7);
        sim.enable_trace(10_000);
        sim.run(20);
        let trace = sim.trace().unwrap();
        let mut sent = 0;
        let mut delivered = 0;
        let mut lost = 0;
        let mut link_failed = false;
        let mut crashed = false;
        let mut detected = 0;
        for e in trace.events() {
            match e {
                Event::Sent { .. } => sent += 1,
                Event::Delivered { .. } => delivered += 1,
                Event::LostRandom { .. } | Event::LostDead { .. } => lost += 1,
                Event::LinkFailed { round, a, b } => {
                    assert_eq!((*round, *a, *b), (5, 0, 1));
                    link_failed = true;
                }
                Event::NodeCrashed { round, node } => {
                    assert_eq!((*round, *node), (8, 2));
                    crashed = true;
                }
                Event::Detected { .. } => detected += 1,
                Event::BitFlipped { .. } => {}
                Event::LinkHealed { .. }
                | Event::NodeRestarted { .. }
                | Event::NodeSuspected { .. }
                | Event::NodeRehabilitated { .. }
                | Event::LostBurst { .. }
                | Event::PartitionStarted { .. }
                | Event::PartitionHealed { .. } => {
                    panic!("no heal/restart/suspicion/burst/cut scheduled: {e:?}")
                }
            }
        }
        let s = sim.stats();
        assert_eq!(sent as u64, s.sent);
        assert_eq!(delivered as u64, s.delivered);
        assert_eq!(lost as u64, s.lost_random + s.lost_dead);
        assert!(link_failed && crashed);
        // link (0,1) detection at both ends + crash detection at node 1
        assert_eq!(detected, 3);
    }

    #[test]
    fn trace_is_bounded() {
        let g = complete(8);
        let mut sim = Simulator::new(&g, Recorder::new(8), FaultPlan::none(), 1);
        sim.enable_trace(16);
        sim.run(50);
        let t = sim.trace().unwrap();
        assert_eq!(t.len(), 16);
        assert!(t.dropped() > 0);
    }

    #[test]
    fn link_load_counts_deliveries() {
        let g = bus(2);
        let mut sim = Simulator::new(&g, Recorder::new(2), FaultPlan::none(), 3);
        sim.enable_link_load();
        sim.run(25);
        let a = sim.link_load(0, 1).unwrap();
        let b = sim.link_load(1, 0).unwrap();
        assert_eq!(a + b, sim.stats().delivered);
        assert_eq!(a, 25);
        assert_eq!(b, 25);
        // non-edges report None
        assert!(sim.link_load(0, 0).is_none());
    }

    #[test]
    fn same_seed_same_schedule_across_protocols() {
        // Two *different* protocol instances (different message handling)
        // must see the same (sender, receiver) sequence. We verify via
        // delivered-from lists on a protocol that never mutates shared
        // state the schedule could observe.
        let g = complete(6);
        let trace = |skip: bool| {
            struct P {
                log: Vec<(NodeId, NodeId)>,
                skip: bool,
            }
            impl Protocol for P {
                type Msg = f64;
                fn on_send(&mut self, node: NodeId, target: NodeId) -> f64 {
                    self.log.push((node, target));
                    if self.skip {
                        0.0
                    } else {
                        node as f64
                    }
                }
                fn on_receive(&mut self, _n: NodeId, _f: NodeId, _m: &mut f64) {}
            }
            let mut sim = Simulator::new(&g, P { log: vec![], skip }, FaultPlan::none(), 99);
            sim.run(15);
            sim.protocol().log.clone()
        };
        assert_eq!(trace(false), trace(true));
    }

    #[test]
    fn link_heal_restores_traffic() {
        let g = bus(3); // 0-1-2
        let plan = FaultPlan::none().fail_link(0, 1, 5).heal_link(0, 1, 10);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 11);
        sim.enable_trace(10_000);
        sim.run(30);
        // Both endpoints re-admitted each other...
        assert_eq!(sim.believed_alive(0), &[1]);
        assert_eq!(sim.believed_alive(1), &[0, 2]);
        let mut rehabs = sim.protocol().rehabs.clone();
        rehabs.sort_unstable();
        assert_eq!(rehabs, vec![(0, 1), (1, 0)]);
        assert_eq!(sim.stats().rehabilitated, 2);
        // ...and traffic across the healed link resumed: node 0 is only
        // connected to 1, so any delivery to 0 after round 10 proves it.
        let trace = sim.trace().unwrap();
        assert!(trace.events().any(|e| matches!(
            e,
            Event::LinkHealed {
                round: 10,
                a: 0,
                b: 1
            }
        )));
        assert!(trace
            .events()
            .any(|e| matches!(e, Event::Delivered { round, dst: 0, .. } if *round > 10)));
    }

    #[test]
    fn node_restart_rejoins_with_fresh_state_hooks() {
        let g = ring(5);
        let plan = FaultPlan::none().crash_node(2, 3).restart_node(2, 10);
        let mut sim = Simulator::new(&g, Recorder::new(5), plan, 17);
        sim.run(30);
        assert!(sim.is_alive(2));
        assert_eq!(sim.alive_nodes().count(), 5);
        assert_eq!(sim.protocol().restarts, vec![2]);
        let mut nr = sim.protocol().neighbor_restarts.clone();
        nr.sort_unstable();
        assert_eq!(nr, vec![(1, 2), (3, 2)]);
        assert_eq!(sim.stats().rehabilitated, 2);
        // Mutual believed-alive sets are whole again.
        assert_eq!(sim.believed_alive(2), &[1, 3]);
        assert_eq!(sim.believed_alive(1), &[0, 2]);
        assert_eq!(sim.believed_alive(3), &[2, 4]);
        // The restarted node sends again.
        let received_from_2 = sim
            .protocol()
            .received
            .iter()
            .flatten()
            .filter(|&&(from, _)| from == 2)
            .count();
        assert!(received_from_2 > 0, "restarted node should resume sending");
    }

    #[test]
    fn restart_does_not_readmit_across_dead_link() {
        let g = bus(3); // 0-1-2
        let plan = FaultPlan::none()
            .crash_node(1, 2)
            .fail_link(0, 1, 4)
            .restart_node(1, 10);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 5);
        sim.run(30);
        // Link (0,1) stays physically dead through the restart.
        assert_eq!(sim.believed_alive(1), &[2]);
        assert!(sim.believed_alive(0).is_empty());
        // Only node 2 runs the neighbor-restart handling.
        assert_eq!(sim.protocol().neighbor_restarts, vec![(2, 1)]);
    }

    #[test]
    fn restart_purges_stale_in_flight_messages() {
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(3),
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().crash_node(1, 1).restart_node(1, 2);
        let mut sim = Simulator::with_options(&g, Recorder::new(2), plan, 3, opts);
        sim.enable_trace(10_000);
        sim.run(20);
        assert_eq!(sim.protocol().restarts, vec![1]);
        // Everything in flight at the restart (sent in rounds 0 and 1) was
        // purged: the first delivery comes from a round ≥ 2 send, i.e. at
        // round ≥ 5.
        let first = sim
            .trace()
            .unwrap()
            .events()
            .find_map(|e| match e {
                Event::Delivered { round, .. } => Some(*round),
                _ => None,
            })
            .expect("traffic should resume after the restart");
        assert!(first >= 5, "stale in-flight delivery at round {first}");
    }

    #[test]
    fn timeout_detector_suspects_after_silence() {
        let g = bus(2);
        let opts = SimOptions {
            detector: DetectorModel::Timeout { window: 3 },
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().crash_node(1, 2);
        let mut sim = Simulator::with_options(&g, Recorder::new(2), plan, 7, opts);
        sim.enable_trace(10_000);
        sim.run(20);
        // Node 0 last heard from 1 in round 1; silence reaches the window
        // at the end of round 4 — exactly crash round + window.
        assert_eq!(sim.protocol().suspects, vec![(0, 1)]);
        assert_eq!(sim.stats().suspected, 1);
        assert!(sim.believed_alive(0).is_empty());
        assert!(sim.trace().unwrap().events().any(|e| matches!(
            e,
            Event::NodeSuspected {
                round: 4,
                node: 0,
                neighbor: 1
            }
        )));
        // The oracle stayed silent: no Detected events, no on_link_failed.
        assert!(sim.protocol().failed_links.is_empty());
        assert!(!sim
            .trace()
            .unwrap()
            .events()
            .any(|e| matches!(e, Event::Detected { .. })));
    }

    #[test]
    fn false_suspicion_rehabilitated_by_late_arrival() {
        // Fixed delay 4 with window 3: both nodes suspect each other at the
        // end of round 3 (nothing has arrived yet), then the round-0
        // messages arrive in round 4 and rehabilitate — a pure
        // detector-level false positive, no fault anywhere.
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(4),
            detector: DetectorModel::Timeout { window: 3 },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(2), FaultPlan::none(), 1, opts);
        sim.run(40);
        let s = sim.stats();
        assert_eq!(s.suspected, 2, "each node suspects once");
        assert_eq!(s.rehabilitated, 2, "each suspicion is rehabilitated");
        assert_eq!(sim.protocol().suspects, vec![(0, 1), (1, 0)]);
        let mut rehabs = sim.protocol().rehabs.clone();
        rehabs.sort_unstable();
        assert_eq!(rehabs, vec![(0, 1), (1, 0)]);
        // Steady state after rehabilitation: traffic flows, no flapping.
        assert_eq!(sim.believed_alive(0), &[1]);
        assert_eq!(sim.believed_alive(1), &[0]);
        assert!(s.delivered > 50, "delivered={}", s.delivered);
    }

    #[test]
    fn try_with_options_returns_typed_errors() {
        let g = ring(4);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(2),
            ..SimOptions::default()
        };
        let err = Simulator::try_with_options(&g, Recorder::new(4), FaultPlan::none(), 0, opts)
            .err()
            .unwrap();
        assert_eq!(err, SimConfigError::AsyncWithDelay);
        let opts = SimOptions {
            detector: DetectorModel::Timeout { window: 0 },
            ..SimOptions::default()
        };
        let err = Simulator::try_with_options(&g, Recorder::new(4), FaultPlan::none(), 0, opts)
            .err()
            .unwrap();
        assert_eq!(err, SimConfigError::ZeroTimeoutWindow);
    }

    #[test]
    #[should_panic(expected = "restarts node 0, which is alive")]
    fn restarting_an_alive_node_panics() {
        let g = bus(2);
        let plan = FaultPlan::none().restart_node(0, 1);
        let mut sim = Simulator::new(&g, Recorder::new(2), plan, 0);
        sim.run(3);
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn healing_a_non_edge_panics() {
        // Construction-time validation (used to panic at fire time).
        let g = bus(3);
        let plan = FaultPlan::none().heal_link(0, 2, 1);
        let _ = Simulator::new(&g, Recorder::new(3), plan, 0);
    }

    #[test]
    fn burst_chain_drops_in_bursts() {
        // enter=1, exit=0, loss=1: the chain goes bad on the very first
        // message and stays there — everything is a burst loss, nothing
        // an i.i.d. loss.
        let g = ring(6);
        let plan = FaultPlan::none().with_burst(1.0, 0.0, 1.0);
        let mut sim = Simulator::new(&g, Recorder::new(6), plan, 5);
        sim.enable_trace(1000);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_burst, 60);
        assert_eq!(sim.stats().lost_random, 0);
        assert!(sim
            .trace()
            .unwrap()
            .events()
            .any(|e| matches!(e, Event::LostBurst { .. })));
    }

    #[test]
    fn burst_off_never_draws_from_burst_stream() {
        // A plan without bursts must replay the exact delivered-from
        // sequences of the pre-burst simulator: same seed, same i.i.d.
        // loss, burst on-but-harmless (loss=0) vs. burst absent must
        // diverge *only* through the burst stream, never the fault
        // stream.
        let g = complete(8);
        let run = |plan: FaultPlan| {
            let mut sim = Simulator::new(&g, Recorder::new(8), plan, 7);
            sim.run(30);
            (
                sim.stats().lost_random,
                sim.protocol()
                    .received
                    .iter()
                    .map(|v| v.iter().map(|&(f, _)| f).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
            )
        };
        let plain = run(FaultPlan::with_loss(0.2));
        let with_chain = run(FaultPlan::with_loss(0.2).with_burst(0.3, 0.2, 0.0));
        // loss=0 bursts drop nothing and consume no fault-stream draws:
        // the i.i.d. outcome is byte-identical.
        assert_eq!(plain, with_chain);
    }

    #[test]
    fn partition_cut_and_heal() {
        let g = ring(6); // 0-1-2-3-4-5-0
                         // Cut {0,1,2} off: crossing links (2,3) and (5,0) die at round 4,
                         // heal at round 12.
        let plan = FaultPlan::none()
            .partition(vec![0, 1, 2], 4)
            .heal_partition(vec![0, 1, 2], 12);
        let mut sim = Simulator::new(&g, Recorder::new(6), plan, 9);
        sim.enable_trace(10_000);
        sim.run(8);
        // During the cut: believed sets shrank on both sides of both
        // crossing links, intra-group links untouched.
        assert_eq!(sim.believed_alive(2), &[1]);
        assert_eq!(sim.believed_alive(3), &[4]);
        assert_eq!(sim.believed_alive(0), &[1]);
        assert_eq!(sim.believed_alive(5), &[4]);
        assert_eq!(sim.believed_alive(1), &[0, 2]);
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(0, 5), (2, 3), (3, 2), (5, 0)]);
        sim.run(12);
        // After the heal: everything whole again, each endpoint
        // rehabilitated once per severed link.
        assert_eq!(sim.believed_alive(2), &[1, 3]);
        assert_eq!(sim.believed_alive(0), &[1, 5]);
        assert_eq!(sim.stats().rehabilitated, 4);
        let trace = sim.trace().unwrap();
        assert!(trace
            .events()
            .any(|e| matches!(e, Event::PartitionStarted { round: 4, cut: 2 })));
        assert!(trace
            .events()
            .any(|e| matches!(e, Event::PartitionHealed { round: 12, cut: 2 })));
        // Cross-cut traffic resumed after the heal.
        assert!(trace.events().any(
            |e| matches!(e, Event::Delivered { round, src: 3, dst: 2 } if *round > 12)
                || matches!(e, Event::Delivered { round, src: 2, dst: 3 } if *round > 12)
        ));
    }

    #[test]
    fn partition_is_bidirectional_and_listing_side_is_irrelevant() {
        let g = ring(6);
        let run = |members: Vec<NodeId>| {
            let plan = FaultPlan::none().partition(members, 3);
            let mut sim = Simulator::new(&g, Recorder::new(6), plan, 2);
            sim.run(10);
            let believed: Vec<Vec<NodeId>> =
                (0..6).map(|i| sim.believed_alive(i).to_vec()).collect();
            (believed, sim.stats().sent)
        };
        // Cutting {0,1,2} severs the same two links as cutting {3,4,5}.
        assert_eq!(run(vec![0, 1, 2]), run(vec![3, 4, 5]));
    }
}
