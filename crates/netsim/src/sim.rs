//! The round-driven simulator core.

use crate::faults::{Corrupt, FaultPlan, LinkFailure, NodeCrash};
use crate::options::{Activation, DelayModel, SimOptions};
use crate::rng::{stream_rng, RngStream};
use crate::schedule::Schedule;
use crate::trace::{Event, Trace};
use gr_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// A gossip protocol as seen by the simulator.
///
/// The protocol object owns the state of *all* nodes (structure-of-arrays —
/// one allocation-free object instead of `n` boxed actors); the simulator
/// tells it which node acts and whom it talks to. The partner choice is
/// made by the simulator's schedule, never by the protocol, so that
/// identical seeds yield identical schedules across protocols (the paper's
/// Fig. 4/7 methodology).
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Msg: Clone + Corrupt;

    /// Node `node` performs its per-round send to `target` (a believed-alive
    /// neighbor chosen by the schedule) and returns the message to ship.
    fn on_send(&mut self, node: NodeId, target: NodeId) -> Self::Msg;

    /// Node `node` processes a message that arrived from `from`. The
    /// message is passed by mutable reference so delivery reads it in
    /// place from the transport buffer (no per-message move of large
    /// payloads); protocols that want to keep (parts of) it may steal the
    /// contents with `std::mem::take`/`replace` — the buffer slot is dead
    /// after the call either way.
    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut Self::Msg);

    /// Hint that `on_receive(node, from, _)` is about to run. The delivery
    /// loop calls this a few messages ahead so implementations can prefetch
    /// the per-arc state the handler will touch — receivers arrive in
    /// random order, so those accesses otherwise stall on a cache miss
    /// right on the critical path. Must not mutate observable state.
    /// Default: do nothing.
    #[inline]
    fn prewarm(&self, node: NodeId, from: NodeId) {
        let _ = (node, from);
    }

    /// Node `node` has detected that the link to `neighbor` is permanently
    /// gone and should run its failure handling (PF/PCF: excise the flow
    /// variables for that link). Default: do nothing.
    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        let _ = (node, neighbor);
    }

    /// Called right after `node` processed a message from `from`: return
    /// `Some(reply)` to send an immediate response back over the same
    /// link (push-**pull** gossip). The reply passes through the same
    /// transit fault pipeline but cannot itself be replied to. Default:
    /// no reply (pure push protocols).
    fn reply(&mut self, node: NodeId, from: NodeId) -> Option<Self::Msg> {
        let _ = (node, from);
        None
    }
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct SimStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to a receive handler.
    pub delivered: u64,
    /// Messages lost to the probabilistic loss model.
    pub lost_random: u64,
    /// Messages lost because the link or an endpoint was physically dead.
    pub lost_dead: u64,
    /// Bit flips injected.
    pub bit_flips: u64,
}

/// One pending "link (a,b) is detected failed at `round`" event.
#[derive(Clone, Copy, Debug)]
struct Detection {
    round: u64,
    node: NodeId,
    neighbor: NodeId,
}

/// Snapshot a plan's scheduled events into fire-order queues. The sort is
/// stable, so events sharing an `at_round` fire in plan order — exactly
/// the order the old per-round scan produced.
fn sorted_queues(plan: &FaultPlan) -> (Vec<LinkFailure>, Vec<NodeCrash>) {
    let mut links = plan.link_failures.clone();
    links.sort_by_key(|f| f.at_round);
    let mut crashes = plan.node_crashes.clone();
    crashes.sort_by_key(|c| c.at_round);
    (links, crashes)
}

/// The simulator: drives a [`Protocol`] over a [`Graph`] under a
/// [`FaultPlan`].
pub struct Simulator<'g, P: Protocol> {
    graph: &'g Graph,
    protocol: P,
    schedule: Schedule,
    schedule_rng: StdRng,
    fault_rng: StdRng,
    plan: FaultPlan,
    /// Scheduled link failures, stable-sorted by `at_round` at
    /// construction; `link_cursor` points at the first unfired event, so
    /// firing is a cursor advance instead of a per-round scan+collect.
    link_queue: Vec<LinkFailure>,
    link_cursor: usize,
    /// Scheduled crashes, same discipline as `link_queue`.
    crash_queue: Vec<NodeCrash>,
    crash_cursor: usize,
    round: u64,
    alive_node: Vec<bool>,
    /// Believed-alive neighbor lists (shrink on detection), kept sorted,
    /// stored flat in the graph's CSR layout: node `i`'s list lives at
    /// `believed_flat[arc_base(i)..][..believed_len[i]]`. Lists only ever
    /// shrink, so each segment stays within its original extent — and the
    /// per-round schedule pick reads straight from one flat array instead
    /// of chasing a per-node `Vec` header.
    believed_flat: Vec<NodeId>,
    believed_len: Vec<u32>,
    /// Per-arc dead bits (`arc_base(i) + neighbor_slot(i, j)`), both
    /// directions set when a link dies: an O(log deg) bitmask probe per
    /// message instead of a `HashSet` hash+lookup.
    dead_arcs: Vec<u64>,
    /// False until the first crash or link death fires; lets `transit`
    /// skip every liveness check on the healthy path.
    physical_faults: bool,
    /// Detections not yet delivered, kept sorted descending by
    /// `(round, node, neighbor)` so delivery pops due events off the end
    /// in deterministic order without a per-round sort or allocation.
    pending_detections: Vec<Detection>,
    activation: Activation,
    delay: DelayModel,
    /// Delivery ring buffer: `buckets[r % len]` holds the messages due in
    /// round `r`, in send order. With the default zero-delay model this
    /// is a single reused buffer.
    buckets: Vec<Vec<(NodeId, NodeId, P::Msg)>>,
    /// Scratch list of alive node ids (async activation sampling),
    /// rebuilt only after a crash invalidates it.
    alive_scratch: Vec<NodeId>,
    alive_scratch_dirty: bool,
    /// Optional bounded event recorder (see [`Simulator::enable_trace`]).
    trace: Option<Trace>,
    /// Optional per-arc delivered-message counters
    /// (see [`Simulator::enable_link_load`]).
    link_load: Option<Vec<u64>>,
    stats: SimStats,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Build a simulator with the uniform-random schedule of the paper.
    pub fn new(graph: &'g Graph, protocol: P, plan: FaultPlan, seed: u64) -> Self {
        Self::with_schedule(graph, protocol, plan, seed, Schedule::uniform())
    }

    /// Build a simulator with an explicit schedule policy.
    pub fn with_schedule(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        schedule: Schedule,
    ) -> Self {
        Self::with_options(
            graph,
            protocol,
            plan,
            seed,
            SimOptions {
                schedule,
                ..SimOptions::default()
            },
        )
    }

    /// Build a simulator with full execution-model control.
    ///
    /// # Panics
    /// Panics if a nonzero delay model is combined with asynchronous
    /// activation (async exchanges are atomic by definition).
    pub fn with_options(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        options: SimOptions,
    ) -> Self {
        let n = graph.len();
        let believed_flat: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|i| graph.neighbors(i).iter().copied())
            .collect();
        let believed_len = (0..n as NodeId).map(|i| graph.degree(i) as u32).collect();
        assert!(
            options.activation == Activation::Synchronous || options.delay.max_delay() == 0,
            "asynchronous activation requires the zero-delay model"
        );
        let buckets = (0..options.delay.max_delay() + 1)
            .map(|_| Vec::new())
            .collect();
        let (link_queue, crash_queue) = sorted_queues(&plan);
        Simulator {
            graph,
            protocol,
            schedule: options.schedule,
            schedule_rng: stream_rng(seed, RngStream::Schedule),
            fault_rng: stream_rng(seed, RngStream::Faults),
            plan,
            link_queue,
            link_cursor: 0,
            crash_queue,
            crash_cursor: 0,
            round: 0,
            alive_node: vec![true; n],
            believed_flat,
            believed_len,
            dead_arcs: vec![0; graph.arc_count().div_ceil(64)],
            physical_faults: false,
            pending_detections: Vec::new(),
            activation: options.activation,
            delay: options.delay,
            buckets,
            alive_scratch: Vec::new(),
            alive_scratch_dirty: true,
            trace: None,
            link_load: None,
            stats: SimStats::default(),
        }
    }

    /// Start recording the most recent `capacity` transport/fault events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The event trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Start counting delivered messages per directed arc.
    pub fn enable_link_load(&mut self) {
        self.link_load = Some(vec![0; self.graph.arc_count()]);
    }

    /// Delivered messages over arc `src → dst`, if counting is enabled.
    pub fn link_load(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let counts = self.link_load.as_ref()?;
        let slot = self.graph.neighbor_slot(src, dst)?;
        Some(counts[self.graph.arc_base(src) + slot])
    }

    #[inline]
    fn record(&mut self, e: Event) {
        if let Some(t) = self.trace.as_mut() {
            t.push(e);
        }
    }

    /// The protocol (for estimate inspection between rounds).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable protocol access (e.g. to reinitialise node data).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// `true` if `node` has not crashed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive_node[node as usize]
    }

    /// Iterator over currently-alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.len() as NodeId).filter(move |&i| self.alive_node[i as usize])
    }

    /// The believed-alive neighbor list of `node` (shrinks as failures are
    /// detected).
    pub fn believed_alive(&self, node: NodeId) -> &[NodeId] {
        let base = self.graph.arc_base(node);
        &self.believed_flat[base..base + self.believed_len[node as usize] as usize]
    }

    /// Mark the arcs of link `(a, b)` physically dead, both directions.
    fn mark_link_dead(&mut self, a: NodeId, b: NodeId) {
        self.physical_faults = true;
        for (x, y) in [(a, b), (b, a)] {
            if let Some(slot) = self.graph.neighbor_slot(x, y) {
                let arc = self.graph.arc_base(x) + slot;
                self.dead_arcs[arc / 64] |= 1 << (arc % 64);
            }
        }
    }

    #[inline]
    fn arc_is_dead(&self, src: NodeId, dst: NodeId) -> bool {
        match self.graph.neighbor_slot(src, dst) {
            Some(slot) => {
                let arc = self.graph.arc_base(src) + slot;
                self.dead_arcs[arc / 64] & (1 << (arc % 64)) != 0
            }
            None => false,
        }
    }

    /// Insert keeping `pending_detections` sorted descending by
    /// `(round, node, neighbor)`; plans hold a handful of events, so the
    /// shift is cheap and only the fault window ever allocates.
    fn push_detection(&mut self, d: Detection) {
        let key = (d.round, d.node, d.neighbor);
        let pos = self
            .pending_detections
            .partition_point(|p| (p.round, p.node, p.neighbor) > key);
        self.pending_detections.insert(pos, d);
    }

    fn remove_believed(&mut self, node: NodeId, neighbor: NodeId) -> bool {
        let base = self.graph.arc_base(node);
        let len = self.believed_len[node as usize] as usize;
        let list = &mut self.believed_flat[base..base + len];
        match list.binary_search(&neighbor) {
            Ok(pos) => {
                list.copy_within(pos + 1.., pos);
                self.believed_len[node as usize] = (len - 1) as u32;
                true
            }
            Err(_) => false,
        }
    }

    /// Phase 1: fire physical faults scheduled for this round and enqueue
    /// their detections. The queues are pre-sorted by `at_round`, so this
    /// is a cursor advance — zero work and zero allocation on rounds with
    /// nothing scheduled.
    fn fire_scheduled_faults(&mut self) {
        let round = self.round;
        // Link failures.
        while let Some(&f) = self.link_queue.get(self.link_cursor) {
            if f.at_round > round {
                break;
            }
            debug_assert_eq!(f.at_round, round);
            self.link_cursor += 1;
            assert!(
                self.graph.has_edge(f.a, f.b),
                "fault plan kills nonexistent link ({}, {})",
                f.a,
                f.b
            );
            self.record(Event::LinkFailed {
                round,
                a: f.a,
                b: f.b,
            });
            self.mark_link_dead(f.a, f.b);
            let at = round + f.detect_delay;
            self.push_detection(Detection {
                round: at,
                node: f.a,
                neighbor: f.b,
            });
            self.push_detection(Detection {
                round: at,
                node: f.b,
                neighbor: f.a,
            });
        }
        // Node crashes.
        while let Some(&c) = self.crash_queue.get(self.crash_cursor) {
            if c.at_round > round {
                break;
            }
            debug_assert_eq!(c.at_round, round);
            self.crash_cursor += 1;
            self.record(Event::NodeCrashed {
                round,
                node: c.node,
            });
            self.alive_node[c.node as usize] = false;
            self.physical_faults = true;
            self.alive_scratch_dirty = true;
            let at = round + c.detect_delay;
            let graph = self.graph;
            for &j in graph.neighbors(c.node) {
                self.push_detection(Detection {
                    round: at,
                    node: j,
                    neighbor: c.node,
                });
            }
        }
    }

    /// Phase 2: deliver due detections to alive endpoints. The queue is
    /// sorted descending, so everything due pops off the end already in
    /// the deterministic `(node, neighbor)` handling order.
    fn deliver_detections(&mut self) {
        if self.pending_detections.is_empty() {
            return;
        }
        let round = self.round;
        while let Some(&d) = self.pending_detections.last() {
            if d.round > round {
                break;
            }
            self.pending_detections.pop();
            if self.alive_node[d.node as usize] && self.remove_believed(d.node, d.neighbor) {
                self.record(Event::Detected {
                    round,
                    node: d.node,
                    neighbor: d.neighbor,
                });
                self.protocol.on_link_failed(d.node, d.neighbor);
            }
        }
    }

    /// Apply the transit fault pipeline (dead link, probabilistic loss,
    /// bit corruption) to one message in place; `true` means it survives.
    /// Until the first physical fault fires, the liveness checks are a
    /// single branch, and clean plans skip the probabilistic draws too.
    #[inline]
    fn transit(&mut self, src: NodeId, dst: NodeId, msg: &mut P::Msg) -> bool {
        let round = self.round;
        if self.physical_faults
            && (!self.alive_node[src as usize]
                || !self.alive_node[dst as usize]
                || self.arc_is_dead(src, dst))
        {
            self.stats.lost_dead += 1;
            self.record(Event::LostDead { round, src, dst });
            return false;
        }
        if self.plan.msg_loss_prob > 0.0 && self.fault_rng.random::<f64>() < self.plan.msg_loss_prob
        {
            self.stats.lost_random += 1;
            self.record(Event::LostRandom { round, src, dst });
            return false;
        }
        if self.plan.bit_flip_prob > 0.0 && self.fault_rng.random::<f64>() < self.plan.bit_flip_prob
        {
            let bits = msg.corruptible_bits();
            if bits > 0 {
                let bit = self.fault_rng.random_range(0..bits);
                msg.flip_bit(bit);
                self.stats.bit_flips += 1;
                self.record(Event::BitFlipped {
                    round,
                    src,
                    dst,
                    bit,
                });
            }
        }
        true
    }

    /// Offer `replier` the chance to answer `to` immediately (push-pull).
    /// The reply takes the ordinary transit pipeline; replies to replies
    /// are not solicited.
    fn deliver_reply(&mut self, replier: NodeId, to: NodeId) {
        if let Some(mut reply) = self.protocol.reply(replier, to) {
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: replier,
                dst: to,
            });
            if self.transit(replier, to, &mut reply) {
                self.protocol.on_receive(to, replier, &mut reply);
                self.note_delivery(replier, to);
            }
        }
    }

    #[inline]
    fn note_delivery(&mut self, src: NodeId, dst: NodeId) {
        self.stats.delivered += 1;
        let round = self.round;
        self.record(Event::Delivered { round, src, dst });
        if let Some(counts) = self.link_load.as_mut() {
            if let Some(slot) = self.graph.neighbor_slot(src, dst) {
                counts[self.graph.arc_base(src) + slot] += 1;
            }
        }
    }

    /// Execute one round (synchronous) or `n` activations (asynchronous).
    pub fn step(&mut self) {
        self.fire_scheduled_faults();
        self.deliver_detections();
        match self.activation {
            Activation::Synchronous => self.step_synchronous(),
            Activation::Asynchronous => self.step_asynchronous(),
        }
        self.round += 1;
        self.stats.rounds += 1;
    }

    fn step_synchronous(&mut self) {
        // Phase 3: sends, enqueued for delivery `delay` rounds from now.
        let nbuckets = self.buckets.len() as u64;
        for i in 0..self.graph.len() as NodeId {
            if !self.alive_node[i as usize] {
                continue;
            }
            let base = self.graph.arc_base(i);
            let alive = &self.believed_flat[base..base + self.believed_len[i as usize] as usize];
            let target = self.schedule.pick(i, alive, &mut self.schedule_rng);
            let Some(target) = target else { continue };
            let msg = self.protocol.on_send(i, target);
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: i,
                dst: target,
            });
            let d = self.delay.sample(&mut self.fault_rng);
            let slot = if nbuckets == 1 {
                0
            } else {
                ((self.round + d) % nbuckets) as usize
            };
            self.buckets[slot].push((i, target, msg));
        }

        // Phase 4+5: transit faults, then in-order delivery of everything
        // due this round.
        let slot = if nbuckets == 1 {
            0
        } else {
            (self.round % nbuckets) as usize
        };
        // Nothing in this phase can introduce a fault, so one check
        // covers the whole batch: the fully-clean case (no physical
        // faults, no probabilistic models) skips `transit` entirely.
        let clean = !self.physical_faults
            && self.plan.msg_loss_prob <= 0.0
            && self.plan.bit_flip_prob <= 0.0;
        let mut batch = std::mem::take(&mut self.buckets[slot]);
        // Receivers are in random order while the batch is walked
        // sequentially: warm the state a few deliveries ahead so the
        // handler's first loads come out of cache.
        const LOOKAHEAD: usize = 8;
        for i in 0..batch.len() {
            if let Some(ahead) = batch.get(i + LOOKAHEAD) {
                self.protocol.prewarm(ahead.1, ahead.0);
            }
            let entry = &mut batch[i];
            let (src, dst) = (entry.0, entry.1);
            let msg = &mut entry.2;
            if clean || self.transit(src, dst, msg) {
                self.protocol.on_receive(dst, src, msg);
                self.note_delivery(src, dst);
                self.deliver_reply(dst, src);
            }
        }
        batch.clear();
        self.buckets[slot] = batch; // hand the allocation back
    }

    fn step_asynchronous(&mut self) {
        // n single-node activations; each is an atomic send+deliver, so
        // no crossing exchanges exist in this model.
        if self.alive_scratch_dirty {
            self.alive_scratch.clear();
            self.alive_scratch
                .extend((0..self.graph.len() as NodeId).filter(|&i| self.alive_node[i as usize]));
            self.alive_scratch_dirty = false;
        }
        if self.alive_scratch.is_empty() {
            return;
        }
        // One activation per alive node per round in expectation (dead
        // nodes' Poisson clocks stop ticking).
        for _ in 0..self.alive_scratch.len() {
            let k = self.schedule_rng.random_range(0..self.alive_scratch.len());
            let i = self.alive_scratch[k];
            let base = self.graph.arc_base(i);
            let alive = &self.believed_flat[base..base + self.believed_len[i as usize] as usize];
            let target = self.schedule.pick(i, alive, &mut self.schedule_rng);
            let Some(target) = target else { continue };
            let mut msg = self.protocol.on_send(i, target);
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: i,
                dst: target,
            });
            if self.transit(i, target, &mut msg) {
                self.protocol.on_receive(target, i, &mut msg);
                self.note_delivery(i, target);
                self.deliver_reply(target, i);
            }
        }
    }

    /// Execute `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Replace the fault plan from the next round on. Scheduled events
    /// whose `at_round` is already past never fire; probabilistic loss and
    /// corruption switch immediately. Used to model fault episodes ("flip
    /// bits for 200 rounds, then run clean and watch recovery").
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let (link_queue, crash_queue) = sorted_queues(&plan);
        // Skip events already in the past, preserving the "never fire"
        // contract; the cursors then only ever see current-round events.
        self.link_cursor = link_queue.partition_point(|f| f.at_round < self.round);
        self.crash_cursor = crash_queue.partition_point(|c| c.at_round < self.round);
        self.link_queue = link_queue;
        self.crash_queue = crash_queue;
        self.plan = plan;
    }

    /// Manually kill a link right now (physical + immediate detection).
    /// Convenience for tests and interactive examples; scheduled plans are
    /// the primary interface.
    pub fn fail_link_now(&mut self, a: NodeId, b: NodeId) {
        assert!(self.graph.has_edge(a, b), "no link ({a},{b}) to fail");
        self.mark_link_dead(a, b);
        for (x, y) in [(a, b), (b, a)] {
            if self.alive_node[x as usize] && self.remove_believed(x, y) {
                self.protocol.on_link_failed(x, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_topology::{bus, complete, ring};

    /// Test protocol: every node counts what it receives and remembers
    /// link-failure callbacks; messages carry the sender id as f64.
    #[derive(Default)]
    struct Recorder {
        received: Vec<Vec<(NodeId, f64)>>,
        failed_links: Vec<(NodeId, NodeId)>,
        sends: u64,
    }

    impl Recorder {
        fn new(n: usize) -> Self {
            Recorder {
                received: vec![Vec::new(); n],
                failed_links: Vec::new(),
                sends: 0,
            }
        }
    }

    impl Protocol for Recorder {
        type Msg = f64;
        fn on_send(&mut self, node: NodeId, _target: NodeId) -> f64 {
            self.sends += 1;
            node as f64
        }
        fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut f64) {
            self.received[node as usize].push((from, *msg));
        }
        fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
            self.failed_links.push((node, neighbor));
        }
    }

    #[test]
    fn every_alive_node_sends_once_per_round() {
        let g = ring(10);
        let mut sim = Simulator::new(&g, Recorder::new(10), FaultPlan::none(), 1);
        sim.run(5);
        assert_eq!(sim.stats().sent, 50);
        assert_eq!(sim.stats().delivered, 50);
        assert_eq!(sim.protocol().sends, 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = complete(8);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Recorder::new(8), FaultPlan::none(), seed);
            sim.run(20);
            sim.protocol()
                .received
                .iter()
                .map(|v| v.iter().map(|&(f, _)| f).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn messages_only_flow_on_edges() {
        let g = bus(5);
        let mut sim = Simulator::new(&g, Recorder::new(5), FaultPlan::none(), 3);
        sim.run(50);
        for node in 0..5u32 {
            for &(from, _) in &sim.protocol().received[node as usize] {
                assert!(g.has_edge(node, from), "non-edge delivery {from}->{node}");
            }
        }
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let g = ring(6);
        let mut sim = Simulator::new(&g, Recorder::new(6), FaultPlan::with_loss(1.0), 5);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_random, 60);
    }

    #[test]
    fn link_failure_detected_and_excluded() {
        let g = bus(3); // 0-1-2
        let plan = FaultPlan::none().fail_link(0, 1, 5);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 11);
        sim.run(20);
        // Both endpoints got the callback exactly once.
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(0, 1), (1, 0)]);
        // Node 0 is isolated afterwards: believed-alive list empty.
        assert!(sim.believed_alive(0).is_empty());
        assert_eq!(sim.believed_alive(1), &[2]);
        // After the failure, node 0 sends nothing; all rounds: pre-failure
        // 3 sends/round * 5 rounds, post: 2 sends/round * 15 rounds.
        assert_eq!(sim.stats().sent, 15 + 30);
        assert_eq!(sim.stats().lost_dead, 0); // detection was immediate
    }

    #[test]
    fn detection_delay_loses_messages_silently() {
        let g = bus(2); // single link 0-1
        let plan = FaultPlan {
            link_failures: vec![crate::faults::LinkFailure {
                a: 0,
                b: 1,
                at_round: 0,
                detect_delay: 4,
            }],
            ..FaultPlan::none()
        };
        let mut sim = Simulator::new(&g, Recorder::new(2), plan, 2);
        sim.run(10);
        // Rounds 0..4: both nodes still address the dead link; messages lost.
        assert_eq!(sim.stats().lost_dead, 8);
        assert_eq!(sim.stats().delivered, 0);
        // After detection both nodes are isolated and stop sending.
        assert_eq!(sim.stats().sent, 8);
    }

    #[test]
    fn node_crash_stops_traffic_and_notifies_neighbors() {
        let g = ring(5);
        let plan = FaultPlan::none().crash_node(2, 3);
        let mut sim = Simulator::new(&g, Recorder::new(5), plan, 17);
        sim.run(30);
        assert!(!sim.is_alive(2));
        assert_eq!(sim.alive_nodes().count(), 4);
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(1, 2), (3, 2)]);
        // Nothing was delivered to node 2 after the crash round.
        // (Ring neighbors detected instantly, so no lost_dead either.)
        assert_eq!(sim.stats().lost_dead, 0);
    }

    #[test]
    fn bit_flips_corrupt_payloads() {
        let g = bus(2);
        let mut sim = Simulator::new(&g, Recorder::new(2), FaultPlan::with_bit_flips(1.0), 23);
        sim.run(50);
        assert_eq!(sim.stats().bit_flips, 100);
        // At least one delivered payload must differ from the sender id.
        let corrupted = sim
            .protocol()
            .received
            .iter()
            .flatten()
            .any(|&(from, v)| v != from as f64);
        assert!(corrupted);
    }

    #[test]
    fn fail_link_now_is_immediate() {
        let g = bus(3);
        let mut sim = Simulator::new(&g, Recorder::new(3), FaultPlan::none(), 0);
        sim.fail_link_now(1, 2);
        assert_eq!(sim.believed_alive(1), &[0]);
        assert!(sim.believed_alive(2).is_empty());
        assert_eq!(sim.protocol().failed_links.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn plan_with_bogus_link_panics() {
        let g = bus(3); // 0-1-2; (0,2) is not an edge
        let plan = FaultPlan::none().fail_link(0, 2, 0);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 0);
        sim.step();
    }

    #[test]
    fn async_activation_sends_n_per_round() {
        let g = ring(10);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(10), FaultPlan::none(), 5, opts);
        sim.run(7);
        // n activations per round, every one delivered immediately
        assert_eq!(sim.stats().sent, 70);
        assert_eq!(sim.stats().delivered, 70);
    }

    #[test]
    fn async_skips_dead_nodes() {
        let g = ring(6);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().crash_node(2, 3);
        let mut sim = Simulator::with_options(&g, Recorder::new(6), plan, 6, opts);
        sim.run(20);
        // after the crash, node 2 neither sends nor receives: total
        // activations drop from 6 to 5 per round
        assert!(!sim.is_alive(2));
        assert!(sim.stats().sent < 120);
        assert!(sim.stats().sent >= 3 * 6 + 17 * 5);
    }

    #[test]
    #[should_panic(expected = "zero-delay")]
    fn async_plus_delay_rejected() {
        let g = ring(4);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(2),
            ..SimOptions::default()
        };
        let _ = Simulator::with_options(&g, Recorder::new(4), FaultPlan::none(), 0, opts);
    }

    #[test]
    fn fixed_delay_shifts_delivery() {
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(3),
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(2), FaultPlan::none(), 1, opts);
        sim.run(3);
        // nothing delivered yet: messages from round r arrive at r+3
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().sent, 6);
        sim.run(1);
        // round 3 delivers the round-0 messages
        assert_eq!(sim.stats().delivered, 2);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 2 * 11); // rounds 0..=10 delivered by round 13
    }

    #[test]
    fn uniform_delay_delivers_everything_eventually() {
        let g = complete(6);
        let opts = SimOptions {
            delay: DelayModel::Uniform { min: 0, max: 4 },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(6), FaultPlan::none(), 9, opts);
        sim.run(50);
        let s = sim.stats();
        // everything sent at least 4 rounds ago has been delivered
        assert!(s.delivered >= 6 * (50 - 4));
        assert!(s.delivered <= s.sent);
        // and deliveries only flow along edges
        for node in 0..6u32 {
            for &(from, _) in &sim.protocol().received[node as usize] {
                assert!(g.has_edge(node, from));
            }
        }
    }

    #[test]
    fn delayed_messages_die_with_the_link() {
        // A message in flight when its link fails is lost.
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(5),
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().fail_link(0, 1, 2);
        let mut sim = Simulator::with_options(&g, Recorder::new(2), plan, 3, opts);
        sim.run(20);
        // rounds 0 and 1 produced 4 in-flight messages; all die when the
        // link fails at round 2, before any could be delivered at round 5.
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_dead, 4);
    }

    #[test]
    fn trace_records_transport_and_faults() {
        let g = bus(3);
        let plan = FaultPlan::with_loss(0.3)
            .fail_link(0, 1, 5)
            .crash_node(2, 8);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 7);
        sim.enable_trace(10_000);
        sim.run(20);
        let trace = sim.trace().unwrap();
        let mut sent = 0;
        let mut delivered = 0;
        let mut lost = 0;
        let mut link_failed = false;
        let mut crashed = false;
        let mut detected = 0;
        for e in trace.events() {
            match e {
                Event::Sent { .. } => sent += 1,
                Event::Delivered { .. } => delivered += 1,
                Event::LostRandom { .. } | Event::LostDead { .. } => lost += 1,
                Event::LinkFailed { round, a, b } => {
                    assert_eq!((*round, *a, *b), (5, 0, 1));
                    link_failed = true;
                }
                Event::NodeCrashed { round, node } => {
                    assert_eq!((*round, *node), (8, 2));
                    crashed = true;
                }
                Event::Detected { .. } => detected += 1,
                Event::BitFlipped { .. } => {}
            }
        }
        let s = sim.stats();
        assert_eq!(sent as u64, s.sent);
        assert_eq!(delivered as u64, s.delivered);
        assert_eq!(lost as u64, s.lost_random + s.lost_dead);
        assert!(link_failed && crashed);
        // link (0,1) detection at both ends + crash detection at node 1
        assert_eq!(detected, 3);
    }

    #[test]
    fn trace_is_bounded() {
        let g = complete(8);
        let mut sim = Simulator::new(&g, Recorder::new(8), FaultPlan::none(), 1);
        sim.enable_trace(16);
        sim.run(50);
        let t = sim.trace().unwrap();
        assert_eq!(t.len(), 16);
        assert!(t.dropped() > 0);
    }

    #[test]
    fn link_load_counts_deliveries() {
        let g = bus(2);
        let mut sim = Simulator::new(&g, Recorder::new(2), FaultPlan::none(), 3);
        sim.enable_link_load();
        sim.run(25);
        let a = sim.link_load(0, 1).unwrap();
        let b = sim.link_load(1, 0).unwrap();
        assert_eq!(a + b, sim.stats().delivered);
        assert_eq!(a, 25);
        assert_eq!(b, 25);
        // non-edges report None
        assert!(sim.link_load(0, 0).is_none());
    }

    #[test]
    fn same_seed_same_schedule_across_protocols() {
        // Two *different* protocol instances (different message handling)
        // must see the same (sender, receiver) sequence. We verify via
        // delivered-from lists on a protocol that never mutates shared
        // state the schedule could observe.
        let g = complete(6);
        let trace = |skip: bool| {
            struct P {
                log: Vec<(NodeId, NodeId)>,
                skip: bool,
            }
            impl Protocol for P {
                type Msg = f64;
                fn on_send(&mut self, node: NodeId, target: NodeId) -> f64 {
                    self.log.push((node, target));
                    if self.skip {
                        0.0
                    } else {
                        node as f64
                    }
                }
                fn on_receive(&mut self, _n: NodeId, _f: NodeId, _m: &mut f64) {}
            }
            let mut sim = Simulator::new(&g, P { log: vec![], skip }, FaultPlan::none(), 99);
            sim.run(15);
            sim.protocol().log.clone()
        };
        assert_eq!(trace(false), trace(true));
    }
}
