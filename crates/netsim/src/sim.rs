//! The round-driven simulator core.

use crate::faults::{Corrupt, FaultPlan};
use crate::options::{Activation, DelayModel, SimOptions};
use crate::rng::{stream_rng, RngStream};
use crate::schedule::Schedule;
use crate::trace::{Event, Trace};
use gr_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashSet;

/// A gossip protocol as seen by the simulator.
///
/// The protocol object owns the state of *all* nodes (structure-of-arrays —
/// one allocation-free object instead of `n` boxed actors); the simulator
/// tells it which node acts and whom it talks to. The partner choice is
/// made by the simulator's schedule, never by the protocol, so that
/// identical seeds yield identical schedules across protocols (the paper's
/// Fig. 4/7 methodology).
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Msg: Clone + Corrupt;

    /// Node `node` performs its per-round send to `target` (a believed-alive
    /// neighbor chosen by the schedule) and returns the message to ship.
    fn on_send(&mut self, node: NodeId, target: NodeId) -> Self::Msg;

    /// Node `node` processes a message that arrived from `from`.
    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: Self::Msg);

    /// Node `node` has detected that the link to `neighbor` is permanently
    /// gone and should run its failure handling (PF/PCF: excise the flow
    /// variables for that link). Default: do nothing.
    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        let _ = (node, neighbor);
    }

    /// Called right after `node` processed a message from `from`: return
    /// `Some(reply)` to send an immediate response back over the same
    /// link (push-**pull** gossip). The reply passes through the same
    /// transit fault pipeline but cannot itself be replied to. Default:
    /// no reply (pure push protocols).
    fn reply(&mut self, node: NodeId, from: NodeId) -> Option<Self::Msg> {
        let _ = (node, from);
        None
    }
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct SimStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to a receive handler.
    pub delivered: u64,
    /// Messages lost to the probabilistic loss model.
    pub lost_random: u64,
    /// Messages lost because the link or an endpoint was physically dead.
    pub lost_dead: u64,
    /// Bit flips injected.
    pub bit_flips: u64,
}

/// One pending "link (a,b) is detected failed at `round`" event.
#[derive(Clone, Copy, Debug)]
struct Detection {
    round: u64,
    node: NodeId,
    neighbor: NodeId,
}

/// The simulator: drives a [`Protocol`] over a [`Graph`] under a
/// [`FaultPlan`].
pub struct Simulator<'g, P: Protocol> {
    graph: &'g Graph,
    protocol: P,
    schedule: Schedule,
    schedule_rng: StdRng,
    fault_rng: StdRng,
    plan: FaultPlan,
    round: u64,
    alive_node: Vec<bool>,
    /// Believed-alive neighbor lists (shrink on detection), kept sorted.
    believed: Vec<Vec<NodeId>>,
    /// Physically dead links, canonical `(min, max)` keys.
    dead_links: HashSet<(NodeId, NodeId)>,
    /// Detections not yet delivered, unordered (scanned each round; plans
    /// hold a handful of events at most).
    pending_detections: Vec<Detection>,
    activation: Activation,
    delay: DelayModel,
    /// Delivery ring buffer: `buckets[r % len]` holds the messages due in
    /// round `r`, in send order. With the default zero-delay model this
    /// is a single reused buffer.
    buckets: Vec<Vec<(NodeId, NodeId, P::Msg)>>,
    /// Scratch list of alive node ids (async activation sampling).
    alive_scratch: Vec<NodeId>,
    /// Optional bounded event recorder (see [`Simulator::enable_trace`]).
    trace: Option<Trace>,
    /// Optional per-arc delivered-message counters
    /// (see [`Simulator::enable_link_load`]).
    link_load: Option<Vec<u64>>,
    stats: SimStats,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Build a simulator with the uniform-random schedule of the paper.
    pub fn new(graph: &'g Graph, protocol: P, plan: FaultPlan, seed: u64) -> Self {
        Self::with_schedule(graph, protocol, plan, seed, Schedule::uniform())
    }

    /// Build a simulator with an explicit schedule policy.
    pub fn with_schedule(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        schedule: Schedule,
    ) -> Self {
        Self::with_options(
            graph,
            protocol,
            plan,
            seed,
            SimOptions {
                schedule,
                ..SimOptions::default()
            },
        )
    }

    /// Build a simulator with full execution-model control.
    ///
    /// # Panics
    /// Panics if a nonzero delay model is combined with asynchronous
    /// activation (async exchanges are atomic by definition).
    pub fn with_options(
        graph: &'g Graph,
        protocol: P,
        plan: FaultPlan,
        seed: u64,
        options: SimOptions,
    ) -> Self {
        let n = graph.len();
        let believed = (0..n as NodeId)
            .map(|i| graph.neighbors(i).to_vec())
            .collect();
        assert!(
            options.activation == Activation::Synchronous || options.delay.max_delay() == 0,
            "asynchronous activation requires the zero-delay model"
        );
        let buckets = (0..options.delay.max_delay() + 1)
            .map(|_| Vec::new())
            .collect();
        Simulator {
            graph,
            protocol,
            schedule: options.schedule,
            schedule_rng: stream_rng(seed, RngStream::Schedule),
            fault_rng: stream_rng(seed, RngStream::Faults),
            plan,
            round: 0,
            alive_node: vec![true; n],
            believed,
            dead_links: HashSet::new(),
            pending_detections: Vec::new(),
            activation: options.activation,
            delay: options.delay,
            buckets,
            alive_scratch: Vec::new(),
            trace: None,
            link_load: None,
            stats: SimStats::default(),
        }
    }

    /// Start recording the most recent `capacity` transport/fault events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The event trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Start counting delivered messages per directed arc.
    pub fn enable_link_load(&mut self) {
        self.link_load = Some(vec![0; self.graph.arc_count()]);
    }

    /// Delivered messages over arc `src → dst`, if counting is enabled.
    pub fn link_load(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let counts = self.link_load.as_ref()?;
        let slot = self.graph.neighbor_slot(src, dst)?;
        Some(counts[self.graph.arc_base(src) + slot])
    }

    #[inline]
    fn record(&mut self, e: Event) {
        if let Some(t) = self.trace.as_mut() {
            t.push(e);
        }
    }

    /// The protocol (for estimate inspection between rounds).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable protocol access (e.g. to reinitialise node data).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// `true` if `node` has not crashed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive_node[node as usize]
    }

    /// Iterator over currently-alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.len() as NodeId).filter(move |&i| self.alive_node[i as usize])
    }

    /// The believed-alive neighbor list of `node` (shrinks as failures are
    /// detected).
    pub fn believed_alive(&self, node: NodeId) -> &[NodeId] {
        &self.believed[node as usize]
    }

    fn canonical(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (a.min(b), a.max(b))
    }

    fn remove_believed(&mut self, node: NodeId, neighbor: NodeId) -> bool {
        let list = &mut self.believed[node as usize];
        match list.binary_search(&neighbor) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Phase 1: fire physical faults scheduled for this round and enqueue
    /// their detections.
    fn fire_scheduled_faults(&mut self) {
        let round = self.round;
        // Link failures.
        let links: Vec<_> = self
            .plan
            .link_failures
            .iter()
            .filter(|f| f.at_round == round)
            .copied()
            .collect();
        for f in links {
            assert!(
                self.graph.has_edge(f.a, f.b),
                "fault plan kills nonexistent link ({}, {})",
                f.a,
                f.b
            );
            self.record(Event::LinkFailed {
                round,
                a: f.a,
                b: f.b,
            });
            self.dead_links.insert(Self::canonical(f.a, f.b));
            let at = round + f.detect_delay;
            self.pending_detections.push(Detection {
                round: at,
                node: f.a,
                neighbor: f.b,
            });
            self.pending_detections.push(Detection {
                round: at,
                node: f.b,
                neighbor: f.a,
            });
        }
        // Node crashes.
        let crashes: Vec<_> = self
            .plan
            .node_crashes
            .iter()
            .filter(|c| c.at_round == round)
            .copied()
            .collect();
        for c in crashes {
            self.record(Event::NodeCrashed {
                round,
                node: c.node,
            });
            self.alive_node[c.node as usize] = false;
            let at = round + c.detect_delay;
            for &j in self.graph.neighbors(c.node) {
                self.pending_detections.push(Detection {
                    round: at,
                    node: j,
                    neighbor: c.node,
                });
            }
        }
    }

    /// Phase 2: deliver due detections to alive endpoints.
    fn deliver_detections(&mut self) {
        let round = self.round;
        let mut due = Vec::new();
        self.pending_detections.retain(|d| {
            if d.round <= round {
                due.push(*d);
                false
            } else {
                true
            }
        });
        // Deterministic handling order.
        due.sort_by_key(|d| (d.node, d.neighbor));
        for d in due {
            if self.alive_node[d.node as usize] && self.remove_believed(d.node, d.neighbor) {
                self.record(Event::Detected {
                    round,
                    node: d.node,
                    neighbor: d.neighbor,
                });
                self.protocol.on_link_failed(d.node, d.neighbor);
            }
        }
    }

    /// Apply the transit fault pipeline (dead link, probabilistic loss,
    /// bit corruption) to one message; `Some` means it survives.
    fn transit(&mut self, src: NodeId, dst: NodeId, mut msg: P::Msg) -> Option<P::Msg> {
        let round = self.round;
        let physically_dead = !self.alive_node[src as usize]
            || !self.alive_node[dst as usize]
            || self.dead_links.contains(&Self::canonical(src, dst));
        if physically_dead {
            self.stats.lost_dead += 1;
            self.record(Event::LostDead { round, src, dst });
            return None;
        }
        if self.plan.msg_loss_prob > 0.0 && self.fault_rng.random::<f64>() < self.plan.msg_loss_prob
        {
            self.stats.lost_random += 1;
            self.record(Event::LostRandom { round, src, dst });
            return None;
        }
        if self.plan.bit_flip_prob > 0.0 && self.fault_rng.random::<f64>() < self.plan.bit_flip_prob
        {
            let bits = msg.corruptible_bits();
            if bits > 0 {
                let bit = self.fault_rng.random_range(0..bits);
                msg.flip_bit(bit);
                self.stats.bit_flips += 1;
                self.record(Event::BitFlipped {
                    round,
                    src,
                    dst,
                    bit,
                });
            }
        }
        Some(msg)
    }

    /// Offer `replier` the chance to answer `to` immediately (push-pull).
    /// The reply takes the ordinary transit pipeline; replies to replies
    /// are not solicited.
    fn deliver_reply(&mut self, replier: NodeId, to: NodeId) {
        if let Some(reply) = self.protocol.reply(replier, to) {
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: replier,
                dst: to,
            });
            if let Some(reply) = self.transit(replier, to, reply) {
                self.protocol.on_receive(to, replier, reply);
                self.note_delivery(replier, to);
            }
        }
    }

    #[inline]
    fn note_delivery(&mut self, src: NodeId, dst: NodeId) {
        self.stats.delivered += 1;
        let round = self.round;
        self.record(Event::Delivered { round, src, dst });
        if let Some(counts) = self.link_load.as_mut() {
            if let Some(slot) = self.graph.neighbor_slot(src, dst) {
                counts[self.graph.arc_base(src) + slot] += 1;
            }
        }
    }

    /// Execute one round (synchronous) or `n` activations (asynchronous).
    pub fn step(&mut self) {
        self.fire_scheduled_faults();
        self.deliver_detections();
        match self.activation {
            Activation::Synchronous => self.step_synchronous(),
            Activation::Asynchronous => self.step_asynchronous(),
        }
        self.round += 1;
        self.stats.rounds += 1;
    }

    fn step_synchronous(&mut self) {
        // Phase 3: sends, enqueued for delivery `delay` rounds from now.
        let nbuckets = self.buckets.len() as u64;
        for i in 0..self.graph.len() as NodeId {
            if !self.alive_node[i as usize] {
                continue;
            }
            let target = self
                .schedule
                .pick(i, &self.believed[i as usize], &mut self.schedule_rng);
            let Some(target) = target else { continue };
            let msg = self.protocol.on_send(i, target);
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: i,
                dst: target,
            });
            let d = self.delay.sample(&mut self.fault_rng);
            let slot = ((self.round + d) % nbuckets) as usize;
            self.buckets[slot].push((i, target, msg));
        }

        // Phase 4+5: transit faults, then in-order delivery of everything
        // due this round.
        let slot = (self.round % nbuckets) as usize;
        let mut batch = std::mem::take(&mut self.buckets[slot]);
        for (src, dst, msg) in batch.drain(..) {
            if let Some(msg) = self.transit(src, dst, msg) {
                self.protocol.on_receive(dst, src, msg);
                self.note_delivery(src, dst);
                self.deliver_reply(dst, src);
            }
        }
        self.buckets[slot] = batch; // hand the allocation back
    }

    fn step_asynchronous(&mut self) {
        // n single-node activations; each is an atomic send+deliver, so
        // no crossing exchanges exist in this model.
        self.alive_scratch.clear();
        self.alive_scratch
            .extend((0..self.graph.len() as NodeId).filter(|&i| self.alive_node[i as usize]));
        if self.alive_scratch.is_empty() {
            return;
        }
        // One activation per alive node per round in expectation (dead
        // nodes' Poisson clocks stop ticking).
        for _ in 0..self.alive_scratch.len() {
            let k = self.schedule_rng.random_range(0..self.alive_scratch.len());
            let i = self.alive_scratch[k];
            let target = self
                .schedule
                .pick(i, &self.believed[i as usize], &mut self.schedule_rng);
            let Some(target) = target else { continue };
            let msg = self.protocol.on_send(i, target);
            self.stats.sent += 1;
            self.record(Event::Sent {
                round: self.round,
                src: i,
                dst: target,
            });
            if let Some(msg) = self.transit(i, target, msg) {
                self.protocol.on_receive(target, i, msg);
                self.note_delivery(i, target);
                self.deliver_reply(target, i);
            }
        }
    }

    /// Execute `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Replace the fault plan from the next round on. Scheduled events
    /// whose `at_round` is already past never fire; probabilistic loss and
    /// corruption switch immediately. Used to model fault episodes ("flip
    /// bits for 200 rounds, then run clean and watch recovery").
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Manually kill a link right now (physical + immediate detection).
    /// Convenience for tests and interactive examples; scheduled plans are
    /// the primary interface.
    pub fn fail_link_now(&mut self, a: NodeId, b: NodeId) {
        assert!(self.graph.has_edge(a, b), "no link ({a},{b}) to fail");
        self.dead_links.insert(Self::canonical(a, b));
        for (x, y) in [(a, b), (b, a)] {
            if self.alive_node[x as usize] && self.remove_believed(x, y) {
                self.protocol.on_link_failed(x, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_topology::{bus, complete, ring};

    /// Test protocol: every node counts what it receives and remembers
    /// link-failure callbacks; messages carry the sender id as f64.
    #[derive(Default)]
    struct Recorder {
        received: Vec<Vec<(NodeId, f64)>>,
        failed_links: Vec<(NodeId, NodeId)>,
        sends: u64,
    }

    impl Recorder {
        fn new(n: usize) -> Self {
            Recorder {
                received: vec![Vec::new(); n],
                failed_links: Vec::new(),
                sends: 0,
            }
        }
    }

    impl Protocol for Recorder {
        type Msg = f64;
        fn on_send(&mut self, node: NodeId, _target: NodeId) -> f64 {
            self.sends += 1;
            node as f64
        }
        fn on_receive(&mut self, node: NodeId, from: NodeId, msg: f64) {
            self.received[node as usize].push((from, msg));
        }
        fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
            self.failed_links.push((node, neighbor));
        }
    }

    #[test]
    fn every_alive_node_sends_once_per_round() {
        let g = ring(10);
        let mut sim = Simulator::new(&g, Recorder::new(10), FaultPlan::none(), 1);
        sim.run(5);
        assert_eq!(sim.stats().sent, 50);
        assert_eq!(sim.stats().delivered, 50);
        assert_eq!(sim.protocol().sends, 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = complete(8);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Recorder::new(8), FaultPlan::none(), seed);
            sim.run(20);
            sim.protocol()
                .received
                .iter()
                .map(|v| v.iter().map(|&(f, _)| f).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn messages_only_flow_on_edges() {
        let g = bus(5);
        let mut sim = Simulator::new(&g, Recorder::new(5), FaultPlan::none(), 3);
        sim.run(50);
        for node in 0..5u32 {
            for &(from, _) in &sim.protocol().received[node as usize] {
                assert!(g.has_edge(node, from), "non-edge delivery {from}->{node}");
            }
        }
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let g = ring(6);
        let mut sim = Simulator::new(&g, Recorder::new(6), FaultPlan::with_loss(1.0), 5);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_random, 60);
    }

    #[test]
    fn link_failure_detected_and_excluded() {
        let g = bus(3); // 0-1-2
        let plan = FaultPlan::none().fail_link(0, 1, 5);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 11);
        sim.run(20);
        // Both endpoints got the callback exactly once.
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(0, 1), (1, 0)]);
        // Node 0 is isolated afterwards: believed-alive list empty.
        assert!(sim.believed_alive(0).is_empty());
        assert_eq!(sim.believed_alive(1), &[2]);
        // After the failure, node 0 sends nothing; all rounds: pre-failure
        // 3 sends/round * 5 rounds, post: 2 sends/round * 15 rounds.
        assert_eq!(sim.stats().sent, 15 + 30);
        assert_eq!(sim.stats().lost_dead, 0); // detection was immediate
    }

    #[test]
    fn detection_delay_loses_messages_silently() {
        let g = bus(2); // single link 0-1
        let plan = FaultPlan {
            link_failures: vec![crate::faults::LinkFailure {
                a: 0,
                b: 1,
                at_round: 0,
                detect_delay: 4,
            }],
            ..FaultPlan::none()
        };
        let mut sim = Simulator::new(&g, Recorder::new(2), plan, 2);
        sim.run(10);
        // Rounds 0..4: both nodes still address the dead link; messages lost.
        assert_eq!(sim.stats().lost_dead, 8);
        assert_eq!(sim.stats().delivered, 0);
        // After detection both nodes are isolated and stop sending.
        assert_eq!(sim.stats().sent, 8);
    }

    #[test]
    fn node_crash_stops_traffic_and_notifies_neighbors() {
        let g = ring(5);
        let plan = FaultPlan::none().crash_node(2, 3);
        let mut sim = Simulator::new(&g, Recorder::new(5), plan, 17);
        sim.run(30);
        assert!(!sim.is_alive(2));
        assert_eq!(sim.alive_nodes().count(), 4);
        let mut fl = sim.protocol().failed_links.clone();
        fl.sort_unstable();
        assert_eq!(fl, vec![(1, 2), (3, 2)]);
        // Nothing was delivered to node 2 after the crash round.
        // (Ring neighbors detected instantly, so no lost_dead either.)
        assert_eq!(sim.stats().lost_dead, 0);
    }

    #[test]
    fn bit_flips_corrupt_payloads() {
        let g = bus(2);
        let mut sim = Simulator::new(&g, Recorder::new(2), FaultPlan::with_bit_flips(1.0), 23);
        sim.run(50);
        assert_eq!(sim.stats().bit_flips, 100);
        // At least one delivered payload must differ from the sender id.
        let corrupted = sim
            .protocol()
            .received
            .iter()
            .flatten()
            .any(|&(from, v)| v != from as f64);
        assert!(corrupted);
    }

    #[test]
    fn fail_link_now_is_immediate() {
        let g = bus(3);
        let mut sim = Simulator::new(&g, Recorder::new(3), FaultPlan::none(), 0);
        sim.fail_link_now(1, 2);
        assert_eq!(sim.believed_alive(1), &[0]);
        assert!(sim.believed_alive(2).is_empty());
        assert_eq!(sim.protocol().failed_links.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn plan_with_bogus_link_panics() {
        let g = bus(3); // 0-1-2; (0,2) is not an edge
        let plan = FaultPlan::none().fail_link(0, 2, 0);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 0);
        sim.step();
    }

    #[test]
    fn async_activation_sends_n_per_round() {
        let g = ring(10);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(10), FaultPlan::none(), 5, opts);
        sim.run(7);
        // n activations per round, every one delivered immediately
        assert_eq!(sim.stats().sent, 70);
        assert_eq!(sim.stats().delivered, 70);
    }

    #[test]
    fn async_skips_dead_nodes() {
        let g = ring(6);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().crash_node(2, 3);
        let mut sim = Simulator::with_options(&g, Recorder::new(6), plan, 6, opts);
        sim.run(20);
        // after the crash, node 2 neither sends nor receives: total
        // activations drop from 6 to 5 per round
        assert!(!sim.is_alive(2));
        assert!(sim.stats().sent < 120);
        assert!(sim.stats().sent >= 3 * 6 + 17 * 5);
    }

    #[test]
    #[should_panic(expected = "zero-delay")]
    fn async_plus_delay_rejected() {
        let g = ring(4);
        let opts = SimOptions {
            activation: Activation::Asynchronous,
            delay: DelayModel::Fixed(2),
            ..SimOptions::default()
        };
        let _ = Simulator::with_options(&g, Recorder::new(4), FaultPlan::none(), 0, opts);
    }

    #[test]
    fn fixed_delay_shifts_delivery() {
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(3),
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(2), FaultPlan::none(), 1, opts);
        sim.run(3);
        // nothing delivered yet: messages from round r arrive at r+3
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().sent, 6);
        sim.run(1);
        // round 3 delivers the round-0 messages
        assert_eq!(sim.stats().delivered, 2);
        sim.run(10);
        assert_eq!(sim.stats().delivered, 2 * 11); // rounds 0..=10 delivered by round 13
    }

    #[test]
    fn uniform_delay_delivers_everything_eventually() {
        let g = complete(6);
        let opts = SimOptions {
            delay: DelayModel::Uniform { min: 0, max: 4 },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&g, Recorder::new(6), FaultPlan::none(), 9, opts);
        sim.run(50);
        let s = sim.stats();
        // everything sent at least 4 rounds ago has been delivered
        assert!(s.delivered >= 6 * (50 - 4));
        assert!(s.delivered <= s.sent);
        // and deliveries only flow along edges
        for node in 0..6u32 {
            for &(from, _) in &sim.protocol().received[node as usize] {
                assert!(g.has_edge(node, from));
            }
        }
    }

    #[test]
    fn delayed_messages_die_with_the_link() {
        // A message in flight when its link fails is lost.
        let g = bus(2);
        let opts = SimOptions {
            delay: DelayModel::Fixed(5),
            ..SimOptions::default()
        };
        let plan = FaultPlan::none().fail_link(0, 1, 2);
        let mut sim = Simulator::with_options(&g, Recorder::new(2), plan, 3, opts);
        sim.run(20);
        // rounds 0 and 1 produced 4 in-flight messages; all die when the
        // link fails at round 2, before any could be delivered at round 5.
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().lost_dead, 4);
    }

    #[test]
    fn trace_records_transport_and_faults() {
        let g = bus(3);
        let plan = FaultPlan::with_loss(0.3)
            .fail_link(0, 1, 5)
            .crash_node(2, 8);
        let mut sim = Simulator::new(&g, Recorder::new(3), plan, 7);
        sim.enable_trace(10_000);
        sim.run(20);
        let trace = sim.trace().unwrap();
        let mut sent = 0;
        let mut delivered = 0;
        let mut lost = 0;
        let mut link_failed = false;
        let mut crashed = false;
        let mut detected = 0;
        for e in trace.events() {
            match e {
                Event::Sent { .. } => sent += 1,
                Event::Delivered { .. } => delivered += 1,
                Event::LostRandom { .. } | Event::LostDead { .. } => lost += 1,
                Event::LinkFailed { round, a, b } => {
                    assert_eq!((*round, *a, *b), (5, 0, 1));
                    link_failed = true;
                }
                Event::NodeCrashed { round, node } => {
                    assert_eq!((*round, *node), (8, 2));
                    crashed = true;
                }
                Event::Detected { .. } => detected += 1,
                Event::BitFlipped { .. } => {}
            }
        }
        let s = sim.stats();
        assert_eq!(sent as u64, s.sent);
        assert_eq!(delivered as u64, s.delivered);
        assert_eq!(lost as u64, s.lost_random + s.lost_dead);
        assert!(link_failed && crashed);
        // link (0,1) detection at both ends + crash detection at node 1
        assert_eq!(detected, 3);
    }

    #[test]
    fn trace_is_bounded() {
        let g = complete(8);
        let mut sim = Simulator::new(&g, Recorder::new(8), FaultPlan::none(), 1);
        sim.enable_trace(16);
        sim.run(50);
        let t = sim.trace().unwrap();
        assert_eq!(t.len(), 16);
        assert!(t.dropped() > 0);
    }

    #[test]
    fn link_load_counts_deliveries() {
        let g = bus(2);
        let mut sim = Simulator::new(&g, Recorder::new(2), FaultPlan::none(), 3);
        sim.enable_link_load();
        sim.run(25);
        let a = sim.link_load(0, 1).unwrap();
        let b = sim.link_load(1, 0).unwrap();
        assert_eq!(a + b, sim.stats().delivered);
        assert_eq!(a, 25);
        assert_eq!(b, 25);
        // non-edges report None
        assert!(sim.link_load(0, 0).is_none());
    }

    #[test]
    fn same_seed_same_schedule_across_protocols() {
        // Two *different* protocol instances (different message handling)
        // must see the same (sender, receiver) sequence. We verify via
        // delivered-from lists on a protocol that never mutates shared
        // state the schedule could observe.
        let g = complete(6);
        let trace = |skip: bool| {
            struct P {
                log: Vec<(NodeId, NodeId)>,
                skip: bool,
            }
            impl Protocol for P {
                type Msg = f64;
                fn on_send(&mut self, node: NodeId, target: NodeId) -> f64 {
                    self.log.push((node, target));
                    if self.skip {
                        0.0
                    } else {
                        node as f64
                    }
                }
                fn on_receive(&mut self, _n: NodeId, _f: NodeId, _m: f64) {}
            }
            let mut sim = Simulator::new(&g, P { log: vec![], skip }, FaultPlan::none(), 99);
            sim.run(15);
            sim.protocol().log.clone()
        };
        assert_eq!(trace(false), trace(true));
    }
}
