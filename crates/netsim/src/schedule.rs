//! Communication schedules: who talks to whom each round.
//!
//! Gossip protocols specify "choose a neighbor uniformly at random", but the
//! worked bus-network example of the paper (Fig. 2) assumes "a regular,
//! synchronous communication schedule", and deterministic schedules make
//! unit tests exact. The schedule is owned by the simulator so that the
//! same seed reproduces the same partner sequence for any protocol.

use gr_topology::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Partner-selection policy.
#[derive(Clone, Debug)]
pub enum Schedule {
    /// Each round, each node picks a partner uniformly at random among its
    /// believed-alive neighbors (the paper's model).
    UniformRandom,
    /// Each node cycles deterministically through its believed-alive
    /// neighbor list (position advances every round). Useful for exact
    /// tests and for the Fig. 2 worked example.
    RoundRobin {
        /// Per-node cursor into the alive-neighbor list.
        cursors: Vec<usize>,
    },
}

impl Schedule {
    /// A fresh uniform-random schedule.
    pub fn uniform() -> Self {
        Schedule::UniformRandom
    }

    /// A fresh round-robin schedule for `n` nodes.
    pub fn round_robin(n: usize) -> Self {
        Schedule::RoundRobin {
            cursors: vec![0; n],
        }
    }

    /// Choose the partner for `node` among `alive` (its believed-alive
    /// neighbor list, sorted). Returns `None` when the list is empty.
    ///
    /// Public because external round drivers (the multi-tenant batch
    /// executor in `gr-batch`) must replay the simulator's exact draw
    /// sequence: one `random_range(0..alive.len())` per uniform pick, one
    /// cursor advance per round-robin pick. `node` only indexes the
    /// round-robin cursor array, so drivers with their own node numbering
    /// may pass a driver-local index.
    pub fn pick(&mut self, node: NodeId, alive: &[NodeId], rng: &mut StdRng) -> Option<NodeId> {
        if alive.is_empty() {
            return None;
        }
        match self {
            Schedule::UniformRandom => {
                let k = rng.random_range(0..alive.len());
                Some(alive[k])
            }
            Schedule::RoundRobin { cursors } => {
                let c = &mut cursors[node as usize];
                let pick = alive[*c % alive.len()];
                *c += 1;
                Some(pick)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, RngStream};

    #[test]
    fn round_robin_cycles() {
        let mut s = Schedule::round_robin(1);
        let mut rng = stream_rng(0, RngStream::Schedule);
        let alive = [10, 20, 30];
        let picks: Vec<_> = (0..6)
            .map(|_| s.pick(0, &alive, &mut rng).unwrap())
            .collect();
        assert_eq!(picks, vec![10, 20, 30, 10, 20, 30]);
    }

    #[test]
    fn empty_neighborhood_yields_none() {
        let mut s = Schedule::uniform();
        let mut rng = stream_rng(0, RngStream::Schedule);
        assert_eq!(s.pick(0, &[], &mut rng), None);
    }

    #[test]
    fn uniform_is_deterministic_under_seed() {
        let alive = [1, 2, 3, 4];
        let mut rng1 = stream_rng(9, RngStream::Schedule);
        let mut rng2 = stream_rng(9, RngStream::Schedule);
        let mut s1 = Schedule::uniform();
        let mut s2 = Schedule::uniform();
        for _ in 0..50 {
            assert_eq!(s1.pick(0, &alive, &mut rng1), s2.pick(0, &alive, &mut rng2));
        }
    }

    #[test]
    fn uniform_covers_all_neighbors() {
        let alive = [5, 6, 7];
        let mut rng = stream_rng(3, RngStream::Schedule);
        let mut s = Schedule::uniform();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.pick(0, &alive, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
