//! Execution observability: a bounded event trace and per-link load
//! counters.
//!
//! Debugging a distributed algorithm is mostly asking "what actually
//! happened, in order?" — the trace answers that without printf noise,
//! and the link-load counters expose schedule fairness (on degree-skewed
//! topologies like Barabási–Albert graphs, hubs are contacted far more
//! often than leaves, which is exactly what starves push gossip).

use gr_topology::NodeId;
use serde::Serialize;
use std::collections::VecDeque;

/// One simulator event.
///
/// Serializes externally tagged (`{"Sent": {"round": …, …}}`) so JSON
/// trace dumps are self-describing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Event {
    /// A message was handed to the transport.
    Sent {
        /// Round of the send.
        round: u64,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A message reached its receive handler.
    Delivered {
        /// Round of delivery.
        round: u64,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A message was dropped by the correlated-burst (Gilbert–Elliott)
    /// loss chain while it was in its bad state.
    LostBurst {
        /// Round of the drop.
        round: u64,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A message was dropped by the probabilistic loss model.
    LostRandom {
        /// Round of the drop.
        round: u64,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A message died because its link or an endpoint was dead.
    LostDead {
        /// Round of the drop.
        round: u64,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A bit flip was injected into a message.
    BitFlipped {
        /// Round of the corruption.
        round: u64,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Which bit of the payload.
        bit: u32,
    },
    /// A link physically died.
    LinkFailed {
        /// Round the fault fired.
        round: u64,
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// A node crashed (fail-stop).
    NodeCrashed {
        /// Round the fault fired.
        round: u64,
        /// The crashed node.
        node: NodeId,
    },
    /// A failure detection was delivered to the protocol.
    Detected {
        /// Round of detection.
        round: u64,
        /// Detecting node.
        node: NodeId,
        /// The neighbor it lost.
        neighbor: NodeId,
    },
    /// A failed link returned to service.
    LinkHealed {
        /// Round the heal fired.
        round: u64,
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// A crashed node rejoined with fresh state.
    NodeRestarted {
        /// Round the restart fired.
        round: u64,
        /// The restarted node.
        node: NodeId,
    },
    /// A timeout detector suspected a neighbor (possibly falsely).
    NodeSuspected {
        /// Round of the suspicion.
        round: u64,
        /// Suspecting node.
        node: NodeId,
        /// The silent neighbor.
        neighbor: NodeId,
    },
    /// A suspected neighbor proved alive (message arrived, link healed, or
    /// the node restarted) and was re-admitted.
    NodeRehabilitated {
        /// Round of the rehabilitation.
        round: u64,
        /// Re-admitting node.
        node: NodeId,
        /// The rehabilitated neighbor.
        neighbor: NodeId,
    },
    /// A scripted network partition fired: every link between the cut
    /// group and the rest died at once (each one also records its own
    /// [`Event::LinkFailed`]).
    PartitionStarted {
        /// Round the cut fired.
        round: u64,
        /// Number of links severed.
        cut: u32,
    },
    /// A scripted partition healed: every severed crossing link returned
    /// to service (each one also records its own [`Event::LinkHealed`]).
    PartitionHealed {
        /// Round the heal fired.
        round: u64,
        /// Number of links restored.
        cut: u32,
    },
}

impl Event {
    /// The round the event belongs to.
    pub fn round(&self) -> u64 {
        match *self {
            Event::Sent { round, .. }
            | Event::Delivered { round, .. }
            | Event::LostBurst { round, .. }
            | Event::LostRandom { round, .. }
            | Event::LostDead { round, .. }
            | Event::BitFlipped { round, .. }
            | Event::LinkFailed { round, .. }
            | Event::NodeCrashed { round, .. }
            | Event::Detected { round, .. }
            | Event::LinkHealed { round, .. }
            | Event::NodeRestarted { round, .. }
            | Event::NodeSuspected { round, .. }
            | Event::NodeRehabilitated { round, .. }
            | Event::PartitionStarted { round, .. }
            | Event::PartitionHealed { round, .. } => round,
        }
    }
}

/// A bounded event recorder: keeps the most recent `capacity` events.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest if full.
    pub fn push(&mut self, e: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(e);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events of a given round, oldest first.
    pub fn round_events(&self, round: u64) -> impl Iterator<Item = &Event> {
        self.ring.iter().filter(move |e| e.round() == round)
    }

    /// The last `n` retained events, oldest first (replay dumps want the
    /// end of the story, not the beginning).
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &Event> {
        self.ring.iter().skip(self.ring.len().saturating_sub(n))
    }
}

/// Serializes as `{"capacity": …, "dropped": …, "events": […]}` —
/// `dropped` records how many events were evicted before the window, so
/// a consumer knows whether the JSON is the whole story.
impl Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("capacity".to_string(), self.capacity.to_value()),
            ("dropped".to_string(), self.dropped.to_value()),
            ("events".to_string(), self.ring.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for r in 0..5 {
            t.push(Event::Sent {
                round: r,
                src: 0,
                dst: 1,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let rounds: Vec<u64> = t.events().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn round_filter() {
        let mut t = Trace::new(10);
        t.push(Event::Sent {
            round: 1,
            src: 0,
            dst: 1,
        });
        t.push(Event::Delivered {
            round: 1,
            src: 0,
            dst: 1,
        });
        t.push(Event::Sent {
            round: 2,
            src: 1,
            dst: 0,
        });
        assert_eq!(t.round_events(1).count(), 2);
        assert_eq!(t.round_events(2).count(), 1);
        assert_eq!(t.round_events(9).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::new(0);
    }

    #[test]
    fn serializes_with_eviction_count() {
        let mut t = Trace::new(2);
        t.push(Event::Sent {
            round: 0,
            src: 0,
            dst: 1,
        });
        t.push(Event::NodeCrashed { round: 1, node: 3 });
        t.push(Event::Delivered {
            round: 2,
            src: 1,
            dst: 0,
        });
        let v = t.to_value();
        assert_eq!(v["dropped"], 1);
        assert_eq!(v["capacity"], 2);
        assert_eq!(v["events"][0]["NodeCrashed"]["node"], 3);
        assert_eq!(v["events"][1]["Delivered"]["round"], 2);
    }

    #[test]
    fn tail_returns_most_recent() {
        let mut t = Trace::new(5);
        for r in 0..4 {
            t.push(Event::Sent {
                round: r,
                src: 0,
                dst: 1,
            });
        }
        let rounds: Vec<u64> = t.tail(2).map(|e| e.round()).collect();
        assert_eq!(rounds, vec![2, 3]);
        assert_eq!(t.tail(99).count(), 4);
    }

    #[test]
    fn event_round_accessor() {
        assert_eq!(Event::NodeCrashed { round: 7, node: 3 }.round(), 7);
        assert_eq!(
            Event::LinkHealed {
                round: 4,
                a: 0,
                b: 1
            }
            .round(),
            4
        );
        assert_eq!(Event::NodeRestarted { round: 6, node: 2 }.round(), 6);
        assert_eq!(
            Event::NodeSuspected {
                round: 8,
                node: 0,
                neighbor: 1
            }
            .round(),
            8
        );
        assert_eq!(
            Event::NodeRehabilitated {
                round: 9,
                node: 0,
                neighbor: 1
            }
            .round(),
            9
        );
        assert_eq!(
            Event::BitFlipped {
                round: 9,
                src: 1,
                dst: 2,
                bit: 5
            }
            .round(),
            9
        );
        assert_eq!(
            Event::LostBurst {
                round: 3,
                src: 0,
                dst: 1
            }
            .round(),
            3
        );
        assert_eq!(Event::PartitionStarted { round: 5, cut: 8 }.round(), 5);
        assert_eq!(Event::PartitionHealed { round: 7, cut: 8 }.round(), 7);
    }
}
