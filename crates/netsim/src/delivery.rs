//! The delivery seam: where messages leave protocol-land.
//!
//! A [`Protocol`](crate::Protocol) is a pure per-node state machine — it
//! produces a message in `on_send` and consumes one in `on_receive`, and
//! everything in between is *transport*. This module names that boundary:
//! the [`Delivery`] trait is the contract a transport backend fulfils, and
//! [`RingDelivery`] is the deterministic simulator's implementation of it,
//! extracted from the `Simulator` round loop (the delay-bucket ring that
//! used to be a private field).
//!
//! The same trait is implemented by the real backends in `gr-transport`
//! (in-memory channels, UDP sockets), which is what lets one `Protocol`
//! implementation run unchanged over the simulator, over threads, and
//! over the network — with netsim acting as the *deterministic twin* of
//! the real runtime: same protocol code, same message types, swapped
//! delivery layer.
//!
//! Two drivers sit on top of this seam:
//!
//! * the [`Simulator`](crate::Simulator) round loop, which owns a
//!   `RingDelivery` and threads every message through the fault-injection
//!   pipeline between `take_slot` and `put_back`;
//! * the per-node drivers in `gr-reduction`/`gr-transport`, which call
//!   the trait methods directly (one endpoint per node, no global round).

use gr_topology::NodeId;

/// A transport backend as seen by a node driver: ship an owned message to
/// a peer, poll for the next message delivered to a node.
///
/// Implementations decide what "in flight" means — a delay-bucket ring
/// ([`RingDelivery`]), a bounded in-memory channel, or a UDP socket. The
/// contract is deliberately minimal:
///
/// * `send` takes ownership of the message; whether it arrives (loss,
///   backpressure, dead links) is the backend's business. The reduction
///   protocols are loss-tolerant by construction, so backends are free to
///   drop rather than block.
/// * `try_recv` never blocks; `Ok(None)` means "nothing delivered right
///   now", not "stream ended".
/// * Message order per (src, dst) pair is preserved by the in-process
///   backends; datagram backends may reorder, which the flow protocols
///   tolerate (they transmit absolute state, not deltas).
pub trait Delivery<M> {
    /// Backend failure type (use [`std::convert::Infallible`] for
    /// backends that cannot fail).
    type Error: std::fmt::Debug + std::fmt::Display;

    /// Ship `msg` from `src` toward `dst`.
    fn send(&mut self, src: NodeId, dst: NodeId, msg: M) -> Result<(), Self::Error>;

    /// The next message delivered to `node`, as `(from, msg)`, or `None`
    /// when nothing is pending.
    fn try_recv(&mut self, node: NodeId) -> Result<Option<(NodeId, M)>, Self::Error>;
}

/// The deterministic simulator's delivery substrate: a ring of delivery
/// buckets, one per possible delay, with `buckets[r % len]` holding the
/// messages due in round `r` in send order.
///
/// The [`Simulator`](crate::Simulator) drives the ring through the
/// explicit-slot inherent methods ([`ship_at`](RingDelivery::ship_at) /
/// [`take_slot`](RingDelivery::take_slot) /
/// [`put_back`](RingDelivery::put_back)) so the fault pipeline can run
/// between enqueue and delivery; those paths are bit-identical to the
/// pre-extraction simulator. The [`Delivery`] impl exposes the same ring
/// to per-node drivers as a zero-latency loopback network — the
/// single-threaded deterministic twin of the threaded/socket backends in
/// `gr-transport`.
#[derive(Debug)]
pub struct RingDelivery<M> {
    /// `buckets[r % len]` = messages due in round `r`, in send order.
    buckets: Vec<Vec<(NodeId, NodeId, M)>>,
    /// Current round for the trait-facing loopback view.
    round: u64,
}

impl<M> RingDelivery<M> {
    /// A ring able to hold deliveries up to `max_delay` rounds out
    /// (`max_delay == 0` gives the single reused zero-latency bucket).
    pub fn new(max_delay: u64) -> Self {
        RingDelivery {
            buckets: (0..max_delay + 1).map(|_| Vec::new()).collect(),
            round: 0,
        }
    }

    /// Number of delay slots (`max_delay + 1`).
    #[inline]
    pub fn slots(&self) -> usize {
        self.buckets.len()
    }

    /// The slot a message due in `round` lives in.
    #[inline]
    pub fn slot_of(&self, round: u64) -> usize {
        let n = self.buckets.len() as u64;
        if n == 1 {
            0
        } else {
            (round % n) as usize
        }
    }

    /// Enqueue a message into an explicit slot (the simulator computes
    /// the due slot from its round and delay draw).
    #[inline]
    pub fn ship_at(&mut self, slot: usize, src: NodeId, dst: NodeId, msg: M) {
        self.buckets[slot].push((src, dst, msg));
    }

    /// Move the batch due in `slot` out of the ring (the caller returns
    /// the allocation via [`put_back`](RingDelivery::put_back)).
    #[inline]
    pub fn take_slot(&mut self, slot: usize) -> Vec<(NodeId, NodeId, M)> {
        std::mem::take(&mut self.buckets[slot])
    }

    /// Hand a drained batch's allocation back to `slot`.
    #[inline]
    pub fn put_back(&mut self, slot: usize, batch: Vec<(NodeId, NodeId, M)>) {
        debug_assert!(self.buckets[slot].is_empty());
        self.buckets[slot] = batch;
    }

    /// Keep only the in-flight messages `keep` approves (restart purges).
    pub fn retain(&mut self, mut keep: impl FnMut(&(NodeId, NodeId, M)) -> bool) {
        for bucket in &mut self.buckets {
            bucket.retain(&mut keep);
        }
    }

    /// Messages currently in flight (all slots).
    pub fn in_flight(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Advance the loopback view's round (undelivered zero-latency
    /// messages stay queued; delayed slots rotate into view).
    pub fn advance_round(&mut self) {
        self.round += 1;
    }
}

impl<M> Delivery<M> for RingDelivery<M> {
    type Error = std::convert::Infallible;

    /// Loopback send: due immediately (the current round's slot).
    fn send(&mut self, src: NodeId, dst: NodeId, msg: M) -> Result<(), Self::Error> {
        let slot = self.slot_of(self.round);
        self.ship_at(slot, src, dst, msg);
        Ok(())
    }

    /// First pending message addressed to `node` in the current slot, in
    /// send order. O(pending) — the loopback view serves small
    /// deterministic twin runs, not the hot simulator path (which drains
    /// whole slots via [`take_slot`](RingDelivery::take_slot)).
    fn try_recv(&mut self, node: NodeId) -> Result<Option<(NodeId, M)>, Self::Error> {
        let slot = self.slot_of(self.round);
        let bucket = &mut self.buckets[slot];
        match bucket.iter().position(|&(_, dst, _)| dst == node) {
            Some(pos) => {
                let (src, _, msg) = bucket.remove(pos);
                Ok(Some((src, msg)))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_send_recv_fifo_per_receiver() {
        let mut ring: RingDelivery<u32> = RingDelivery::new(0);
        ring.send(0, 2, 10).unwrap();
        ring.send(1, 2, 11).unwrap();
        ring.send(2, 0, 12).unwrap();
        assert_eq!(ring.in_flight(), 3);
        assert_eq!(ring.try_recv(2).unwrap(), Some((0, 10)));
        assert_eq!(ring.try_recv(2).unwrap(), Some((1, 11)));
        assert_eq!(ring.try_recv(2).unwrap(), None);
        assert_eq!(ring.try_recv(0).unwrap(), Some((2, 12)));
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn undelivered_messages_survive_round_advance() {
        let mut ring: RingDelivery<u32> = RingDelivery::new(0);
        ring.send(0, 1, 7).unwrap();
        ring.advance_round();
        assert_eq!(ring.try_recv(1).unwrap(), Some((0, 7)));
    }

    #[test]
    fn explicit_slots_round_trip() {
        let mut ring: RingDelivery<&'static str> = RingDelivery::new(3);
        assert_eq!(ring.slots(), 4);
        let due = ring.slot_of(6); // round 6 with 4 slots -> slot 2
        assert_eq!(due, 2);
        ring.ship_at(due, 0, 1, "late");
        let batch = ring.take_slot(due);
        assert_eq!(batch, vec![(0, 1, "late")]);
        ring.put_back(due, batch);
        ring.retain(|&(src, _, _)| src != 0);
        assert_eq!(ring.in_flight(), 0);
    }
}
