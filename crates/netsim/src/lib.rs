//! Deterministic round-based network simulator with fault injection.
//!
//! The paper evaluates its algorithms in simulation: synchronous
//! "iterations" in which every node picks a uniformly random neighbor,
//! sends one message, and processes everything it received; failures
//! (message loss, bit flips, permanent link failures, node crashes) are
//! injected into this execution. This crate reproduces that execution
//! model with two properties the paper's methodology depends on:
//!
//! 1. **Schedule/protocol separation.** The simulator — not the protocol —
//!    draws the communication schedule, from a dedicated RNG stream. Two
//!    different protocols driven with the same seed therefore see *exactly*
//!    the same sequence of (sender, receiver) pairs and the same fault coin
//!    flips. This is how the paper produces Fig. 4 vs Fig. 7 ("we initially
//!    used exactly the same random seed").
//! 2. **Determinism.** Given a seed, a topology and a fault plan, a run is
//!    bit-reproducible. Experiments are embarrassingly parallel across
//!    *runs* while each run stays sequential.
//!
//! The execution order within one round is fixed:
//!
//! 1. scheduled faults and repairs whose `at_round` equals the current
//!    round fire, in the order: links die, partition cuts fire, nodes
//!    crash, links heal, partitions heal, nodes restart;
//! 2. failure *detections* due this round are delivered to the protocol
//!    ([`Protocol::on_link_failed`]) — detection may lag the fault by a
//!    configurable delay, during which senders still address the dead
//!    link and those messages are silently lost. (Under
//!    [`DetectorModel::Timeout`] this oracle step is replaced by a local
//!    silence scan at the end of the round.);
//! 3. every alive node with at least one believed-alive neighbor sends one
//!    message to a schedule-chosen partner ([`Protocol::on_send`]);
//! 4. the fault injector drops or corrupts in-flight messages;
//! 5. surviving messages are delivered in send order
//!    ([`Protocol::on_receive`]).

mod calibrate;
mod delivery;
mod faults;
mod options;
mod par;
mod rng;
mod schedule;
mod sim;
mod trace;

pub use calibrate::MachineCosts;
pub use delivery::{Delivery, RingDelivery};
pub use faults::{
    BurstModel, Corrupt, FaultPlan, LinkFailure, LinkHeal, NetPartition, NodeCrash, NodeRestart,
    PartitionHeal,
};
pub use options::{
    Activation, DelayModel, DetectorModel, PartitionModel, PartitionPlan, PartitionSource,
    SimConfigError, SimOptions,
};
pub use par::WorkerPool;
pub use rng::{stream_rng, RngStream};
pub use schedule::Schedule;
pub use sim::{Protocol, SimStats, Simulator};
pub use trace::{Event, Trace};
