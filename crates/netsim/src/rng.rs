//! Independent deterministic RNG streams derived from one master seed.
//!
//! A simulation needs several sources of randomness — the communication
//! schedule, the fault injector, workload generation — and they must be
//! *independent*: turning the fault injector on must not change which
//! partners nodes pick (otherwise Fig. 4/7-style "same schedule, different
//! protocol/faults" comparisons are impossible). Each stream seeds its own
//! [`StdRng`] from `splitmix64(master_seed ⊕ stream_tag)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The well-mixed SplitMix64 finalizer; decorrelates nearby seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The named randomness consumers of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RngStream {
    /// Partner choice each round.
    Schedule,
    /// Message-loss and bit-flip coin flips.
    Faults,
    /// Initial data / workload generation.
    Workload,
    /// Partner choice for one partition of the partitioned round engine.
    /// Distinct from [`RngStream::Schedule`] even for partition 0, so the
    /// partitioned schedule (any `P ≥ 2`) is one fixed deterministic
    /// function of `(seed, partition)` — independent of worker-thread
    /// count by construction.
    SchedulePart(u32),
    /// Fault coin flips for one partition of the partitioned engine.
    FaultsPart(u32),
    /// The correlated-burst (Gilbert–Elliott) loss chain. Separate from
    /// [`RngStream::Faults`] so enabling bursts never perturbs the i.i.d.
    /// loss/flip draws — existing golden hashes stay bit-exact.
    Burst,
    /// Burst chain for one partition of the partitioned engine.
    BurstPart(u32),
    /// Anything experiment-specific (run replication etc.).
    Aux(u64),
}

impl RngStream {
    fn tag(self) -> u64 {
        match self {
            RngStream::Schedule => 0x5348_4544, // "SHED"
            RngStream::Faults => 0x4641_554C,   // "FAUL"
            RngStream::Workload => 0x574f_524b, // "WORK"
            RngStream::SchedulePart(p) => 0x5350_0000_0000_0000 | u64::from(p), // "SP"
            RngStream::FaultsPart(p) => 0x4650_0000_0000_0000 | u64::from(p), // "FP"
            RngStream::Burst => 0x4255_5253,    // "BURS"
            RngStream::BurstPart(p) => 0x4250_0000_0000_0000 | u64::from(p), // "BP"
            RngStream::Aux(k) => 0xA000_0000_0000_0000 ^ k,
        }
    }
}

/// Construct the RNG for `stream` under `master_seed`.
pub fn stream_rng(master_seed: u64, stream: RngStream) -> StdRng {
    StdRng::seed_from_u64(splitmix64(master_seed ^ splitmix64(stream.tag())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream_rng(42, RngStream::Schedule);
        let mut b = stream_rng(42, RngStream::Schedule);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn streams_differ_from_each_other() {
        let mut a = stream_rng(42, RngStream::Schedule);
        let mut b = stream_rng(42, RngStream::Faults);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream_rng(1, RngStream::Schedule);
        let mut b = stream_rng(2, RngStream::Schedule);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn aux_streams_distinct() {
        let mut a = stream_rng(7, RngStream::Aux(0));
        let mut b = stream_rng(7, RngStream::Aux(1));
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn burst_stream_is_independent() {
        // The burst chain must never replay (or perturb) the i.i.d. fault
        // stream — that independence is what keeps golden hashes stable
        // when a plan turns bursts on.
        let mut f = stream_rng(42, RngStream::Faults);
        let mut b = stream_rng(42, RngStream::Burst);
        let xs: Vec<u64> = (0..8).map(|_| f.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
        let mut b0 = stream_rng(42, RngStream::BurstPart(0));
        let mut b1 = stream_rng(42, RngStream::BurstPart(1));
        assert_ne!(b0.random::<u64>(), b1.random::<u64>());
    }
}
