//! Fault models: what can go wrong, and when.
//!
//! The paper's taxonomy (Sec. I/II): *soft errors* — message loss and bit
//! flips — are transient and are never reported to the algorithm; they are
//! modelled probabilistically per message. *Permanent failures* — a link or
//! a node dying — are eventually *detected*, at which point the algorithm's
//! failure handling runs (for PF/PCF: flow variables for the dead link are
//! excised). Detection may lag the physical fault.

use crate::options::SimConfigError;
use gr_topology::{Graph, NodeId};

/// A payload the fault injector can corrupt bit-wise.
///
/// Implementations expose their total corruptible bit count; the injector
/// picks a uniform bit index and flips it, modelling a soft error in a
/// network buffer or register. Control fields (counters, tags) may be
/// included — the paper's bit-flip claims cover arbitrary message state.
pub trait Corrupt {
    /// Total number of bits a flip may target. Zero means "not corruptible"
    /// (e.g. the unit message type in tests).
    fn corruptible_bits(&self) -> u32;

    /// Flip bit `bit` (`0 ≤ bit < corruptible_bits()`).
    fn flip_bit(&mut self, bit: u32);
}

impl Corrupt for f64 {
    fn corruptible_bits(&self) -> u32 {
        64
    }
    fn flip_bit(&mut self, bit: u32) {
        *self = gr_numerics::bits::flip_bit(*self, bit);
    }
}

impl Corrupt for u64 {
    fn corruptible_bits(&self) -> u32 {
        64
    }
    fn flip_bit(&mut self, bit: u32) {
        *self ^= 1u64 << bit;
    }
}

impl Corrupt for () {
    fn corruptible_bits(&self) -> u32 {
        0
    }
    fn flip_bit(&mut self, _bit: u32) {}
}

impl<T: Corrupt> Corrupt for Vec<T> {
    fn corruptible_bits(&self) -> u32 {
        self.iter().map(Corrupt::corruptible_bits).sum()
    }
    fn flip_bit(&mut self, mut bit: u32) {
        for item in self.iter_mut() {
            let b = item.corruptible_bits();
            if bit < b {
                item.flip_bit(bit);
                return;
            }
            bit -= b;
        }
        panic!("bit index out of range for Vec payload");
    }
}

impl<A: Corrupt, B: Corrupt> Corrupt for (A, B) {
    fn corruptible_bits(&self) -> u32 {
        self.0.corruptible_bits() + self.1.corruptible_bits()
    }
    fn flip_bit(&mut self, bit: u32) {
        let a = self.0.corruptible_bits();
        if bit < a {
            self.0.flip_bit(bit);
        } else {
            self.1.flip_bit(bit - a);
        }
    }
}

/// A scheduled permanent link failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFailure {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Round at which the link physically dies (messages on it are lost
    /// from this round on).
    pub at_round: u64,
    /// Rounds until both endpoints learn of the failure and the protocol's
    /// `on_link_failed` handling runs. `0` = detected immediately, which is
    /// the paper's setting ("the failure handling takes place after 75
    /// iterations").
    pub detect_delay: u64,
}

/// A scheduled node crash (fail-stop): equivalent to all its links failing
/// at once; the node's local data is lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: NodeId,
    /// Round at which it stops sending/receiving.
    pub at_round: u64,
    /// Rounds until neighbors detect the crash (per link).
    pub detect_delay: u64,
}

/// A scheduled link *heal*: a previously failed link comes back.
///
/// Healing is the counterpart of [`LinkFailure`] that real deployments
/// need and the paper leaves implicit: a flaky link that died (or was
/// falsely suspected) returns to service and both endpoints re-admit each
/// other. The protocol is told via its rehabilitation hook; flow-based
/// algorithms restart the edge from fresh state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkHeal {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Round at which the link carries messages again and both endpoints
    /// re-admit each other.
    pub at_round: u64,
}

/// A scheduled node restart: a previously crashed node rejoins with fresh
/// protocol state (its pre-crash data is gone — fail-stop, then reboot).
///
/// The rejoining node contributes its *initial* value exactly once; the
/// mass it held at crash time stays lost. Correct readmission without
/// double counting is the hard invariant the campaign oracle checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeRestart {
    /// The restarting node (must have crashed in an earlier round).
    pub node: NodeId,
    /// Round at which it resumes sending/receiving.
    pub at_round: u64,
}

/// A two-state Gilbert–Elliott correlated-loss process.
///
/// The chain advances once per in-transit message: in the *good* state it
/// enters the *bad* state with probability `enter`; in the bad state it
/// exits back with probability `exit` and, while bad, each message is
/// dropped with probability `loss`. Mean burst length is `1/exit`
/// messages. The chain draws from its own RNG stream
/// ([`RngStream::Burst`](crate::RngStream::Burst)), so enabling it never
/// perturbs the i.i.d. loss/flip draws — loss patterns compose instead of
/// replacing each other, and existing golden hashes stay bit-exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Good → bad transition probability (per message).
    pub enter: f64,
    /// Bad → good transition probability (per message).
    pub exit: f64,
    /// Per-message drop probability while the chain is bad.
    pub loss: f64,
}

/// A scripted bidirectional network partition: at `at_round` every link
/// between `members` and the rest of the topology dies at once. The cut
/// is symmetric (neither side can reach the other); links *inside* the
/// group and inside its complement keep working.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetPartition {
    /// The nodes on one side of the cut (the other side is the
    /// complement). Which side is listed does not matter.
    pub members: Vec<NodeId>,
    /// Round at which the crossing links die.
    pub at_round: u64,
    /// Rounds until endpoints learn of the cut (per link, oracle
    /// detector only — under a timeout detector, silence does the job).
    pub detect_delay: u64,
}

/// The heal counterpart of [`NetPartition`]: every *severed* crossing
/// link of the group returns to service and both endpoints re-admit each
/// other. Links that died for another reason (scheduled link failure)
/// heal too if they cross the cut — the heal restores the boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionHeal {
    /// The group whose boundary heals (same convention as the cut).
    pub members: Vec<NodeId>,
    /// Round at which the crossing links carry messages again.
    pub at_round: u64,
}

/// Everything that goes wrong during one simulation.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Per-message probability of silent loss.
    pub msg_loss_prob: f64,
    /// Per-message probability of a single uniformly-placed bit flip.
    pub bit_flip_prob: f64,
    /// Correlated-burst loss on top of the i.i.d. model (`None` = off).
    pub burst: Option<BurstModel>,
    /// Scheduled permanent link failures.
    pub link_failures: Vec<LinkFailure>,
    /// Scheduled node crashes.
    pub node_crashes: Vec<NodeCrash>,
    /// Scheduled link heals (a failed link returns to service).
    pub link_heals: Vec<LinkHeal>,
    /// Scheduled node restarts (a crashed node rejoins, state lost).
    pub node_restarts: Vec<NodeRestart>,
    /// Scripted network partitions (a group's boundary links die).
    pub partitions: Vec<NetPartition>,
    /// Scripted partition heals (a group's boundary links return).
    pub partition_heals: Vec<PartitionHeal>,
}

impl FaultPlan {
    /// A failure-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan with only probabilistic message loss.
    pub fn with_loss(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} outside [0,1]"
        );
        FaultPlan {
            msg_loss_prob: p,
            ..Self::default()
        }
    }

    /// Plan with only probabilistic bit flips.
    pub fn with_bit_flips(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability {p} outside [0,1]"
        );
        FaultPlan {
            bit_flip_prob: p,
            ..Self::default()
        }
    }

    /// Add a permanent link failure at `round`, detected immediately.
    pub fn fail_link(mut self, a: NodeId, b: NodeId, round: u64) -> Self {
        self.link_failures.push(LinkFailure {
            a,
            b,
            at_round: round,
            detect_delay: 0,
        });
        self
    }

    /// Add a node crash at `round`, detected immediately by all neighbors.
    pub fn crash_node(mut self, node: NodeId, round: u64) -> Self {
        self.node_crashes.push(NodeCrash {
            node,
            at_round: round,
            detect_delay: 0,
        });
        self
    }

    /// Heal a previously failed link at `round`.
    pub fn heal_link(mut self, a: NodeId, b: NodeId, round: u64) -> Self {
        self.link_heals.push(LinkHeal {
            a,
            b,
            at_round: round,
        });
        self
    }

    /// Restart a previously crashed node at `round`.
    pub fn restart_node(mut self, node: NodeId, round: u64) -> Self {
        self.node_restarts.push(NodeRestart {
            node,
            at_round: round,
        });
        self
    }

    /// Turn on Gilbert–Elliott correlated-burst loss (composes with the
    /// i.i.d. models — the chain runs on its own RNG stream).
    pub fn with_burst(mut self, enter: f64, exit: f64, loss: f64) -> Self {
        for (name, p) in [("enter", enter), ("exit", exit), ("loss", loss)] {
            assert!(
                (0.0..=1.0).contains(&p),
                "burst {name} probability {p} outside [0,1]"
            );
        }
        self.burst = Some(BurstModel { enter, exit, loss });
        self
    }

    /// Cut `group` off from the rest of the topology at `round` (every
    /// crossing link dies, detected immediately under the oracle).
    pub fn partition(mut self, group: Vec<NodeId>, round: u64) -> Self {
        self.partitions.push(NetPartition {
            members: group,
            at_round: round,
            detect_delay: 0,
        });
        self
    }

    /// Heal `group`'s boundary at `round` (every severed crossing link
    /// returns to service).
    pub fn heal_partition(mut self, group: Vec<NodeId>, round: u64) -> Self {
        self.partition_heals.push(PartitionHeal {
            members: group,
            at_round: round,
        });
        self
    }

    /// `true` if the plan contains no faults of any kind.
    pub fn is_failure_free(&self) -> bool {
        self.msg_loss_prob == 0.0
            && self.bit_flip_prob == 0.0
            && self.burst.is_none()
            && self.link_failures.is_empty()
            && self.node_crashes.is_empty()
            && self.link_heals.is_empty()
            && self.node_restarts.is_empty()
            && self.partitions.is_empty()
            && self.partition_heals.is_empty()
    }

    /// Check every scheduled event against the topology: link events must
    /// name real edges, node events (and partition members) real nodes.
    /// Run by [`Simulator::try_with_options`](crate::Simulator::try_with_options)
    /// so a typo'd plan is a typed [`SimConfigError`] at construction
    /// time, not a silent no-op or a fire-time panic.
    pub fn validate(&self, graph: &Graph) -> Result<(), SimConfigError> {
        let nodes = graph.len();
        let check_node = |node: NodeId| {
            if (node as usize) < nodes {
                Ok(())
            } else {
                Err(SimConfigError::FaultNodeOutOfRange { node, nodes })
            }
        };
        let check_link = |a: NodeId, b: NodeId| {
            check_node(a)?;
            check_node(b)?;
            if graph.has_edge(a, b) {
                Ok(())
            } else {
                Err(SimConfigError::FaultLinkMissing { a, b })
            }
        };
        for f in &self.link_failures {
            check_link(f.a, f.b)?;
        }
        for h in &self.link_heals {
            check_link(h.a, h.b)?;
        }
        for c in &self.node_crashes {
            check_node(c.node)?;
        }
        for r in &self.node_restarts {
            check_node(r.node)?;
        }
        for p in &self.partitions {
            for &m in &p.members {
                check_node(m)?;
            }
        }
        for p in &self.partition_heals {
            for &m in &p.members {
                check_node(m)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_corruption_flips_one_bit() {
        let mut x = 1.0f64;
        x.flip_bit(63);
        assert_eq!(x, -1.0);
    }

    #[test]
    fn vec_corruption_addresses_elements() {
        let mut v = vec![1.0f64, 2.0];
        assert_eq!(v.corruptible_bits(), 128);
        v.flip_bit(63); // sign of element 0
        assert_eq!(v, vec![-1.0, 2.0]);
        v.flip_bit(64 + 63); // sign of element 1
        assert_eq!(v, vec![-1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec_corruption_out_of_range() {
        vec![1.0f64].flip_bit(64);
    }

    #[test]
    fn pair_corruption_splits_bits() {
        let mut p = (0u64, 0u64);
        p.flip_bit(0);
        p.flip_bit(64);
        assert_eq!(p, (1, 1));
    }

    #[test]
    fn unit_is_incorruptible() {
        assert_eq!(().corruptible_bits(), 0);
    }

    #[test]
    fn plan_builders() {
        let p = FaultPlan::none().fail_link(1, 2, 10).crash_node(3, 20);
        assert_eq!(p.link_failures.len(), 1);
        assert_eq!(p.node_crashes.len(), 1);
        assert!(!p.is_failure_free());
        assert!(FaultPlan::none().is_failure_free());
    }

    #[test]
    fn heal_and_restart_builders() {
        let p = FaultPlan::none()
            .fail_link(1, 2, 10)
            .heal_link(1, 2, 30)
            .crash_node(3, 20)
            .restart_node(3, 50);
        assert_eq!(
            p.link_heals,
            vec![LinkHeal {
                a: 1,
                b: 2,
                at_round: 30
            }]
        );
        assert_eq!(
            p.node_restarts,
            vec![NodeRestart {
                node: 3,
                at_round: 50
            }]
        );
        assert!(!FaultPlan::none().heal_link(0, 1, 5).is_failure_free());
        assert!(!FaultPlan::none().restart_node(0, 5).is_failure_free());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_loss_probability() {
        let _ = FaultPlan::with_loss(1.5);
    }

    #[test]
    fn burst_and_partition_builders() {
        let p = FaultPlan::none()
            .with_burst(0.05, 0.3, 0.9)
            .partition(vec![0, 1], 10)
            .heal_partition(vec![0, 1], 40);
        assert_eq!(
            p.burst,
            Some(BurstModel {
                enter: 0.05,
                exit: 0.3,
                loss: 0.9
            })
        );
        assert_eq!(p.partitions[0].members, vec![0, 1]);
        assert_eq!(p.partitions[0].at_round, 10);
        assert_eq!(p.partition_heals[0].at_round, 40);
        assert!(!p.is_failure_free());
        assert!(!FaultPlan::none()
            .with_burst(0.1, 0.5, 1.0)
            .is_failure_free());
        assert!(!FaultPlan::none().partition(vec![2], 1).is_failure_free());
    }

    #[test]
    #[should_panic(expected = "burst exit probability")]
    fn bad_burst_probability() {
        let _ = FaultPlan::none().with_burst(0.1, 1.5, 0.9);
    }

    #[test]
    fn validate_checks_topology_bounds() {
        let g = gr_topology::bus(3); // 0-1-2
        assert_eq!(FaultPlan::none().validate(&g), Ok(()));
        assert_eq!(FaultPlan::none().fail_link(0, 1, 5).validate(&g), Ok(()));
        assert_eq!(
            FaultPlan::none().fail_link(0, 2, 5).validate(&g),
            Err(SimConfigError::FaultLinkMissing { a: 0, b: 2 })
        );
        assert_eq!(
            FaultPlan::none().heal_link(1, 7, 5).validate(&g),
            Err(SimConfigError::FaultNodeOutOfRange { node: 7, nodes: 3 })
        );
        assert_eq!(
            FaultPlan::none().crash_node(3, 5).validate(&g),
            Err(SimConfigError::FaultNodeOutOfRange { node: 3, nodes: 3 })
        );
        assert_eq!(
            FaultPlan::none().restart_node(9, 5).validate(&g),
            Err(SimConfigError::FaultNodeOutOfRange { node: 9, nodes: 3 })
        );
        assert_eq!(
            FaultPlan::none().partition(vec![0, 5], 5).validate(&g),
            Err(SimConfigError::FaultNodeOutOfRange { node: 5, nodes: 3 })
        );
        assert_eq!(
            FaultPlan::none().heal_partition(vec![4], 5).validate(&g),
            Err(SimConfigError::FaultNodeOutOfRange { node: 4, nodes: 3 })
        );
        // Display carries enough to act on.
        let e = SimConfigError::FaultLinkMissing { a: 0, b: 2 };
        assert!(e.to_string().contains("nonexistent link (0, 2)"));
        let e = SimConfigError::FaultNodeOutOfRange { node: 9, nodes: 3 };
        assert!(e.to_string().contains("node 9"));
        assert!(e.to_string().contains("3 nodes"));
    }
}
