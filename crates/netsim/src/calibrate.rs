//! One-shot machine-cost calibration for the auto-partitioner.
//!
//! The partitioned round engine trades per-partition parallel work
//! against fixed coordination overhead: each round runs a few
//! [`WorkerPool::run`] phases (one dispatch + barrier each) and merges
//! `p²` per-(src,dst)-partition mailbox lanes in fixed order. Whether a
//! given partition count pays off therefore depends on three *machine*
//! quantities, none of which a node-count threshold can know:
//!
//! * `component_ns` — cost of one streaming componentwise `f64` op (the
//!   flow-bank kernels that dominate per-arc work);
//! * `barrier_ns` / `job_ns` — fixed cost of one pool phase, plus the
//!   marginal cost of each dispatched job;
//! * `lane_ns` — bookkeeping cost of visiting one mailbox lane during
//!   the merge, even when it is empty.
//!
//! [`MachineCosts::probe`] measures all three directly on this process
//! (minimum over repeated timed blocks, so scheduler noise inflates
//! nothing), and the result is cached per thread count for the life of
//! the process — the probe runs at most once per distinct `threads`
//! value, only when an auto-partition decision actually needs it.
//! Explicit `partitions: N` configurations never probe.
//!
//! The probe takes well under ten milliseconds. Timing a probe makes the
//! *auto* decision machine-dependent by design (that is the point); the
//! partition count actually chosen is reported through
//! [`PartitionPlan`](crate::PartitionPlan) so runs remain auditable, and
//! anything that must be reproducible across machines pins `partitions`
//! explicitly.
//!
//! [`WorkerPool::run`]: crate::WorkerPool::run

use crate::par::WorkerPool;
use std::hint::black_box;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Measured per-operation costs of this machine, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct MachineCosts {
    /// One streaming componentwise `f64` op (load/add/store amortized).
    pub component_ns: f64,
    /// Fixed cost of one `WorkerPool::run` dispatch + barrier at the
    /// probed thread count.
    pub barrier_ns: f64,
    /// Marginal cost per dispatched job within one pool phase.
    pub job_ns: f64,
    /// Cost of visiting one mailbox lane during the merge sweep.
    pub lane_ns: f64,
}

/// Floor applied to every probed quantity so a degenerate timer (or a
/// virtualized clock) cannot report a zero cost and divide the model.
const MIN_NS: f64 = 0.01;

impl MachineCosts {
    /// Measure this machine. `threads` is the worker count the simulator
    /// would use; the barrier probe spins up (and tears down) a pool of
    /// that size.
    pub fn probe(threads: usize) -> MachineCosts {
        MachineCosts {
            component_ns: probe_component_ns(),
            barrier_ns: 0.0,
            job_ns: 0.0,
            lane_ns: probe_lane_ns(),
        }
        .with_pool_costs(threads)
    }

    fn with_pool_costs(mut self, threads: usize) -> MachineCosts {
        let (barrier_ns, job_ns) = probe_pool_ns(threads);
        self.barrier_ns = barrier_ns;
        self.job_ns = job_ns;
        self
    }
}

/// Process-wide probe cache, keyed by thread count (the barrier cost is
/// the only thread-dependent term, but one entry per count keeps the
/// bookkeeping trivial — auto-partitioned runs use one or two counts).
pub(crate) fn cached(threads: usize) -> MachineCosts {
    static CACHE: OnceLock<Mutex<Vec<(usize, MachineCosts)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().unwrap();
    if let Some((_, costs)) = guard.iter().find(|(t, _)| *t == threads) {
        return *costs;
    }
    let costs = MachineCosts::probe(threads);
    guard.push((threads, costs));
    costs
}

/// Minimum wall-clock over `reps` runs of `f`, in nanoseconds.
fn min_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Streaming componentwise add over a buffer sized like one partition's
/// worth of hot flow rows — the same memory shape the bank kernels see.
fn probe_component_ns() -> f64 {
    const N: usize = 4096;
    let mut dst = vec![0.5f64; N];
    let src: Vec<f64> = (0..N).map(|k| k as f64 * 1e-3).collect();
    // Warm the cache and the branch predictors once.
    let ns = {
        let mut run = || {
            let (d, s) = (black_box(dst.as_mut_slice()), black_box(src.as_slice()));
            for k in 0..N {
                d[k] += s[k];
            }
            black_box(&mut dst);
        };
        run();
        min_ns(64, run)
    };
    (ns / N as f64).max(MIN_NS)
}

/// One pool dispatch + barrier, and the marginal per-job cost, from two
/// measurements at different job counts (linear fit through two points).
fn probe_pool_ns(threads: usize) -> (f64, f64) {
    let pool = WorkerPool::new(threads);
    let lo_jobs = threads.max(1);
    let hi_jobs = lo_jobs * 16;
    let lo = min_ns(48, || {
        pool.run(lo_jobs, |j| {
            black_box(j);
        })
    });
    let hi = min_ns(48, || {
        pool.run(hi_jobs, |j| {
            black_box(j);
        })
    });
    let job_ns = ((hi - lo) / (hi_jobs - lo_jobs).max(1) as f64).max(MIN_NS);
    let barrier_ns = (lo - job_ns * lo_jobs as f64).max(MIN_NS);
    (barrier_ns, job_ns)
}

/// Per-lane merge bookkeeping: sweep a lane table the way the round
/// merge does (visit every lane, skip the empty ones).
fn probe_lane_ns() -> f64 {
    const LANES: usize = 1024;
    let lanes: Vec<Vec<u64>> = (0..LANES)
        .map(|i| {
            if i % 64 == 0 {
                vec![i as u64]
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut sink = 0u64;
    let ns = min_ns(64, || {
        for lane in black_box(&lanes) {
            if !lane.is_empty() {
                sink = sink.wrapping_add(lane[0]);
            }
        }
        black_box(sink);
    });
    (ns / LANES as f64).max(MIN_NS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_yields_positive_finite_costs() {
        let c = MachineCosts::probe(1);
        for v in [c.component_ns, c.barrier_ns, c.job_ns, c.lane_ns] {
            assert!(v.is_finite() && v >= MIN_NS, "cost {v} out of range");
        }
    }

    #[test]
    fn cache_probes_once_per_thread_count() {
        let a = cached(1);
        let b = cached(1);
        // Bit-identical: the second call must be the cached value, not a
        // fresh probe (which would almost surely differ).
        assert_eq!(a, b);
    }
}
