//! A tiny persistent worker pool for the partitioned round engine.
//!
//! The round loop dispatches a handful of short parallel phases per round
//! (send, deliver, reply, detector scan). Spawning OS threads per phase —
//! or even per round via `thread::scope` — costs syscalls and heap
//! allocations in the steady state, which the simulator's zero-alloc
//! budget forbids. This pool spawns its workers once, parks them on a
//! condvar between phases, and hands each phase over as a type-erased
//! `(data, fn)` pair, so the per-phase dispatch is two mutex acquisitions
//! and zero allocations.
//!
//! Work distribution is an atomic claim counter over `0..njobs`: workers
//! (and the calling thread, which participates) grab the next unclaimed
//! job index until the range is exhausted. The caller returns only after
//! every worker has finished the phase, so the closure's borrows stay
//! valid and phases are strictly barrier-separated.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One dispatched phase: a pointer to the caller's closure plus a
/// monomorphized trampoline that invokes it for a job index.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: `data` points at a `F: Fn(usize) + Sync` that outlives the
// phase (the dispatching thread blocks until all workers are done), and
// `Sync` makes shared cross-thread calls through it sound.
unsafe impl Send for Job {}

struct Ctrl {
    /// Phase generation counter; bumping it wakes the workers.
    epoch: u64,
    /// Jobs in the current phase.
    njobs: usize,
    /// The current phase's trampoline, if one is active.
    job: Option<Job>,
    /// Workers that have finished the current phase.
    done: usize,
    /// A worker's closure panicked during this phase.
    poisoned: bool,
    /// Tells workers to exit.
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Wakes workers for a new phase (or shutdown).
    work_cv: Condvar,
    /// Wakes the dispatcher when the last worker finishes a phase.
    done_cv: Condvar,
    /// Claim counter over `0..njobs` for the current phase.
    next: AtomicUsize,
}

/// Persistent fork-join pool; see the module docs.
///
/// Public (re-exported as `gr_netsim::WorkerPool`) so sibling round
/// drivers — the multi-tenant batch executor in `gr-batch` — can reuse
/// the same zero-allocation phase dispatch instead of growing a second
/// pool implementation. The contract is unchanged: `run` is a strict
/// barrier, and results must never depend on which participant claims
/// which job index.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `threads` total participants: `threads - 1` spawned
    /// workers plus the dispatching thread itself.
    pub fn new(threads: usize) -> WorkerPool {
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                njobs: 0,
                job: None,
                done: 0,
                poisoned: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Run `f(0) .. f(njobs - 1)`, distributing job indices over the pool
    /// plus the calling thread. Returns when every index has been
    /// executed to completion. Allocation-free after construction.
    ///
    /// # Panics
    /// Propagates (as a fresh panic) if `f` panicked on any thread.
    pub fn run<F: Fn(usize) + Sync>(&self, njobs: usize, f: F) {
        if self.handles.is_empty() || njobs <= 1 {
            for idx in 0..njobs {
                f(idx);
            }
            return;
        }
        unsafe fn trampoline<F: Fn(usize)>(data: *const (), idx: usize) {
            // SAFETY: `data` is the `&f` of the matching `run` call, which
            // outlives the phase per the dispatch/barrier protocol.
            unsafe { (*(data as *const F))(idx) }
        }
        let job = Job {
            data: (&raw const f).cast(),
            call: trampoline::<F>,
        };
        {
            let mut c = self.shared.ctrl.lock().unwrap();
            self.shared.next.store(0, Ordering::SeqCst);
            c.job = Some(job);
            c.njobs = njobs;
            c.done = 0;
            c.poisoned = false;
            c.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        // The dispatcher claims jobs too.
        let caller_poisoned = catch_unwind(AssertUnwindSafe(|| loop {
            let idx = self.shared.next.fetch_add(1, Ordering::SeqCst);
            if idx >= njobs {
                break;
            }
            f(idx);
        }))
        .is_err();
        // Barrier: wait until every worker has retired the phase, so `f`'s
        // borrows are release-able and the next phase sees all writes.
        let mut c = self.shared.ctrl.lock().unwrap();
        while c.done < self.handles.len() {
            c = self.shared.done_cv.wait(c).unwrap();
        }
        c.job = None;
        let poisoned = c.poisoned || caller_poisoned;
        drop(c);
        if poisoned {
            panic!("worker pool job panicked");
        }
    }

    /// Total participating threads (workers + the caller).
    #[cfg(test)]
    pub(crate) fn threads(&self) -> usize {
        self.handles.len() + 1
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut c = self.shared.ctrl.lock().unwrap();
            c.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, njobs) = {
            let mut c = shared.ctrl.lock().unwrap();
            while c.epoch == seen_epoch && !c.shutdown {
                c = shared.work_cv.wait(c).unwrap();
            }
            if c.shutdown {
                return;
            }
            seen_epoch = c.epoch;
            (c.job.expect("epoch bumped without a job"), c.njobs)
        };
        let panicked = catch_unwind(AssertUnwindSafe(|| loop {
            let idx = shared.next.fetch_add(1, Ordering::SeqCst);
            if idx >= njobs {
                break;
            }
            // SAFETY: see `Job`.
            unsafe { (job.call)(job.data, idx) };
        }))
        .is_err();
        let mut c = shared.ctrl.lock().unwrap();
        c.done += 1;
        if panicked {
            c.poisoned = true;
        }
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..100 {
            pool.run(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(8, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn propagates_worker_panics() {
        let pool = WorkerPool::new(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // Pool must still be usable after a poisoned phase.
        let count = AtomicUsize::new(0);
        pool.run(16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }
}
