//! Scenario fingerprint hashing.
//!
//! A scenario hash is the FNV-1a-64 digest of the scenario's canonical
//! encoding (see [`crate::Scenario::canonical`]). FNV is not
//! collision-resistant in the cryptographic sense, but the corpus is a
//! few hundred scenarios and the hash only needs to be a stable, compact,
//! greppable handle that survives report → replay round trips.

/// FNV-1a over a byte string, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The 16-hex-digit rendering used in fingerprints and replay commands.
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
        assert_eq!(hex16(fnv1a64(b"x")).len(), 16);
    }
}
