//! Campaign execution over a corpus, and replay-first reporting.
//!
//! Reports are **byte-deterministic**: scenario results come back from
//! [`par_map`] in corpus order regardless of thread interleaving, every
//! float is rendered with a fixed format, and nothing in the report
//! depends on wall-clock time or host identity. Running the same lane
//! twice must produce identical bytes — the determinism suite checks
//! exactly that.
//!
//! A violation is reported as a compact fingerprint — scenario hash +
//! seed + first violated invariant + round — followed by a one-line
//! replay command that re-runs exactly that scenario and dumps the
//! netsim trace tail.

use crate::runner::{run_scenario_exec, run_scenario_traced, Exec, ScenarioResult};
use crate::scenario::{Lane, Scenario};
use gr_experiments::parallel::par_map;
use serde::Serialize;
use serde_json::Value;
use std::fmt::Write as _;

/// All results of one campaign lane, in corpus order.
pub struct CampaignReport {
    /// The lane that was run.
    pub lane: Lane,
    /// Per-scenario outcomes, in corpus order.
    pub results: Vec<ScenarioResult>,
}

/// Run every scenario in the corpus on `threads` workers. Results keep
/// corpus order (the parallel map is order-preserving), so the report is
/// independent of scheduling.
pub fn run_campaign(lane: Lane, corpus: &[Scenario], threads: usize) -> CampaignReport {
    run_campaign_exec(lane, corpus, threads, Exec::default())
}

/// [`run_campaign`] with explicit per-simulation execution options
/// (partitioned-engine worker threads, partition override). `threads`
/// stays the scenario fan-out — how many corpus entries run at once —
/// while `exec.sim_threads` parallelises *inside* each simulation.
pub fn run_campaign_exec(
    lane: Lane,
    corpus: &[Scenario],
    threads: usize,
    exec: Exec,
) -> CampaignReport {
    let results = par_map(corpus.to_vec(), threads, move |sc| {
        run_scenario_exec(&sc, exec)
    });
    CampaignReport { lane, results }
}

impl CampaignReport {
    /// Violating results, in corpus order.
    pub fn violations(&self) -> impl Iterator<Item = &ScenarioResult> {
        self.results.iter().filter(|r| r.violation.is_some())
    }

    /// `true` when no invariant was violated anywhere in the corpus.
    pub fn passed(&self) -> bool {
        self.violations().next().is_none()
    }

    /// The deterministic text report.
    pub fn render(&self) -> String {
        let n_viol = self.violations().count();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gr-campaign {} lane: {} scenarios, {} violation(s)",
            self.lane.label(),
            self.results.len(),
            n_viol
        );
        for r in &self.results {
            let status = if r.violation.is_some() {
                "VIOLATION"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {}  {:<20} {:<13} seed={:<3} rounds={:<5} err={:.3e}  {}",
                r.hash, r.template, r.algorithm, r.seed, r.rounds, r.final_err, status
            );
        }
        if n_viol > 0 {
            let _ = writeln!(out, "violations:");
            for r in self.violations() {
                let v = r.violation.as_ref().unwrap();
                let _ = writeln!(
                    out,
                    "  VIOLATION fp={} template={} alg={} seed={} invariant={} round={} node={}",
                    r.hash,
                    r.template,
                    r.algorithm,
                    r.seed,
                    v.invariant.label(),
                    v.round,
                    v.node
                );
                let _ = writeln!(out, "    {}", v.detail);
                let _ = writeln!(
                    out,
                    "    replay: cargo run -p gr-campaign -- --mode {} --replay {}",
                    self.lane.label(),
                    r.hash
                );
            }
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }

    /// The report as a JSON value (for `--json`).
    pub fn to_json(&self) -> Value {
        let scenarios: Vec<Value> = self.results.iter().map(result_json).collect();
        Value::Object(vec![
            ("lane".to_string(), self.lane.label().to_value()),
            ("scenarios".to_string(), Value::Array(scenarios)),
            (
                "violations".to_string(),
                (self.violations().count() as u64).to_value(),
            ),
            (
                "verdict".to_string(),
                if self.passed() { "PASS" } else { "FAIL" }.to_value(),
            ),
        ])
    }
}

fn result_json(r: &ScenarioResult) -> Value {
    let violation = match &r.violation {
        None => Value::Null,
        Some(v) => Value::Object(vec![
            ("invariant".to_string(), v.invariant.label().to_value()),
            ("round".to_string(), v.round.to_value()),
            ("node".to_string(), (v.node as u64).to_value()),
            ("detail".to_string(), v.detail.to_value()),
        ]),
    };
    // The partition plan: count + source always, the cost-model terms
    // only when the measured auto-partitioner made the choice (model
    // floats are machine-measured, so pinned-baseline scenarios keep
    // `partitions` explicit and this stays byte-deterministic).
    let partitions = match &r.partitions {
        None => Value::Null,
        Some(p) => p.to_value(),
    };
    Value::Object(vec![
        ("hash".to_string(), r.hash.to_value()),
        ("template".to_string(), r.template.to_value()),
        ("algorithm".to_string(), r.algorithm.to_value()),
        ("topology".to_string(), r.topology.to_value()),
        ("seed".to_string(), r.seed.to_value()),
        ("rounds".to_string(), r.rounds.to_value()),
        ("final_err".to_string(), r.final_err.to_value()),
        ("stats".to_string(), r.stats.to_value()),
        ("partitions".to_string(), partitions),
        ("violation".to_string(), violation),
    ])
}

/// A violation fingerprint stable across runs and machines:
/// `scenario-hash:invariant`. The scenario hash pins the full canonical
/// configuration (template, algorithm, seed, fault plan, execution
/// model), so a fingerprint absent from a baseline means a *new* kind of
/// failure, not a known finding that moved by a few rounds.
fn violation_fingerprint(hash: &str, invariant: &str) -> String {
    format!("{hash}:{invariant}")
}

impl CampaignReport {
    /// The fingerprints of every violation in this report, corpus order.
    pub fn violation_fingerprints(&self) -> Vec<String> {
        self.violations()
            .map(|r| {
                violation_fingerprint(&r.hash, r.violation.as_ref().unwrap().invariant.label())
            })
            .collect()
    }

    /// Fingerprints present here but absent from `baseline` — the
    /// regressions a trend lane gates on. Known findings disappearing is
    /// progress, not a failure, so the diff is one-directional.
    pub fn new_violations(&self, baseline: &[String]) -> Vec<String> {
        self.violation_fingerprints()
            .into_iter()
            .filter(|fp| !baseline.iter().any(|b| b == fp))
            .collect()
    }
}

/// Extract violation fingerprints from a previously written `--json`
/// report (the committed stress baseline). Panics on a malformed file:
/// a corrupt baseline must fail the gate loudly, not pass it silently.
pub fn baseline_fingerprints(report: &Value) -> Vec<String> {
    let scenarios = report["scenarios"]
        .as_array()
        .expect("baseline report has a scenarios array");
    scenarios
        .iter()
        .filter(|s| !s["violation"].is_null())
        .map(|s| {
            violation_fingerprint(
                s["hash"].as_str().expect("scenario hash"),
                s["violation"]["invariant"]
                    .as_str()
                    .expect("violation invariant"),
            )
        })
        .collect()
}

/// Find the scenario with the given fingerprint hash in a corpus. The
/// hash is not invertible: replay works by regenerating the (pure,
/// deterministic) corpus and matching.
pub fn find_scenario<'c>(corpus: &'c [Scenario], hash: &str) -> Option<&'c Scenario> {
    corpus.iter().find(|sc| sc.hash() == hash)
}

/// Re-run one fingerprinted scenario with tracing on and render the
/// deterministic replay report: the canonical scenario line, the outcome
/// triple, and the last `tail` netsim events as pretty JSON.
pub fn render_replay(sc: &Scenario, tail: usize) -> String {
    let (r, trace) = run_scenario_traced(sc, Some(tail.max(64)));
    let mut out = String::new();
    let _ = writeln!(out, "replaying fp={}", r.hash);
    let _ = writeln!(out, "  {}", sc.canonical());
    match &r.violation {
        Some(v) => {
            let _ = writeln!(
                out,
                "outcome: VIOLATION invariant={} round={} node={}",
                v.invariant.label(),
                v.round,
                v.node
            );
            let _ = writeln!(out, "  {}", v.detail);
        }
        None => {
            let _ = writeln!(
                out,
                "outcome: ok rounds={} err={:.3e}",
                r.rounds, r.final_err
            );
        }
    }
    let _ = writeln!(
        out,
        "stats: sent={} delivered={} lost_random={} lost_dead={} bit_flips={}",
        r.stats.sent, r.stats.delivered, r.stats.lost_random, r.stats.lost_dead, r.stats.bit_flips
    );
    if let Some(t) = trace {
        let events: Vec<Value> = t.tail(tail).map(|e| e.to_value()).collect();
        let _ = writeln!(
            out,
            "trace tail ({} of {} recorded events):",
            events.len(),
            t.len()
        );
        let arr = Value::Array(events);
        let _ = writeln!(out, "{}", serde_json::to_string_pretty(&arr).unwrap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sanity_corpus, shard_corpus};

    #[test]
    fn report_renders_and_round_trips_fingerprints() {
        // Tiny deterministic slice: one topology, one seed.
        let corpus: Vec<Scenario> = sanity_corpus(&[1])
            .into_iter()
            .filter(|s| s.template == "complete16")
            .collect();
        let report = run_campaign(Lane::Sanity, &corpus, 2);
        assert!(report.passed(), "{}", report.render());
        let text = report.render();
        assert!(text.contains("verdict: PASS"));
        // Every printed hash must resolve back to its scenario.
        for r in &report.results {
            let sc = find_scenario(&corpus, &r.hash).expect("fingerprint resolves");
            assert_eq!(sc.hash(), r.hash);
        }
    }

    #[test]
    fn sharded_reports_merge_to_the_unsharded_report() {
        let corpus = sanity_corpus(&[1]);
        let full = run_campaign(Lane::Sanity, &corpus, 2);

        // Run each shard separately, then interleave the shard results
        // round-robin (scenario `i` lives in shard `i mod n` at in-shard
        // position `i / n`) and compare the merged report byte-for-byte.
        let n = 3;
        let shard_reports: Vec<CampaignReport> = (0..n)
            .map(|k| run_campaign(Lane::Sanity, &shard_corpus(&corpus, k, n), 2))
            .collect();
        assert_eq!(
            shard_reports.iter().map(|r| r.results.len()).sum::<usize>(),
            corpus.len()
        );
        let merged = CampaignReport {
            lane: Lane::Sanity,
            results: (0..corpus.len())
                .map(|i| shard_reports[i % n].results[i / n].clone())
                .collect(),
        };
        assert_eq!(merged.render(), full.render());
        assert_eq!(
            serde_json::to_string(&merged.to_json()).unwrap(),
            serde_json::to_string(&full.to_json()).unwrap()
        );
    }

    #[test]
    fn baseline_diff_flags_only_new_fingerprints() {
        use crate::oracle::{Invariant, Violation};
        let result = |hash: &str, violation: Option<Violation>| ScenarioResult {
            hash: hash.to_string(),
            template: "t".to_string(),
            algorithm: "PCF",
            topology: "ring(4)".to_string(),
            seed: 1,
            rounds: 10,
            final_err: 0.0,
            stats: Default::default(),
            partitions: None,
            violation,
        };
        let viol = |inv: Invariant| {
            Some(Violation {
                invariant: inv,
                round: 5,
                node: 0,
                detail: "d".to_string(),
            })
        };
        let report = CampaignReport {
            lane: Lane::Stress,
            results: vec![
                result("aaaa", viol(Invariant::MassConservation)),
                result("bbbb", None),
                result("cccc", viol(Invariant::FlowMagnitude)),
            ],
        };
        let fps = report.violation_fingerprints();
        assert_eq!(fps.len(), 2);
        assert_eq!(fps[0], "aaaa:MassConservation");

        // The baseline round-trips through the --json report format.
        let known = baseline_fingerprints(&report.to_json());
        assert_eq!(known, fps);
        assert!(report.new_violations(&known).is_empty());

        // A baseline missing one finding flags exactly that one; extra
        // baseline entries (fixed findings) flag nothing.
        assert_eq!(report.new_violations(&fps[..1]), vec![fps[1].clone()]);
        let mut extra = known.clone();
        extra.push("dddd:Convergence".to_string());
        assert!(report.new_violations(&extra).is_empty());
    }

    #[test]
    fn json_report_has_stable_shape() {
        let corpus: Vec<Scenario> = sanity_corpus(&[1])
            .into_iter()
            .filter(|s| s.template == "complete16" && s.algorithm.label() == "PF")
            .collect();
        let report = run_campaign(Lane::Sanity, &corpus, 1);
        let j = serde_json::to_string(&report.to_json()).unwrap();
        assert!(j.contains("\"verdict\":\"PASS\""));
        assert!(j.contains("\"lane\":\"sanity\""));
        assert!(j.contains("\"stats\""));
    }
}
