//! Scenario execution: build the simulation, drive it checkpoint by
//! checkpoint, and let the oracle watch.
//!
//! Each scenario supplies its own execution model via
//! [`Scenario::sim_options`] — zero-delay scenarios run under
//! asynchronous activation (atomic exchanges — see the module docs on
//! [`crate::scenario`] for why that is load-bearing for the oracle's
//! tolerances), delay-bearing ones under synchronous activation with a
//! timeout failure detector. The oracle is consulted every
//! [`CHECK_EVERY`] rounds; the first violation ends the run, so the
//! fingerprinted `(invariant, round, node)` triple always names the
//! *earliest* detected failure.

use crate::oracle::{Oracle, Violation};
use crate::scenario::{Scenario, Workload};
use gr_batch::{BatchHost, BatchOptions, BatchSim, TenantProtocol, TenantSpec};
use gr_netsim::{Protocol, SimStats, Simulator, Trace};
use gr_numerics::{relative_error, Dd};
use gr_reduction::{
    mass_reference, AggregateKind, Algorithm, FlowUpdating, InitialData, InlineVec, Payload,
    PushCancelFlow, PushFlow, PushSum, ReductionProtocol,
};
use gr_topology::{Graph, NodeId};
use rand::prelude::*;

/// Oracle checkpoint cadence, in rounds.
pub const CHECK_EVERY: u64 = 16;

/// Everything the report (and the replay comparison) needs from one run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario fingerprint hash.
    pub hash: String,
    /// Scenario template label.
    pub template: String,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Topology label.
    pub topology: String,
    /// Master seed.
    pub seed: u64,
    /// Rounds actually executed.
    pub rounds: u64,
    /// Max relative error over alive nodes at the last checkpoint.
    pub final_err: f64,
    /// Transport counters.
    pub stats: SimStats,
    /// How the engine partition count was chosen (explicit override,
    /// single-stream default, or the measured cost model — with the
    /// model's probe constants when measured). `None` for multi-tenant
    /// batch scenarios, which run on the batch executor instead of one
    /// partitioned simulator.
    pub partitions: Option<gr_netsim::PartitionPlan>,
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
}

/// Execution-level knobs that are *not* part of a scenario's identity:
/// they may change wall-clock behaviour but never results — with the one
/// documented exception of [`Exec::partitions`], an explicit operator
/// override for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct Exec {
    /// Worker threads for the partitioned engine's parallel phases
    /// (`0` = the netsim default of 1). Thread count never changes
    /// results — the partitioned engine's merge order is fixed by
    /// partition index, and this is pinned by the determinism suite.
    pub sim_threads: usize,
    /// Override the engine partition count (`None` = respect each
    /// scenario's own choice). Unlike threads this *does* change
    /// results (partition count selects RNG streams), so reports
    /// produced under an override are comparable only to other runs
    /// with the same override. The override applies to every scenario
    /// the partitioned engine can express (zero-delay; async activation
    /// flips to synchronous); delay-bearing scenarios keep their own
    /// configuration rather than aborting the lane.
    pub partitions: Option<usize>,
}

/// Run one scenario (no tracing, default execution).
pub fn run_scenario(sc: &Scenario) -> ScenarioResult {
    run_scenario_exec(sc, Exec::default())
}

/// Run one scenario with explicit execution options.
pub fn run_scenario_exec(sc: &Scenario, exec: Exec) -> ScenarioResult {
    run_scenario_traced_exec(sc, None, exec).0
}

/// Run one scenario, optionally recording the netsim event trace (ring
/// buffer of `capacity` events) for replay reporting.
pub fn run_scenario_traced(
    sc: &Scenario,
    trace_capacity: Option<usize>,
) -> (ScenarioResult, Option<Trace>) {
    run_scenario_traced_exec(sc, trace_capacity, Exec::default())
}

/// [`run_scenario_traced`] with explicit execution options.
pub fn run_scenario_traced_exec(
    sc: &Scenario,
    trace_capacity: Option<usize>,
    exec: Exec,
) -> (ScenarioResult, Option<Trace>) {
    // Tenant scenarios run on the gr-batch executor: N instances of the
    // topology under one shared fault plan, oracle-checked per tenant.
    // No netsim trace exists for a batch run (the executor has no event
    // ring), so replay renders the outcome without a trace tail.
    if sc.tenants > 0 {
        return (run_batch_scenario(sc, exec), None);
    }
    let graph = sc.topology.build();
    match sc.workload {
        Workload::Average | Workload::Sum => {
            let data = InitialData::uniform_random(graph.len(), sc.workload.kind(), sc.seed);
            dispatch(sc, &graph, &data, trace_capacity, exec)
        }
        Workload::VectorAvg { dim } => {
            let data = vector_data(graph.len(), dim, sc.seed);
            dispatch(sc, &graph, &data, trace_capacity, exec)
        }
    }
}

/// Deterministic vector workload: `dim` uniform components per node,
/// same seeding discipline as `InitialData::uniform_random`. The draw
/// order is unchanged from the original `Vec<f64>` workload — `InlineVec`
/// is numerically transparent, so every fingerprinted result is
/// byte-identical while small dims run allocation-free.
fn vector_data(n: usize, dim: usize, seed: u64) -> InitialData<InlineVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<InlineVec> = (0..n)
        .map(|_| InlineVec::from((0..dim).map(|_| rng.random::<f64>()).collect::<Vec<f64>>()))
        .collect();
    InitialData::with_kind(values, AggregateKind::Average)
}

fn dispatch<P: Payload>(
    sc: &Scenario,
    graph: &Graph,
    data: &InitialData<P>,
    trace_capacity: Option<usize>,
    exec: Exec,
) -> (ScenarioResult, Option<Trace>) {
    match sc.algorithm {
        Algorithm::PushSum => drive(
            sc,
            graph,
            data,
            PushSum::new(graph, data),
            trace_capacity,
            exec,
        ),
        Algorithm::PushFlow => drive(
            sc,
            graph,
            data,
            PushFlow::new(graph, data),
            trace_capacity,
            exec,
        ),
        Algorithm::PushCancelFlow(mode) => drive(
            sc,
            graph,
            data,
            PushCancelFlow::with_mode(graph, data, mode),
            trace_capacity,
            exec,
        ),
        Algorithm::FlowUpdating => drive(
            sc,
            graph,
            data,
            FlowUpdating::new(graph, data),
            trace_capacity,
            exec,
        ),
    }
}

fn drive<P: Payload, Pr: ReductionProtocol>(
    sc: &Scenario,
    graph: &Graph,
    data: &InitialData<P>,
    protocol: Pr,
    trace_capacity: Option<usize>,
    exec: Exec,
) -> (ScenarioResult, Option<Trace>) {
    let mut options = sc.sim_options();
    if exec.sim_threads > 0 {
        options.threads = exec.sim_threads;
    }
    if let Some(p) = exec.partitions {
        // A corpus-wide override must not abort the lane on the (few)
        // scenarios whose execution model cannot run partitioned: the
        // engine requires zero delay, so delay-bearing scenarios keep
        // their own configuration and everything else gets the override.
        // Zero-delay async-activation scenarios flip to synchronous
        // activation — the partitioned engine is synchronous by
        // construction.
        if p < 2 || options.delay == gr_netsim::DelayModel::None {
            options.partitions = p;
            if p >= 2 {
                options.activation = gr_netsim::Activation::Synchronous;
            }
        }
    }
    // The corpus builders only produce valid execution models; a
    // hand-built scenario (or an incompatible partition override) that
    // violates the netsim config rules is reported through the typed
    // `SimConfigError` here.
    let mut sim = Simulator::try_with_options(graph, protocol, sc.fault_plan(), sc.seed, options)
        .unwrap_or_else(|e| panic!("scenario {}: invalid execution model: {e}", sc.hash()));
    if let Some(cap) = trace_capacity {
        sim.enable_trace(cap);
    }

    let mut oracle = Oracle::new(sc, data);
    let mut refs = data.reference();
    let mut alive_count = graph.len();
    let mut crashed = false;

    loop {
        sim.step();
        let round = sim.round();
        let done = round >= sc.max_rounds;
        if round % CHECK_EVERY != 0 && !done {
            continue;
        }

        let alive: Vec<NodeId> = sim.alive_nodes().collect();
        if alive.len() != alive_count {
            alive_count = alive.len();
            crashed = true;
        }
        if crashed {
            // Same policy as the experiment runner: after a crash the
            // survivors' achievable aggregate is the ratio of their
            // remaining mass, recomputed at every sample because any
            // single snapshot is distorted by in-flight error.
            refs = mass_reference(sim.protocol(), alive.iter().copied())
                .unwrap_or_else(|| vec![Dd::ZERO; data.dim()]);
        }
        let (err, worst_node) = worst_error(sim.protocol(), &refs, &alive);
        oracle.note_error(round, err);

        let edges = mutual_edges(&sim, &alive);
        let mut violation = oracle.check_step(sim.protocol(), &alive, &edges, round);
        let converged = sc.target_accuracy > 0.0 && err <= sc.target_accuracy;
        if violation.is_none() && (converged || done) {
            violation = oracle.check_end(sc, round, err, worst_node);
        }
        if violation.is_some() || converged || done {
            let result = ScenarioResult {
                hash: sc.hash(),
                template: sc.template.clone(),
                algorithm: sc.algorithm.label(),
                topology: sc.topology.label(),
                seed: sc.seed,
                rounds: round,
                final_err: err,
                stats: sim.stats(),
                partitions: Some(*sim.partition_plan()),
                violation,
            };
            let trace = sim.trace().cloned();
            return (result, trace);
        }
    }
}

/// Run a `tenants > 0` scenario on the gr-batch multi-tenant executor:
/// `sc.tenants` instances of the scenario's topology, tenant `t` seeded
/// `sc.seed + t` with its own uniform-random initial values, every
/// tenant under the SAME scheduled-fault plan (tenant-local ids — the
/// batch engine offsets them into union space). The oracle checks each
/// tenant independently against its own initial data; the first
/// violation (tenant order, then invariant order) is the one reported,
/// with the node mapped back to the tenant-local id.
fn run_batch_scenario(sc: &Scenario, exec: Exec) -> ScenarioResult {
    assert_eq!(
        sc.workload,
        Workload::Average,
        "tenant scenarios are scalar-average workloads"
    );
    let graph = sc.topology.build();
    let plan = sc.fault_plan();
    let specs: Vec<TenantSpec> = (0..sc.tenants)
        .map(|t| {
            let seed = sc.seed.wrapping_add(t as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let values = (0..graph.len()).map(|_| rng.random::<f64>()).collect();
            TenantSpec {
                graph: graph.clone(),
                seed,
                plan: plan.clone(),
                values,
                max_rounds: sc.max_rounds,
            }
        })
        .collect();
    let host = BatchHost::assemble(&specs)
        .unwrap_or_else(|e| panic!("scenario {}: invalid batch config: {e}", sc.hash()));
    let data = host.union_data(&specs);
    match sc.algorithm {
        Algorithm::PushFlow => {
            drive_batch(sc, &host, &specs, PushFlow::new(host.graph(), &data), exec)
        }
        Algorithm::PushCancelFlow(mode) => drive_batch(
            sc,
            &host,
            &specs,
            PushCancelFlow::with_mode(host.graph(), &data, mode),
            exec,
        ),
        Algorithm::FlowUpdating => drive_batch(
            sc,
            &host,
            &specs,
            FlowUpdating::new(host.graph(), &data),
            exec,
        ),
        Algorithm::PushSum => panic!(
            "scenario {}: tenant scenarios require a flow protocol (push-sum has no batch support)",
            sc.hash()
        ),
    }
}

fn drive_batch<P: TenantProtocol + ReductionProtocol>(
    sc: &Scenario,
    host: &BatchHost,
    specs: &[TenantSpec],
    protocol: P,
    exec: Exec,
) -> ScenarioResult {
    let n_t = specs.len();
    let opts = BatchOptions {
        threads: exec.sim_threads.max(1),
        ..BatchOptions::default()
    };
    let mut sim = BatchSim::new(host, protocol, specs, opts)
        .unwrap_or_else(|e| panic!("scenario {}: invalid batch options: {e}", sc.hash()));

    // Per-tenant oracle state, each against that tenant's own data.
    let per_data: Vec<InitialData<f64>> = specs
        .iter()
        .map(|s| InitialData::with_kind(s.values.clone(), AggregateKind::Average))
        .collect();
    let mut oracles: Vec<Oracle> = per_data.iter().map(|d| Oracle::new(sc, d)).collect();
    let mut refs: Vec<Vec<Dd>> = per_data.iter().map(|d| d.reference()).collect();
    let mut alive_counts: Vec<usize> = specs.iter().map(|s| s.graph.len()).collect();
    let mut crashed = vec![false; n_t];
    let mut errs = vec![(0.0f64, 0 as NodeId); n_t];

    loop {
        sim.step_round();
        let round = sim.round();
        let done = round >= sc.max_rounds;
        if round % CHECK_EVERY != 0 && !done {
            continue;
        }

        let mut violation: Option<Violation> = None;
        for t in 0..n_t {
            let node_base = host.tenant_nodes(t).start;
            let alive: Vec<NodeId> = sim.tenant_alive_nodes(t).collect();
            if alive.len() != alive_counts[t] {
                alive_counts[t] = alive.len();
                crashed[t] = true;
            }
            if crashed[t] {
                // Same survivor-mass re-basing as the classic driver,
                // scoped to the tenant's node block.
                refs[t] = mass_reference(sim.protocol(), alive.iter().copied())
                    .unwrap_or_else(|| vec![Dd::ZERO; per_data[t].dim()]);
            }
            let (err, worst_node) = worst_error(sim.protocol(), &refs[t], &alive);
            oracles[t].note_error(round, err);
            errs[t] = (err, worst_node);
            if violation.is_none() {
                let edges = batch_mutual_edges(&sim, &alive);
                violation = oracles[t]
                    .check_step(sim.protocol(), &alive, &edges, round)
                    .map(|v| localize_violation(v, t, node_base));
            }
        }
        // The reported error is the worst tenant's — one number that
        // bounds the whole fleet.
        let (final_err, _) =
            errs.iter().fold(
                (0.0f64, 0 as NodeId),
                |acc, &e| if e.0 > acc.0 { e } else { acc },
            );
        let converged = sc.target_accuracy > 0.0 && final_err <= sc.target_accuracy;
        if violation.is_none() && (converged || done) {
            for t in 0..n_t {
                let node_base = host.tenant_nodes(t).start;
                let (err, worst_node) = errs[t];
                if let Some(v) = oracles[t].check_end(sc, round, err, worst_node) {
                    violation = Some(localize_violation(v, t, node_base));
                    break;
                }
            }
        }
        if violation.is_some() || converged || done {
            let mut stats = SimStats::default();
            for t in 0..n_t {
                stats.merge(&sim.tenant_stats(t));
            }
            stats.rounds = round;
            return ScenarioResult {
                hash: sc.hash(),
                template: sc.template.clone(),
                algorithm: sc.algorithm.label(),
                topology: sc.topology.label(),
                seed: sc.seed,
                rounds: round,
                final_err,
                stats,
                partitions: None,
                violation,
            };
        }
    }
}

/// Map a violation caught in union-graph coordinates back to the
/// tenant-local node id, and stamp the tenant index into the detail.
fn localize_violation(v: Violation, tenant: usize, node_base: NodeId) -> Violation {
    Violation {
        node: v.node - node_base,
        detail: format!("tenant {tenant}: {}", v.detail),
        ..v
    }
}

/// [`mutual_edges`] over a batch tenant's alive set (union-graph ids).
fn batch_mutual_edges<P: TenantProtocol>(
    sim: &BatchSim<'_, P>,
    alive: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for &i in alive {
        for &j in sim.believed_alive(i) {
            if j > i && alive.binary_search(&j).is_ok() && sim.believed_alive(j).contains(&i) {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// Max relative error over the alive set, with the worst node attributed
/// (ties break to the lowest node id; an all-zero-error run attributes to
/// the first alive node).
fn worst_error<Pr: ReductionProtocol + ?Sized>(
    proto: &Pr,
    refs: &[Dd],
    alive: &[NodeId],
) -> (f64, NodeId) {
    let mut buf = vec![0.0; proto.dim()];
    let mut worst = 0.0f64;
    let mut worst_node = alive.first().copied().unwrap_or(0);
    for &i in alive {
        proto.write_estimate(i, &mut buf);
        let mut node_err = 0.0f64;
        for (k, &r) in refs.iter().enumerate() {
            // `relative_error` maps a destroyed (non-finite) estimate to
            // +∞, so NaN never slips through a max fold here.
            node_err = node_err.max(relative_error(buf[k], r));
        }
        if node_err > worst {
            worst = node_err;
            worst_node = i;
        }
    }
    (worst, worst_node)
}

/// Edges `(i, j)`, `i < j`, whose endpoints are both alive and mutually
/// believe each other alive — the set over which flow antisymmetry is a
/// meaningful claim (after a detected failure both endpoints have reset
/// their flow state for the edge).
fn mutual_edges<Pr: Protocol>(sim: &Simulator<'_, Pr>, alive: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for &i in alive {
        for &j in sim.believed_alive(i) {
            if j > i && alive.binary_search(&j).is_ok() && sim.believed_alive(j).contains(&i) {
                edges.push((i, j));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sanity_corpus, stress_corpus, Lane};
    use gr_reduction::PhiMode;

    #[test]
    fn sanity_scenario_converges_cleanly() {
        // One representative per algorithm on the fastest-mixing topology.
        let corpus = sanity_corpus(&[1]);
        for sc in corpus.iter().filter(|s| s.template == "complete16") {
            let r = run_scenario(sc);
            assert!(
                r.violation.is_none(),
                "{}: {:?}",
                sc.canonical(),
                r.violation
            );
            assert!(r.final_err <= sc.target_accuracy);
            assert!(r.rounds < sc.max_rounds);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let sc = &stress_corpus(&[2])[0];
        let a = run_scenario(sc);
        let b = run_scenario(sc);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.final_err.to_bits(), b.final_err.to_bits());
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn timeout_heal_scenario_is_violation_free_for_pcf() {
        // The headline robustness case: a local timeout failure detector
        // under uniform message delay (false suspicions happen and are
        // rehabilitated), a scheduled link failure detected only through
        // silence, and a later link heal. PCF must ride through the
        // whole cycle with zero oracle violations and reconverge.
        let corpus = stress_corpus(&[1]);
        let cases: Vec<_> = corpus
            .iter()
            .filter(|s| {
                s.template.starts_with("timeout+heal/")
                    && matches!(s.algorithm, Algorithm::PushCancelFlow(_))
            })
            .collect();
        assert_eq!(cases.len(), 2, "both PCF modes are in the corpus");
        for sc in cases {
            let r = run_scenario(sc);
            assert!(
                r.violation.is_none(),
                "{}: {:?}",
                sc.canonical(),
                r.violation
            );
            assert!(
                r.final_err < 1e-6,
                "{}: err={:e}",
                sc.canonical(),
                r.final_err
            );
            assert!(r.stats.suspected > 0, "timeout detector never fired");
        }
    }

    #[test]
    fn restart_scenario_reconverges_for_pcf() {
        // Crash, then a scheduled restart: the rejoining node must be
        // counted exactly once and the network reconverges to the new
        // aggregate with no oracle violation.
        let corpus = stress_corpus(&[1]);
        let sc = corpus
            .iter()
            .find(|s| {
                s.template.starts_with("restart/")
                    && s.algorithm == Algorithm::PushCancelFlow(PhiMode::Hardened)
            })
            .unwrap();
        let r = run_scenario(sc);
        assert!(
            r.violation.is_none(),
            "{}: {:?}",
            sc.canonical(),
            r.violation
        );
        assert!(r.final_err < 1e-6, "err={:e}", r.final_err);
    }

    #[test]
    fn workload_scenarios_converge() {
        let corpus = sanity_corpus(&[2]);
        let sum = corpus
            .iter()
            .find(|s| {
                s.template == "sum/complete16"
                    && s.algorithm == Algorithm::PushCancelFlow(PhiMode::Hardened)
            })
            .unwrap();
        let r = run_scenario(sum);
        assert!(
            r.violation.is_none(),
            "{}: {:?}",
            sum.canonical(),
            r.violation
        );
        let vec = corpus
            .iter()
            .find(|s| s.template == "vec3/hypercube5" && s.algorithm == Algorithm::FlowUpdating)
            .unwrap();
        let r = run_scenario(vec);
        assert!(
            r.violation.is_none(),
            "{}: {:?}",
            vec.canonical(),
            r.violation
        );
    }

    #[test]
    fn partition_override_is_thread_invariant() {
        // Force a zero-delay stress scenario onto the partitioned engine
        // and sweep the worker count: results must be byte-identical —
        // sim threads are an execution hint, not identity.
        let sc = stress_corpus(&[2])
            .into_iter()
            .find(|s| s.template.starts_with("loss/") && s.delay_max == 0)
            .unwrap();
        let exec1 = Exec {
            sim_threads: 1,
            partitions: Some(4),
        };
        let a = run_scenario_exec(&sc, exec1);
        for sim_threads in [2, 4] {
            let b = run_scenario_exec(
                &sc,
                Exec {
                    sim_threads,
                    partitions: Some(4),
                },
            );
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.final_err.to_bits(), b.final_err.to_bits());
            assert_eq!(a.violation, b.violation);
        }
        // And the override genuinely changed the execution relative to
        // the classic engine (different RNG streams).
        let classic = run_scenario(&sc);
        assert_ne!(classic.stats, a.stats);
    }

    #[test]
    fn partition_override_skips_delay_scenarios() {
        // A corpus-wide `--partitions` override must not abort the lane
        // on delay-bearing scenarios the partitioned engine cannot
        // express: they keep their own configuration, byte-for-byte.
        let sc = stress_corpus(&[1])
            .into_iter()
            .find(|s| s.delay_max > 0)
            .unwrap();
        let overridden = run_scenario_exec(
            &sc,
            Exec {
                sim_threads: 1,
                partitions: Some(4),
            },
        );
        let own = run_scenario(&sc);
        assert_eq!(own.rounds, overridden.rounds);
        assert_eq!(own.stats, overridden.stats);
        assert_eq!(own.final_err.to_bits(), overridden.final_err.to_bits());
        assert_eq!(own.violation, overridden.violation);
    }

    #[test]
    fn million_node_scenario_executes_partitioned() {
        let sc = stress_corpus(&[1])
            .into_iter()
            .find(|s| s.template == "scale1m-avg/torus1000x1000")
            .unwrap();
        let r = run_scenario_exec(
            &sc,
            Exec {
                sim_threads: 2,
                partitions: None,
            },
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert_eq!(r.rounds, 8);
        // Every node sends each of the 8 full-sweep rounds.
        assert_eq!(r.stats.sent, 8_000_000);
        assert!(r.stats.lost_random > 0, "loss never fired: {:?}", r.stats);
        // 8 rounds into a diameter-1000 mix the error is still huge (a
        // PCF weight estimate may even pass through zero, making it ∞) —
        // the template checks engine execution and oracle screens, not
        // convergence. The transport must have delivered the non-lost
        // traffic, though.
        assert_eq!(
            r.stats.delivered + r.stats.lost_random,
            r.stats.sent,
            "{:?}",
            r.stats
        );
    }

    #[test]
    fn tenants_scenario_runs_batched_and_is_thread_invariant() {
        // The multi-tenant template: 24 hc6 tenants under one shared
        // fault plan on the gr-batch executor. PCF-hardened must ride
        // through with zero per-tenant oracle violations, and the batch
        // worker count must not perturb a single byte of the result.
        let sc = stress_corpus(&[1])
            .into_iter()
            .find(|s| {
                s.template == "tenants/hc6-shared-faults"
                    && s.algorithm == Algorithm::PushCancelFlow(PhiMode::Hardened)
            })
            .expect("tenants template in stress corpus");
        assert_eq!(sc.tenants, 24);
        let a = run_scenario(&sc);
        assert!(
            a.violation.is_none(),
            "{}: {:?}",
            sc.canonical(),
            a.violation
        );
        assert_eq!(a.rounds, sc.max_rounds);
        // Worst-tenant survivor error after the shared faults: exact
        // reconvergence across the whole fleet.
        assert!(a.final_err < 1e-6, "err={:e}", a.final_err);
        // Aggregated transport counters cover all 24 tenants: every
        // tenant's alive nodes send every round.
        assert!(a.stats.sent > 24 * 64 * 800, "{:?}", a.stats);
        assert!(
            a.stats.lost_random > 0,
            "loss model never fired: {:?}",
            a.stats
        );
        for sim_threads in [2, 4] {
            let b = run_scenario_exec(
                &sc,
                Exec {
                    sim_threads,
                    partitions: None,
                },
            );
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.final_err.to_bits(), b.final_err.to_bits());
            assert_eq!(a.violation, b.violation);
        }
    }

    #[test]
    fn traced_run_matches_untraced_outcome() {
        let sc = &sanity_corpus(&[3])[0];
        let plain = run_scenario(sc);
        let (traced, trace) = run_scenario_traced(sc, Some(512));
        assert_eq!(plain.rounds, traced.rounds);
        assert_eq!(plain.final_err.to_bits(), traced.final_err.to_bits());
        assert!(trace.is_some());
        assert_eq!(sc.lane, Lane::Sanity);
    }
}
