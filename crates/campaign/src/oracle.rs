//! The invariant oracle: what must hold, to which tolerance, in which
//! lane.
//!
//! The paper's claims are *invariants*, not point results — PF/PCF
//! conserve global mass under message loss, PCF's flow variables stay at
//! the magnitude of the aggregate, survivors re-converge to the survivor
//! aggregate after crashes. The oracle checks them from the outside
//! through the [`ReductionProtocol`] introspection hooks (`write_mass`,
//! `write_flow`, `max_flow`), with lane-dependent tolerances:
//!
//! * **Sanity** (fault-free, asynchronous activation): exchanges are
//!   atomic, so global mass conservation and PF/FU pairwise flow
//!   antisymmetry hold *exactly* in exact arithmetic — the tolerance is
//!   pure f64-rounding headroom. PCF's fold handshake transiently parks
//!   the folded value in `ϕ` between fold and acknowledgement, so its
//!   per-edge slot-sum residual is legitimately nonzero *but bounded by
//!   the folded magnitude*, which PCF pins to `O(|aggregate|)` — exactly
//!   the paper's Sec. III claim, and what we check.
//! * **Stress** (loss, bit flips, permanent failures): loss leaves paid
//!   `e/2` deltas in flight on an edge until the next successful exchange
//!   heals it, so instantaneous conservation is only plausible to a loose
//!   magnitude bound. The stress checks are calibrated to catch the
//!   *unsurvivable* class — NaN/∞ lock-in and exponent-bit-flip blowups
//!   (~1e±300) — while tolerating every legitimate transient.

use crate::scenario::{Lane, Scenario};
use gr_reduction::{Algorithm, InitialData, Payload, ReductionProtocol};
use gr_topology::NodeId;

/// The checked invariant set. Order in [`Invariant::label`]'s doc is the
/// evaluation order: per-checkpoint checks first, end-of-run checks last;
/// the *first* violated invariant is the one fingerprinted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Σ over alive nodes of `(value, weight)` mass equals the expected
    /// total (re-based when the alive set shrinks).
    MassConservation,
    /// `f_ij == −f_ji` per edge, componentwise and in the weight, to the
    /// lane/algorithm tolerance (PF/FU exact; PCF bounded by the
    /// in-flight fold magnitude).
    FlowAntisymmetry,
    /// Flow variables stay finite and within the algorithm's magnitude
    /// bound — for PCF, `O(max initial magnitude)`: the paper's central
    /// structural claim.
    FlowMagnitude,
    /// The run reaches the target accuracy against the true aggregate
    /// within the round budget (always checked in the sanity lane; in
    /// the stress lane only when the scenario sets an explicit target).
    Convergence,
    /// Stress lane, scheduled faults only: survivors re-converge to the
    /// survivor aggregate by the end of the post-fault window.
    SurvivorReconvergence,
    /// Stress lane: the oracle error does not diverge after the last
    /// scheduled fault.
    NonDivergence,
}

impl Invariant {
    /// Stable label used in fingerprints and reports.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::MassConservation => "MassConservation",
            Invariant::FlowAntisymmetry => "FlowAntisymmetry",
            Invariant::FlowMagnitude => "FlowMagnitude",
            Invariant::Convergence => "Convergence",
            Invariant::SurvivorReconvergence => "SurvivorReconvergence",
            Invariant::NonDivergence => "NonDivergence",
        }
    }
}

/// A first-violation record: everything the fingerprint needs.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant broke first.
    pub invariant: Invariant,
    /// Round of the checkpoint that caught it.
    pub round: u64,
    /// The node the violation is attributed to (for global checks, the
    /// worst-contributing node; for edge checks, the lower endpoint).
    pub node: NodeId,
    /// Deterministic human-readable specifics.
    pub detail: String,
}

/// Per-run oracle state (tolerances + running expectations).
pub struct Oracle {
    lane: Lane,
    /// Payload components per node value.
    dim: usize,
    /// Expected Σ value-mass per component over the tracked alive set.
    expected_values: Vec<f64>,
    /// Expected Σ weight over the tracked alive set.
    expected_weight: f64,
    /// Alive count at the last checkpoint (shrink ⇒ re-base).
    alive_count: usize,
    /// Round of the last scheduled fault (0 when none).
    last_fault_round: u64,
    /// Best error observed at/after `last_fault_round`.
    best_err_after_fault: f64,
    mass_tol: f64,
    antisym_tol: f64,
    flow_bound: f64,
}

/// Stress-lane absolute floor below which error fluctuations are never
/// flagged as divergence.
const DIVERGENCE_FLOOR: f64 = 1e-6;
/// Stress-lane survivor-reconvergence threshold.
const RECONVERGENCE_EPS: f64 = 1e-6;

impl Oracle {
    /// Build the oracle for one scenario over its workload (any payload
    /// dimension — vector workloads are checked componentwise).
    pub fn new<P: Payload>(sc: &Scenario, data: &InitialData<P>) -> Self {
        let n = data.len();
        let dim = data.dim();
        let mut scale = 1.0;
        let mut max_init = 0.0f64;
        let mut expected_values = vec![0.0f64; dim];
        let mut expected_weight = 0.0f64;
        for i in 0..n {
            let w = data.weight(i);
            scale += w.abs();
            max_init = max_init.max(w.abs());
            for (k, &c) in data.value(i).components().iter().enumerate() {
                scale += c.abs();
                max_init = max_init.max(c.abs());
                expected_values[k] += c;
            }
            expected_weight += w;
        }

        // Tolerances. Sanity: rounding headroom only (conservation and
        // PF/FU antisymmetry are exact in exact arithmetic under atomic
        // exchanges); PCF's per-edge residual is bounded by in-flight
        // fold magnitudes, which PCF pins to the aggregate scale. Stress:
        // magnitude screens that catch NaN/1e±300 while tolerating
        // in-flight loss deltas.
        let pcf = matches!(sc.algorithm, Algorithm::PushCancelFlow(_));
        let (mass_tol, antisym_tol, flow_bound) = match sc.lane {
            Lane::Sanity => (
                1e-9 * scale,
                if pcf {
                    16.0 * (max_init + 1.0)
                } else {
                    1e-9 * scale
                },
                if pcf {
                    16.0 * (max_init + 1.0)
                } else {
                    1e3 * scale
                },
            ),
            Lane::Stress => (1e6 * scale, 1e6 * scale, 1e6 * scale),
        };

        Oracle {
            lane: sc.lane,
            dim,
            expected_values,
            expected_weight,
            alive_count: n,
            last_fault_round: sc.last_fault_round(),
            best_err_after_fault: f64::INFINITY,
            mass_tol,
            antisym_tol,
            flow_bound,
        }
    }

    /// Feed the checkpoint error (drives the non-divergence trend).
    pub fn note_error(&mut self, round: u64, err: f64) {
        if round >= self.last_fault_round && err < self.best_err_after_fault {
            self.best_err_after_fault = err;
        }
    }

    /// Run the per-checkpoint invariants. `edges` must list the mutually
    /// believed-alive edges `(i, j)` with `i < j`.
    pub fn check_step<Pr: ReductionProtocol + ?Sized>(
        &mut self,
        proto: &Pr,
        alive: &[NodeId],
        edges: &[(NodeId, NodeId)],
        round: u64,
    ) -> Option<Violation> {
        self.check_mass(proto, alive, round)
            .or_else(|| self.check_flows(proto, edges, round))
    }

    /// Run the end-of-run invariants given the final error measurement.
    pub fn check_end(
        &self,
        sc: &Scenario,
        round: u64,
        final_err: f64,
        worst_node: NodeId,
    ) -> Option<Violation> {
        match self.lane {
            Lane::Sanity => {
                if final_err > sc.target_accuracy {
                    return Some(Violation {
                        invariant: Invariant::Convergence,
                        round,
                        node: worst_node,
                        detail: format!(
                            "max relative error {final_err:e} above target {:e} at round cap",
                            sc.target_accuracy
                        ),
                    });
                }
            }
            Lane::Stress => {
                // An explicit accuracy target turns convergence into a
                // checked invariant in the stress lane too (no default
                // stress scenario sets one, but replay/bisection cases
                // do).
                if sc.target_accuracy > 0.0 && final_err > sc.target_accuracy {
                    return Some(Violation {
                        invariant: Invariant::Convergence,
                        round,
                        node: worst_node,
                        detail: format!(
                            "max relative error {final_err:e} above target {:e} at round cap",
                            sc.target_accuracy
                        ),
                    });
                }
                if sc.has_scheduled_faults() && final_err > RECONVERGENCE_EPS {
                    return Some(Violation {
                        invariant: Invariant::SurvivorReconvergence,
                        round,
                        node: worst_node,
                        detail: format!(
                            "survivor error {final_err:e} above {RECONVERGENCE_EPS:e} \
                             after post-fault window (last fault at round {})",
                            self.last_fault_round
                        ),
                    });
                }
                let allowance = (100.0 * self.best_err_after_fault).max(DIVERGENCE_FLOOR);
                if final_err > allowance {
                    return Some(Violation {
                        invariant: Invariant::NonDivergence,
                        round,
                        node: worst_node,
                        detail: format!(
                            "final error {final_err:e} exceeds {allowance:e} \
                             (best after last fault: {:e})",
                            self.best_err_after_fault
                        ),
                    });
                }
            }
        }
        None
    }

    fn check_mass<Pr: ReductionProtocol + ?Sized>(
        &mut self,
        proto: &Pr,
        alive: &[NodeId],
        round: u64,
    ) -> Option<Violation> {
        let mut buf = vec![0.0f64; self.dim];
        let mut vsum = vec![0.0f64; self.dim];
        let mut wsum = 0.0;
        let mut worst_node = *alive.first()?;
        let mut worst_mag = f64::NEG_INFINITY;
        for &i in alive {
            let w = proto.write_mass(i, &mut buf);
            if !w.is_finite() || buf.iter().any(|c| !c.is_finite()) {
                let bad = buf.iter().copied().find(|c| !c.is_finite()).unwrap_or(w);
                return Some(Violation {
                    invariant: Invariant::MassConservation,
                    round,
                    node: i,
                    detail: format!("non-finite mass at node {i}: value={bad:e} weight={w:e}"),
                });
            }
            let mag = buf.iter().fold(0.0f64, |a, c| a.max(c.abs()));
            if mag > worst_mag {
                worst_mag = mag;
                worst_node = i;
            }
            for (acc, &c) in vsum.iter_mut().zip(&buf) {
                *acc += c;
            }
            wsum += w;
        }
        if alive.len() != self.alive_count {
            // The alive set changed since the last checkpoint — dead
            // nodes took their current holdings with them, a restarted
            // node re-contributed its initial mass — so re-base the
            // expectation on the observed total. (Exact loss accounting
            // would need a snapshot at the crash/restart instant.)
            self.alive_count = alive.len();
            self.expected_values = vsum;
            self.expected_weight = wsum;
            return None;
        }
        let dv = vsum
            .iter()
            .zip(&self.expected_values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let dw = (wsum - self.expected_weight).abs();
        if dv > self.mass_tol || dw > self.mass_tol {
            return Some(Violation {
                invariant: Invariant::MassConservation,
                round,
                node: worst_node,
                detail: format!(
                    "mass drift |Δvalue|={dv:e} |Δweight|={dw:e} exceeds {:e}",
                    self.mass_tol
                ),
            });
        }
        None
    }

    fn check_flows<Pr: ReductionProtocol + ?Sized>(
        &self,
        proto: &Pr,
        edges: &[(NodeId, NodeId)],
        round: u64,
    ) -> Option<Violation> {
        let mut fij = vec![0.0f64; self.dim];
        let mut fji = vec![0.0f64; self.dim];
        for &(i, j) in edges {
            let wij = proto.write_flow(i, j, &mut fij)?; // None: flow-less protocol
            let wji = proto.write_flow(j, i, &mut fji)?;
            if !wij.is_finite()
                || !wji.is_finite()
                || fij.iter().chain(fji.iter()).any(|c| !c.is_finite())
            {
                return Some(Violation {
                    invariant: Invariant::FlowMagnitude,
                    round,
                    node: i,
                    detail: format!(
                        "non-finite flow on edge ({i},{j}): \
                         f_ij=({:e},{:e}) f_ji=({:e},{:e})",
                        fij[0], wij, fji[0], wji
                    ),
                });
            }
            let rv = fij
                .iter()
                .zip(&fji)
                .map(|(a, b)| (a + b).abs())
                .fold(0.0f64, f64::max);
            let rw = (wij + wji).abs();
            if rv > self.antisym_tol || rw > self.antisym_tol {
                return Some(Violation {
                    invariant: Invariant::FlowAntisymmetry,
                    round,
                    node: i,
                    detail: format!(
                        "edge ({i},{j}) residual |f_ij+f_ji| value={rv:e} weight={rw:e} \
                         exceeds {:e}",
                        self.antisym_tol
                    ),
                });
            }
        }
        if let Some(m) = proto.max_flow() {
            if m > self.flow_bound {
                // Attribute to the lower endpoint of the largest checked
                // edge flow (max_flow itself is edge-anonymous).
                let mut node = edges.first().map_or(0, |&(i, _)| i);
                let mut best = f64::NEG_INFINITY;
                for &(i, j) in edges {
                    for (a, b) in [(i, j), (j, i)] {
                        if proto.write_flow(a, b, &mut fij).is_some() {
                            let mag = fij.iter().fold(0.0f64, |m, c| m.max(c.abs()));
                            if mag > best {
                                best = mag;
                                node = a.min(b);
                            }
                        }
                    }
                }
                return Some(Violation {
                    invariant: Invariant::FlowMagnitude,
                    round,
                    node,
                    detail: format!(
                        "max flow magnitude {m:e} exceeds bound {:e}",
                        self.flow_bound
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sanity_corpus, stress_corpus};
    use gr_reduction::AggregateKind;

    fn oracle_for(lane: Lane) -> (Oracle, Scenario) {
        let sc = match lane {
            Lane::Sanity => sanity_corpus(&[1]).into_iter().next().unwrap(),
            Lane::Stress => stress_corpus(&[1]).into_iter().next().unwrap(),
        };
        let data =
            InitialData::uniform_random(sc.topology.nodes(), AggregateKind::Average, sc.seed);
        (Oracle::new(&sc, &data), sc)
    }

    #[test]
    fn sanity_tolerances_are_tight() {
        let (o, _) = oracle_for(Lane::Sanity);
        assert!(o.mass_tol < 1e-6);
        let (o, _) = oracle_for(Lane::Stress);
        assert!(o.mass_tol > 1.0);
    }

    #[test]
    fn convergence_violation_at_cap() {
        let (o, sc) = oracle_for(Lane::Sanity);
        let v = o.check_end(&sc, sc.max_rounds, 1e-3, 7).unwrap();
        assert_eq!(v.invariant, Invariant::Convergence);
        assert_eq!(v.node, 7);
        assert!(o.check_end(&sc, 100, 1e-12, 0).is_none());
    }

    #[test]
    fn non_divergence_tracks_best_after_fault() {
        let (mut o, sc) = oracle_for(Lane::Stress);
        o.note_error(500, 1e-9);
        o.note_error(700, 1e-8);
        // final error 5 orders above best ⇒ divergence (if above floor)
        let v = o.check_end(&sc, 900, 1e-3, 2);
        assert!(v.is_some());
        assert_eq!(v.unwrap().invariant, Invariant::NonDivergence);
        // within the 100× band ⇒ fine
        assert!(o.check_end(&sc, 900, 1e-8, 2).is_none());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Invariant::MassConservation.label(), "MassConservation");
        assert_eq!(
            Invariant::SurvivorReconvergence.label(),
            "SurvivorReconvergence"
        );
    }
}
