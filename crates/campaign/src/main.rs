//! The campaign CLI.
//!
//! ```text
//! gr-campaign --mode sanity                 # hard CI gate (exit 1 on violation)
//! gr-campaign --mode stress                 # trend lane (always exit 0)
//! gr-campaign --mode stress --seeds 5       # widen the seed corpus to 1..=5
//! gr-campaign --mode stress --shard 2/4     # run only the 2nd of 4 corpus shards
//! gr-campaign --mode stress --replay <fp>   # re-run one fingerprint, dump trace tail
//! gr-campaign --mode sanity --list          # lanes/templates/counts, nothing runs
//! gr-campaign --mode stress --list-full     # per-scenario hash + canonical dump
//! gr-campaign --mode sanity --json out.json # also write the machine-readable report
//! gr-campaign --mode stress --baseline b.json  # exit 1 on violations NOT in b.json
//! gr-campaign --mode stress --sim-threads 4    # partitioned-engine worker threads
//! gr-campaign --mode stress --partitions 8     # override engine partition count
//! gr-campaign --mode twin                   # netsim vs real-transport twin gate
//! gr-campaign --mode chaos                  # chaos script: netsim vs real backends
//! gr-campaign --mode chaos --baseline b.json   # gate the netsim leg like stress
//! ```
//!
//! `--threads` fans the *corpus* out across workers (one scenario per
//! worker); `--sim-threads` parallelises *inside* each simulation's
//! partitioned round engine and never changes results. `--partitions`
//! overrides the engine partition count for every scenario the engine
//! can express (delay-bearing scenarios keep their own configuration) —
//! that one *does* change results (partition count selects RNG
//! streams), so only compare reports run with the same override.

use gr_campaign::{
    baseline_fingerprints, chaos_script, find_scenario, render_replay, run_campaign_exec,
    sanity_corpus, shard_corpus, stress_corpus, CampaignReport, Exec, Lane, TopologyKind,
    DEFAULT_SANITY_SEEDS, DEFAULT_STRESS_SEEDS,
};
use gr_experiments::parallel::default_threads;
use gr_experiments::Opts;

fn main() {
    let opts = Opts::from_env();
    let mode = opts.string("mode", "sanity");
    // The twin lane is not a fault-plan corpus — it cross-checks the
    // deterministic simulator against the real threaded transport and
    // hard-fails on divergence, so it gets its own early path.
    if mode == "twin" {
        let seed = opts.u64("seed", 42);
        let hc = opts.u64("hc", 6) as u32;
        let eps = opts.f64("eps", 1e-9);
        opts.finish();
        run_twin_lane(hc, seed, eps);
        return;
    }
    // The chaos lane runs one fault script through both injectors —
    // netsim (the `chaos/*` stress templates, baseline-gated) and the
    // real threaded transport (ChaosDelivery + node churn, hard-gated on
    // convergence and the self-consistency audit) — so it too gets its
    // own path.
    if mode == "chaos" {
        let seed = opts.u64("seed", 42);
        let n_seeds = opts.u64("seeds", 0);
        let seeds: Vec<u64> = if n_seeds > 0 {
            (1..=n_seeds).collect()
        } else {
            DEFAULT_STRESS_SEEDS.to_vec()
        };
        let threads = opts.u64("threads", default_threads() as u64) as usize;
        let json_path = opts.string("json", "");
        let baseline_path = opts.string("baseline", "");
        opts.finish();
        run_chaos_lane(&seeds, threads, seed, &json_path, &baseline_path);
        return;
    }
    let lane = match mode.as_str() {
        "sanity" => Lane::Sanity,
        "stress" => Lane::Stress,
        other => panic!("--mode must be sanity, stress, twin or chaos, got {other:?}"),
    };
    // --seeds N widens the corpus to seeds 1..=N; 0 keeps the lane default.
    let n_seeds = opts.u64("seeds", 0);
    let seeds: Vec<u64> = if n_seeds > 0 {
        (1..=n_seeds).collect()
    } else {
        match lane {
            Lane::Sanity => DEFAULT_SANITY_SEEDS.to_vec(),
            Lane::Stress => DEFAULT_STRESS_SEEDS.to_vec(),
        }
    };
    let corpus = match lane {
        Lane::Sanity => sanity_corpus(&seeds),
        Lane::Stress => stress_corpus(&seeds),
    };
    let shard = opts.string("shard", "");
    let replay = opts.string("replay", "");
    let tail = opts.u64("tail", 64) as usize;
    let list = opts.bool("list", false);
    let list_full = opts.bool("list-full", false);
    let threads = opts.u64("threads", default_threads() as u64) as usize;
    let sim_threads = opts.u64("sim-threads", 1) as usize;
    let partitions = opts.u64("partitions", 0) as usize;
    let json_path = opts.string("json", "");
    let baseline_path = opts.string("baseline", "");
    opts.finish();
    let exec = Exec {
        sim_threads,
        partitions: (partitions > 0).then_some(partitions),
    };

    if !replay.is_empty() {
        // Replay resolves against the *full* corpus, so a fingerprint from
        // any shard's report replays without re-deriving its shard.
        let sc = find_scenario(&corpus, &replay).unwrap_or_else(|| {
            panic!(
                "fingerprint {replay:?} not found in the {} corpus ({} scenarios); \
                 pass the same --mode/--seeds the report was generated with",
                lane.label(),
                corpus.len()
            )
        });
        print!("{}", render_replay(sc, tail));
        return;
    }

    // --shard k/n (1-based k) keeps only the k-th round-robin shard of the
    // corpus, for splitting a lane across CI jobs.
    let corpus = if shard.is_empty() {
        corpus
    } else {
        let (k, n) = shard
            .split_once('/')
            .and_then(|(k, n)| {
                Some((
                    k.trim().parse::<usize>().ok()?,
                    n.trim().parse::<usize>().ok()?,
                ))
            })
            .filter(|&(k, n)| k >= 1 && k <= n)
            .unwrap_or_else(|| panic!("--shard must be k/n with 1 <= k <= n, got {shard:?}"));
        shard_corpus(&corpus, k - 1, n)
    };

    if list_full {
        for sc in &corpus {
            println!("{}  {}", sc.hash(), sc.canonical());
        }
        return;
    }

    // --list: enumerate the corpus — lane, template names, per-template
    // scenario counts — without running anything. (--list-full dumps the
    // per-scenario hash + canonical lines instead.)
    if list {
        println!(
            "{} lane: {} scenarios, seeds {:?}",
            lane.label(),
            corpus.len(),
            seeds
        );
        // Group by template, preserving first-appearance corpus order.
        let mut templates: Vec<(&str, usize)> = Vec::new();
        for sc in &corpus {
            match templates.iter_mut().find(|(t, _)| *t == sc.template) {
                Some((_, n)) => *n += 1,
                None => templates.push((&sc.template, 1)),
            }
        }
        for (template, n) in &templates {
            println!("  {template:<28} {n:>4} scenario(s)");
        }
        println!("{} template(s)", templates.len());
        return;
    }

    let report = run_campaign_exec(lane, &corpus, threads.max(1), exec);
    print!("{}", report.render());
    if !json_path.is_empty() {
        let j = serde_json::to_string_pretty(&report.to_json()).unwrap();
        std::fs::write(&json_path, j).unwrap_or_else(|e| panic!("writing {json_path:?}: {e}"));
    }
    if !baseline_path.is_empty() && !baseline_gate(&report, &baseline_path, lane.label()) {
        std::process::exit(1);
    }
    // The sanity lane is a hard gate; stress violations are findings, not
    // build failures.
    if lane == Lane::Sanity && !report.passed() {
        std::process::exit(1);
    }
}

/// `--baseline` turns a trend lane into a regression gate: violations
/// whose fingerprint (scenario hash + invariant) appears in the committed
/// baseline report are known findings and stay non-fatal; any fingerprint
/// *not* in the baseline is a new failure mode. Returns `false` when new
/// fingerprints were found (callers decide the exit).
fn baseline_gate(report: &CampaignReport, baseline_path: &str, replay_mode: &str) -> bool {
    let raw = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("reading baseline {baseline_path:?}: {e}"));
    let parsed: serde_json::Value = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("parsing baseline {baseline_path:?}: {e}"));
    let known = baseline_fingerprints(&parsed);
    let fresh = report.new_violations(&known);
    if fresh.is_empty() {
        println!(
            "baseline: no new violation fingerprints ({} known in {})",
            known.len(),
            baseline_path
        );
        return true;
    }
    println!(
        "baseline: {} NEW violation fingerprint(s) not in {}:",
        fresh.len(),
        baseline_path
    );
    for fp in &fresh {
        let hash = fp.split(':').next().unwrap();
        println!("  {fp}");
        println!("    replay: cargo run -p gr-campaign -- --mode {replay_mode} --replay {hash}");
    }
    false
}

/// The twin-equivalence lane: run the lossless PCF average on a seeded
/// hypercube under netsim and over the threaded in-memory transport, and
/// require both to land on the reference within `eps`. Exit 1 on
/// divergence — this is a hard CI gate, like the sanity lane.
fn run_twin_lane(hc: u32, seed: u64, eps: f64) {
    let graph = gr_topology::hypercube(hc);
    let n = graph.len();
    let values: Vec<f64> = (0..n).map(|i| 1.5 * i as f64 - 20.0).collect();
    let report = gr_transport::twin_equivalence(&graph, &values, seed, eps, 5_000)
        .unwrap_or_else(|e| panic!("twin lane failed to run: {e}"));
    println!(
        "twin lane: hc{hc} ({n} nodes), seed {seed}, reference {:.6}",
        report.reference
    );
    println!(
        "  netsim    max rel error {:.3e}{}",
        report.netsim_error,
        if report.netsim_error <= eps {
            ""
        } else {
            "  <-- DIVERGED"
        }
    );
    println!(
        "  transport max rel error {:.3e}{}  ({:.1} rounds mean, {} B on wire, {} dropped)",
        report.mem_error,
        if report.mem_error <= eps {
            ""
        } else {
            "  <-- DIVERGED"
        },
        report.mem_result.rounds_mean,
        report.mem_result.bytes_sent_total,
        report.mem_result.dropped_total
    );
    println!("  per-node divergence {:.3e}", report.divergence);
    if report.equivalent() {
        println!("twin lane: PASS (tolerance {eps:.0e})");
    } else {
        println!("twin lane: FAIL (tolerance {eps:.0e})");
        std::process::exit(1);
    }
}

/// The chaos lane: one fault script ([`chaos_script`]), two injectors.
///
/// **Netsim leg** — the `chaos/*` templates of the stress corpus
/// (correlated burst loss + a scripted half/half partition with heal)
/// run under the invariant oracle; with `--baseline` the violations are
/// diffed against the committed stress baseline exactly like the stress
/// lane, so only *new* failure modes fail the build.
///
/// **Transport leg** — the same script wrapped around every endpoint of
/// a real threaded in-memory cluster via `ChaosDelivery`, plus one node
/// kill/restart that only the peers' timeout detectors (and PCF's
/// incarnation fencing) recover from. Hard gate: the cluster must
/// converge and pass the post-quiescence self-consistency audit.
fn run_chaos_lane(seeds: &[u64], threads: usize, seed: u64, json_path: &str, baseline_path: &str) {
    use gr_reduction::{AggregateKind, InitialData, PushCancelFlow};
    use gr_transport::{mem_cluster, run_cluster, ChaosDelivery, ChurnEvent, ClusterOptions};
    use std::time::Duration;

    let corpus: Vec<_> = stress_corpus(seeds)
        .into_iter()
        .filter(|s| s.template.starts_with("chaos/"))
        .collect();
    println!(
        "chaos lane: {} netsim scenario(s) under the shared fault script",
        corpus.len()
    );
    let report = run_campaign_exec(Lane::Stress, &corpus, threads.max(1), Exec::default());
    print!("{}", report.render());
    if !json_path.is_empty() {
        let j = serde_json::to_string_pretty(&report.to_json()).unwrap();
        std::fs::write(json_path, j).unwrap_or_else(|e| panic!("writing {json_path:?}: {e}"));
    }
    // Chaos fingerprints live in the stress corpus, so replay goes
    // through --mode stress.
    let sim_ok = baseline_path.is_empty() || baseline_gate(&report, baseline_path, "stress");

    let topology = TopologyKind::Hypercube(5);
    let script = chaos_script(topology);
    let graph = topology.build();
    let n = graph.len();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let reference = (n - 1) as f64 / 2.0;
    let data = InitialData::with_kind(values, AggregateKind::Average);
    let plan = script.chaos_plan(seed);
    let endpoints: Vec<_> = mem_cluster(n, 64 * n)
        .expect("in-memory cluster")
        .into_iter()
        .enumerate()
        .map(|(i, ep)| ChaosDelivery::new(ep, i as gr_topology::NodeId, &plan))
        .collect();
    let opts = ClusterOptions {
        seed,
        target: 1e-9,
        // Peers keep iterating while the churned node is dark, so the
        // round budget must dwarf (dark time) / (step time).
        max_rounds: 5_000_000,
        wall_limit: Duration::from_secs(15),
        churn: vec![ChurnEvent {
            node: 3,
            at_round: 150,
            down_for: Duration::from_millis(120),
        }],
        detector_window: Some(60),
    };
    let start = std::time::Instant::now();
    let result = run_cluster(
        &graph,
        endpoints,
        |_| PushCancelFlow::new(&graph, &data),
        &[reference],
        &opts,
    )
    .expect("transport leg failed to run");
    let chaos_drops: u64 = result.nodes.iter().map(|r| r.chaos_drops).sum();
    let suspected: u64 = result.nodes.iter().map(|r| r.suspected).sum();
    let transport_ok = result.converged
        && result.self_consistency <= 1e-6
        && result.recovered == result.churn_events;
    println!(
        "chaos lane transport leg: {} nodes, seed {seed}, {:.1} ms wall",
        n,
        start.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "  converged={} max rel error {:.3e}, self-consistency {:.3e}",
        result.converged, result.max_rel_error, result.self_consistency
    );
    println!(
        "  {} chaos drops, {} suspicions, churn {}/{} recovered",
        chaos_drops, suspected, result.recovered, result.churn_events
    );
    if sim_ok && transport_ok {
        println!("chaos lane: PASS");
    } else {
        println!(
            "chaos lane: FAIL ({})",
            if transport_ok {
                "new netsim violation fingerprints"
            } else {
                "transport leg did not converge cleanly"
            }
        );
        std::process::exit(1);
    }
}
