//! The campaign's scenario space: what gets run, and how it is named.
//!
//! A [`Scenario`] is a fully concrete, self-describing simulation case —
//! topology, algorithm, seed, round budget, fault plan. Everything random
//! about a scenario (which links die, which nodes crash, when) is drawn
//! from a dedicated RNG stream keyed on the scenario's identity, so the
//! corpus is a pure function of the seed list: the same seeds always
//! produce byte-identical scenarios, which is what makes hashes stable
//! across report → replay round trips.
//!
//! Zero-delay scenarios run under **asynchronous activation** (atomic
//! exchanges, see `gr_netsim::Activation`). That choice is load-bearing
//! for the oracle: with atomic exchanges a fault-free execution keeps
//! pairwise flow antisymmetry and global mass conservation *exact* (up to
//! f64 rounding), so the sanity lane can use tight tolerances.
//! Synchronous rounds allow crossing exchanges, which legitimately break
//! both properties mid-flight and would force vacuous bounds — which is
//! exactly why the *delay-bearing* stress templates (the timeout-detector
//! family) switch to **synchronous activation**: asynchronous activation
//! models atomic exchanges and is incompatible with nonzero latency
//! (`SimConfigError::AsyncWithDelay`), and those templates live in the
//! stress lane, whose magnitude-screen tolerances absorb the in-flight
//! transients. [`Scenario::sim_options`] encodes the choice and
//! [`Scenario::validate`] surfaces the netsim config check per scenario.

use crate::hash::{fnv1a64, hex16};
use gr_netsim::{
    stream_rng, Activation, DelayModel, DetectorModel, FaultPlan, RngStream, SimConfigError,
    SimOptions,
};
use gr_reduction::{AggregateKind, Algorithm, PhiMode};
use gr_topology::{complete, hypercube, ring, torus2d, Graph, NodeId};
use rand::RngExt;

/// What the nodes aggregate — the workload a scenario runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Scalar average (unit weights) — the paper's default experiment.
    Average,
    /// Scalar sum (weight 1 on node 0, 0 elsewhere). Flow updating is
    /// average-only and is excluded from sum corpora.
    Sum,
    /// `dim`-component vector average (unit weights) — exercises the
    /// vector payload path end to end.
    VectorAvg {
        /// Components per node value.
        dim: usize,
    },
}

impl Workload {
    /// Stable label (templates, canonical encoding).
    pub fn label(self) -> String {
        match self {
            Workload::Average => "avg".to_string(),
            Workload::Sum => "sum".to_string(),
            Workload::VectorAvg { dim } => format!("vec{dim}"),
        }
    }

    /// The aggregate kind (weight assignment) this workload runs under.
    pub fn kind(self) -> AggregateKind {
        match self {
            Workload::Average | Workload::VectorAvg { .. } => AggregateKind::Average,
            Workload::Sum => AggregateKind::Sum,
        }
    }
}

/// Which campaign lane a scenario belongs to (resilience-plan style).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Fault-free, fixed seed corpus, tight tolerances — a hard CI gate.
    Sanity,
    /// Loss + bit flips + link/node failures; trend-tracked, not gated.
    Stress,
}

impl Lane {
    /// Stable lower-case label (report, CLI, canonical encoding).
    pub fn label(self) -> &'static str {
        match self {
            Lane::Sanity => "sanity",
            Lane::Stress => "stress",
        }
    }
}

/// Topology constructor choice, small enough to encode in a fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// `ring(n)`.
    Ring(usize),
    /// `complete(n)`.
    Complete(usize),
    /// `hypercube(d)` — the paper's failure-experiment family.
    Hypercube(u32),
    /// `torus2d(rows, cols)`.
    Torus2d(usize, usize),
}

impl TopologyKind {
    /// Build the graph.
    pub fn build(self) -> Graph {
        match self {
            TopologyKind::Ring(n) => ring(n),
            TopologyKind::Complete(n) => complete(n),
            TopologyKind::Hypercube(d) => hypercube(d),
            TopologyKind::Torus2d(r, c) => torus2d(r, c),
        }
    }

    /// Node count without building.
    pub fn nodes(self) -> usize {
        match self {
            TopologyKind::Ring(n) | TopologyKind::Complete(n) => n,
            TopologyKind::Hypercube(d) => 1usize << d,
            TopologyKind::Torus2d(r, c) => r * c,
        }
    }

    /// Stable label (report, canonical encoding).
    pub fn label(self) -> String {
        match self {
            TopologyKind::Ring(n) => format!("ring{n}"),
            TopologyKind::Complete(n) => format!("complete{n}"),
            TopologyKind::Hypercube(d) => format!("hypercube{d}"),
            TopologyKind::Torus2d(r, c) => format!("torus{r}x{c}"),
        }
    }
}

/// Scheduled link failures `(a, b, round)`.
pub type LinkFailures = Vec<(NodeId, NodeId, u64)>;
/// Scheduled node crashes `(node, round)`.
pub type Crashes = Vec<(NodeId, u64)>;

/// One fully concrete campaign case.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Lane (decides oracle tolerances and gating).
    pub lane: Lane,
    /// Template name, e.g. `flips/hypercube5` (sanity templates are just
    /// the topology label).
    pub template: String,
    /// Topology to build.
    pub topology: TopologyKind,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// What the nodes aggregate.
    pub workload: Workload,
    /// Master seed: workload, schedule, fault coins, fault placement.
    pub seed: u64,
    /// Hard round cap.
    pub max_rounds: u64,
    /// Early-exit accuracy (and the sanity convergence threshold);
    /// `0.0` disables early exit (stress runs its full fault window).
    pub target_accuracy: f64,
    /// Per-message loss probability.
    pub loss: f64,
    /// Per-message bit-flip probability.
    pub bit_flips: f64,
    /// Largest per-message delay in rounds (`DelayModel::Uniform{0, max}`
    /// when nonzero). Nonzero delay forces synchronous activation — see
    /// the module docs.
    pub delay_max: u64,
    /// Timeout-detector window in rounds (`0` = the oracle detector).
    pub detector_window: u64,
    /// Scheduled link failures `(a, b, round)`, detected per the
    /// scenario's detector model.
    pub link_failures: LinkFailures,
    /// Scheduled link heals `(a, b, round)` — the failed link returns to
    /// service and both endpoints re-admit each other.
    pub link_heals: LinkFailures,
    /// Scheduled node crashes `(node, round)`.
    pub crashes: Crashes,
    /// Scheduled node restarts `(node, round)` — the crashed node rejoins
    /// with fresh initial state and must be counted exactly once.
    pub restarts: Crashes,
    /// Gilbert–Elliott correlated-burst loss `(enter, exit, loss)` on top
    /// of the i.i.d. model (`None` = off). The chain draws from its own
    /// RNG stream, so turning it on never perturbs the i.i.d. draws.
    pub burst: Option<(f64, f64, f64)>,
    /// Scripted bidirectional network partitions `(members, round)` —
    /// every link between the group and its complement dies at once.
    pub net_partitions: Vec<(Vec<NodeId>, u64)>,
    /// Scripted partition heals `(members, round)` — the group's severed
    /// boundary links return to service.
    pub net_partition_heals: Vec<(Vec<NodeId>, u64)>,
    /// Engine partition count (`0` = the classic single-partition
    /// engine). A value ≥ 2 opts into the partitioned round engine —
    /// synchronous activation, zero delay — and is part of the scenario's
    /// identity: partition count selects the RNG streams, so it changes
    /// results (unlike worker thread count, which never does and is
    /// deliberately *not* a scenario field).
    pub partitions: usize,
    /// Tenant count (`0` = one classic single-instance run). A value
    /// ≥ 1 routes the scenario through the `gr-batch` multi-tenant
    /// executor: `tenants` independent instances of this topology, each
    /// seeded `seed + t`, all under ONE shared scheduled-fault plan,
    /// with the oracle invariants checked per tenant. Identity, not an
    /// execution hint — tenant count selects the per-tenant RNG streams.
    /// The batch engine is synchronous / zero-delay / oracle-detected by
    /// construction, so tenant scenarios must not carry delay or a
    /// timeout detector window.
    pub tenants: usize,
}

impl Scenario {
    /// The netsim fault plan for this scenario.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan {
            msg_loss_prob: self.loss,
            bit_flip_prob: self.bit_flips,
            ..FaultPlan::default()
        };
        for &(a, b, round) in &self.link_failures {
            plan = plan.fail_link(a, b, round);
        }
        for &(a, b, round) in &self.link_heals {
            plan = plan.heal_link(a, b, round);
        }
        for &(node, round) in &self.crashes {
            plan = plan.crash_node(node, round);
        }
        for &(node, round) in &self.restarts {
            plan = plan.restart_node(node, round);
        }
        if let Some((enter, exit, loss)) = self.burst {
            plan = plan.with_burst(enter, exit, loss);
        }
        for (members, round) in &self.net_partitions {
            plan = plan.partition(members.clone(), *round);
        }
        for (members, round) in &self.net_partition_heals {
            plan = plan.heal_partition(members.clone(), *round);
        }
        plan
    }

    /// The execution-model options this scenario runs under. Nonzero
    /// delay forces synchronous activation (asynchronous activation
    /// models atomic exchanges — the combination is a
    /// [`SimConfigError::AsyncWithDelay`]); zero-delay scenarios keep the
    /// asynchronous model the oracle's tight sanity tolerances rely on.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            // Partitioned scenarios run synchronously: the partitioned
            // engine is a synchronous-round, zero-delay engine by
            // construction (`SimConfigError::PartitionedAsync` /
            // `PartitionedDelay` reject everything else).
            // Tenant scenarios likewise: the gr-batch executor replays
            // the classic engine's synchronous zero-delay round.
            activation: if self.delay_max > 0 || self.partitions >= 2 || self.tenants >= 1 {
                Activation::Synchronous
            } else {
                Activation::Asynchronous
            },
            delay: if self.delay_max > 0 {
                DelayModel::Uniform {
                    min: 0,
                    max: self.delay_max,
                }
            } else {
                DelayModel::None
            },
            detector: if self.detector_window > 0 {
                DetectorModel::Timeout {
                    window: self.detector_window,
                }
            } else {
                DetectorModel::Oracle
            },
            partitions: self.partitions,
            ..SimOptions::default()
        }
    }

    /// Surface the netsim configuration check for this scenario's
    /// execution model (typed, no panic — embedders decide).
    pub fn validate(&self) -> Result<(), SimConfigError> {
        self.sim_options().validate()
    }

    /// Canonical one-line encoding — the hash pre-image. Versioned so a
    /// future format change invalidates old fingerprints loudly instead
    /// of silently replaying the wrong case (v2 added workload, delay,
    /// detector window, link heals and node restarts).
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "v2|{}|{}|{}|{}|wl={}|seed={}|rounds={}|acc={:e}|loss={:e}|flips={:e}\
             |delay={}|window={}|links={:?}|heals={:?}|crashes={:?}|restarts={:?}",
            self.lane.label(),
            self.template,
            self.topology.label(),
            self.algorithm.label(),
            self.workload.label(),
            self.seed,
            self.max_rounds,
            self.target_accuracy,
            self.loss,
            self.bit_flips,
            self.delay_max,
            self.detector_window,
            self.link_failures,
            self.link_heals,
            self.crashes,
            self.restarts,
        );
        // Appended only when set, so every pre-partitioning fingerprint
        // stays byte-identical (same reason the encoding is versioned).
        if self.partitions != 0 {
            s.push_str(&format!("|parts={}", self.partitions));
        }
        // Same discipline for the chaos fields (burst loss, scripted
        // network partitions): pre-chaos fingerprints must not move.
        if let Some(burst) = self.burst {
            s.push_str(&format!("|burst={burst:?}"));
        }
        if !self.net_partitions.is_empty() {
            s.push_str(&format!("|cuts={:?}", self.net_partitions));
        }
        if !self.net_partition_heals.is_empty() {
            s.push_str(&format!("|cutheals={:?}", self.net_partition_heals));
        }
        // And for the multi-tenant batch field: pre-batch fingerprints
        // stay byte-identical.
        if self.tenants != 0 {
            s.push_str(&format!("|tenants={}", self.tenants));
        }
        s
    }

    /// The 16-hex-digit scenario fingerprint hash.
    pub fn hash(&self) -> String {
        hex16(fnv1a64(self.canonical().as_bytes()))
    }

    /// Round of the last *scheduled* event (0 if none): the oracle's
    /// non-divergence window starts here. Recovery events (heals,
    /// restarts) count — they perturb the system exactly like a fault
    /// does, so the window restarts at the last of them.
    pub fn last_fault_round(&self) -> u64 {
        let links = self.link_failures.iter().map(|&(_, _, r)| r);
        let heals = self.link_heals.iter().map(|&(_, _, r)| r);
        let crashes = self.crashes.iter().map(|&(_, r)| r);
        let restarts = self.restarts.iter().map(|&(_, r)| r);
        let cuts = self.net_partitions.iter().map(|&(_, r)| r);
        let cut_heals = self.net_partition_heals.iter().map(|&(_, r)| r);
        links
            .chain(heals)
            .chain(crashes)
            .chain(restarts)
            .chain(cuts)
            .chain(cut_heals)
            .max()
            .unwrap_or(0)
    }

    /// `true` if the plan contains scheduled (permanent) faults.
    pub fn has_scheduled_faults(&self) -> bool {
        !self.link_failures.is_empty()
            || !self.crashes.is_empty()
            || !self.net_partitions.is_empty()
    }
}

/// Default sanity seed corpus — fixed, so CI runs are comparable.
pub const DEFAULT_SANITY_SEEDS: [u64; 4] = [1, 2, 3, 4];
/// Default stress seed corpus.
pub const DEFAULT_STRESS_SEEDS: [u64; 3] = [1, 2, 3];

/// Sanity round budget: generous enough that every algorithm in the
/// corpus converges to [`SANITY_ACCURACY`] well before the cap (the slow
/// case is the ring, whose async mixing takes a few thousand rounds).
const SANITY_ROUNDS: u64 = 6000;
/// Sanity convergence target / early-exit accuracy.
const SANITY_ACCURACY: f64 = 1e-9;
/// Stress runs execute exactly this many rounds (no early exit: the
/// post-fault window is the point).
const STRESS_ROUNDS: u64 = 900;
/// Scheduled faults land in `[FAULT_FROM, FAULT_UNTIL)`.
const FAULT_FROM: u64 = 120;
const FAULT_UNTIL: u64 = 240;

/// Recovery events (link heals, node restarts) fire this many rounds
/// after the fault they undo — late enough that the failure handling has
/// fully settled, early enough to leave a long post-recovery window
/// inside [`STRESS_ROUNDS`].
const RECOVER_AFTER: u64 = 300;

/// A fault-free scenario skeleton (the corpus builders fill in the
/// lane-specific fields).
fn base_scenario(
    lane: Lane,
    template: String,
    topology: TopologyKind,
    algorithm: Algorithm,
    seed: u64,
) -> Scenario {
    Scenario {
        lane,
        template,
        topology,
        algorithm,
        workload: Workload::Average,
        seed,
        max_rounds: match lane {
            Lane::Sanity => SANITY_ROUNDS,
            Lane::Stress => STRESS_ROUNDS,
        },
        target_accuracy: match lane {
            Lane::Sanity => SANITY_ACCURACY,
            Lane::Stress => 0.0,
        },
        loss: 0.0,
        bit_flips: 0.0,
        delay_max: 0,
        detector_window: 0,
        link_failures: Vec::new(),
        link_heals: Vec::new(),
        crashes: Vec::new(),
        restarts: Vec::new(),
        burst: None,
        net_partitions: Vec::new(),
        net_partition_heals: Vec::new(),
        partitions: 0,
        tenants: 0,
    }
}

/// The fault-free lane: every algorithm × a topology spread × the seed
/// corpus, run to convergence under exact-conservation tolerances; plus
/// a workload block (scalar sum, vector average) on the fast-mixing
/// topologies.
pub fn sanity_corpus(seeds: &[u64]) -> Vec<Scenario> {
    let topologies = [
        TopologyKind::Complete(16),
        TopologyKind::Hypercube(5),
        TopologyKind::Ring(16),
        TopologyKind::Torus2d(4, 4),
    ];
    let mut corpus = Vec::new();
    for topology in topologies {
        for algorithm in Algorithm::all() {
            for &seed in seeds {
                corpus.push(base_scenario(
                    Lane::Sanity,
                    topology.label(),
                    topology,
                    algorithm,
                    seed,
                ));
            }
        }
    }
    // Workload block: sum and vector-average on the fast mixers. Flow
    // updating is average-only (it asserts unit weights), so it skips
    // the sum workload. The vector dims straddle the small-vector inline
    // cap (`gr_reduction::INLINE_CAP`): dim 3 runs the inline payload
    // representation, dim 24 the heap spill — both code paths stay
    // exercised in CI.
    let workloads = [
        Workload::Sum,
        Workload::VectorAvg { dim: 3 },
        Workload::VectorAvg { dim: 24 },
    ];
    for workload in workloads {
        for topology in [TopologyKind::Complete(16), TopologyKind::Hypercube(5)] {
            for algorithm in Algorithm::all() {
                if workload == Workload::Sum && algorithm == Algorithm::FlowUpdating {
                    continue;
                }
                for &seed in seeds {
                    let template = format!("{}/{}", workload.label(), topology.label());
                    let mut sc = base_scenario(Lane::Sanity, template, topology, algorithm, seed);
                    sc.workload = workload;
                    corpus.push(sc);
                }
            }
        }
    }
    corpus
}

/// The adversarial lane: loss, bit flips, link failures and crashes over
/// the fault-tolerant algorithms (push-sum is excluded — it is the
/// paper's negative control and fails these by design), plus the
/// recovery templates: timeout detectors under message delay (false
/// suspicions + rehabilitation), link healing, node restart, and the
/// combined crash + link-failure case.
pub fn stress_corpus(seeds: &[u64]) -> Vec<Scenario> {
    // (template kind, loss, flips, scheduled link failures, crashes).
    // Fault-bearing templates stay on vertex/edge-connectivity ≥ 5
    // topologies so two scheduled faults can never disconnect the graph
    // (a partitioned survivor set converges per-component and would
    // trip the reconvergence invariant spuriously).
    let kinds: [(&str, f64, f64, usize, usize); 5] = [
        ("loss", 0.2, 0.0, 0, 0),
        ("flips", 0.0, 2e-3, 0, 0),
        ("loss+flips", 0.1, 1e-3, 0, 0),
        ("linkfail", 0.05, 0.0, 2, 0),
        ("crash", 0.05, 0.0, 0, 2),
    ];
    let topologies = [TopologyKind::Hypercube(5), TopologyKind::Complete(16)];
    let algorithms = [
        Algorithm::PushFlow,
        Algorithm::PushCancelFlow(PhiMode::Eager),
        Algorithm::PushCancelFlow(PhiMode::Hardened),
        Algorithm::FlowUpdating,
    ];
    let mut corpus = Vec::new();
    for (kind, loss, flips, n_links, n_crashes) in kinds {
        for topology in topologies {
            let template = format!("{kind}/{}", topology.label());
            for algorithm in algorithms {
                for &seed in seeds {
                    let (link_failures, crashes) =
                        place_faults(topology, &template, algorithm, seed, n_links, n_crashes);
                    let mut sc =
                        base_scenario(Lane::Stress, template.clone(), topology, algorithm, seed);
                    sc.loss = loss;
                    sc.bit_flips = flips;
                    sc.link_failures = link_failures;
                    sc.crashes = crashes;
                    corpus.push(sc);
                }
            }
        }
    }

    // Recovery templates: imperfect (timeout) failure detection under
    // message delay, link healing, node restart, and the combined
    // crash + link-failure case. All on the hypercube (connectivity 5 —
    // one crash plus one link failure cannot disconnect it).
    //
    // The timeout templates carry probabilistic loss on top of delay:
    // lost messages widen silence gaps, so the detector's false-suspicion
    // rate goes up — exactly the imperfect-detection pressure the lane is
    // for. The transport's suspicion probes keep falsely dead arcs
    // healing, so reconvergence still has to be exact.
    struct Recovery {
        kind: &'static str,
        loss: f64,
        delay_max: u64,
        window: u64,
        n_links: usize,
        heal: bool,
        n_crashes: usize,
        restart: bool,
    }
    let rec = |kind, loss, delay_max, window, n_links, heal, n_crashes, restart| Recovery {
        kind,
        loss,
        delay_max,
        window,
        n_links,
        heal,
        n_crashes,
        restart,
    };
    let recovery = [
        rec("timeout", 0.02, 3, 10, 0, false, 0, false),
        rec("heal", 0.05, 0, 0, 2, true, 0, false),
        rec("restart", 0.05, 0, 0, 0, false, 1, true),
        rec("timeout+heal", 0.02, 3, 10, 1, true, 0, false),
        rec("crash+linkfail", 0.05, 0, 0, 1, false, 1, false),
        // Delay without a timeout detector: the oracle detector never
        // falsely suspects, so every disturbance comes from stale
        // in-flight messages alone. This is the template that drives
        // PCF's staleness handling (fold resyncs on out-of-date
        // conservation views) without conflating it with
        // detector-induced arc churn.
        rec("delay", 0.05, 4, 0, 0, false, 0, false),
    ];
    let topology = TopologyKind::Hypercube(5);
    for Recovery {
        kind,
        loss,
        delay_max,
        window,
        n_links,
        heal,
        n_crashes,
        restart,
    } in recovery
    {
        let template = format!("{kind}/{}", topology.label());
        for algorithm in algorithms {
            for &seed in seeds {
                let (link_failures, crashes) =
                    place_faults(topology, &template, algorithm, seed, n_links, n_crashes);
                let mut sc =
                    base_scenario(Lane::Stress, template.clone(), topology, algorithm, seed);
                sc.loss = loss;
                sc.delay_max = delay_max;
                sc.detector_window = window;
                if heal {
                    sc.link_heals = link_failures
                        .iter()
                        .map(|&(a, b, r)| (a, b, r + RECOVER_AFTER))
                        .collect();
                }
                if restart {
                    sc.restarts = crashes
                        .iter()
                        .map(|&(node, r)| (node, r + RECOVER_AFTER))
                        .collect();
                }
                sc.link_failures = link_failures;
                sc.crashes = crashes;
                corpus.push(sc);
            }
        }
    }

    // Chaos templates: the transport chaos layer's fault script replayed
    // through netsim — correlated burst loss on top of i.i.d. drop, plus
    // a scripted half/half partition that heals mid-run. The script comes
    // from [`chaos_script`], the same function the `--mode chaos`
    // transport leg feeds to `ChaosDelivery`, so the simulator and the
    // real backends face the identical fault process shape and the lane
    // can referee sim vs real.
    let topology = TopologyKind::Hypercube(5);
    let script = chaos_script(topology);
    let template = format!("chaos/{}", topology.label());
    for algorithm in algorithms {
        for &seed in seeds {
            let mut sc = base_scenario(Lane::Stress, template.clone(), topology, algorithm, seed);
            script.apply(&mut sc);
            corpus.push(sc);
        }
    }

    // Scale templates: the ROADMAP's "hypercube 8+, torus 16x16" item.
    // Larger topologies under a multi-fault plan (two link failures plus
    // one crash in the same run) and both payload shapes — scalar average
    // and a vector average sized at the inline cap, so the wide-payload
    // fast path is exercised at scale. Three scheduled faults stay below
    // the smallest connectivity in the set (the torus has vertex
    // connectivity 4), so the survivor graph can never partition. The
    // round budget is raised: the torus diameter (16) slows mixing
    // enough that the default stress budget would leave flow updating
    // short of the reconvergence bar.
    let scale_topologies = [
        TopologyKind::Hypercube(8),
        TopologyKind::Hypercube(10),
        TopologyKind::Torus2d(16, 16),
    ];
    let scale_workloads = [Workload::Average, Workload::VectorAvg { dim: 16 }];
    for topology in scale_topologies {
        let rounds = match topology {
            TopologyKind::Torus2d(..) => 3000,
            _ => 1500,
        };
        for workload in scale_workloads {
            let template = format!("scale-{}/{}", workload.label(), topology.label());
            for algorithm in algorithms {
                for &seed in seeds {
                    let (link_failures, crashes) =
                        place_faults(topology, &template, algorithm, seed, 2, 1);
                    let mut sc =
                        base_scenario(Lane::Stress, template.clone(), topology, algorithm, seed);
                    sc.workload = workload;
                    sc.max_rounds = rounds;
                    sc.loss = 0.02;
                    sc.link_failures = link_failures;
                    sc.crashes = crashes;
                    corpus.push(sc);
                }
            }
        }
    }

    // Million-node template: one full-size PCF case on the 1000×1000
    // torus, run on the partitioned round engine (16 contiguous CSR
    // blocks — the auto-partition granularity for 10⁶ nodes). The round
    // budget is a handful of full sweeps: the point is not convergence
    // (a diameter-1000 torus mixes over ~10⁶ rounds) but that the
    // engine executes million-node rounds with probabilistic loss under
    // the campaign oracle — mass accounting, flow screens and report
    // fingerprints all at the paper-exceeding scale. PCF-hardened only
    // and no scheduled faults, to keep corpus construction free of a
    // million-node fault-placement build and the stress lane's runtime
    // within CI budget.
    let mega = TopologyKind::Torus2d(1000, 1000);
    for &seed in seeds {
        let mut sc = base_scenario(
            Lane::Stress,
            format!("scale1m-avg/{}", mega.label()),
            mega,
            Algorithm::PushCancelFlow(PhiMode::Hardened),
            seed,
        );
        sc.max_rounds = 8;
        sc.loss = 0.01;
        sc.partitions = 16;
        corpus.push(sc);
    }

    // Multi-tenant template: TENANT_COUNT independent hc6 reductions
    // multiplexed through the gr-batch executor, all under ONE shared
    // scheduled-fault plan (the same two link failures and one crash
    // strike every tenant, in tenant-local coordinates) while each
    // tenant draws its own loss coins from its own seed. The oracle's
    // invariants — mass conservation, flow antisymmetry, magnitude
    // screens, survivor reconvergence — are checked per tenant against
    // that tenant's own initial data, so one run audits the whole fleet.
    // Fault placement stays on hc6 (connectivity 6): two link failures
    // plus one crash can never disconnect a tenant.
    let topology = TopologyKind::Hypercube(6);
    let template = "tenants/hc6-shared-faults".to_string();
    for algorithm in algorithms {
        for &seed in seeds {
            let (link_failures, crashes) = place_faults(topology, &template, algorithm, seed, 2, 1);
            let mut sc = base_scenario(Lane::Stress, template.clone(), topology, algorithm, seed);
            sc.loss = 0.02;
            sc.link_failures = link_failures;
            sc.crashes = crashes;
            sc.tenants = TENANT_COUNT;
            corpus.push(sc);
        }
    }
    corpus
}

/// Tenants per `tenants/*` stress scenario — big enough that the batch
/// path (shared slab, per-tenant fault queues, worker chunking) is
/// genuinely exercised, small enough that the stress lane's CI budget
/// barely notices (24 × 64 nodes × 900 rounds per scenario).
const TENANT_COUNT: usize = 24;

/// Draw scheduled fault placements from a scenario-identity-keyed RNG
/// stream. Placement is independent of the simulation's own streams, so
/// turning faults on never perturbs the schedule (the netsim stream
/// separation carried one level up).
fn place_faults(
    topology: TopologyKind,
    template: &str,
    algorithm: Algorithm,
    seed: u64,
    n_links: usize,
    n_crashes: usize,
) -> (LinkFailures, Crashes) {
    let identity = format!("{template}|{}|{seed}", algorithm.label());
    let mut rng = stream_rng(seed ^ fnv1a64(identity.as_bytes()), RngStream::Aux(0xFA17));
    let graph = topology.build();
    let n = graph.len() as NodeId;

    let mut link_failures: LinkFailures = Vec::new();
    let mut guard = 0;
    while link_failures.len() < n_links && guard < 1000 {
        guard += 1;
        let a = rng.random_range(0..n);
        let nbrs = graph.neighbors(a);
        if nbrs.is_empty() {
            continue;
        }
        let b = nbrs[rng.random_range(0..nbrs.len())];
        let (lo, hi) = (a.min(b), a.max(b));
        if link_failures.iter().any(|&(x, y, _)| (x, y) == (lo, hi)) {
            continue;
        }
        link_failures.push((lo, hi, rng.random_range(FAULT_FROM..FAULT_UNTIL)));
    }

    let mut crashes: Vec<(NodeId, u64)> = Vec::new();
    guard = 0;
    while crashes.len() < n_crashes && guard < 1000 {
        guard += 1;
        let node = rng.random_range(0..n);
        if crashes.iter().any(|&(c, _)| c == node) {
            continue;
        }
        crashes.push((node, rng.random_range(FAULT_FROM..FAULT_UNTIL)));
    }

    (link_failures, crashes)
}

/// Round at which the chaos script's partition cuts the topology in half.
const CHAOS_CUT_AT: u64 = 200;
/// Round at which the chaos script's partition heals.
const CHAOS_HEAL_AT: u64 = 500;

/// The chaos fault script: one fault-process shape, two injectors.
///
/// [`chaos_script`] is the single source of truth for what "chaos" means
/// in this campaign — correlated Gilbert–Elliott burst loss composed with
/// i.i.d. drop, plus one scripted bidirectional partition (the low half
/// of the topology against the rest) that heals mid-run. The netsim
/// `chaos/*` stress templates replay it through the simulator's
/// [`FaultPlan`] ([`ChaosScript::apply`]); the `--mode chaos` lane feeds
/// the same script to the real-transport chaos wrapper
/// ([`ChaosScript::chaos_plan`]), so sim and real face the identical
/// shape and the lane can referee one against the other.
///
/// The time unit translates per injector: netsim schedules in simulator
/// *rounds*, the transport wrapper in per-endpoint delivery *ops* — the
/// same numbers place the window early-mid run in both.
#[derive(Clone, Debug)]
pub struct ChaosScript {
    /// i.i.d. per-message drop probability.
    pub drop: f64,
    /// Gilbert–Elliott `(enter, exit, loss)` burst parameters.
    pub burst: (f64, f64, f64),
    /// One side of the scripted cut (the complement is the other).
    pub cut_members: Vec<NodeId>,
    /// When the cut fires (netsim rounds / transport ops).
    pub cut_at: u64,
    /// When it heals.
    pub heal_at: u64,
}

/// The campaign's chaos script for `topology`: 2% i.i.d. drop, bursts
/// that average ~3.3 messages at 90% loss (steady-state bad fraction
/// ≈ 6%), and the low half of the node range cut off from the rest over
/// `[CHAOS_CUT_AT, CHAOS_HEAL_AT)`. On a hypercube the low half is a
/// sub-hypercube, so both sides of the cut stay internally connected.
pub fn chaos_script(topology: TopologyKind) -> ChaosScript {
    let n = topology.nodes() as NodeId;
    ChaosScript {
        drop: 0.02,
        burst: (0.02, 0.3, 0.9),
        cut_members: (0..n / 2).collect(),
        cut_at: CHAOS_CUT_AT,
        heal_at: CHAOS_HEAL_AT,
    }
}

impl ChaosScript {
    /// Write the script into a scenario's fault fields (netsim injector).
    pub fn apply(&self, sc: &mut Scenario) {
        sc.loss = self.drop;
        sc.burst = Some(self.burst);
        sc.net_partitions = vec![(self.cut_members.clone(), self.cut_at)];
        sc.net_partition_heals = vec![(self.cut_members.clone(), self.heal_at)];
    }

    /// The same script as a real-transport chaos plan (the `--mode chaos`
    /// lane wraps every cluster endpoint in `ChaosDelivery` with this).
    pub fn chaos_plan(&self, seed: u64) -> gr_transport::ChaosPlan {
        gr_transport::ChaosPlan {
            drop: self.drop,
            burst_enter: self.burst.0,
            burst_exit: self.burst.1,
            burst_loss: self.burst.2,
            cuts: vec![gr_transport::ChaosCut {
                members: self.cut_members.clone(),
                from_op: self.cut_at,
                until_op: self.heal_at,
            }],
            ..gr_transport::ChaosPlan::none(seed)
        }
    }
}

/// The `k`-th of `n` deterministic shards of a corpus (`k` is 0-based),
/// for splitting a campaign across CI jobs. Scenario `i` goes to shard
/// `i mod n`: round-robin balances templates, algorithms and seeds across
/// shards (a contiguous split would give one job all the expensive
/// topologies), and the shard is a pure function of `(corpus, k, n)`.
/// Corpus order is preserved within a shard, so interleaving the shard
/// reports round-robin reconstructs the unsharded report exactly — the
/// merge-equality test in `report.rs` pins that.
///
/// # Panics
/// Panics if `n == 0` or `k >= n`.
pub fn shard_corpus(corpus: &[Scenario], k: usize, n: usize) -> Vec<Scenario> {
    assert!(n > 0, "shard count must be positive");
    assert!(k < n, "shard index {k} out of range for {n} shards");
    corpus
        .iter()
        .enumerate()
        .filter(|(i, _)| i % n == k)
        .map(|(_, sc)| sc.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = stress_corpus(&[1, 2]);
        let b = stress_corpus(&[1, 2]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.canonical(), y.canonical());
            assert_eq!(x.hash(), y.hash());
        }
    }

    #[test]
    fn hashes_are_unique_within_corpus() {
        let mut hashes: Vec<String> = sanity_corpus(&DEFAULT_SANITY_SEEDS)
            .iter()
            .chain(stress_corpus(&DEFAULT_STRESS_SEEDS).iter())
            .map(Scenario::hash)
            .collect();
        let n = hashes.len();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), n, "fingerprint collision in default corpus");
    }

    #[test]
    fn sanity_corpus_is_fault_free() {
        for sc in sanity_corpus(&[1]) {
            assert!(sc.fault_plan().is_failure_free(), "{}", sc.canonical());
            assert_eq!(sc.lane, Lane::Sanity);
        }
    }

    #[test]
    fn stress_templates_carry_their_faults() {
        let corpus = stress_corpus(&[7]);
        let crash = corpus
            .iter()
            .find(|s| s.template.starts_with("crash/"))
            .unwrap();
        assert_eq!(crash.crashes.len(), 2);
        assert!(crash.has_scheduled_faults());
        assert!(crash.last_fault_round() >= FAULT_FROM);
        assert!(crash.last_fault_round() < FAULT_UNTIL);
        let flips = corpus
            .iter()
            .find(|s| s.template.starts_with("flips/"))
            .unwrap();
        assert!(flips.bit_flips > 0.0);
        assert!(!flips.has_scheduled_faults());
    }

    #[test]
    fn scheduled_faults_are_valid_edges_and_nodes() {
        for sc in stress_corpus(&[1, 2, 3]) {
            if !sc.has_scheduled_faults() {
                continue; // nothing to validate — skip the graph build
            }
            let g = sc.topology.build();
            for &(a, b, _) in &sc.link_failures {
                assert!(g.neighbors(a).contains(&b), "{}", sc.canonical());
            }
            for &(node, _) in &sc.crashes {
                assert!((node as usize) < g.len());
            }
        }
    }

    #[test]
    fn topology_labels_and_sizes() {
        assert_eq!(TopologyKind::Hypercube(5).nodes(), 32);
        assert_eq!(TopologyKind::Torus2d(4, 4).label(), "torus4x4");
        assert_eq!(TopologyKind::Ring(16).build().len(), 16);
    }

    #[test]
    fn every_corpus_scenario_validates() {
        for sc in sanity_corpus(&DEFAULT_SANITY_SEEDS)
            .iter()
            .chain(stress_corpus(&DEFAULT_STRESS_SEEDS).iter())
        {
            assert_eq!(sc.validate(), Ok(()), "{}", sc.canonical());
        }
    }

    #[test]
    fn delay_scenarios_run_synchronously_with_timeout_detector() {
        let corpus = stress_corpus(&[1]);
        let sc = corpus
            .iter()
            .find(|s| s.template.starts_with("timeout+heal/"))
            .unwrap();
        let opts = sc.sim_options();
        assert_eq!(opts.activation, Activation::Synchronous);
        assert_eq!(opts.delay, DelayModel::Uniform { min: 0, max: 3 });
        assert_eq!(opts.detector, DetectorModel::Timeout { window: 10 });
        assert_eq!(sc.link_heals.len(), sc.link_failures.len());
        // A hand-built async + delay scenario is rejected with the typed
        // error rather than a panic.
        let mut bad = sc.clone();
        bad.delay_max = 0; // back to async activation ...
        assert_eq!(bad.validate(), Ok(()));
        let mut opts = bad.sim_options();
        opts.delay = DelayModel::Fixed(2); // ... but force a delay in
        assert_eq!(opts.validate(), Err(SimConfigError::AsyncWithDelay));
    }

    #[test]
    fn recovery_events_follow_their_faults() {
        let corpus = stress_corpus(&[1, 2]);
        for sc in &corpus {
            for &(a, b, heal_round) in &sc.link_heals {
                let fail = sc
                    .link_failures
                    .iter()
                    .find(|&&(x, y, _)| (x, y) == (a, b))
                    .expect("every heal undoes a scheduled failure");
                assert!(heal_round > fail.2, "{}", sc.canonical());
                assert!(sc.last_fault_round() >= heal_round);
            }
            for &(node, restart_round) in &sc.restarts {
                let crash = sc
                    .crashes
                    .iter()
                    .find(|&&(c, _)| c == node)
                    .expect("every restart undoes a scheduled crash");
                assert!(restart_round > crash.1, "{}", sc.canonical());
                assert!(restart_round < sc.max_rounds);
            }
        }
        let restart = corpus
            .iter()
            .find(|s| s.template.starts_with("restart/"))
            .unwrap();
        assert_eq!(restart.restarts.len(), 1);
        assert_eq!(restart.crashes.len(), 1);
    }

    #[test]
    fn scale_templates_carry_multi_fault_plans() {
        let corpus = stress_corpus(&[1]);
        for label in [
            "scale-avg/hypercube8",
            "scale-avg/hypercube10",
            "scale-avg/torus16x16",
            "scale-vec16/hypercube8",
            "scale-vec16/hypercube10",
            "scale-vec16/torus16x16",
        ] {
            let sc = corpus
                .iter()
                .find(|s| s.template == label)
                .unwrap_or_else(|| panic!("missing scale template {label}"));
            assert_eq!(sc.link_failures.len(), 2, "{label}");
            assert_eq!(sc.crashes.len(), 1, "{label}");
            assert!(sc.has_scheduled_faults());
            assert!(sc.max_rounds > STRESS_ROUNDS, "{label}");
            assert_eq!(sc.validate(), Ok(()));
        }
        let vec16 = corpus
            .iter()
            .find(|s| s.template == "scale-vec16/torus16x16")
            .unwrap();
        assert_eq!(vec16.workload, Workload::VectorAvg { dim: 16 });
        assert_eq!(vec16.topology.nodes(), 256);
    }

    #[test]
    fn delay_template_uses_oracle_detector_synchronously() {
        let corpus = stress_corpus(&[1]);
        let sc = corpus
            .iter()
            .find(|s| s.template.starts_with("delay/"))
            .unwrap();
        let opts = sc.sim_options();
        assert_eq!(opts.activation, Activation::Synchronous);
        assert_eq!(opts.delay, DelayModel::Uniform { min: 0, max: 4 });
        assert_eq!(opts.detector, DetectorModel::Oracle);
        assert!(!sc.has_scheduled_faults());
    }

    #[test]
    fn sanity_vector_workloads_straddle_the_inline_cap() {
        use gr_reduction::INLINE_CAP;
        let corpus = sanity_corpus(&[1]);
        assert!(corpus
            .iter()
            .any(|s| matches!(s.workload, Workload::VectorAvg { dim } if dim <= INLINE_CAP)));
        assert!(corpus
            .iter()
            .any(|s| matches!(s.workload, Workload::VectorAvg { dim } if dim > INLINE_CAP)));
    }

    #[test]
    fn million_node_template_runs_partitioned() {
        let corpus = stress_corpus(&[1]);
        let sc = corpus
            .iter()
            .find(|s| s.template == "scale1m-avg/torus1000x1000")
            .expect("million-node template in stress corpus");
        assert_eq!(sc.topology.nodes(), 1_000_000);
        assert_eq!(sc.partitions, 16);
        assert!(!sc.has_scheduled_faults());
        assert_eq!(sc.validate(), Ok(()));
        let opts = sc.sim_options();
        assert_eq!(opts.activation, Activation::Synchronous);
        assert_eq!(opts.delay, DelayModel::None);
        assert_eq!(opts.partitions, 16);
        assert!(sc.canonical().ends_with("|parts=16"));
    }

    #[test]
    fn partition_field_is_hash_neutral_when_unset() {
        // The v2 canonical encoding must be byte-identical for every
        // pre-partitioning scenario, or all committed fingerprints break.
        for sc in sanity_corpus(&[1]).iter().chain(stress_corpus(&[1]).iter()) {
            if sc.partitions == 0 {
                assert!(!sc.canonical().contains("parts="), "{}", sc.canonical());
            }
        }
        // And setting it perturbs the fingerprint (it selects different
        // RNG streams, so it is identity, not an execution hint).
        let mut sc = stress_corpus(&[1])[0].clone();
        let before = sc.hash();
        sc.partitions = 4;
        assert_ne!(sc.hash(), before);
    }

    #[test]
    fn tenants_field_is_hash_neutral_when_unset() {
        // Every pre-batch scenario's canonical encoding must stay
        // byte-identical, or all committed fingerprints break.
        for sc in sanity_corpus(&[1]).iter().chain(stress_corpus(&[1]).iter()) {
            if sc.tenants == 0 {
                assert!(!sc.canonical().contains("tenants="), "{}", sc.canonical());
            }
        }
        // And setting it perturbs the fingerprint — tenant count selects
        // the per-tenant RNG streams, so it is identity.
        let mut sc = stress_corpus(&[1])[0].clone();
        let before = sc.hash();
        sc.tenants = 24;
        assert_ne!(sc.hash(), before);
        assert!(sc.canonical().ends_with("|tenants=24"));
    }

    #[test]
    fn tenants_template_shares_one_fault_schedule() {
        let corpus = stress_corpus(&[1, 2, 3]);
        let cases: Vec<_> = corpus
            .iter()
            .filter(|s| s.template == "tenants/hc6-shared-faults")
            .collect();
        assert_eq!(cases.len(), 12, "4 algorithms x 3 seeds");
        for sc in cases {
            assert_eq!(sc.tenants, TENANT_COUNT);
            assert_eq!(sc.topology, TopologyKind::Hypercube(6));
            // Shared scheduled faults, in tenant-local coordinates.
            assert_eq!(sc.link_failures.len(), 2);
            assert_eq!(sc.crashes.len(), 1);
            // The batch engine's regime: zero delay, oracle detection,
            // synchronous activation.
            assert_eq!(sc.delay_max, 0);
            assert_eq!(sc.detector_window, 0);
            assert_eq!(sc.sim_options().activation, Activation::Synchronous);
            assert_eq!(sc.validate(), Ok(()));
        }
    }

    #[test]
    fn chaos_fields_are_hash_neutral_when_unset() {
        // Every pre-chaos scenario's canonical encoding must stay
        // byte-identical, or all committed fingerprints break.
        for sc in sanity_corpus(&[1]).iter().chain(stress_corpus(&[1]).iter()) {
            if sc.burst.is_none() && sc.net_partitions.is_empty() {
                let c = sc.canonical();
                assert!(!c.contains("burst="), "{c}");
                assert!(!c.contains("cuts="), "{c}");
                assert!(!c.contains("cutheals="), "{c}");
            }
        }
        // And applying the script perturbs the fingerprint — the chaos
        // fields are identity, not execution hints.
        let mut sc = stress_corpus(&[1])[0].clone();
        let before = sc.hash();
        chaos_script(sc.topology).apply(&mut sc);
        assert_ne!(sc.hash(), before);
    }

    #[test]
    fn chaos_templates_replay_the_shared_script() {
        let corpus = stress_corpus(&[1, 2, 3]);
        let cases: Vec<_> = corpus
            .iter()
            .filter(|s| s.template == "chaos/hypercube5")
            .collect();
        assert_eq!(cases.len(), 12, "4 algorithms x 3 seeds");
        let sc = cases[0];
        assert_eq!(sc.burst, Some((0.02, 0.3, 0.9)));
        assert_eq!(sc.net_partitions.len(), 1);
        assert_eq!(sc.net_partitions[0].0, (0..16).collect::<Vec<NodeId>>());
        assert_eq!(sc.net_partitions[0].1, CHAOS_CUT_AT);
        assert_eq!(sc.net_partition_heals[0].1, CHAOS_HEAL_AT);
        assert!(sc.has_scheduled_faults());
        assert_eq!(sc.last_fault_round(), CHAOS_HEAL_AT);
        assert_eq!(sc.validate(), Ok(()));
        let plan = sc.fault_plan();
        assert!(plan.burst.is_some());
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.partition_heals.len(), 1);
        // The transport-side plan mirrors the same script, members and
        // window included — that is what makes the chaos lane a sim-vs-
        // real referee rather than two unrelated fault setups.
        let tplan = chaos_script(sc.topology).chaos_plan(7);
        assert_eq!(
            (
                tplan.drop,
                tplan.burst_enter,
                tplan.burst_exit,
                tplan.burst_loss
            ),
            (0.02, 0.02, 0.3, 0.9)
        );
        assert_eq!(tplan.cuts.len(), 1);
        assert_eq!(tplan.cuts[0].members, sc.net_partitions[0].0);
        assert_eq!(
            (tplan.cuts[0].from_op, tplan.cuts[0].until_op),
            (CHAOS_CUT_AT, CHAOS_HEAL_AT)
        );
    }

    #[test]
    fn sum_workload_skips_flow_updating() {
        let corpus = sanity_corpus(&[1]);
        assert!(corpus
            .iter()
            .any(|s| s.workload == Workload::VectorAvg { dim: 3 }
                && s.algorithm == Algorithm::FlowUpdating));
        assert!(!corpus
            .iter()
            .any(|s| s.workload == Workload::Sum && s.algorithm == Algorithm::FlowUpdating));
        let sum = corpus
            .iter()
            .find(|s| s.template.starts_with("sum/"))
            .unwrap();
        assert_eq!(sum.workload.kind(), AggregateKind::Sum);
        assert!(sum.canonical().starts_with("v2|"));
        assert!(sum.canonical().contains("|wl=sum|"));
    }
}
