//! The campaign's scenario space: what gets run, and how it is named.
//!
//! A [`Scenario`] is a fully concrete, self-describing simulation case —
//! topology, algorithm, seed, round budget, fault plan. Everything random
//! about a scenario (which links die, which nodes crash, when) is drawn
//! from a dedicated RNG stream keyed on the scenario's identity, so the
//! corpus is a pure function of the seed list: the same seeds always
//! produce byte-identical scenarios, which is what makes hashes stable
//! across report → replay round trips.
//!
//! All scenarios run under **asynchronous activation** (atomic exchanges,
//! see `gr_netsim::Activation`). That choice is load-bearing for the
//! oracle: with atomic exchanges a fault-free execution keeps pairwise
//! flow antisymmetry and global mass conservation *exact* (up to f64
//! rounding), so the sanity lane can use tight tolerances. Synchronous
//! rounds allow crossing exchanges, which legitimately break both
//! properties mid-flight and would force vacuous bounds.

use crate::hash::{fnv1a64, hex16};
use gr_netsim::{stream_rng, FaultPlan, RngStream};
use gr_reduction::{Algorithm, PhiMode};
use gr_topology::{complete, hypercube, ring, torus2d, Graph, NodeId};
use rand::RngExt;

/// Which campaign lane a scenario belongs to (resilience-plan style).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Fault-free, fixed seed corpus, tight tolerances — a hard CI gate.
    Sanity,
    /// Loss + bit flips + link/node failures; trend-tracked, not gated.
    Stress,
}

impl Lane {
    /// Stable lower-case label (report, CLI, canonical encoding).
    pub fn label(self) -> &'static str {
        match self {
            Lane::Sanity => "sanity",
            Lane::Stress => "stress",
        }
    }
}

/// Topology constructor choice, small enough to encode in a fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// `ring(n)`.
    Ring(usize),
    /// `complete(n)`.
    Complete(usize),
    /// `hypercube(d)` — the paper's failure-experiment family.
    Hypercube(u32),
    /// `torus2d(rows, cols)`.
    Torus2d(usize, usize),
}

impl TopologyKind {
    /// Build the graph.
    pub fn build(self) -> Graph {
        match self {
            TopologyKind::Ring(n) => ring(n),
            TopologyKind::Complete(n) => complete(n),
            TopologyKind::Hypercube(d) => hypercube(d),
            TopologyKind::Torus2d(r, c) => torus2d(r, c),
        }
    }

    /// Node count without building.
    pub fn nodes(self) -> usize {
        match self {
            TopologyKind::Ring(n) | TopologyKind::Complete(n) => n,
            TopologyKind::Hypercube(d) => 1usize << d,
            TopologyKind::Torus2d(r, c) => r * c,
        }
    }

    /// Stable label (report, canonical encoding).
    pub fn label(self) -> String {
        match self {
            TopologyKind::Ring(n) => format!("ring{n}"),
            TopologyKind::Complete(n) => format!("complete{n}"),
            TopologyKind::Hypercube(d) => format!("hypercube{d}"),
            TopologyKind::Torus2d(r, c) => format!("torus{r}x{c}"),
        }
    }
}

/// Scheduled link failures `(a, b, round)`.
pub type LinkFailures = Vec<(NodeId, NodeId, u64)>;
/// Scheduled node crashes `(node, round)`.
pub type Crashes = Vec<(NodeId, u64)>;

/// One fully concrete campaign case.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Lane (decides oracle tolerances and gating).
    pub lane: Lane,
    /// Template name, e.g. `flips/hypercube5` (sanity templates are just
    /// the topology label).
    pub template: String,
    /// Topology to build.
    pub topology: TopologyKind,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Master seed: workload, schedule, fault coins, fault placement.
    pub seed: u64,
    /// Hard round cap.
    pub max_rounds: u64,
    /// Early-exit accuracy (and the sanity convergence threshold);
    /// `0.0` disables early exit (stress runs its full fault window).
    pub target_accuracy: f64,
    /// Per-message loss probability.
    pub loss: f64,
    /// Per-message bit-flip probability.
    pub bit_flips: f64,
    /// Scheduled link failures `(a, b, round)`, immediately detected.
    pub link_failures: LinkFailures,
    /// Scheduled node crashes `(node, round)`, immediately detected.
    pub crashes: Crashes,
}

impl Scenario {
    /// The netsim fault plan for this scenario.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan {
            msg_loss_prob: self.loss,
            bit_flip_prob: self.bit_flips,
            ..FaultPlan::default()
        };
        for &(a, b, round) in &self.link_failures {
            plan = plan.fail_link(a, b, round);
        }
        for &(node, round) in &self.crashes {
            plan = plan.crash_node(node, round);
        }
        plan
    }

    /// Canonical one-line encoding — the hash pre-image. Versioned so a
    /// future format change invalidates old fingerprints loudly instead
    /// of silently replaying the wrong case.
    pub fn canonical(&self) -> String {
        format!(
            "v1|{}|{}|{}|{}|seed={}|rounds={}|acc={:e}|loss={:e}|flips={:e}|links={:?}|crashes={:?}",
            self.lane.label(),
            self.template,
            self.topology.label(),
            self.algorithm.label(),
            self.seed,
            self.max_rounds,
            self.target_accuracy,
            self.loss,
            self.bit_flips,
            self.link_failures,
            self.crashes,
        )
    }

    /// The 16-hex-digit scenario fingerprint hash.
    pub fn hash(&self) -> String {
        hex16(fnv1a64(self.canonical().as_bytes()))
    }

    /// Round of the last *scheduled* fault (0 if none): the oracle's
    /// non-divergence window starts here.
    pub fn last_fault_round(&self) -> u64 {
        let links = self.link_failures.iter().map(|&(_, _, r)| r);
        let crashes = self.crashes.iter().map(|&(_, r)| r);
        links.chain(crashes).max().unwrap_or(0)
    }

    /// `true` if the plan contains scheduled (permanent) faults.
    pub fn has_scheduled_faults(&self) -> bool {
        !self.link_failures.is_empty() || !self.crashes.is_empty()
    }
}

/// Default sanity seed corpus — fixed, so CI runs are comparable.
pub const DEFAULT_SANITY_SEEDS: [u64; 4] = [1, 2, 3, 4];
/// Default stress seed corpus.
pub const DEFAULT_STRESS_SEEDS: [u64; 3] = [1, 2, 3];

/// Sanity round budget: generous enough that every algorithm in the
/// corpus converges to [`SANITY_ACCURACY`] well before the cap (the slow
/// case is the ring, whose async mixing takes a few thousand rounds).
const SANITY_ROUNDS: u64 = 6000;
/// Sanity convergence target / early-exit accuracy.
const SANITY_ACCURACY: f64 = 1e-9;
/// Stress runs execute exactly this many rounds (no early exit: the
/// post-fault window is the point).
const STRESS_ROUNDS: u64 = 900;
/// Scheduled faults land in `[FAULT_FROM, FAULT_UNTIL)`.
const FAULT_FROM: u64 = 120;
const FAULT_UNTIL: u64 = 240;

/// The fault-free lane: every algorithm × a topology spread × the seed
/// corpus, run to convergence under exact-conservation tolerances.
pub fn sanity_corpus(seeds: &[u64]) -> Vec<Scenario> {
    let topologies = [
        TopologyKind::Complete(16),
        TopologyKind::Hypercube(5),
        TopologyKind::Ring(16),
        TopologyKind::Torus2d(4, 4),
    ];
    let mut corpus = Vec::new();
    for topology in topologies {
        for algorithm in Algorithm::all() {
            for &seed in seeds {
                corpus.push(Scenario {
                    lane: Lane::Sanity,
                    template: topology.label(),
                    topology,
                    algorithm,
                    seed,
                    max_rounds: SANITY_ROUNDS,
                    target_accuracy: SANITY_ACCURACY,
                    loss: 0.0,
                    bit_flips: 0.0,
                    link_failures: Vec::new(),
                    crashes: Vec::new(),
                });
            }
        }
    }
    corpus
}

/// The adversarial lane: loss, bit flips, link failures and crashes over
/// the fault-tolerant algorithms (push-sum is excluded — it is the
/// paper's negative control and fails these by design).
pub fn stress_corpus(seeds: &[u64]) -> Vec<Scenario> {
    // (template kind, loss, flips, scheduled link failures, crashes).
    // Fault-bearing templates stay on vertex/edge-connectivity ≥ 5
    // topologies so two scheduled faults can never disconnect the graph
    // (a partitioned survivor set converges per-component and would
    // trip the reconvergence invariant spuriously).
    let kinds: [(&str, f64, f64, usize, usize); 5] = [
        ("loss", 0.2, 0.0, 0, 0),
        ("flips", 0.0, 2e-3, 0, 0),
        ("loss+flips", 0.1, 1e-3, 0, 0),
        ("linkfail", 0.05, 0.0, 2, 0),
        ("crash", 0.05, 0.0, 0, 2),
    ];
    let topologies = [TopologyKind::Hypercube(5), TopologyKind::Complete(16)];
    let algorithms = [
        Algorithm::PushFlow,
        Algorithm::PushCancelFlow(PhiMode::Eager),
        Algorithm::PushCancelFlow(PhiMode::Hardened),
        Algorithm::FlowUpdating,
    ];
    let mut corpus = Vec::new();
    for (kind, loss, flips, n_links, n_crashes) in kinds {
        for topology in topologies {
            let template = format!("{kind}/{}", topology.label());
            for algorithm in algorithms {
                for &seed in seeds {
                    let (link_failures, crashes) =
                        place_faults(topology, &template, algorithm, seed, n_links, n_crashes);
                    corpus.push(Scenario {
                        lane: Lane::Stress,
                        template: template.clone(),
                        topology,
                        algorithm,
                        seed,
                        max_rounds: STRESS_ROUNDS,
                        target_accuracy: 0.0,
                        loss,
                        bit_flips: flips,
                        link_failures,
                        crashes,
                    });
                }
            }
        }
    }
    corpus
}

/// Draw scheduled fault placements from a scenario-identity-keyed RNG
/// stream. Placement is independent of the simulation's own streams, so
/// turning faults on never perturbs the schedule (the netsim stream
/// separation carried one level up).
fn place_faults(
    topology: TopologyKind,
    template: &str,
    algorithm: Algorithm,
    seed: u64,
    n_links: usize,
    n_crashes: usize,
) -> (LinkFailures, Crashes) {
    let identity = format!("{template}|{}|{seed}", algorithm.label());
    let mut rng = stream_rng(seed ^ fnv1a64(identity.as_bytes()), RngStream::Aux(0xFA17));
    let graph = topology.build();
    let n = graph.len() as NodeId;

    let mut link_failures: LinkFailures = Vec::new();
    let mut guard = 0;
    while link_failures.len() < n_links && guard < 1000 {
        guard += 1;
        let a = rng.random_range(0..n);
        let nbrs = graph.neighbors(a);
        if nbrs.is_empty() {
            continue;
        }
        let b = nbrs[rng.random_range(0..nbrs.len())];
        let (lo, hi) = (a.min(b), a.max(b));
        if link_failures.iter().any(|&(x, y, _)| (x, y) == (lo, hi)) {
            continue;
        }
        link_failures.push((lo, hi, rng.random_range(FAULT_FROM..FAULT_UNTIL)));
    }

    let mut crashes: Vec<(NodeId, u64)> = Vec::new();
    guard = 0;
    while crashes.len() < n_crashes && guard < 1000 {
        guard += 1;
        let node = rng.random_range(0..n);
        if crashes.iter().any(|&(c, _)| c == node) {
            continue;
        }
        crashes.push((node, rng.random_range(FAULT_FROM..FAULT_UNTIL)));
    }

    (link_failures, crashes)
}

/// The `k`-th of `n` deterministic shards of a corpus (`k` is 0-based),
/// for splitting a campaign across CI jobs. Scenario `i` goes to shard
/// `i mod n`: round-robin balances templates, algorithms and seeds across
/// shards (a contiguous split would give one job all the expensive
/// topologies), and the shard is a pure function of `(corpus, k, n)`.
/// Corpus order is preserved within a shard, so interleaving the shard
/// reports round-robin reconstructs the unsharded report exactly — the
/// merge-equality test in `report.rs` pins that.
///
/// # Panics
/// Panics if `n == 0` or `k >= n`.
pub fn shard_corpus(corpus: &[Scenario], k: usize, n: usize) -> Vec<Scenario> {
    assert!(n > 0, "shard count must be positive");
    assert!(k < n, "shard index {k} out of range for {n} shards");
    corpus
        .iter()
        .enumerate()
        .filter(|(i, _)| i % n == k)
        .map(|(_, sc)| sc.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = stress_corpus(&[1, 2]);
        let b = stress_corpus(&[1, 2]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.canonical(), y.canonical());
            assert_eq!(x.hash(), y.hash());
        }
    }

    #[test]
    fn hashes_are_unique_within_corpus() {
        let mut hashes: Vec<String> = sanity_corpus(&DEFAULT_SANITY_SEEDS)
            .iter()
            .chain(stress_corpus(&DEFAULT_STRESS_SEEDS).iter())
            .map(Scenario::hash)
            .collect();
        let n = hashes.len();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), n, "fingerprint collision in default corpus");
    }

    #[test]
    fn sanity_corpus_is_fault_free() {
        for sc in sanity_corpus(&[1]) {
            assert!(sc.fault_plan().is_failure_free(), "{}", sc.canonical());
            assert_eq!(sc.lane, Lane::Sanity);
        }
    }

    #[test]
    fn stress_templates_carry_their_faults() {
        let corpus = stress_corpus(&[7]);
        let crash = corpus
            .iter()
            .find(|s| s.template.starts_with("crash/"))
            .unwrap();
        assert_eq!(crash.crashes.len(), 2);
        assert!(crash.has_scheduled_faults());
        assert!(crash.last_fault_round() >= FAULT_FROM);
        assert!(crash.last_fault_round() < FAULT_UNTIL);
        let flips = corpus
            .iter()
            .find(|s| s.template.starts_with("flips/"))
            .unwrap();
        assert!(flips.bit_flips > 0.0);
        assert!(!flips.has_scheduled_faults());
    }

    #[test]
    fn scheduled_faults_are_valid_edges_and_nodes() {
        for sc in stress_corpus(&[1, 2, 3]) {
            let g = sc.topology.build();
            for &(a, b, _) in &sc.link_failures {
                assert!(g.neighbors(a).contains(&b), "{}", sc.canonical());
            }
            for &(node, _) in &sc.crashes {
                assert!((node as usize) < g.len());
            }
        }
    }

    #[test]
    fn topology_labels_and_sizes() {
        assert_eq!(TopologyKind::Hypercube(5).nodes(), 32);
        assert_eq!(TopologyKind::Torus2d(4, 4).label(), "torus4x4");
        assert_eq!(TopologyKind::Ring(16).build().len(), 16);
    }
}
