//! # gr-campaign — deterministic fault-injection campaigns
//!
//! A campaign runs a corpus of scenarios — seed × scenario template
//! (topology, algorithm, fault plan) — through the gossip-reduction
//! simulator in parallel, checks every run against an **invariant
//! oracle**, and reports violations as compact, replayable fingerprints.
//!
//! Two lanes:
//!
//! * **sanity** — fault-free, fixed seed corpus, tight (f64-rounding)
//!   tolerances. A hard CI gate: any violation is a bug in the
//!   implementation, not an interesting finding.
//! * **stress** — message loss, bit flips, link failures and node
//!   crashes over the fault-tolerant algorithms. Trend-tracked rather
//!   than gated: violations here are the *subject matter* (e.g. PCF in
//!   eager-ϕ mode is destroyed by a NaN-producing bit flip by design —
//!   that is the paper's Fig. 5).
//!
//! The invariant set encodes the paper's claims: global mass
//! conservation, pairwise flow antisymmetry (`f_ij = −f_ji`), PCF flow
//! magnitudes staying `O(|aggregate|)`, convergence to the target
//! accuracy, survivor re-convergence after crashes, and post-fault
//! non-divergence. See [`oracle`] for the exact tolerances and the PCF
//! fold-transient caveat.
//!
//! Every violation line ends with a replay command:
//!
//! ```text
//! replay: cargo run -p gr-campaign -- --mode stress --replay <fp>
//! ```
//!
//! which regenerates the (pure-function) corpus, finds the scenario with
//! that fingerprint, re-runs it with tracing enabled and prints the same
//! `(invariant, round, node)` triple plus the netsim trace tail as JSON.

pub mod hash;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod scenario;

pub use oracle::{Invariant, Oracle, Violation};
pub use report::{
    baseline_fingerprints, find_scenario, render_replay, run_campaign, run_campaign_exec,
    CampaignReport,
};
pub use runner::{
    run_scenario, run_scenario_exec, run_scenario_traced, run_scenario_traced_exec, Exec,
    ScenarioResult, CHECK_EVERY,
};
pub use scenario::{
    chaos_script, sanity_corpus, shard_corpus, stress_corpus, ChaosScript, Lane, Scenario,
    TopologyKind, DEFAULT_SANITY_SEEDS, DEFAULT_STRESS_SEEDS,
};
