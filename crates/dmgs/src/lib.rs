//! Fully distributed modified Gram-Schmidt QR factorization (dmGS).
//!
//! Paper Sec. IV / Straková et al. (PPAM'11): factor `V ∈ R^{n×m}`
//! (`n ≥ N` rows distributed over `N` nodes, `m` small) as `V = Q·R`
//! where *every* summation — the column norms and the dot products of
//! modified Gram-Schmidt — is computed by a gossip all-to-all reduction,
//! and everything else is node-local. The reduction algorithm is a black
//! box, so dmGS composes with push-sum, PF or PCF unchanged, and whatever
//! accuracy/fault-tolerance the reduction has is inherited by the whole
//! factorization — the paper's Fig. 8 shows exactly this: dmGS(PF)'s error
//! grows with the node count, dmGS(PCF) stays at the prescribed 1e-15.
//!
//! ## Execution model
//!
//! For column `k`:
//! 1. every node computes the local partial `Σ_r V[r,k]²` over its rows
//!    and the partial dot products `Σ_r V[r,k]·V[r,j]` for `j > k`,
//!    batched into one vector payload;
//! 2. one gossip SUM reduction runs to (approximate) completion — each
//!    node ends with its own estimate of `‖v_k‖²` and `v_kᵀv_j`;
//! 3. each node sets `R_k,k = √(‖v_k‖²)`, `R_k,j = v_kᵀv_j / R_k,k`
//!    locally (so every node holds its *own* copy of `R`, all slightly
//!    different!), normalises its rows of `q_k = v_k/R_k,k` and
//!    orthogonalises its rows of the trailing columns.
//!
//! Note the one-reduction-per-column batching: norm and dot products are
//! computed from the *same* pre-normalisation column (`v_kᵀv_j/r_kk`
//! equals `q_kᵀv_j` exactly in ℝ), halving the reduction count relative
//! to the textbook formulation while staying numerically equivalent to
//! MGS up to the reduction accuracy.

use gr_linalg::Matrix;
use gr_netsim::{FaultPlan, Simulator};
use gr_numerics::Dd;
use gr_reduction::{
    Algorithm, InitialData, InlineVec, PushCancelFlow, PushFlow, PushSum, ReductionProtocol,
};
use gr_topology::{Graph, NodeId};

/// Configuration of a dmGS run.
#[derive(Clone, Copy, Debug)]
pub struct DmgsConfig {
    /// Which reduction algorithm backs the summations.
    pub algorithm: Algorithm,
    /// Per-reduction target accuracy ε (the paper uses 1e-15): a reduction
    /// stops once every node's estimate of every component is within
    /// `ε·‖reference‖∞` of the truth (oracle-checked, as in the paper's
    /// simulations).
    pub target_accuracy: f64,
    /// Per-reduction round cap ("a maximal number of iterations per
    /// reduction was set to terminate reductions which did not achieve
    /// this target accuracy").
    pub max_rounds_per_reduction: u64,
    /// Master seed; every reduction derives its own schedule stream.
    pub seed: u64,
    /// Probability of message loss inside every reduction (fault-injection
    /// studies; keep 0 for the paper's Fig. 8 setting).
    pub msg_loss_prob: f64,
}

impl DmgsConfig {
    /// The paper's Fig. 8 setting for the given algorithm.
    pub fn paper(algorithm: Algorithm, seed: u64) -> Self {
        DmgsConfig {
            algorithm,
            target_accuracy: 1e-15,
            max_rounds_per_reduction: 20_000,
            seed,
            msg_loss_prob: 0.0,
        }
    }
}

/// Result of a distributed factorization.
#[derive(Clone, Debug)]
pub struct DmgsResult {
    /// The distributed `Q` (`n×m`), assembled from each node's own rows.
    pub q: Matrix,
    /// Each node's local copy of `R` (`m×m`, upper triangular). They
    /// differ at the level of the reduction accuracy.
    pub r_per_node: Vec<Matrix>,
    /// `max_b ‖V − Q·R_b‖∞ / ‖V‖∞` over all nodes' R copies — the paper's
    /// Fig. 8 metric (see [`cross_factorization_error`]).
    pub factorization_error: f64,
    /// Residual of each row against its owner's own R — stays `O(ε)`
    /// regardless of reduction accuracy (see [`local_consistency_error`]).
    pub consistency_error: f64,
    /// `‖I − QᵀQ‖∞` of the assembled Q.
    pub orthogonality_error: f64,
    /// Gossip rounds summed over all reductions.
    pub total_rounds: u64,
    /// Number of reductions executed (= m).
    pub reductions: u32,
}

/// Row-to-node assignment: cyclic, row `r` lives on node `r mod N`.
#[inline]
fn owner(row: usize, nodes: usize) -> NodeId {
    (row % nodes) as NodeId
}

/// Run one SUM reduction of `dim`-vectors and return every node's final
/// estimate plus the rounds it took.
fn vector_sum_reduction(
    graph: &Graph,
    locals: Vec<Vec<f64>>,
    cfg: &DmgsConfig,
    reduction_idx: u64,
) -> (Vec<Vec<f64>>, u64) {
    // Sums are computed as N·average: every node knows the node count (a
    // standard assumption in this setting), and average weighting (all
    // w_i = 1) keeps the gossip weights concentrated around 1, which is
    // measurably more accurate at scale than the single-unit-weight SUM
    // start (whose per-node weights are O(1/N) and noisy — compare the
    // SUM vs AVG series of Figs. 3/6).
    // Payloads ride as `InlineVec` so every per-column batch at or below
    // the inline cap runs the reduction allocation-free; results are
    // bit-identical to `Vec<f64>` payloads (see `payload_equiv`).
    let n = graph.len() as f64;
    let data = InitialData::with_kind(
        locals.into_iter().map(InlineVec::from).collect(),
        gr_reduction::AggregateKind::Average,
    );
    let seed = cfg.seed ^ (0x9E37_79B9 * (reduction_idx + 1));
    let plan = if cfg.msg_loss_prob > 0.0 {
        FaultPlan::with_loss(cfg.msg_loss_prob)
    } else {
        FaultPlan::none()
    };
    let (mut estimates, rounds) = match cfg.algorithm {
        Algorithm::PushSum => drive(graph, PushSum::new(graph, &data), &data, plan, seed, cfg),
        Algorithm::PushFlow => drive(graph, PushFlow::new(graph, &data), &data, plan, seed, cfg),
        Algorithm::PushCancelFlow(mode) => drive(
            graph,
            PushCancelFlow::with_mode(graph, &data, mode),
            &data,
            plan,
            seed,
            cfg,
        ),
        Algorithm::FlowUpdating => {
            panic!("flow updating is average-only and cannot back dmGS sums")
        }
    };
    // average → sum
    for est in &mut estimates {
        for x in est.iter_mut() {
            *x *= n;
        }
    }
    (estimates, rounds)
}

fn drive<Pr: ReductionProtocol>(
    graph: &Graph,
    protocol: Pr,
    data: &InitialData<InlineVec>,
    plan: FaultPlan,
    seed: u64,
    cfg: &DmgsConfig,
) -> (Vec<Vec<f64>>, u64) {
    let refs = data.reference();
    // Normwise tolerance: the reduction is accepted when every node's
    // estimate of every component is within ε·‖reference‖∞ of the truth
    // (oracle-checked, as in the paper's simulations).
    let scale = refs
        .iter()
        .map(|r| r.abs().to_f64())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let tol = cfg.target_accuracy * scale;
    let dim = data.dim();
    let n = graph.len();
    let mut sim = Simulator::new(graph, protocol, plan, seed);
    let mut buf = vec![0.0; dim];
    let snapshot = |sim: &Simulator<'_, Pr>| -> Vec<Vec<f64>> {
        (0..n as NodeId)
            .map(|i| {
                let mut v = vec![0.0; dim];
                sim.protocol().write_estimate(i, &mut v);
                v
            })
            .collect()
    };
    // Track the most accurate snapshot seen: if the target is unreachable
    // (PF at scale — the phenomenon Fig. 8 demonstrates) the reduction
    // terminates at its cap, and each node reports the estimate from its
    // calmest observed state. This models the purely local stability
    // detection real nodes use to stop (a node whose estimate is mid-
    // redistribution sees it moving and would not report it); see
    // `gr_reduction::LocalConvergence` for the node-local mechanism.
    let mut best_worst = f64::INFINITY;
    let mut best_snapshot: Option<Vec<Vec<f64>>> = None;
    loop {
        // Check every 8 rounds: estimate inspection is O(n·dim).
        sim.run(8);
        let mut worst = 0.0f64;
        'nodes: for i in 0..n as NodeId {
            sim.protocol().write_estimate(i, &mut buf);
            for (k, r) in refs.iter().enumerate() {
                let e = (Dd::from_f64(buf[k]) - *r).abs().to_f64();
                if e.is_nan() {
                    worst = f64::INFINITY;
                    break 'nodes;
                }
                worst = worst.max(e);
            }
        }
        if worst < best_worst {
            best_worst = worst;
            best_snapshot = Some(snapshot(&sim));
        }
        if worst <= tol {
            return (snapshot(&sim), sim.round());
        }
        if sim.round() >= cfg.max_rounds_per_reduction {
            return (best_snapshot.unwrap_or_else(|| snapshot(&sim)), sim.round());
        }
    }
}

/// Factor `v` over the nodes of `graph` with gossip reductions.
///
/// # Panics
/// Panics if `v` has fewer rows than the graph has nodes, has zero
/// columns, or a column turns out rank-deficient (or its norm estimate is
/// destroyed by injected faults).
pub fn dmgs(v: &Matrix, graph: &Graph, cfg: &DmgsConfig) -> DmgsResult {
    let (n, m) = (v.rows(), v.cols());
    let nodes = graph.len();
    assert!(m >= 1, "empty matrix");
    assert!(
        n >= nodes,
        "need at least one row per node (n={n}, nodes={nodes})"
    );

    // Working copy: each node mutates its own rows only. The whole matrix
    // stays in one allocation; ownership is respected by construction.
    let mut work = v.clone();
    let mut q = Matrix::zeros(n, m);
    let mut r_per_node = vec![Matrix::zeros(m, m); nodes];
    let mut total_rounds = 0u64;

    for k in 0..m {
        // Local partials, batched:
        // [ Σ v_rk², Σ v_rk·v_{r,k+1}, …, Σ v_rk·v_{r,m-1} ]
        let dim = m - k;
        let mut locals = vec![vec![0.0; dim]; nodes];
        for row in 0..n {
            let node = owner(row, nodes) as usize;
            let w = work.row(row);
            let vk = w[k];
            let dst = &mut locals[node];
            dst[0] += vk * vk;
            for j in (k + 1)..m {
                dst[j - k] += vk * w[j];
            }
        }

        let (estimates, rounds) = vector_sum_reduction(graph, locals, cfg, k as u64);
        total_rounds += rounds;

        // Node-local epilogue: every node derives ITS row of R from ITS
        // estimate and updates ITS rows of the working matrix.
        let mut rkk_per_node = vec![0.0; nodes];
        for node in 0..nodes {
            let est = &estimates[node];
            let rkk = est[0].sqrt();
            assert!(
                rkk.is_finite() && rkk > 0.0,
                "rank-deficient or destroyed column {k} at node {node} (norm² estimate {})",
                est[0]
            );
            rkk_per_node[node] = rkk;
            let r = &mut r_per_node[node];
            r[(k, k)] = rkk;
            for j in (k + 1)..m {
                r[(k, j)] = est[j - k] / rkk;
            }
        }
        for row in 0..n {
            let node = owner(row, nodes) as usize;
            let rkk = rkk_per_node[node];
            let qrk = work[(row, k)] / rkk;
            q[(row, k)] = qrk;
            for j in (k + 1)..m {
                let rkj = r_per_node[node][(k, j)];
                work[(row, j)] -= qrk * rkj;
            }
        }
    }

    let factorization_error = cross_factorization_error(v, &q, &r_per_node);
    let consistency_error = local_consistency_error(v, &q, &r_per_node);
    let orthogonality_error = gr_linalg::orthogonality_error(&q);

    DmgsResult {
        q,
        r_per_node,
        factorization_error,
        consistency_error,
        orthogonality_error,
        total_rounds,
        reductions: m as u32,
    }
}

/// The Fig. 8 metric: `max_b ‖V − Q·R_b‖∞ / ‖V‖∞` — the factorization a
/// user gets by pairing the (globally assembled) `Q` with *some* node's
/// copy of `R`. Because each node normalised and orthogonalised its rows
/// with its *own* reduction estimates, the cross-node mismatch is exactly
/// the reduction inaccuracy — which is what makes dmGS(PF) degrade with
/// scale while dmGS(PCF) stays at the target.
///
/// Residual entries are evaluated with compensated dot products so the
/// metric itself does not add `O(m·ε)` noise on top of what it measures.
pub fn cross_factorization_error(v: &Matrix, q: &Matrix, r_per_node: &[Matrix]) -> f64 {
    let (n, m) = (v.rows(), v.cols());
    let vnorm = v.norm_inf();
    let mut worst = 0.0f64;
    for r in r_per_node {
        let rt = r.transpose(); // columns of R as contiguous rows
        for row in 0..n {
            let qrow = q.row(row);
            let mut rowsum = 0.0f64;
            for j in 0..m {
                // entry (row, j) of Q·R uses only the first j+1 columns of
                // Q (R upper triangular).
                let qr = gr_numerics::sum::compensated_dot(&qrow[..=j], &rt.row(j)[..=j]);
                rowsum += (v[(row, j)] - qr).abs();
            }
            worst = worst.max(rowsum);
        }
    }
    worst / vnorm
}

/// Diagnostic companion metric: the residual of each row against the
/// *owning node's* R. MGS is self-consistent — a node's Q rows and its own
/// R reproduce its rows of V to local rounding *even when the reductions
/// were inaccurate* — so this stays at `O(ε)` for every backing algorithm.
/// The gap between this and [`cross_factorization_error`] isolates the
/// reduction-induced error.
pub fn local_consistency_error(v: &Matrix, q: &Matrix, r_per_node: &[Matrix]) -> f64 {
    let (n, m) = (v.rows(), v.cols());
    let nodes = r_per_node.len();
    let vnorm = v.norm_inf();
    let mut worst = 0.0f64;
    for row in 0..n {
        let r = &r_per_node[owner(row, nodes) as usize];
        let qrow = q.row(row);
        let mut rowsum = 0.0f64;
        for j in 0..m {
            let rt_col: Vec<f64> = (0..=j).map(|k| r[(k, j)]).collect();
            let qr = gr_numerics::sum::compensated_dot(&qrow[..=j], &rt_col);
            rowsum += (v[(row, j)] - qr).abs();
        }
        worst = worst.max(rowsum);
    }
    worst / vnorm
}

/// Fully distributed *classical* Gram-Schmidt (dmCGS) — the numerically
/// unstable sibling, included as a stability comparator: CGS loses
/// orthogonality like `O(κ(V)²·ε)` where MGS loses `O(κ(V)·ε)`, and the
/// gap survives the move to gossip reductions intact. Two reductions per
/// column (the `q_kᵀv_j` batch, then `‖w‖²`) instead of dmGS's one.
///
/// # Panics
/// As [`dmgs`].
pub fn dmcgs(v: &Matrix, graph: &Graph, cfg: &DmgsConfig) -> DmgsResult {
    let (n, m) = (v.rows(), v.cols());
    let nodes = graph.len();
    assert!(m >= 1, "empty matrix");
    assert!(
        n >= nodes,
        "need at least one row per node (n={n}, nodes={nodes})"
    );

    let mut q = Matrix::zeros(n, m);
    let mut r_per_node = vec![Matrix::zeros(m, m); nodes];
    let mut total_rounds = 0u64;
    // w: the column being orthogonalised, per node's rows.
    let mut w = vec![0.0; n];

    for j in 0..m {
        // Reduction 1 (skipped for j = 0): r_kj = q_kᵀ v_j for all k < j,
        // against the ORIGINAL column v_j — the classical-GS signature.
        if j > 0 {
            let mut locals = vec![vec![0.0; j]; nodes];
            for row in 0..n {
                let node = owner(row, nodes) as usize;
                let vj = v[(row, j)];
                for k in 0..j {
                    locals[node][k] += q[(row, k)] * vj;
                }
            }
            let (estimates, rounds) = vector_sum_reduction(graph, locals, cfg, (2 * j) as u64);
            total_rounds += rounds;
            for node in 0..nodes {
                for k in 0..j {
                    r_per_node[node][(k, j)] = estimates[node][k];
                }
            }
        }
        // Local: w = v_j − Σ_k q_k r_kj with the owner's own R estimates.
        for row in 0..n {
            let node = owner(row, nodes) as usize;
            let mut acc = v[(row, j)];
            for k in 0..j {
                acc -= q[(row, k)] * r_per_node[node][(k, j)];
            }
            w[row] = acc;
        }
        // Reduction 2: ‖w‖².
        let mut locals = vec![vec![0.0; 1]; nodes];
        for row in 0..n {
            locals[owner(row, nodes) as usize][0] += w[row] * w[row];
        }
        let (estimates, rounds) = vector_sum_reduction(graph, locals, cfg, (2 * j + 1) as u64);
        total_rounds += rounds;
        let mut rjj = vec![0.0; nodes];
        for node in 0..nodes {
            let norm = estimates[node][0].sqrt();
            assert!(
                norm.is_finite() && norm > 0.0,
                "rank-deficient or destroyed column {j} at node {node}"
            );
            r_per_node[node][(j, j)] = norm;
            rjj[node] = norm;
        }
        for row in 0..n {
            q[(row, j)] = w[row] / rjj[owner(row, nodes) as usize];
        }
    }

    let factorization_error = cross_factorization_error(v, &q, &r_per_node);
    let consistency_error = local_consistency_error(v, &q, &r_per_node);
    let orthogonality_error = gr_linalg::orthogonality_error(&q);
    DmgsResult {
        q,
        r_per_node,
        factorization_error,
        consistency_error,
        orthogonality_error,
        total_rounds,
        reductions: (2 * m - 1) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_reduction::PhiMode;
    use gr_topology::hypercube;

    #[test]
    fn dmgs_pcf_reaches_target_accuracy() {
        let g = hypercube(4); // 16 nodes
        let v = Matrix::random_uniform(16, 8, 1);
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 1);
        let res = dmgs(&v, &g, &cfg);
        assert!(
            res.factorization_error < 1e-13,
            "dmGS(PCF) error {:e}",
            res.factorization_error
        );
        assert!(res.orthogonality_error < 1e-12);
        assert_eq!(res.reductions, 8);
        assert!(res.total_rounds > 0);
    }

    #[test]
    fn dmgs_matches_sequential_mgs() {
        // With near-exact reductions, dmGS must agree with sequential MGS
        // up to reduction accuracy: compare node 0's R and the global Q
        // with the reference factorization.
        let g = hypercube(3);
        let v = Matrix::random_uniform(8, 4, 2);
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 2);
        let res = dmgs(&v, &g, &cfg);
        let (qs, rs) = gr_linalg::mgs_qr(&v);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (res.r_per_node[0][(i, j)] - rs[(i, j)]).abs() < 1e-10,
                    "R[{i}][{j}]: {} vs {}",
                    res.r_per_node[0][(i, j)],
                    rs[(i, j)]
                );
            }
        }
        for r in 0..8 {
            for c in 0..4 {
                assert!((res.q[(r, c)] - qs[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dmgs_pf_is_less_accurate_than_pcf_at_scale() {
        // Fig. 8 in miniature: same matrix, same budget; PF's reductions
        // stall above the target accuracy so its factorization error is
        // worse than (or at best equal to) PCF's.
        let g = hypercube(8); // 256 nodes — PF's SUM reductions floor above 1e-15 here
        let v = Matrix::random_uniform(256, 8, 3);
        let mut cfg = DmgsConfig::paper(Algorithm::PushFlow, 3);
        cfg.max_rounds_per_reduction = 2000;
        let pf = dmgs(&v, &g, &cfg);
        cfg.algorithm = Algorithm::PushCancelFlow(PhiMode::Eager);
        let pcf = dmgs(&v, &g, &cfg);
        // At 256 nodes the paper's Fig. 8 gap is still modest (it widens
        // with N — the harness sweep shows the trend); require strict
        // ordering plus a sane PCF level here.
        assert!(
            pcf.factorization_error * 1.2 < pf.factorization_error,
            "PCF {:e} vs PF {:e}",
            pcf.factorization_error,
            pf.factorization_error
        );
        assert!(
            pcf.factorization_error < 2e-13,
            "{:e}",
            pcf.factorization_error
        );
        // MGS self-consistency holds for both regardless of reduction
        // accuracy.
        assert!(pf.consistency_error < 1e-14, "{:e}", pf.consistency_error);
        assert!(pcf.consistency_error < 1e-14, "{:e}", pcf.consistency_error);
    }

    #[test]
    fn dmcgs_factors_well_conditioned_input() {
        let g = hypercube(4);
        let v = Matrix::random_uniform(16, 6, 21);
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 21);
        let res = dmcgs(&v, &g, &cfg);
        assert!(
            res.factorization_error < 1e-13,
            "{:e}",
            res.factorization_error
        );
        assert!(
            res.orthogonality_error < 1e-11,
            "{:e}",
            res.orthogonality_error
        );
        assert_eq!(res.reductions, 11);
    }

    #[test]
    fn cgs_loses_orthogonality_where_mgs_does_not() {
        // The classical numerics result, through the distributed pipeline:
        // on a nearly-dependent matrix (κ ≈ 1e6), CGS orthogonality
        // degrades ~κ× more than MGS.
        let g = hypercube(4);
        let v = Matrix::random_graded(16, 6, 1e-6, 22);
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 22);
        let mgs = dmgs(&v, &g, &cfg);
        let cgs = dmcgs(&v, &g, &cfg);
        assert!(
            cgs.orthogonality_error > mgs.orthogonality_error * 1e3,
            "CGS {:e} should be far worse than MGS {:e}",
            cgs.orthogonality_error,
            mgs.orthogonality_error
        );
        // ... while both still reconstruct V (factorization error is not
        // the discriminating metric — orthogonality is).
        assert!(
            cgs.factorization_error < 1e-9,
            "{:e}",
            cgs.factorization_error
        );
    }

    #[test]
    fn more_rows_than_nodes() {
        let g = hypercube(3); // 8 nodes
        let v = Matrix::random_uniform(37, 5, 4); // 37 rows, cyclic ownership
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 4);
        let res = dmgs(&v, &g, &cfg);
        assert!(
            res.factorization_error < 1e-13,
            "{:e}",
            res.factorization_error
        );
    }

    #[test]
    fn per_node_r_copies_differ_but_slightly() {
        let g = hypercube(4);
        let v = Matrix::random_uniform(16, 6, 5);
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 5);
        let res = dmgs(&v, &g, &cfg);
        let r0 = &res.r_per_node[0];
        let mut max_dev = 0.0f64;
        for node in 1..16 {
            let rn = &res.r_per_node[node];
            for i in 0..6 {
                for j in 0..6 {
                    max_dev = max_dev.max((r0[(i, j)] - rn[(i, j)]).abs());
                }
            }
        }
        assert!(max_dev > 0.0, "copies should not be bitwise identical");
        assert!(max_dev < 1e-12, "copies should agree to reduction accuracy");
    }

    #[test]
    fn dmgs_push_sum_works_failure_free() {
        let g = hypercube(3);
        let v = Matrix::random_uniform(8, 4, 6);
        let cfg = DmgsConfig::paper(Algorithm::PushSum, 6);
        let res = dmgs(&v, &g, &cfg);
        assert!(
            res.factorization_error < 1e-13,
            "{:e}",
            res.factorization_error
        );
    }

    #[test]
    #[should_panic(expected = "at least one row per node")]
    fn too_few_rows_rejected() {
        let g = hypercube(3);
        let v = Matrix::random_uniform(4, 2, 7);
        let cfg = DmgsConfig::paper(Algorithm::PushSum, 7);
        let _ = dmgs(&v, &g, &cfg);
    }

    #[test]
    #[should_panic(expected = "average-only")]
    fn flow_updating_rejected() {
        let g = hypercube(3);
        let v = Matrix::random_uniform(8, 2, 8);
        let cfg = DmgsConfig::paper(Algorithm::FlowUpdating, 8);
        let _ = dmgs(&v, &g, &cfg);
    }
}
