//! Distributed spectral estimation on top of gossip reductions.
//!
//! A second higher-level application in the spirit of the paper's Sec. IV
//! (and of the authors' companion work on distributed eigensolvers for
//! loosely coupled networks): estimate the dominant eigenpair of a
//! symmetric matrix whose sparsity pattern *is* the communication graph —
//! adjacency and Laplacian matrices being the canonical cases. Each node
//! owns one vector component and the matrix entries of its incident
//! edges; one power-iteration step is then
//!
//! 1. a **neighbor-local** mat-vec `y_i = A_ii·x_i + Σ_{j∈N_i} A_ij·x_j`
//!    (one direct exchange with each neighbor — no routing, no gossip
//!    needed), followed by
//! 2. a **global** normalisation `x ← y/‖y‖₂`, whose `‖y‖₂² = Σ y_i²` is
//!    exactly the kind of all-to-all sum the paper's reduction algorithms
//!    provide — and where their fault tolerance and accuracy (PCF vs PF)
//!    is inherited by the eigensolver, just as in dmGS.
//!
//! The self-referential use is worth noting: the *network estimates its
//! own spectral quantities* (spectral radius, Laplacian bounds), which is
//! precisely what tunes gossip parameters like expected convergence time.

use gr_netsim::FaultPlan;
use gr_numerics::{CompensatedSum, Dd};
use gr_reduction::{Algorithm, InitialData, PushCancelFlow, PushFlow, PushSum, ReductionProtocol};
use gr_topology::{Graph, NodeId};
use rand::prelude::*;

/// A symmetric matrix supported on a graph: per-arc off-diagonal weights
/// (stored symmetrically) plus a diagonal.
#[derive(Clone, Debug)]
pub struct GraphMatrix<'g> {
    graph: &'g Graph,
    /// `weights[arc(i,j)] = A_{i,j}` (mirrored on both arcs).
    weights: Vec<f64>,
    /// `diag[i] = A_{i,i}`.
    diag: Vec<f64>,
}

impl<'g> GraphMatrix<'g> {
    /// The adjacency matrix of the graph (`A_{ij} = 1` on edges).
    pub fn adjacency(graph: &'g Graph) -> Self {
        GraphMatrix {
            graph,
            weights: vec![1.0; graph.arc_count()],
            diag: vec![0.0; graph.len()],
        }
    }

    /// The graph Laplacian `L = D − A`.
    pub fn laplacian(graph: &'g Graph) -> Self {
        let diag = (0..graph.len() as NodeId)
            .map(|i| graph.degree(i) as f64)
            .collect();
        GraphMatrix {
            graph,
            weights: vec![-1.0; graph.arc_count()],
            diag,
        }
    }

    /// A symmetric matrix with seeded random edge weights in `[lo, hi]`
    /// and the given constant diagonal.
    pub fn random_weights(graph: &'g Graph, lo: f64, hi: f64, diag: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![0.0; graph.arc_count()];
        for u in 0..graph.len() as NodeId {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if u < v {
                    let w = lo + rng.random::<f64>() * (hi - lo);
                    weights[graph.arc_base(u) + slot] = w;
                    let back = graph.neighbor_slot(v, u).unwrap();
                    weights[graph.arc_base(v) + back] = w;
                }
            }
        }
        GraphMatrix {
            graph,
            weights,
            diag: vec![diag; graph.len()],
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Entry `A_{ij}` (0 for non-edges off the diagonal).
    pub fn entry(&self, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return self.diag[i as usize];
        }
        match self.graph.neighbor_slot(i, j) {
            Some(slot) => self.weights[self.graph.arc_base(i) + slot],
            None => 0.0,
        }
    }

    /// Dense mat-vec (reference oracle for tests; the distributed path is
    /// [`power_iteration`]).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.graph.len();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n as NodeId {
            let mut acc = CompensatedSum::new();
            acc.add(self.diag[i as usize] * x[i as usize]);
            let base = self.graph.arc_base(i);
            for (slot, &j) in self.graph.neighbors(i).iter().enumerate() {
                acc.add(self.weights[base + slot] * x[j as usize]);
            }
            y[i as usize] = acc.value();
        }
        y
    }
}

/// Configuration of the distributed power iteration.
#[derive(Clone, Copy, Debug)]
pub struct PowerConfig {
    /// Which reduction backs the normalisations.
    pub algorithm: Algorithm,
    /// Power-iteration steps.
    pub iterations: u32,
    /// Per-reduction oracle target accuracy.
    pub reduction_accuracy: f64,
    /// Per-reduction round cap. Keep this small (≲100) on strongly
    /// degree-asymmetric topologies: a star leaf halves its gossip weight
    /// every round and is replenished only when the hub happens to pick
    /// it, so its holding shrinks geometrically — and because the flow
    /// algorithms *derive* the holding as `v − ϕ` with `|ϕ| ≈ 1`, a
    /// holding below `ε·|ϕ| ≈ 1e-16` is quantized to garbage (0, one ulp,
    /// or NaN ratios). This is the paper's cancellation phenomenon biting
    /// at the weight level; regular topologies (torus, hypercube) never
    /// get near it.
    pub max_rounds_per_reduction: u64,
    /// Master seed (starting vector + reduction schedules).
    pub seed: u64,
    /// Message-loss probability inside the reductions.
    pub msg_loss_prob: f64,
    /// Diagonal shift `s`: the iteration runs on `A + s·I` and reports
    /// `λ(A + s·I) − s`. Needed when the spectrum is symmetric (bipartite
    /// graphs: hypercubes, stars, even rings have `±λ_max` pairs on which
    /// the unshifted iteration oscillates forever); any `s > 0` breaks the
    /// tie toward the positive end.
    pub shift: f64,
}

impl PowerConfig {
    /// Sensible defaults with the given backing algorithm.
    pub fn new(algorithm: Algorithm, seed: u64) -> Self {
        PowerConfig {
            algorithm,
            iterations: 60,
            reduction_accuracy: 1e-13,
            max_rounds_per_reduction: 4000,
            seed,
            msg_loss_prob: 0.0,
            shift: 0.0,
        }
    }

    /// Defaults plus a diagonal shift (see [`PowerConfig::shift`]).
    pub fn with_shift(algorithm: Algorithm, seed: u64, shift: f64) -> Self {
        PowerConfig {
            shift,
            ..Self::new(algorithm, seed)
        }
    }
}

/// Result of a distributed power iteration.
#[derive(Clone, Debug)]
pub struct SpectralResult {
    /// Rayleigh-quotient estimate of the dominant eigenvalue (from node
    /// 0's reduction estimates; all nodes agree to reduction accuracy).
    pub eigenvalue: f64,
    /// The (normalised) eigenvector estimate, one component per node.
    pub eigenvector: Vec<f64>,
    /// Power-iteration steps executed.
    pub iterations: u32,
    /// Gossip rounds spent across all reductions.
    pub reduction_rounds: u64,
}

/// Estimate the dominant eigenpair of `a` by distributed power iteration.
///
/// # Panics
/// Panics if the iteration degenerates (zero vector — e.g. a starting
/// vector exactly orthogonal to the dominant eigenspace, which the seeded
/// random start makes practically impossible).
pub fn power_iteration(a: &GraphMatrix<'_>, cfg: &PowerConfig) -> SpectralResult {
    let graph = a.graph();
    let n = graph.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE16E);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut reduction_rounds = 0u64;
    let mut eigenvalue = 0.0f64;

    for it in 0..cfg.iterations {
        // Neighbor-local mat-vec (direct exchange with each neighbor),
        // with the spectral shift applied locally.
        let mut y = a.matvec(&x);
        if cfg.shift != 0.0 {
            for (yi, xi) in y.iter_mut().zip(&x) {
                *yi += cfg.shift * xi;
            }
        }
        // Distributed normalisation: ‖y‖² and the Rayleigh numerator xᵀy,
        // batched into one 2-component reduction.
        let locals: Vec<Vec<f64>> = (0..n).map(|i| vec![y[i] * y[i], x[i] * y[i]]).collect();
        let (sums, rounds) = vector_sum(graph, locals, cfg, it as u64);
        reduction_rounds += rounds;
        // Every node normalises with ITS OWN estimate of the sums (the
        // same replicated-R structure as dmGS); eigenvalue from node 0.
        eigenvalue = sums[0][1] - cfg.shift;
        let mut degenerate = true;
        for i in 0..n {
            let norm = sums[i][0].sqrt();
            assert!(
                norm.is_finite() && norm > 0.0,
                "power iteration degenerated at step {it} (‖y‖² estimate {})",
                sums[i][0]
            );
            x[i] = y[i] / norm;
            if x[i] != 0.0 {
                degenerate = false;
            }
        }
        assert!(!degenerate, "zero iterate at step {it}");
    }
    SpectralResult {
        eigenvalue,
        eigenvector: x,
        iterations: cfg.iterations,
        reduction_rounds,
    }
}

/// One batched vector SUM reduction (as N·average, like dmGS).
fn vector_sum(
    graph: &Graph,
    locals: Vec<Vec<f64>>,
    cfg: &PowerConfig,
    tag: u64,
) -> (Vec<Vec<f64>>, u64) {
    let n = graph.len();
    let data = InitialData::with_kind(locals, gr_reduction::AggregateKind::Average);
    let refs = data.reference();
    let scale = refs
        .iter()
        .map(|r| r.abs().to_f64())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let tol = cfg.reduction_accuracy * scale;
    let seed = cfg.seed ^ (0x51BE_D00D ^ tag).wrapping_mul(0x9E37_79B9);
    let plan = if cfg.msg_loss_prob > 0.0 {
        FaultPlan::with_loss(cfg.msg_loss_prob)
    } else {
        FaultPlan::none()
    };

    fn drive<Pr: ReductionProtocol>(
        graph: &Graph,
        proto: Pr,
        refs: &[Dd],
        tol: f64,
        cap: u64,
        plan: FaultPlan,
        seed: u64,
    ) -> (Vec<Vec<f64>>, u64) {
        let n = graph.len();
        let dim = refs.len();
        let mut sim = gr_netsim::Simulator::new(graph, proto, plan, seed);
        let mut buf = vec![0.0; dim];
        loop {
            sim.run(8);
            let mut ok = true;
            'nodes: for i in 0..n as NodeId {
                sim.protocol().write_estimate(i, &mut buf);
                for (k, r) in refs.iter().enumerate() {
                    let e = (Dd::from_f64(buf[k]) - *r).abs().to_f64();
                    // NaN-aware: a destroyed estimate must count as
                    // unconverged, so compare with the negation inverted.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    if !(e <= tol) {
                        ok = false;
                        break 'nodes;
                    }
                }
            }
            if ok || sim.round() >= cap {
                let out = (0..n as NodeId)
                    .map(|i| {
                        let mut v = vec![0.0; dim];
                        sim.protocol().write_estimate(i, &mut v);
                        v
                    })
                    .collect();
                return (out, sim.round());
            }
        }
    }

    let (mut estimates, rounds) = match cfg.algorithm {
        Algorithm::PushSum => drive(
            graph,
            PushSum::new(graph, &data),
            &refs,
            tol,
            cfg.max_rounds_per_reduction,
            plan,
            seed,
        ),
        Algorithm::PushFlow => drive(
            graph,
            PushFlow::new(graph, &data),
            &refs,
            tol,
            cfg.max_rounds_per_reduction,
            plan,
            seed,
        ),
        Algorithm::PushCancelFlow(mode) => drive(
            graph,
            PushCancelFlow::with_mode(graph, &data, mode),
            &refs,
            tol,
            cfg.max_rounds_per_reduction,
            plan,
            seed,
        ),
        Algorithm::FlowUpdating => panic!("flow updating cannot back sums"),
    };
    for est in &mut estimates {
        for v in est.iter_mut() {
            *v *= n as f64; // average → sum
        }
    }
    (estimates, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_reduction::PhiMode;
    use gr_topology::{complete, hypercube, ring, star};

    fn cfg(seed: u64) -> PowerConfig {
        PowerConfig::new(Algorithm::PushCancelFlow(PhiMode::Eager), seed)
    }

    fn cfg_shifted(seed: u64, shift: f64) -> PowerConfig {
        PowerConfig::with_shift(Algorithm::PushCancelFlow(PhiMode::Eager), seed, shift)
    }

    #[test]
    fn complete_graph_adjacency_spectrum() {
        // K_n adjacency: λ_max = n − 1 exactly, eigenvector all-ones.
        let g = complete(12);
        let a = GraphMatrix::adjacency(&g);
        let r = power_iteration(&a, &cfg(1));
        assert!((r.eigenvalue - 11.0).abs() < 1e-9, "λ = {}", r.eigenvalue);
        let v0 = r.eigenvector[0];
        for &v in &r.eigenvector {
            assert!((v - v0).abs() < 1e-9, "eigenvector should be constant");
        }
    }

    #[test]
    fn hypercube_adjacency_spectral_radius_is_dimension() {
        // The hypercube is bipartite (spectrum ±d …): shift to break the
        // ±λ tie.
        let g = hypercube(4);
        let a = GraphMatrix::adjacency(&g);
        let mut c = cfg_shifted(2, 5.0);
        c.iterations = 150;
        let r = power_iteration(&a, &c);
        assert!((r.eigenvalue - 4.0).abs() < 1e-7, "λ = {}", r.eigenvalue);
    }

    #[test]
    fn complete_bipartite_sqrt_spectrum() {
        // K_{a,b}: λ_max = √(ab); bipartite, so the ±λ pair needs the
        // shift. K_{4,4} is 4-regular — no push-gossip starvation (see
        // `star_topology_starves_push_gossip` for the degenerate case).
        let mut b = gr_topology::GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in 4..8u32 {
                b.add_edge(i, j);
            }
        }
        let g = b.build();
        let a = GraphMatrix::adjacency(&g);
        let mut c = cfg_shifted(3, 5.0);
        c.iterations = 120;
        let r = power_iteration(&a, &c);
        assert!((r.eigenvalue - 4.0).abs() < 1e-7, "λ = {}", r.eigenvalue);
    }

    #[test]
    fn star_topology_starves_push_gossip() {
        // Documented limitation: on a star, an uncontacted leaf's holding
        // halves every round; once it drops below ε·|ϕ| the derived state
        // `v − ϕ` quantizes it to garbage. Long reductions on stars
        // therefore degenerate — the library surfaces this loudly (panic
        // on a destroyed norm estimate) rather than returning junk.
        let g = star(17);
        let a = GraphMatrix::adjacency(&g);
        let mut c = cfg_shifted(3, 5.0);
        c.iterations = 40;
        c.reduction_accuracy = 1e-15; // unreachable -> reductions run to the cap
        c.max_rounds_per_reduction = 4000; // far past the quantization horizon
        let result = std::panic::catch_unwind(|| power_iteration(&a, &c));
        assert!(
            result.is_err(),
            "expected the degenerate-iterate guard to fire on a starved star"
        );
    }

    #[test]
    fn complete_graph_laplacian_eigenvalue_is_n() {
        let g = complete(10);
        let l = GraphMatrix::laplacian(&g);
        let r = power_iteration(&l, &cfg(4));
        assert!((r.eigenvalue - 10.0).abs() < 1e-8, "λ = {}", r.eigenvalue);
    }

    #[test]
    fn ring_laplacian_bounded_by_four() {
        // Ring Laplacian: λ_max = 2 − 2cos(π·(n−1)/n·…) ≤ 4, → 4 as n → ∞.
        let g = ring(32);
        let l = GraphMatrix::laplacian(&g);
        let mut c = cfg(5);
        c.iterations = 400; // close eigenvalues on the ring: slow separation
        let r = power_iteration(&l, &c);
        assert!(r.eigenvalue <= 4.0 + 1e-9);
        assert!(r.eigenvalue > 3.9, "λ = {}", r.eigenvalue);
    }

    #[test]
    fn matvec_matches_dense_definition() {
        let g = hypercube(3);
        let a = GraphMatrix::random_weights(&g, -1.0, 1.0, 0.5, 6);
        // symmetry
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a.entry(i, j), a.entry(j, i));
            }
        }
        let x: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let y = a.matvec(&x);
        for i in 0..8u32 {
            let mut want = 0.0;
            for j in 0..8u32 {
                want += a.entry(i, j) * x[j as usize];
            }
            assert!((y[i as usize] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn pf_backed_iteration_agrees_with_pcf() {
        let g = hypercube(4);
        let a = GraphMatrix::random_weights(&g, 0.1, 1.0, 1.0, 7);
        let pcf = power_iteration(&a, &cfg(7));
        let mut c = cfg(7);
        c.algorithm = Algorithm::PushFlow;
        let pf = power_iteration(&a, &c);
        assert!(
            (pcf.eigenvalue - pf.eigenvalue).abs() < 1e-6 * pcf.eigenvalue.abs(),
            "{} vs {}",
            pcf.eigenvalue,
            pf.eigenvalue
        );
    }

    #[test]
    fn survives_message_loss() {
        let g = complete(12);
        let a = GraphMatrix::adjacency(&g);
        let mut c = cfg(8);
        c.msg_loss_prob = 0.2;
        let r = power_iteration(&a, &c);
        assert!((r.eigenvalue - 11.0).abs() < 1e-8, "λ = {}", r.eigenvalue);
    }
}
