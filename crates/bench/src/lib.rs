//! Shared fixtures for the Criterion benchmark suite.
//!
//! The benches gate the paper's efficiency claim ("the computational
//! efficiency of the PF algorithm in a failure-free environment is fully
//! preserved in our new PCF algorithm") and provide per-figure kernels so
//! regressions in the experiment harness are visible.

use gr_reduction::{AggregateKind, InitialData};
use gr_topology::{hypercube, Graph};

/// Standard benchmark fixture: a hypercube and uniform AVG data.
pub fn fixture(dim: u32, seed: u64) -> (Graph, InitialData<f64>) {
    let n = 1usize << dim;
    let g = hypercube(dim);
    let d = InitialData::uniform_random(n, AggregateKind::Average, seed);
    (g, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes() {
        let (g, d) = fixture(4, 1);
        assert_eq!(g.len(), 16);
        assert_eq!(d.len(), 16);
    }
}
