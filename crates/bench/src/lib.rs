//! Shared fixtures for the Criterion benchmark suite.
//!
//! The benches gate the paper's efficiency claim ("the computational
//! efficiency of the PF algorithm in a failure-free environment is fully
//! preserved in our new PCF algorithm") and provide per-figure kernels so
//! regressions in the experiment harness are visible.

use gr_reduction::{AggregateKind, InitialData, InlineVec};
use gr_topology::{hypercube, Graph};
use rand::prelude::*;

/// Standard benchmark fixture: a hypercube and uniform AVG data.
pub fn fixture(dim: u32, seed: u64) -> (Graph, InitialData<f64>) {
    let n = 1usize << dim;
    let g = hypercube(dim);
    let d = InitialData::uniform_random(n, AggregateKind::Average, seed);
    (g, d)
}

/// Vector-payload fixture: a hypercube and uniform `payload_dim`-component
/// AVG data as [`InlineVec`] (inline below the cap, heap spill above), the
/// payload type the vector fast-path kernels measure.
pub fn vector_fixture(dim: u32, payload_dim: usize, seed: u64) -> (Graph, InitialData<InlineVec>) {
    let n = 1usize << dim;
    let g = hypercube(dim);
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<InlineVec> = (0..n)
        .map(|_| {
            InlineVec::from(
                (0..payload_dim)
                    .map(|_| rng.random::<f64>())
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    (g, InitialData::with_kind(values, AggregateKind::Average))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes() {
        let (g, d) = fixture(4, 1);
        assert_eq!(g.len(), 16);
        assert_eq!(d.len(), 16);
    }

    #[test]
    fn vector_fixture_shapes() {
        let (g, d) = vector_fixture(4, 16, 1);
        assert_eq!(g.len(), 16);
        assert_eq!(d.len(), 16);
        assert_eq!(d.dim(), 16);
    }
}
