//! `bench-report` — the machine-readable performance baseline.
//!
//! Times the simulator's hot kernels (one synchronous round of PF / PCF /
//! FU on hypercubes of dimension 6/8/10, fault-free and under a stress
//! plan) on a pinned workload and emits `BENCH_2.json` in a stable
//! schema. CI runs it against the committed baseline and fails on any
//! regression beyond the tolerance; refreshing the baseline is a
//! deliberate `bench-report --out BENCH_2.json` + commit.
//!
//! ```text
//! bench-report                                   # write ./BENCH_2.json
//! bench-report --out cur.json --baseline BENCH_2.json --tolerance 0.25
//! bench-report --blocks 8                        # quicker, noisier
//! ```
//!
//! Methodology: per kernel, warm the simulator past its fault window so
//! measurement sees the steady state, then time `--blocks` blocks of a
//! dimension-pinned round count and keep the fastest block (the same
//! min-estimator as the vendored criterion — robust against scheduler
//! noise, which only ever slows a block down).

use gr_experiments::Opts;
use gr_netsim::{FaultPlan, LinkFailure, NodeCrash, Protocol, Simulator};
use gr_reduction::{AggregateKind, FlowUpdating, InitialData, PushCancelFlow, PushFlow};
use gr_topology::{hypercube, Graph};
use serde_json::Value;
use std::time::Instant;

/// Master seed for every kernel's workload, schedule and fault streams.
const SEED: u64 = 1;

/// One measured kernel.
struct Kernel {
    name: String,
    ns_per_round: f64,
}

/// The stress plan: probabilistic loss + bit flips, two link failures and
/// one crash with a detection lag — all scheduled inside the warmup
/// window, so timed blocks see the post-fault steady state.
fn stress_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 1e-3,
        link_failures: vec![
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 8,
                detect_delay: 4,
            },
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 16,
                detect_delay: 4,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 5,
            at_round: 24,
            detect_delay: 4,
        }],
        ..FaultPlan::none()
    }
}

/// Rounds per timed block, pinned per hypercube dimension so every block
/// lands in the low-millisecond range.
fn rounds_per_block(dim: u32) -> u64 {
    match dim {
        6 => 256,
        8 => 64,
        _ => 16,
    }
}

/// Time `sim.step()` over `blocks` blocks and return the fastest block's
/// ns/round.
fn time_steps<P: Protocol>(
    sim: &mut Simulator<'_, P>,
    rounds: u64,
    blocks: usize,
    warmup: u64,
) -> f64 {
    sim.run(warmup);
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        let start = Instant::now();
        sim.run(rounds);
        let ns = start.elapsed().as_nanos() as f64 / rounds as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn measure(
    graph: &Graph,
    data: &InitialData<f64>,
    alg: &str,
    plan: FaultPlan,
    blocks: usize,
) -> f64 {
    let dim = graph.len().trailing_zeros();
    let rounds = rounds_per_block(dim);
    let warmup = rounds.max(64);
    match alg {
        "pf" => time_steps(
            &mut Simulator::new(graph, PushFlow::new(graph, data), plan, SEED),
            rounds,
            blocks,
            warmup,
        ),
        "pcf" => time_steps(
            &mut Simulator::new(graph, PushCancelFlow::new(graph, data), plan, SEED),
            rounds,
            blocks,
            warmup,
        ),
        "fu" => time_steps(
            &mut Simulator::new(graph, FlowUpdating::new(graph, data), plan, SEED),
            rounds,
            blocks,
            warmup,
        ),
        other => panic!("unknown algorithm {other:?}"),
    }
}

fn run_all(blocks: usize, only: &str) -> Vec<Kernel> {
    let mut kernels = Vec::new();
    for dim in [6u32, 8, 10] {
        let graph = hypercube(dim);
        let data = InitialData::uniform_random(graph.len(), AggregateKind::Average, SEED);
        for alg in ["pf", "pcf", "fu"] {
            for (plan_name, plan) in [("clean", FaultPlan::none()), ("stress", stress_plan())] {
                let name = format!("sim_step/{alg}/hc{dim}/{plan_name}");
                if !only.is_empty() && !name.contains(only) {
                    continue;
                }
                let ns = measure(&graph, &data, alg, plan, blocks);
                println!("  {name}: {ns:.1} ns/round");
                kernels.push(Kernel {
                    name,
                    ns_per_round: ns,
                });
            }
        }
    }
    kernels
}

fn report_json(kernels: &[Kernel], blocks: usize) -> Value {
    let entries: Vec<Value> = kernels
        .iter()
        .map(|k| {
            Value::Object(vec![
                ("name".to_string(), Value::String(k.name.clone())),
                (
                    "ns_per_round".to_string(),
                    serde_json::to_value(k.ns_per_round).unwrap(),
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::String("gr-bench-report/v1".to_string()),
        ),
        ("seed".to_string(), serde_json::to_value(SEED).unwrap()),
        (
            "blocks".to_string(),
            serde_json::to_value(blocks as u64).unwrap(),
        ),
        ("kernels".to_string(), Value::Array(entries)),
    ])
}

/// Compare against a committed baseline; returns the regression lines.
fn compare(kernels: &[Kernel], baseline: &Value, tolerance: f64) -> Vec<String> {
    let base_kernels = baseline["kernels"]
        .as_array()
        .expect("baseline has a kernels array");
    let mut regressions = Vec::new();
    for b in base_kernels {
        let name = b["name"].as_str().expect("kernel name");
        let base_ns = b["ns_per_round"].as_f64().expect("kernel ns_per_round");
        match kernels.iter().find(|k| k.name == name) {
            None => regressions.push(format!("tracked kernel {name} disappeared")),
            Some(k) => {
                let ratio = k.ns_per_round / base_ns;
                let verdict = if ratio > 1.0 + tolerance {
                    regressions.push(format!(
                        "{name}: {base_ns:.1} -> {:.1} ns/round ({:+.1}%)",
                        k.ns_per_round,
                        (ratio - 1.0) * 100.0
                    ));
                    "REGRESSION"
                } else {
                    "ok"
                };
                println!(
                    "  {name}: baseline {base_ns:.1} current {:.1} ns/round ({:+.1}%) {verdict}",
                    k.ns_per_round,
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    regressions
}

fn main() {
    let opts = Opts::from_env();
    let out = opts.string("out", "BENCH_2.json");
    let baseline_path = opts.string("baseline", "");
    let tolerance = opts.f64("tolerance", 0.25);
    let blocks = opts.u64("blocks", 24) as usize;
    let only = opts.string("only", "");
    opts.finish();
    assert!(blocks >= 1, "--blocks must be at least 1");
    assert!(tolerance >= 0.0, "--tolerance must be non-negative");

    println!("bench-report: timing kernels (filter: {only:?})");
    let kernels = run_all(blocks, &only);
    assert!(!kernels.is_empty(), "--only {only:?} matched no kernel");

    let json = serde_json::to_string_pretty(&report_json(&kernels, blocks)).unwrap();
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("writing {out:?}: {e}"));
    println!("wrote {out}");

    if !baseline_path.is_empty() {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path:?}: {e}"));
        let baseline = serde_json::from_str(&text).expect("baseline parses as JSON");
        println!(
            "comparing against {baseline_path} (tolerance {:.0}%):",
            tolerance * 100.0
        );
        let regressions = compare(&kernels, &baseline, tolerance);
        if !regressions.is_empty() {
            eprintln!("performance regressions beyond {:.0}%:", tolerance * 100.0);
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        println!("no kernel regressed beyond {:.0}%", tolerance * 100.0);
    }
}
