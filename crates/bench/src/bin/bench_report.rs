//! `bench-report` — the machine-readable performance baseline.
//!
//! Times the simulator's hot kernels (one synchronous round of PF / PCF /
//! FU on hypercubes of dimension 6/8/10, fault-free and under a stress
//! plan, the vector-payload grid on hc8, a full PCF round over a
//! million-node torus through the partitioned engine, and the flow-bank
//! component kernels in their SIMD and scalar variants) on a pinned
//! workload and emits `BENCH_6.json` in a stable schema. Each kernel
//! also reports its steady-state heap-allocation rate (a counting shim
//! around the system allocator, armed only during a counted block), so
//! the allocation-free claim is part of the committed baseline. The
//! report also records the measured-cost auto-partitioner's decision for
//! the million-node scale topology next to the pinned partition count
//! the kernel actually runs with. CI runs the report against the
//! committed baseline and fails on any time regression beyond the
//! tolerance *or* any kernel whose baseline allocation rate was zero
//! turning allocating; refreshing the baseline is a deliberate
//! `bench-report --out BENCH_6.json` + commit.
//!
//! ```text
//! bench-report                                   # write ./BENCH_6.json
//! bench-report --out cur.json --baseline BENCH_6.json --tolerance 0.25
//! bench-report --blocks 8                        # quicker, noisier
//! bench-report --only torus1000x1000 --sim-threads 4   # scale kernel on 4 workers
//! bench-report --simd-ab                         # interleaved SIMD vs scalar gate
//! ```
//!
//! `--simd-ab` runs only the flow-bank A/B harness: for every bank
//! kernel × dimension it interleaves SIMD and scalar timing blocks
//! pairwise and reports the median of the per-pair scalar/SIMD ratios —
//! interleaving makes each pair share its slice of scheduler noise, so
//! the median ratio is stable where two independent min-estimates are
//! not. The run fails unless the PCF fold kernel (`fold2`) reaches
//! `--simd-min-ratio` (default 1.3×) at a vector dimension, making the
//! SIMD win a gated property rather than a claim. On hardware without a
//! vector path the harness skips (exit 0) — the scalar fallback has
//! nothing to beat.
//!
//! `--sim-threads` sets the partitioned engine's worker-thread count for
//! the scale kernel. Thread count never changes simulation results (the
//! partition count does, and it is pinned per kernel), so reports taken
//! at different `--sim-threads` values are comparable — only the
//! wall-clock column moves.
//!
//! Methodology: per kernel, warm the simulator past its fault window so
//! measurement sees the steady state, then time `--blocks` blocks of a
//! dimension-pinned round count and keep the fastest block (the same
//! min-estimator as the vendored criterion — robust against scheduler
//! noise, which only ever slows a block down). Allocations are counted
//! over one further block after the timed ones.

use gr_batch::{BatchHost, BatchOptions, BatchSim, TenantSpec};
use gr_experiments::Opts;
use gr_netsim::{FaultPlan, LinkFailure, NodeCrash, Protocol, SimOptions, Simulator};
use gr_reduction::{
    kernels, AggregateKind, FlowUpdating, InitialData, Mass, Payload, PcfMsg, PushCancelFlow,
    PushFlow, WireMsg,
};
use gr_topology::{hypercube, torus2d, Graph};
use serde_json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Forwards to [`System`], counting `alloc`/`realloc` calls while armed.
/// Armed only during the allocation-count block, so the timed blocks pay
/// a single relaxed load per allocation — noise well below the tolerance.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Master seed for every kernel's workload, schedule and fault streams.
const SEED: u64 = 1;

/// One measured kernel.
struct Kernel {
    name: String,
    ns_per_round: f64,
    allocs_per_round: f64,
}

/// The stress plan: probabilistic loss + bit flips, two link failures and
/// one crash with a detection lag — all scheduled inside the warmup
/// window, so timed blocks see the post-fault steady state.
fn stress_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 1e-3,
        link_failures: vec![
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 8,
                detect_delay: 4,
            },
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 16,
                detect_delay: 4,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 5,
            at_round: 24,
            detect_delay: 4,
        }],
        ..FaultPlan::none()
    }
}

/// Rounds per timed block, pinned per hypercube dimension so every block
/// lands in the low-millisecond range.
fn rounds_per_block(dim: u32) -> u64 {
    match dim {
        6 => 256,
        8 => 64,
        _ => 16,
    }
}

/// Time `sim.step()` over `blocks` blocks (fastest block's ns/round),
/// then count heap allocations over one further block.
fn time_steps<P: Protocol>(
    sim: &mut Simulator<'_, P>,
    rounds: u64,
    blocks: usize,
    warmup: u64,
) -> (f64, f64) {
    sim.run(warmup);
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        let start = Instant::now();
        sim.run(rounds);
        let ns = start.elapsed().as_nanos() as f64 / rounds as f64;
        if ns < best {
            best = ns;
        }
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    sim.run(rounds);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst) as f64 / rounds as f64;
    (best, allocs)
}

/// Time a closure over `ops`-iteration blocks (fastest block's ns/op),
/// then count heap allocations over one further block — the operation
/// analogue of [`time_steps`], for the codec kernels.
fn time_ops<R>(ops: u64, blocks: usize, mut f: impl FnMut() -> R) -> (f64, f64) {
    for _ in 0..ops {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        let start = Instant::now();
        for _ in 0..ops {
            std::hint::black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / ops as f64;
        if ns < best {
            best = ns;
        }
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..ops {
        std::hint::black_box(f());
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst) as f64 / ops as f64;
    (best, allocs)
}

/// The wire-codec fixture message: the scalar PCF frame, the largest
/// frame of the protocol family (mirrors `benches/wire_codec.rs`).
fn scalar_pcf_msg() -> PcfMsg<f64> {
    PcfMsg {
        f1: Mass::new(1.5, 0.25),
        f2: Mass::new(-2.0, 0.5),
        c: 2,
        r: 7,
        folded: Mass::new(0.0, 0.0),
        base: Mass::new(3.0, 1.0),
        inc: 1,
    }
}

fn measure<P: Payload>(
    graph: &Graph,
    data: &InitialData<P>,
    alg: &str,
    plan: FaultPlan,
    blocks: usize,
) -> (f64, f64) {
    let dim = graph.len().trailing_zeros();
    let rounds = rounds_per_block(dim);
    let warmup = rounds.max(64);
    match alg {
        "pf" => time_steps(
            &mut Simulator::new(graph, PushFlow::new(graph, data), plan, SEED),
            rounds,
            blocks,
            warmup,
        ),
        "pcf" => time_steps(
            &mut Simulator::new(graph, PushCancelFlow::new(graph, data), plan, SEED),
            rounds,
            blocks,
            warmup,
        ),
        "fu" => time_steps(
            &mut Simulator::new(graph, FlowUpdating::new(graph, data), plan, SEED),
            rounds,
            blocks,
            warmup,
        ),
        other => panic!("unknown algorithm {other:?}"),
    }
}

/// Deterministic non-trivial fill for the bank-kernel operands
/// (splitmix64-derived doubles in ~[-1, 1]).
fn bank_fill(len: usize, mut seed: u64) -> Vec<f64> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

/// One flow-bank bench entry: the `kernel/path` label plus a closure
/// running one operation.
type BankOp = (&'static str, Box<dyn FnMut() -> f64>);

/// The flow-bank kernel grid: each entry is `(kernel, dim, path)` plus a
/// closure running one operation. `simd` uses the forced vector entry
/// points (scalar delegation on targets without a vector path), so the
/// pair is measurable regardless of the runtime dispatch state.
fn bank_kernel_ops(dim: usize) -> Vec<BankOp> {
    let src = bank_fill(dim, 1);
    let f1 = bank_fill(dim, 2);
    let f2 = bank_fill(dim, 3);
    let mut entries: Vec<BankOp> = Vec::new();
    {
        let (mut dst, src) = (bank_fill(dim, 4), src.clone());
        entries.push((
            "add/simd",
            Box::new(move || {
                kernels::simd::add(&mut dst, &src);
                dst[0]
            }),
        ));
    }
    {
        let (mut dst, src) = (bank_fill(dim, 4), src.clone());
        entries.push((
            "add/scalar",
            Box::new(move || {
                kernels::scalar::add(&mut dst, &src);
                dst[0]
            }),
        ));
    }
    {
        let mut dst = bank_fill(dim, 5);
        entries.push((
            "scale/simd",
            Box::new(move || {
                kernels::simd::scale(&mut dst, 0.999_999);
                dst[0]
            }),
        ));
    }
    {
        let mut dst = bank_fill(dim, 5);
        entries.push((
            "scale/scalar",
            Box::new(move || {
                kernels::scalar::scale(&mut dst, 0.999_999);
                dst[0]
            }),
        ));
    }
    {
        let (mut p, mut b) = (bank_fill(dim, 6), bank_fill(dim, 7));
        let (f1, f2) = (f1.clone(), f2.clone());
        entries.push((
            "fold2/simd",
            Box::new(move || {
                kernels::simd::fold2(&mut p, &mut b, &f1, &f2);
                p[0]
            }),
        ));
    }
    {
        let (mut p, mut b) = (bank_fill(dim, 6), bank_fill(dim, 7));
        entries.push((
            "fold2/scalar",
            Box::new(move || {
                kernels::scalar::fold2(&mut p, &mut b, &f1, &f2);
                p[0]
            }),
        ));
    }
    entries
}

/// Payload dimensions for the bank-kernel grid: all-remainder (3),
/// whole 4-lane blocks (16), and the heap-spilled vector point (64).
const BANK_DIMS: [usize; 3] = [3, 16, 64];

fn run_all(
    blocks: usize,
    only: &str,
    sim_threads: usize,
    batch_tenants: usize,
) -> (Vec<Kernel>, Value) {
    let mut kernels = Vec::new();
    let mut partition_decision = Value::Null;
    let push = |kernels: &mut Vec<Kernel>, name: String, (ns, allocs): (f64, f64)| {
        println!("  {name}: {ns:.1} ns/round, {allocs:.2} allocs/round");
        kernels.push(Kernel {
            name,
            ns_per_round: ns,
            allocs_per_round: allocs,
        });
    };
    for dim in [6u32, 8, 10] {
        let graph = hypercube(dim);
        let data = InitialData::uniform_random(graph.len(), AggregateKind::Average, SEED);
        for alg in ["pf", "pcf", "fu"] {
            for (plan_name, plan) in [("clean", FaultPlan::none()), ("stress", stress_plan())] {
                let name = format!("sim_step/{alg}/hc{dim}/{plan_name}");
                if !only.is_empty() && !name.contains(only) {
                    continue;
                }
                let m = measure(&graph, &data, alg, plan, blocks);
                push(&mut kernels, name, m);
            }
        }
    }
    // Vector-payload grid: fault-free hc8, dims straddling the inline cap
    // (4 and 16 inline, 64 heap-spilled). These are the kernels the
    // allocation-free vector fast path is accountable to.
    {
        let graph = hypercube(8);
        for vdim in [4usize, 16, 64] {
            let (_, data) = gr_bench::vector_fixture(8, vdim, SEED);
            for alg in ["pf", "pcf", "fu"] {
                let name = format!("sim_step/{alg}/hc8/vec{vdim}");
                if !only.is_empty() && !name.contains(only) {
                    continue;
                }
                let m = measure(&graph, &data, alg, FaultPlan::none(), blocks);
                push(&mut kernels, name, m);
            }
        }
    }
    // Scale kernel: one full PCF round over a million-node torus through
    // the partitioned round engine (16 partitions, matching the
    // campaign's scale1m stress template). The partition count is pinned
    // — it selects the RNG streams and is part of what the baseline
    // asserts — while `--sim-threads` only spreads those partitions
    // across workers. Two rounds per block keeps a block in the
    // hundreds-of-milliseconds range, so the block count is capped
    // rather than inherited from the hypercube grid. The allocation
    // count is the acceptance criterion that matters here: a steady-state
    // round over 4M arcs must not touch the heap.
    {
        let name = "sim_step/pcf/torus1000x1000/part16".to_string();
        if only.is_empty() || name.contains(only) {
            let graph = torus2d(1000, 1000);
            let data = InitialData::uniform_random(graph.len(), AggregateKind::Average, SEED);
            // What the measured-cost auto-partitioner would pick for this
            // topology on this machine, recorded next to the pinned count
            // the kernel actually runs with (pinning keeps the RNG
            // streams — and thus the baseline — machine-independent).
            let auto_plan = SimOptions {
                threads: sim_threads,
                ..SimOptions::default()
            }
            .partition_plan(graph.len(), graph.arc_count());
            println!(
                "  partition decision for torus1000x1000: pinned 16, auto-measured {} ({})",
                auto_plan.partitions,
                auto_plan.source.as_str()
            );
            partition_decision = Value::Object(vec![
                ("kernel".to_string(), Value::String(name.clone())),
                (
                    "pinned_partitions".to_string(),
                    serde_json::to_value(16u64).unwrap(),
                ),
                ("auto".to_string(), serde_json::to_value(auto_plan).unwrap()),
            ]);
            let options = SimOptions {
                partitions: 16,
                threads: sim_threads,
                ..SimOptions::default()
            };
            let mut sim = Simulator::with_options(
                &graph,
                PushCancelFlow::new(&graph, &data),
                FaultPlan::none(),
                SEED,
                options,
            );
            let m = time_steps(&mut sim, 2, blocks.min(8), 4);
            push(&mut kernels, name, m);
        }
    }
    // Wire-codec kernels: per-message encode/decode cost of the scalar
    // PCF frame — the per-message overhead every real transport pays
    // twice. Reported in ns per operation (the schema's "round" is the
    // codec op here); the encode path reuses one buffer, so both kernels
    // are accountable to zero steady-state allocations.
    {
        const CODEC_OPS: u64 = 200_000;
        let msg = scalar_pcf_msg();
        let name = "wire_codec/encode/pcf-scalar".to_string();
        if only.is_empty() || name.contains(only) {
            let mut buf = Vec::new();
            msg.encode_frame(&mut buf);
            let m = time_ops(CODEC_OPS, blocks, || {
                buf.clear();
                msg.encode_frame(&mut buf);
                buf.len()
            });
            push(&mut kernels, name, m);
        }
        let name = "wire_codec/decode/pcf-scalar".to_string();
        if only.is_empty() || name.contains(only) {
            let mut frame = Vec::new();
            msg.encode_frame(&mut frame);
            let m = time_ops(CODEC_OPS, blocks, || {
                PcfMsg::<f64>::decode_frame(&frame).unwrap()
            });
            push(&mut kernels, name, m);
        }
    }
    // Flow-bank component kernels: the componentwise inner loops every
    // PF/PCF bank operation reduces to, in their forced-SIMD and scalar
    // variants side by side. `fold2` is the PCF hardened fold — the
    // kernel the ≥1.3× SIMD acceptance gate (`--simd-ab`) is anchored
    // to. Pure slice arithmetic, so every entry is accountable to zero
    // allocations.
    {
        const BANK_OPS: u64 = 1_000_000;
        for dim in BANK_DIMS {
            for (kname, mut op) in bank_kernel_ops(dim) {
                let name = format!("bank_kernels/{kname}/dim{dim}");
                if !only.is_empty() && !name.contains(only) {
                    continue;
                }
                let m = time_ops(BANK_OPS, blocks, &mut op);
                push(&mut kernels, name, m);
            }
        }
    }
    // Multi-tenant batch kernel: `--batch-tenants` (default 10k)
    // independent hc6 PCF reductions through one `BatchSim` — the
    // shared-arena executor's aggregate throughput. Reported per
    // *tenant-round* so the figure is comparable across tenant counts;
    // construction (union graph, slab arenas) happens outside the timed
    // blocks, and a steady-state batch round must not touch the heap.
    // `--sim-threads` maps to the batch worker count; per-tenant results
    // are identical for every value (pinned by gr-batch's tests), so
    // only the wall-clock column moves.
    {
        let name = format!("batch_round/pcf/hc6/t{batch_tenants}");
        if only.is_empty() || name.contains(only) {
            let graph = hypercube(6);
            let n = graph.len();
            let specs: Vec<TenantSpec> = (0..batch_tenants)
                .map(|t| {
                    let values = (0..n).map(|i| (t * n + i) as f64).collect();
                    TenantSpec::clean(graph.clone(), SEED.wrapping_add(t as u64), values, u64::MAX)
                })
                .collect();
            let host = BatchHost::assemble(&specs).expect("valid batch");
            let data = host.union_data(&specs);
            let pcf = PushCancelFlow::new(host.graph(), &data);
            let opts = BatchOptions {
                threads: sim_threads,
                ..BatchOptions::default()
            };
            let mut sim = BatchSim::new(&host, pcf, &specs, opts).expect("valid options");
            let rounds = 2u64;
            sim.run(4);
            let mut best = f64::INFINITY;
            for _ in 0..blocks.min(8) {
                let start = Instant::now();
                sim.run(rounds);
                let ns = start.elapsed().as_nanos() as f64 / (rounds * batch_tenants as u64) as f64;
                if ns < best {
                    best = ns;
                }
            }
            ALLOCS.store(0, Ordering::SeqCst);
            COUNTING.store(true, Ordering::SeqCst);
            sim.run(rounds);
            COUNTING.store(false, Ordering::SeqCst);
            let allocs =
                ALLOCS.load(Ordering::SeqCst) as f64 / (rounds * batch_tenants as u64) as f64;
            println!(
                "  {name}: aggregate {:.0} tenant-rounds/sec across {batch_tenants} tenants",
                1e9 / best
            );
            push(&mut kernels, name, (best, allocs));
        }
    }
    (kernels, partition_decision)
}

/// Interleaved SIMD-vs-scalar A/B harness over the flow-bank kernel
/// grid. Each rep times one SIMD block then one scalar block back to
/// back and records the pair's scalar/SIMD ratio; the reported figure is
/// the median ratio, so a scheduler hiccup perturbs one pair instead of
/// biasing a whole side. Returns `(kernel, dim, median_ratio)` rows.
fn run_simd_ab(ops: u64, reps: usize) -> Vec<(String, usize, f64)> {
    let mut rows = Vec::new();
    for dim in BANK_DIMS {
        let mut entries = bank_kernel_ops(dim);
        // Entries come in simd/scalar pairs, in that order.
        while !entries.is_empty() {
            let (simd_name, mut simd_op) = entries.remove(0);
            let (_, mut scalar_op) = entries.remove(0);
            let kernel = simd_name.trim_end_matches("/simd").to_string();
            let time_block = |op: &mut Box<dyn FnMut() -> f64>| {
                let start = Instant::now();
                for _ in 0..ops {
                    std::hint::black_box(op());
                }
                start.elapsed().as_nanos() as f64 / ops as f64
            };
            // Warm both paths before the first measured pair.
            time_block(&mut simd_op);
            time_block(&mut scalar_op);
            let mut ratios: Vec<f64> = (0..reps)
                .map(|_| {
                    let simd_ns = time_block(&mut simd_op);
                    let scalar_ns = time_block(&mut scalar_op);
                    scalar_ns / simd_ns
                })
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = ratios[ratios.len() / 2];
            println!("  bank_kernels/{kernel}/dim{dim}: median scalar/simd ratio {median:.2}x");
            rows.push((kernel, dim, median));
        }
    }
    rows
}

fn report_json(kernels: &[Kernel], blocks: usize, partition_decision: Value) -> Value {
    let entries: Vec<Value> = kernels
        .iter()
        .map(|k| {
            Value::Object(vec![
                ("name".to_string(), Value::String(k.name.clone())),
                (
                    "ns_per_round".to_string(),
                    serde_json::to_value(k.ns_per_round).unwrap(),
                ),
                (
                    "allocs_per_round".to_string(),
                    serde_json::to_value(k.allocs_per_round).unwrap(),
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::String("gr-bench-report/v3".to_string()),
        ),
        ("seed".to_string(), serde_json::to_value(SEED).unwrap()),
        (
            "blocks".to_string(),
            serde_json::to_value(blocks as u64).unwrap(),
        ),
        ("simd_path".to_string(), {
            Value::String(kernels::active_path().to_string())
        }),
        ("partition_decision".to_string(), partition_decision),
        ("kernels".to_string(), Value::Array(entries)),
    ])
}

/// Compare against a committed baseline; returns the regression lines.
fn compare(kernels: &[Kernel], baseline: &Value, tolerance: f64) -> Vec<String> {
    let base_kernels = baseline["kernels"]
        .as_array()
        .expect("baseline has a kernels array");
    let mut regressions = Vec::new();
    for b in base_kernels {
        let name = b["name"].as_str().expect("kernel name");
        let base_ns = b["ns_per_round"].as_f64().expect("kernel ns_per_round");
        match kernels.iter().find(|k| k.name == name) {
            None => regressions.push(format!("tracked kernel {name} disappeared")),
            Some(k) => {
                let ratio = k.ns_per_round / base_ns;
                let mut verdict = if ratio > 1.0 + tolerance {
                    regressions.push(format!(
                        "{name}: {base_ns:.1} -> {:.1} ns/round ({:+.1}%)",
                        k.ns_per_round,
                        (ratio - 1.0) * 100.0
                    ));
                    "REGRESSION"
                } else {
                    "ok"
                };
                // An allocation-free kernel turning allocating is a
                // regression regardless of time: the zero is a property
                // the baseline asserts, not a measurement with noise.
                if let Some(base_allocs) = b["allocs_per_round"].as_f64() {
                    if base_allocs == 0.0 && k.allocs_per_round > 0.0 {
                        regressions.push(format!(
                            "{name}: allocation-free kernel now allocates ({:.2} allocs/round)",
                            k.allocs_per_round
                        ));
                        verdict = "ALLOC REGRESSION";
                    }
                }
                println!(
                    "  {name}: baseline {base_ns:.1} current {:.1} ns/round ({:+.1}%) \
                     [{:.2} allocs/round] {verdict}",
                    k.ns_per_round,
                    (ratio - 1.0) * 100.0,
                    k.allocs_per_round,
                );
            }
        }
    }
    regressions
}

fn main() {
    let opts = Opts::from_env();
    let out = opts.string("out", "BENCH_6.json");
    let baseline_path = opts.string("baseline", "");
    let tolerance = opts.f64("tolerance", 0.25);
    let blocks = opts.u64("blocks", 24) as usize;
    let only = opts.string("only", "");
    let sim_threads = opts.u64("sim-threads", 1) as usize;
    let batch_tenants = opts.u64("batch-tenants", 10_000) as usize;
    let simd_ab = opts.bool("simd-ab", false);
    let simd_min_ratio = opts.f64("simd-min-ratio", 1.3);
    opts.finish();
    assert!(blocks >= 1, "--blocks must be at least 1");
    assert!(tolerance >= 0.0, "--tolerance must be non-negative");
    assert!(sim_threads >= 1, "--sim-threads must be at least 1");
    assert!(batch_tenants >= 1, "--batch-tenants must be at least 1");

    if simd_ab {
        if !kernels::simd_supported() {
            println!("simd-ab: no vector path on this target, nothing to gate (skipping)");
            return;
        }
        println!(
            "simd-ab: interleaved A/B over the flow-bank grid \
             ({blocks} pairs/kernel, gate {simd_min_ratio:.2}x on fold2 vector dims)"
        );
        let rows = run_simd_ab(1_000_000, blocks);
        // The gate: the PCF hardened fold must show the SIMD win at a
        // vector payload dimension (dim > LANES, i.e. 16 or 64 here).
        let best_fold2 = rows
            .iter()
            .filter(|(k, dim, _)| k == "fold2" && *dim > gr_reduction::kernels::LANES)
            .map(|&(_, _, r)| r)
            .fold(0.0f64, f64::max);
        if best_fold2 < simd_min_ratio {
            eprintln!(
                "simd-ab FAILED: best fold2 vector-dim median ratio {best_fold2:.2}x \
                 is below the {simd_min_ratio:.2}x gate"
            );
            std::process::exit(1);
        }
        println!(
            "simd-ab: PASS — fold2 vector-dim median ratio {best_fold2:.2}x \
             >= {simd_min_ratio:.2}x"
        );
        return;
    }

    println!("bench-report: timing kernels (filter: {only:?}, sim threads: {sim_threads})");
    let (kernels, partition_decision) = run_all(blocks, &only, sim_threads, batch_tenants);
    assert!(!kernels.is_empty(), "--only {only:?} matched no kernel");

    let json =
        serde_json::to_string_pretty(&report_json(&kernels, blocks, partition_decision)).unwrap();
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("writing {out:?}: {e}"));
    println!("wrote {out}");

    if !baseline_path.is_empty() {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path:?}: {e}"));
        let baseline = serde_json::from_str(&text).expect("baseline parses as JSON");
        println!(
            "comparing against {baseline_path} (tolerance {:.0}%):",
            tolerance * 100.0
        );
        let regressions = compare(&kernels, &baseline, tolerance);
        if !regressions.is_empty() {
            eprintln!("performance regressions beyond {:.0}%:", tolerance * 100.0);
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        println!("no kernel regressed beyond {:.0}%", tolerance * 100.0);
    }
}
