//! Decompose `sim_step` cost: transport-only vs. protocol-only.
//!
//! Runs three measurements on the same topology and seed so their ratio
//! is meaningful even on machines with drifting clock speed:
//!
//! * `noop`: the full simulator driving a protocol whose handlers do
//!   nothing — isolates the transport loop (schedule, buckets, transit,
//!   stats).
//! * `pcf-direct` / `pf-direct`: protocol handlers invoked back-to-back
//!   with a pre-generated random exchange sequence, no simulator —
//!   isolates the protocol arithmetic and its memory traffic.
//!
//! `cargo run --release -p gr-bench --example hotloop_breakdown [dim]`

use gr_netsim::{FaultPlan, Protocol, Simulator};
use gr_reduction::{AggregateKind, InitialData, PushCancelFlow, PushFlow};
use gr_topology::{hypercube, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

struct Noop;
impl Protocol for Noop {
    type Msg = f64;
    fn on_send(&mut self, node: NodeId, _target: NodeId) -> f64 {
        node as f64
    }
    fn on_receive(&mut self, _node: NodeId, _from: NodeId, _msg: &mut f64) {}
}

fn main() {
    let dim: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("dim must be an integer"))
        .unwrap_or(10);
    let g = hypercube(dim);
    let n = g.len();
    let data = InitialData::uniform_random(n, AggregateKind::Average, 1);
    let rounds = 2048u64 >> dim.saturating_sub(6).min(8);
    let rounds = rounds.max(64);

    // Pre-generated exchange sequence shared by the direct measurements.
    let mut rng = StdRng::seed_from_u64(7);
    let pairs: Vec<(NodeId, NodeId)> = (0..n as u64 * rounds)
        .map(|_| {
            let i = rng.random_range(0..n as u32);
            let nbrs = g.neighbors(i);
            (i, nbrs[rng.random_range(0..nbrs.len())])
        })
        .collect();

    let time = |label: &str, f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_nanos() as f64);
        }
        println!(
            "  {label:<12} {:8.1} ns/msg",
            best / (n as u64 * rounds) as f64
        );
    };

    println!("hypercube-{dim} ({n} nodes), {rounds} rounds per block:");
    time("noop-sim", &mut || {
        let mut sim = Simulator::new(&g, Noop, FaultPlan::none(), 1);
        sim.run(rounds);
    });
    time("pf-sim", &mut || {
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 1);
        sim.run(rounds);
    });
    time("pcf-sim", &mut || {
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 1);
        sim.run(rounds);
    });
    // Converged steady state (what bench-report measures): warm past the
    // transient, then time. The cancellation handshake dominates here.
    let mut warmed = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 1);
    warmed.run(256);
    time("pcf-warmed", &mut || {
        warmed.run(rounds);
    });
    time("pf-direct", &mut || {
        let mut p = PushFlow::new(&g, &data);
        for &(i, k) in &pairs {
            let mut msg = p.on_send(i, k);
            p.on_receive(k, i, &mut msg);
        }
    });
    time("pcf-direct", &mut || {
        let mut p = PushCancelFlow::new(&g, &data);
        for &(i, k) in &pairs {
            let mut msg = p.on_send(i, k);
            p.on_receive(k, i, &mut msg);
        }
    });
    time("pcf-send", &mut || {
        let mut p = PushCancelFlow::new(&g, &data);
        for &(i, k) in &pairs {
            std::hint::black_box(p.on_send(i, k));
        }
    });
}
