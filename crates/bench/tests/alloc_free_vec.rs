//! Proof that vector payloads at the inline cap keep the steady-state
//! round loop allocation-free.
//!
//! The twin of `alloc_free.rs` for the vector fast path: a PCF run over
//! `InlineVec` payloads of dim 16 (exactly `INLINE_CAP` — the widest
//! payload the inline representation carries). With masses inline, flows
//! in the SoA banks, and wire buffers recycled through
//! `Protocol::reclaim`, 1000 post-warmup rounds must perform exactly zero
//! heap allocations.
//!
//! Arming is thread-local (see `alloc_free.rs`): libtest's main thread can
//! be preempted into the counting window on a loaded single-core host, and
//! its mpmc event-channel waker allocates lazily. Only the measuring
//! thread's allocations may count.

use gr_bench::vector_fixture;
use gr_netsim::{FaultPlan, Simulator};
use gr_reduction::{PushCancelFlow, INLINE_CAP};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to [`System`], counting `alloc`/`realloc` calls made by the
/// thread that armed it.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Whether the current thread armed the counter. `try_with` (not `with`)
/// so allocations during TLS teardown never panic inside the allocator.
fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_vector_rounds_do_not_allocate() {
    let (g, data) = vector_fixture(6, INLINE_CAP, 1);
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 1);

    // Warm-up: grow the delivery buckets and per-protocol wire-buffer
    // pools to steady-state capacity and let the PCF fold handshake
    // settle into its periodic regime. The print forces the harness's
    // lazily-created output-capture buffer to allocate before the
    // counter arms.
    println!("warming up");
    sim.run(64);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    sim.run(1000);
    ARMED.with(|a| a.set(false));

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state vector hot loop performed {n} heap allocations"
    );
    assert_eq!(sim.stats().rounds, 1064);
}
