//! Proof that the simulator's steady-state round loop is allocation-free.
//!
//! A counting shim around the system allocator is installed as the global
//! allocator for this (single-test) binary; the test warms a fault-free
//! PCF run past the transient — delivery buckets at capacity, believed
//! lists built, the protocol converged into its fold steady state — then
//! counts heap traffic across 1000 further rounds. The count must be
//! exactly zero: one stray `Vec` in the per-message path would show up
//! here as thousands of allocations.
//!
//! Arming is thread-local: libtest's main thread waits out the test on an
//! mpmc event channel whose waker registration allocates lazily, and on a
//! loaded single-core host that re-park can be preempted into the counting
//! window. Only the measuring thread's allocations may count.

use gr_netsim::{FaultPlan, Simulator};
use gr_reduction::{AggregateKind, InitialData, PushCancelFlow};
use gr_topology::hypercube;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to [`System`], counting `alloc`/`realloc` calls made by the
/// thread that armed it.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Whether the current thread armed the counter. `try_with` (not `with`)
/// so allocations during TLS teardown never panic inside the allocator.
fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rounds_do_not_allocate() {
    let g = hypercube(6);
    let data = InitialData::uniform_random(g.len(), AggregateKind::Average, 1);
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 1);

    // Warm-up: grow the delivery buckets to their steady-state capacity
    // and let the PCF fold handshake settle into its periodic regime.
    sim.run(64);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    sim.run(1000);
    ARMED.with(|a| a.set(false));

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "steady-state hot loop performed {n} heap allocations");
    // The rounds actually ran.
    assert_eq!(sim.stats().rounds, 1064);
}
