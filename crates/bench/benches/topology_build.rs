//! Topology-construction costs (CSR build is a fixed cost per experiment;
//! this keeps it visibly negligible next to simulation time).

use criterion::{criterion_group, criterion_main, Criterion};
use gr_topology::{hypercube, random_regular, torus3d};

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_build");
    group.bench_function("hypercube_d10_1024", |b| b.iter(|| hypercube(10)));
    group.bench_function("torus3d_16_4096", |b| b.iter(|| torus3d(16, 16, 16)));
    group.bench_function("random_regular_1024_k6", |b| {
        b.iter(|| random_regular(1024, 6, 42))
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let g = hypercube(12);
    let mut group = c.benchmark_group("topology_query");
    group.bench_function("neighbor_slot_hit", |b| {
        b.iter(|| g.neighbor_slot(100, 100 ^ 8))
    });
    group.bench_function("neighbors_scan", |b| {
        b.iter(|| g.neighbors(100).iter().copied().sum::<u32>())
    });
    group.finish();
}

criterion_group!(benches, bench_builders, bench_queries);
criterion_main!(benches);
