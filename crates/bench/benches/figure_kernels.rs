//! Per-figure harness kernels, so regressions in experiment runtime are
//! caught where they originate. Each bench runs a shrunk instance of the
//! corresponding figure's workload:
//!
//! * `fig3_6_accuracy_point` — one accuracy-sweep cell (64 nodes, torus),
//!   the unit of work Figs. 3/6 repeat per size/topology/aggregate;
//! * `fig4_7_trajectory` — one 200-iteration failure trajectory on the
//!   paper's 6D hypercube (the whole Fig. 4/7 data series);
//! * `fig8_dmgs` — one dmGS(PCF) factorization on 16 nodes (Fig. 8's
//!   repeated unit);
//! * `fig2_bus` — the bus worked example.

use criterion::{criterion_group, criterion_main, Criterion};
use gr_experiments::figures::{bus_example, failure_trajectory, FailureTrajOpts};
use gr_linalg::Matrix;
use gr_netsim::FaultPlan;
use gr_reduction::{run_reduction, AggregateKind, Algorithm, InitialData, PhiMode, RunConfig};
use gr_topology::{hypercube, torus3d};

fn fig3_6_accuracy_point(c: &mut Criterion) {
    let g = torus3d(4, 4, 4);
    let data = InitialData::uniform_random(64, AggregateKind::Average, 42);
    let mut group = c.benchmark_group("fig3_6_accuracy_point");
    group.sample_size(10);
    for (label, alg) in [
        ("pf", Algorithm::PushFlow),
        ("pcf", Algorithm::PushCancelFlow(PhiMode::Eager)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                run_reduction(
                    alg,
                    &g,
                    &data,
                    FaultPlan::none(),
                    42,
                    RunConfig::to_accuracy(1e-14, 20_000),
                )
            })
        });
    }
    group.finish();
}

fn fig4_7_trajectory(c: &mut Criterion) {
    let opts = FailureTrajOpts {
        cube_dim: 6,
        rounds: 200,
        seed: 7,
    };
    let mut group = c.benchmark_group("fig4_7_trajectory");
    group.sample_size(10);
    group.bench_function("pf_with_failure", |b| {
        b.iter(|| failure_trajectory(Algorithm::PushFlow, &opts, Some(75)))
    });
    group.bench_function("pcf_with_failure", |b| {
        b.iter(|| failure_trajectory(Algorithm::PushCancelFlow(PhiMode::Eager), &opts, Some(75)))
    });
    group.finish();
}

fn fig8_dmgs(c: &mut Criterion) {
    use gr_dmgs::{dmgs, DmgsConfig};
    let g = hypercube(4);
    let v = Matrix::random_uniform(16, 8, 5);
    let mut group = c.benchmark_group("fig8_dmgs");
    group.sample_size(10);
    group.bench_function("dmgs_pcf_16nodes_m8", |b| {
        let cfg = DmgsConfig::paper(Algorithm::PushCancelFlow(PhiMode::Eager), 5);
        b.iter(|| dmgs(&v, &g, &cfg))
    });
    group.finish();
}

fn fig2_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_bus");
    group.sample_size(10);
    group.bench_function("bus16_20k_rounds", |b| {
        b.iter(|| bus_example("bench", 16, 20_000, 0))
    });
    group.finish();
}

criterion_group!(
    benches,
    fig3_6_accuracy_point,
    fig4_7_trajectory,
    fig8_dmgs,
    fig2_bus
);
criterion_main!(benches);
