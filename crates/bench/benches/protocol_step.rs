//! Per-round protocol cost — the bench that gates the paper's claim that
//! "the computational efficiency of the PF algorithm in a failure-free
//! environment is fully preserved in our new PCF algorithm".
//!
//! Measures the cost of one full synchronous round (every node sends,
//! every message delivered) for each algorithm on a 256-node hypercube,
//! for scalar and 16-component vector payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gr_bench::fixture;
use gr_netsim::{FaultPlan, Simulator};
use gr_reduction::{
    AggregateKind, FlowUpdating, InitialData, PhiMode, PushCancelFlow, PushFlow, PushSum,
};

fn bench_scalar_round(c: &mut Criterion) {
    let dim = 8u32;
    let n = 1usize << dim;
    let (g, d) = fixture(dim, 1);
    let mut group = c.benchmark_group("round_scalar_256");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::from_parameter("push-sum"), |b| {
        let mut sim = Simulator::new(&g, PushSum::new(&g, &d), FaultPlan::none(), 1);
        b.iter(|| sim.step());
    });
    group.bench_function(BenchmarkId::from_parameter("push-flow"), |b| {
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &d), FaultPlan::none(), 1);
        b.iter(|| sim.step());
    });
    group.bench_function(BenchmarkId::from_parameter("pcf-eager"), |b| {
        let mut sim = Simulator::new(
            &g,
            PushCancelFlow::with_mode(&g, &d, PhiMode::Eager),
            FaultPlan::none(),
            1,
        );
        b.iter(|| sim.step());
    });
    group.bench_function(BenchmarkId::from_parameter("pcf-hardened"), |b| {
        let mut sim = Simulator::new(
            &g,
            PushCancelFlow::with_mode(&g, &d, PhiMode::Hardened),
            FaultPlan::none(),
            1,
        );
        b.iter(|| sim.step());
    });
    group.bench_function(BenchmarkId::from_parameter("flow-updating"), |b| {
        let mut sim = Simulator::new(&g, FlowUpdating::new(&g, &d), FaultPlan::none(), 1);
        b.iter(|| sim.step());
    });
    group.finish();
}

fn bench_vector_round(c: &mut Criterion) {
    let dim = 8u32;
    let n = 1usize << dim;
    let g = gr_topology::hypercube(dim);
    let values: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64; 16]).collect();
    let d = InitialData::with_kind(values, AggregateKind::Average);
    let mut group = c.benchmark_group("round_vec16_256");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::from_parameter("push-flow"), |b| {
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &d), FaultPlan::none(), 1);
        b.iter(|| sim.step());
    });
    group.bench_function(BenchmarkId::from_parameter("pcf-eager"), |b| {
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &d), FaultPlan::none(), 1);
        b.iter(|| sim.step());
    });
    group.finish();
}

fn bench_fault_injection_overhead(c: &mut Criterion) {
    // Cost of the transit-phase fault machinery when probabilistic faults
    // are enabled (loss coin per message + occasional flip).
    let (g, d) = fixture(8, 2);
    let mut group = c.benchmark_group("round_with_faults_256");
    group.bench_function("pcf_clean", |b| {
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &d), FaultPlan::none(), 2);
        b.iter(|| sim.step());
    });
    group.bench_function("pcf_loss10_flip01", |b| {
        let plan = FaultPlan {
            msg_loss_prob: 0.1,
            bit_flip_prob: 0.01,
            ..FaultPlan::none()
        };
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &d), plan, 2);
        b.iter(|| sim.step());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scalar_round,
    bench_vector_round,
    bench_fault_injection_overhead
);
criterion_main!(benches);
