//! The `sim_step` kernel grid — criterion twin of `bench-report`.
//!
//! Times one simulator round for PF / PCF / FU on hypercubes of dimension
//! 6 / 8 / 10, fault-free and under the stress plan, plus the
//! vector-payload grid on hc8 (dims 4 / 16 / 64 — straddling the
//! `InlineVec` inline cap), with the same ids as the `BENCH_5.json`
//! kernels (`sim_step/<alg>/hc<dim>/<plan>` and
//! `sim_step/<alg>/hc8/vec<dim>`). Criterion gives the statistical view
//! for local investigation; `bench-report` produces the committed
//! baseline CI gates on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gr_bench::{fixture, vector_fixture};
use gr_netsim::{FaultPlan, LinkFailure, NodeCrash, Protocol, Simulator};
use gr_reduction::{FlowUpdating, InitialData, PushCancelFlow, PushFlow};
use gr_topology::Graph;

const SEED: u64 = 1;

/// Same stress plan as `bench-report`: every fault fires inside the
/// warmup window so the timed steady state is post-fault.
fn stress_plan() -> FaultPlan {
    FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 1e-3,
        link_failures: vec![
            LinkFailure {
                a: 0,
                b: 1,
                at_round: 8,
                detect_delay: 4,
            },
            LinkFailure {
                a: 2,
                b: 3,
                at_round: 16,
                detect_delay: 4,
            },
        ],
        node_crashes: vec![NodeCrash {
            node: 5,
            at_round: 24,
            detect_delay: 4,
        }],
        ..FaultPlan::none()
    }
}

fn bench_one<P: Protocol>(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: &str,
    graph: &Graph,
    protocol: P,
    plan: FaultPlan,
) {
    let mut sim = Simulator::new(graph, protocol, plan, SEED);
    sim.run(64); // past the fault window, buckets at capacity
    group.bench_function(id, |b| b.iter(|| sim.step()));
}

fn bench_sim_step(c: &mut Criterion) {
    for dim in [6u32, 8, 10] {
        let (g, d): (Graph, InitialData<f64>) = fixture(dim, SEED);
        let name = format!("sim_step/hc{dim}");
        let mut group = c.benchmark_group(&name);
        group.throughput(Throughput::Elements(g.len() as u64));
        for (plan_name, plan) in [("clean", FaultPlan::none()), ("stress", stress_plan())] {
            bench_one(
                &mut group,
                &format!("pf/{plan_name}"),
                &g,
                PushFlow::new(&g, &d),
                plan.clone(),
            );
            bench_one(
                &mut group,
                &format!("pcf/{plan_name}"),
                &g,
                PushCancelFlow::new(&g, &d),
                plan.clone(),
            );
            bench_one(
                &mut group,
                &format!("fu/{plan_name}"),
                &g,
                FlowUpdating::new(&g, &d),
                plan,
            );
        }
        group.finish();
    }
}

fn bench_sim_step_vec(c: &mut Criterion) {
    // Vector payloads on hc8, fault-free: dims 4 and 16 run the inline
    // representation, 64 the heap spill.
    for vdim in [4usize, 16, 64] {
        let (g, d) = vector_fixture(8, vdim, SEED);
        let name = format!("sim_step/hc8/vec{vdim}");
        let mut group = c.benchmark_group(&name);
        group.throughput(Throughput::Elements(g.len() as u64));
        bench_one(
            &mut group,
            "pf",
            &g,
            PushFlow::new(&g, &d),
            FaultPlan::none(),
        );
        bench_one(
            &mut group,
            "pcf",
            &g,
            PushCancelFlow::new(&g, &d),
            FaultPlan::none(),
        );
        bench_one(
            &mut group,
            "fu",
            &g,
            FlowUpdating::new(&g, &d),
            FaultPlan::none(),
        );
        group.finish();
    }
}

criterion_group!(benches, bench_sim_step, bench_sim_step_vec);
criterion_main!(benches);
