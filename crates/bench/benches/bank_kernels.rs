//! Flow-bank kernel throughput — SIMD vs scalar, side by side.
//!
//! The componentwise kernels in `gr_reduction::kernels` are the inner
//! loop of every PF/PCF flow-bank operation; this group times the three
//! shapes that dominate a round (accumulate = `add`, `scale`, and the
//! PCF hardened fold = `fold2`) at payload dimensions straddling the
//! 4-lane block width (3 = all remainder, 16 = whole blocks, 64 = the
//! heap-spilled grid point). Each dimension runs the forced vector entry
//! point and the scalar reference back to back, so a criterion run shows
//! the speedup directly; on targets without a vector path the `simd`
//! variants delegate to scalar and the pair reads ~1.0×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gr_reduction::kernels;

/// Deterministic non-trivial fill (splitmix64-derived doubles in ~[-1, 1]).
fn fill(len: usize, mut seed: u64) -> Vec<f64> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

fn bench_bank_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bank_kernels");
    for dim in [3usize, 16, 64] {
        group.throughput(Throughput::Elements(dim as u64));
        let src = fill(dim, 1);
        let f1 = fill(dim, 2);
        let f2 = fill(dim, 3);

        group.bench_function(BenchmarkId::new("add/simd", dim), |b| {
            let mut dst = fill(dim, 4);
            b.iter(|| {
                kernels::simd::add(&mut dst, &src);
                dst[0]
            });
        });
        group.bench_function(BenchmarkId::new("add/scalar", dim), |b| {
            let mut dst = fill(dim, 4);
            b.iter(|| {
                kernels::scalar::add(&mut dst, &src);
                dst[0]
            });
        });

        group.bench_function(BenchmarkId::new("scale/simd", dim), |b| {
            let mut dst = fill(dim, 5);
            b.iter(|| {
                kernels::simd::scale(&mut dst, 0.999_999);
                dst[0]
            });
        });
        group.bench_function(BenchmarkId::new("scale/scalar", dim), |b| {
            let mut dst = fill(dim, 5);
            b.iter(|| {
                kernels::scalar::scale(&mut dst, 0.999_999);
                dst[0]
            });
        });

        group.bench_function(BenchmarkId::new("fold2/simd", dim), |b| {
            let mut p = fill(dim, 6);
            let mut base = fill(dim, 7);
            b.iter(|| {
                kernels::simd::fold2(&mut p, &mut base, &f1, &f2);
                p[0]
            });
        });
        group.bench_function(BenchmarkId::new("fold2/scalar", dim), |b| {
            let mut p = fill(dim, 6);
            let mut base = fill(dim, 7);
            b.iter(|| {
                kernels::scalar::fold2(&mut p, &mut base, &f1, &f2);
                p[0]
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bank_kernels);
criterion_main!(benches);
