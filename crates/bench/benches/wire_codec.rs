//! Wire-codec throughput — the transport layer's per-message overhead.
//!
//! Every message a real backend ships crosses the `gr-reduction::wire`
//! codec twice (encode at the sender, decode at the receiver), so its
//! throughput bounds the message rate any backend can sustain. Measures
//! frame encode and decode for the PCF message — the largest frame of the
//! protocol family — at scalar and 16-component vector payloads, plus the
//! encode/decode round trip the in-memory backend performs per delivery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gr_reduction::{InlineVec, Mass, Payload, PcfMsg, WireMsg};

fn pcf_msg<P: Payload>(dim: usize) -> PcfMsg<P> {
    let v = |k: f64| -> P {
        P::from_components(&(0..dim).map(|i| k * (i as f64 + 1.0)).collect::<Vec<_>>())
    };
    PcfMsg {
        f1: Mass::new(v(1.5), 0.25),
        f2: Mass::new(v(-2.0), 0.5),
        c: 2,
        r: 7,
        folded: Mass::new(v(0.0), 0.0),
        base: Mass::new(v(3.0), 1.0),
        inc: 1,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");

    let scalar = pcf_msg::<f64>(1);
    let vector = pcf_msg::<InlineVec>(16);
    let mut frame_s = Vec::new();
    scalar.encode_frame(&mut frame_s);
    let mut frame_v = Vec::new();
    vector.encode_frame(&mut frame_v);

    group.throughput(Throughput::Bytes(frame_s.len() as u64));
    group.bench_function(BenchmarkId::new("encode", "pcf-scalar"), |b| {
        let mut buf = Vec::with_capacity(frame_s.len());
        b.iter(|| {
            buf.clear();
            scalar.encode_frame(&mut buf);
            buf.len()
        });
    });
    group.bench_function(BenchmarkId::new("decode", "pcf-scalar"), |b| {
        b.iter(|| PcfMsg::<f64>::decode_frame(&frame_s).unwrap());
    });
    group.bench_function(BenchmarkId::new("roundtrip", "pcf-scalar"), |b| {
        let mut buf = Vec::with_capacity(frame_s.len());
        b.iter(|| {
            buf.clear();
            scalar.encode_frame(&mut buf);
            PcfMsg::<f64>::decode_frame(&buf).unwrap()
        });
    });

    group.throughput(Throughput::Bytes(frame_v.len() as u64));
    group.bench_function(BenchmarkId::new("encode", "pcf-vec16"), |b| {
        let mut buf = Vec::with_capacity(frame_v.len());
        b.iter(|| {
            buf.clear();
            vector.encode_frame(&mut buf);
            buf.len()
        });
    });
    group.bench_function(BenchmarkId::new("decode", "pcf-vec16"), |b| {
        b.iter(|| PcfMsg::<InlineVec>::decode_frame(&frame_v).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
