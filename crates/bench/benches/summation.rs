//! Summation-kernel costs: what the harness pays for compensated
//! arithmetic (and why it can afford to use it everywhere it measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gr_numerics::{dd::dd_sum, neumaier_sum, pairwise_sum};

fn data(n: usize) -> Vec<f64> {
    let mut x = 0x9E3779B97F4A7C15u64;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e6
        })
        .collect()
}

fn bench_sums(c: &mut Criterion) {
    let mut group = c.benchmark_group("sum_kernels");
    for n in [1_000usize, 100_000] {
        let v = data(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &v, |b, v| {
            b.iter(|| v.iter().sum::<f64>())
        });
        group.bench_with_input(BenchmarkId::new("pairwise", n), &v, |b, v| {
            b.iter(|| pairwise_sum(v))
        });
        group.bench_with_input(BenchmarkId::new("neumaier", n), &v, |b, v| {
            b.iter(|| neumaier_sum(v))
        });
        group.bench_with_input(BenchmarkId::new("double_double", n), &v, |b, v| {
            b.iter(|| dd_sum(v).to_f64())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sums);
criterion_main!(benches);
