//! The deterministic-twin pin: netsim and the threaded in-memory
//! transport must run the same PCF reduction to the same answer.
//!
//! This is the contract the whole transport layer stands on — the
//! simulator is a faithful twin of the real runtime, so protocol results
//! established in simulation (the paper's methodology) transfer to real
//! execution. The runs are not bitwise-identical executions (thread
//! interleaving replaces the round schedule, by design); the *fixed
//! point* is what must coincide, within the convergence tolerance both
//! runs are held to. The byte-level half of the twin claim — identical
//! wire frames for identical messages — is pinned by the codec goldens
//! in `gr-reduction::wire`.

use gr_topology::hypercube;
use gr_transport::twin_equivalence;

const EPS: f64 = 1e-9;

#[test]
fn netsim_and_mem_transport_agree_on_hc6() {
    let graph = hypercube(6);
    let n = graph.len();
    let values: Vec<f64> = (0..n).map(|i| 1.5 * i as f64 - 20.0).collect();
    let report = twin_equivalence(&graph, &values, 42, EPS, 5_000).unwrap();

    assert!(
        report.equivalent(),
        "twins diverged: netsim err {:.3e}, mem err {:.3e} (tolerance {EPS:.0e})",
        report.netsim_error,
        report.mem_error
    );
    // Within tolerance of the reference on both sides implies the twins
    // agree with each other to ~2·eps·|reference|.
    let bound = 2.0 * EPS * report.reference.abs();
    assert!(
        report.divergence <= bound,
        "per-node divergence {:.3e} exceeds {bound:.3e}",
        report.divergence
    );

    // The transport leg must also be a *clean* run for the comparison to
    // mean anything: lossless, and mass-conserving across the per-node
    // protocol instances after the settle drain.
    let mem = &report.mem_result;
    assert_eq!(mem.dropped_total, 0, "lossless run dropped frames");
    assert!(mem.converged);
    let total: f64 = values.iter().sum();
    assert!(
        (mem.mass_value[0] - total).abs() <= 1e-9 * total.abs().max(1.0),
        "mass {} drifted from {}",
        mem.mass_value[0],
        total
    );
    assert!((mem.mass_weight - n as f64).abs() <= 1e-9);
}

#[test]
fn twin_agreement_holds_across_seeds() {
    let graph = hypercube(4);
    let n = graph.len();
    let values: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 10.0).collect();
    for seed in [1, 7, 1234] {
        let report = twin_equivalence(&graph, &values, seed, EPS, 5_000).unwrap();
        assert!(
            report.equivalent(),
            "seed {seed}: netsim err {:.3e}, mem err {:.3e}",
            report.netsim_error,
            report.mem_error
        );
    }
}
