//! Loopback UDP smoke test: a 16-node PCF average over real OS sockets
//! converges inside a tight wall-clock budget.
//!
//! Skips (rather than fails) when the sandbox cannot bind loopback
//! sockets — the typed `PortBind` error is exactly the signal for that.

use gr_reduction::{AggregateKind, InitialData, PushCancelFlow};
use gr_topology::hypercube;
use gr_transport::{run_cluster, udp_cluster, ClusterOptions, TransportConfigError, UdpDelivery};
use std::time::Duration;

#[test]
fn hc4_pcf_converges_over_loopback_udp() {
    let graph = hypercube(4);
    let n = graph.len();
    let endpoints: Vec<UdpDelivery<_>> = match udp_cluster(n) {
        Ok(eps) => eps,
        Err(TransportConfigError::PortBind { addr, detail }) => {
            eprintln!("skipping UDP smoke test: cannot bind {addr}: {detail}");
            return;
        }
        Err(e) => panic!("unexpected config error: {e}"),
    };

    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let reference = (n - 1) as f64 / 2.0;
    let data = InitialData::with_kind(values, AggregateKind::Average);
    let opts = ClusterOptions {
        seed: 42,
        target: 1e-9,
        max_rounds: 5_000,
        // The ISSUE budget for this test is 5 seconds end to end; the
        // stepping phase gets most of it.
        wall_limit: Duration::from_secs(4),
        ..ClusterOptions::default()
    };
    let start = std::time::Instant::now();
    let result = run_cluster(
        &graph,
        endpoints,
        |_| PushCancelFlow::new(&graph, &data),
        &[reference],
        &opts,
    )
    .unwrap();
    assert!(
        result.converged,
        "UDP run did not converge (max rel error {:.3e})",
        result.max_rel_error
    );
    assert!(
        start.elapsed() <= Duration::from_secs(5),
        "smoke test exceeded its 5s budget: {:?}",
        start.elapsed()
    );
    // Loopback under light load should be effectively lossless, but UDP
    // gives no guarantee (the kernel may shed datagrams the sender never
    // sees fail) — so gate the mass audit on every sent frame having
    // actually been delivered: a provably lossless run must conserve mass.
    let sent: u64 = result.nodes.iter().map(|r| r.sent).sum();
    let delivered: u64 = result.nodes.iter().map(|r| r.delivered).sum();
    if result.dropped_total == 0 && sent == delivered {
        let total: f64 = (0..n).map(|i| i as f64).sum();
        assert!(
            (result.mass_value[0] - total).abs() <= 1e-9 * total.max(1.0),
            "lossless UDP run leaked mass: {} vs {}",
            result.mass_value[0],
            total
        );
    }
}
