//! The chaos layer's null plan is a verified no-op: wrapping a backend in
//! [`ChaosDelivery`] with every rate at zero and no cuts must be
//! byte-identical passthrough — same delivered stream, same wire stats —
//! for both real backends. This pins the wrapper's "off" cost at exactly
//! nothing, so wrapping unconditionally (and gating on the plan) is safe.

use gr_netsim::Delivery;
use gr_reduction::Mass;
use gr_topology::NodeId;
use gr_transport::{
    mem_cluster, udp_cluster, ChaosDelivery, ChaosPlan, TransportConfigError, WireInstrumented,
    WireStats,
};
use proptest::prelude::*;

/// A scripted send: `(src, dst, value)`.
type Send = (NodeId, NodeId, f64);

fn script_strategy(n: NodeId) -> impl Strategy<Value = Vec<Send>> {
    proptest::collection::vec((0..n, 0..n, -1e6f64..1e6), 0..48usize)
}

/// FNV-1a over one delivered message, including who carried it.
fn msg_hash(src: NodeId, dst: NodeId, m: &Mass<f64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [
        u64::from(src),
        u64::from(dst),
        m.value.to_bits(),
        m.weight.to_bits(),
    ] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Run the script through a set of endpoints single-threaded, then drain
/// everything. Returns an order-insensitive digest of the delivered
/// stream plus the summed wire stats. `budget` bounds the drain for
/// backends with kernel latency.
fn run_script<D: Delivery<Mass<f64>, Error = gr_transport::TransportError> + WireInstrumented>(
    mut eps: Vec<D>,
    script: &[Send],
) -> (u64, u64, WireStats) {
    for &(src, dst, v) in script {
        eps[src as usize].send(src, dst, Mass::new(v, 1.0)).unwrap();
    }
    let (mut digest, mut count) = (0u64, 0u64);
    let expect: u64 = eps.iter().map(|e| e.wire_stats().sent).sum();
    for _ in 0..500 {
        for (node, ep) in eps.iter_mut().enumerate() {
            while let Some((src, m)) = ep.try_recv(node as NodeId).unwrap() {
                digest ^= msg_hash(src, node as NodeId, &m);
                count += 1;
            }
        }
        if count >= expect {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut wire = WireStats::default();
    for e in &eps {
        let w = e.wire_stats();
        wire.sent += w.sent;
        wire.delivered += w.delivered;
        wire.bytes_sent += w.bytes_sent;
        wire.bytes_recv += w.bytes_recv;
        wire.dropped += w.dropped;
        wire.chaos_drops += w.chaos_drops;
        wire.chaos_dups += w.chaos_dups;
        wire.chaos_corrupt += w.chaos_corrupt;
    }
    (digest, count, wire)
}

fn wrap<D>(eps: Vec<D>, plan: &ChaosPlan) -> Vec<ChaosDelivery<D, Mass<f64>>> {
    eps.into_iter()
        .enumerate()
        .map(|(i, ep)| ChaosDelivery::new(ep, i as NodeId, plan))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Mem backend: bare and null-plan-wrapped runs of the same script
    /// are indistinguishable — delivered stream and every wire counter.
    #[test]
    fn mem_null_plan_is_byte_identical(
        script in script_strategy(4),
        seed in 0u64..1_000_000_000,
    ) {
        let plan = ChaosPlan::none(seed);
        prop_assert!(plan.is_passthrough());
        let bare = run_script(mem_cluster::<Mass<f64>>(4, 1024).unwrap(), &script);
        let wrapped = run_script(wrap(mem_cluster::<Mass<f64>>(4, 1024).unwrap(), &plan), &script);
        prop_assert_eq!(bare, wrapped);
    }
}

/// UDP backend: same property, one deterministic script (sockets are too
/// slow for a full proptest battery; the property is rate-independent).
#[test]
fn udp_null_plan_is_byte_identical() {
    let script: Vec<Send> = (0..40)
        .map(|i| {
            (
                (i % 3) as NodeId,
                ((i + 1) % 3) as NodeId,
                1.5 * i as f64 - 20.0,
            )
        })
        .collect();
    let bare = match udp_cluster::<Mass<f64>>(3) {
        Ok(eps) => run_script(eps, &script),
        Err(TransportConfigError::PortBind { addr, detail }) => {
            eprintln!("skipping UDP passthrough test: cannot bind {addr}: {detail}");
            return;
        }
        Err(e) => panic!("unexpected config error: {e}"),
    };
    let wrapped = match udp_cluster::<Mass<f64>>(3) {
        Ok(eps) => run_script(wrap(eps, &ChaosPlan::none(7)), &script),
        Err(_) => return,
    };
    assert_eq!(bare, wrapped);
}
