//! The ISSUE's acceptance scenario: a seeded chaos run — correlated burst
//! loss, one scripted partition with heal, one node kill/restart — over
//! the threads backend converges, and the post-quiescence audit passes.
//!
//! Nothing here is an oracle: peers learn of the kill only through their
//! own timeout detectors, the restarted node resynchronises through PCF's
//! wire-carried incarnation numbers, and convergence is judged by the
//! estimate spread plus the self-consistency audit (the killed mass makes
//! the original reference void, by design).

use gr_reduction::{AggregateKind, InitialData, PushCancelFlow};
use gr_topology::{hypercube, NodeId};
use gr_transport::{
    mem_cluster, run_cluster, udp_cluster, ChaosCut, ChaosDelivery, ChaosPlan, ChurnEvent,
    ClusterOptions, ClusterResult, TransportConfigError, TransportError,
};
use std::time::Duration;

fn chaos_scenario(seed: u64) -> Result<ClusterResult, TransportError> {
    let graph = hypercube(4);
    let n = graph.len();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let reference = (n - 1) as f64 / 2.0;
    let data = InitialData::with_kind(values, AggregateKind::Average);
    let plan = ChaosPlan {
        drop: 0.02,
        burst_enter: 0.02,
        burst_exit: 0.3,
        burst_loss: 0.9,
        cuts: vec![ChaosCut {
            // The low half of the hypercube goes dark to the high half
            // mid-run, then heals.
            members: (0..(n / 2) as NodeId).collect(),
            from_op: 300,
            until_op: 900,
        }],
        ..ChaosPlan::none(seed)
    };
    let endpoints: Vec<_> = mem_cluster(n, 64 * n)?
        .into_iter()
        .enumerate()
        .map(|(i, ep)| ChaosDelivery::new(ep, i as NodeId, &plan))
        .collect();
    let opts = ClusterOptions {
        seed,
        target: 1e-9,
        // Peers keep iterating while the victim is dark, so the round
        // budget must dwarf (dark time) / (step time).
        max_rounds: 5_000_000,
        wall_limit: Duration::from_secs(15),
        churn: vec![ChurnEvent {
            node: 3,
            at_round: 150,
            down_for: Duration::from_millis(120),
        }],
        detector_window: Some(60),
    };
    run_cluster(
        &graph,
        endpoints,
        |_| PushCancelFlow::new(&graph, &data),
        &[reference],
        &opts,
    )
}

#[test]
fn chaos_scenario_converges_and_audits_clean() {
    let result = chaos_scenario(1234).unwrap();
    assert!(
        result.converged,
        "chaos scenario did not converge (self-consistency {:.3e})",
        result.self_consistency
    );
    assert_eq!(result.churn_events, 1);
    assert_eq!(result.recovered, 1);
    let victim = &result.nodes[3];
    assert_eq!((victim.kills, victim.restarts), (1, 1));
    assert!(
        victim.mass_lost[0] != 0.0,
        "the killed incarnation held mass"
    );
    // The burst chain and/or cut actually fired.
    let chaos_drops: u64 = result.nodes.iter().map(|r| r.chaos_drops).sum();
    assert!(chaos_drops > 0, "chaos plan never dropped a frame");
    // Somebody's detector noticed the dark node (or a cut-silenced
    // neighbor) — recovery was genuinely detector-driven.
    let suspected: u64 = result.nodes.iter().map(|r| r.suspected).sum();
    assert!(suspected > 0, "no detector ever fired");
    // Post-quiescence audit: the cluster agrees with the aggregate its
    // own surviving mass defines.
    assert!(
        result.self_consistency <= 1e-6,
        "self-consistency audit failed: {:.3e}",
        result.self_consistency
    );
    // Killed mass is gone for good: the surviving weight is below n.
    assert!(result.mass_weight < 16.0 + 1e-9);
}

/// The scenario is stable under its seed: the same script converges with
/// a clean audit again. (Thread interleaving differs run to run; the
/// injected-fault process and the outcome do not.)
#[test]
fn chaos_scenario_is_reproducible() {
    let a = chaos_scenario(77).unwrap();
    let b = chaos_scenario(77).unwrap();
    for r in [&a, &b] {
        assert!(r.converged);
        assert_eq!((r.churn_events, r.recovered), (1, 1));
        assert!(r.self_consistency <= 1e-6);
    }
}

/// UDP churn smoke: kill and restart a node over real loopback sockets,
/// inside a 5-second budget. Skips where the sandbox cannot bind.
#[test]
fn udp_churn_smoke() {
    let graph = hypercube(3);
    let n = graph.len();
    let endpoints = match udp_cluster(n) {
        Ok(eps) => eps,
        Err(TransportConfigError::PortBind { addr, detail }) => {
            eprintln!("skipping UDP churn smoke: cannot bind {addr}: {detail}");
            return;
        }
        Err(e) => panic!("unexpected config error: {e}"),
    };
    let values: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 - 3.0).collect();
    let reference = values.iter().sum::<f64>() / n as f64;
    let data = InitialData::with_kind(values, AggregateKind::Average);
    let opts = ClusterOptions {
        seed: 9,
        target: 1e-7,
        max_rounds: 5_000_000,
        wall_limit: Duration::from_secs(3),
        churn: vec![ChurnEvent {
            node: 1,
            at_round: 100,
            down_for: Duration::from_millis(80),
        }],
        detector_window: Some(50),
    };
    let start = std::time::Instant::now();
    let result = run_cluster(
        &graph,
        endpoints,
        |_| PushCancelFlow::new(&graph, &data),
        &[reference],
        &opts,
    )
    .unwrap();
    assert!(
        start.elapsed() <= Duration::from_secs(5),
        "churn smoke exceeded its 5s budget: {:?}",
        start.elapsed()
    );
    assert!(
        result.converged,
        "UDP churn run did not converge (self-consistency {:.3e})",
        result.self_consistency
    );
    assert_eq!((result.churn_events, result.recovered), (1, 1));
    assert!(
        result.self_consistency <= 1e-5,
        "self-consistency audit failed: {:.3e}",
        result.self_consistency
    );
}
