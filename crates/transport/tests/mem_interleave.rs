//! Interleaving robustness: randomized thread schedules over the
//! in-memory channel backend still converge and conserve mass.
//!
//! The simulator only ever exercises one interleaving per seed; real
//! threads give a different (OS-chosen, unrepeatable) interleaving every
//! run. The protocol's correctness argument does not depend on the
//! schedule — PCF converges to the exact average on any connected
//! lossless execution — and this property test hammers exactly that, on
//! three topologies with randomized seeds and inputs.

use gr_reduction::{AggregateKind, InitialData, PushCancelFlow};
use gr_topology::{hypercube, ring, torus2d, Graph};
use gr_transport::{mem_cluster, run_cluster, ClusterOptions};
use proptest::prelude::*;
use std::time::Duration;

fn topology(pick: usize) -> Graph {
    match pick {
        0 => ring(12),
        1 => hypercube(3),
        _ => torus2d(3, 4),
    }
}

fn check(pick: usize, seed: u64, offset: f64) -> Result<(), TestCaseError> {
    let graph = topology(pick);
    let n = graph.len();
    let values: Vec<f64> = (0..n).map(|i| 2.5 * i as f64 + offset).collect();
    let total: f64 = values.iter().sum();
    let reference = total / n as f64;
    let data = InitialData::with_kind(values, AggregateKind::Average);
    let endpoints = mem_cluster(n, 64 * n).unwrap();
    let opts = ClusterOptions {
        seed,
        target: 1e-9,
        max_rounds: 5_000,
        wall_limit: Duration::from_secs(10),
        ..ClusterOptions::default()
    };
    let result = run_cluster(
        &graph,
        endpoints,
        |_| PushCancelFlow::new(&graph, &data),
        &[reference],
        &opts,
    )
    .unwrap();

    prop_assert!(
        result.converged,
        "topology {pick} seed {seed}: max rel error {:.3e}",
        result.max_rel_error
    );
    prop_assert_eq!(result.dropped_total, 0, "inbox overflow in a sized run");
    // Mass conservation across the per-node protocol instances after the
    // settle drain — the global invariant no interleaving may violate.
    prop_assert!(
        (result.mass_value[0] - total).abs() <= 1e-9 * total.abs().max(1.0),
        "mass {} drifted from {}",
        result.mass_value[0],
        total
    );
    prop_assert!((result.mass_weight - n as f64).abs() <= 1e-9);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn interleavings_converge_and_conserve_mass(
        pick in 0usize..3,
        seed in 0u64..1_000_000,
        offset in -100.0f64..100.0,
    ) {
        check(pick, seed, offset)?;
    }
}

/// Deterministic pin: one case per topology (the proptest draws are
/// random; this guarantees all three shapes run in every CI pass).
#[test]
fn every_topology_once() {
    for pick in 0..3 {
        check(pick, 42, -7.5).unwrap();
    }
}
