//! Chaos transport layer: seeded fault injection over any real backend.
//!
//! The simulator injects faults from inside its round loop; a real
//! deployment has no such loop, so faults must be injected at the
//! *delivery seam* instead. [`ChaosDelivery`] wraps any
//! [`Delivery`](gr_netsim::Delivery) backend — in-memory channels, UDP
//! sockets — and applies the netsim fault taxonomy to outgoing traffic:
//! i.i.d. drops, correlated (Gilbert–Elliott) burst loss, payload bit
//! flips, duplication, delay/reorder holdback, and scripted bidirectional
//! network partitions with heal.
//!
//! **Determinism.** All decisions for one node's endpoint come from a
//! dedicated RNG stream derived from `(plan seed, node id)` and an
//! operation clock that ticks once per chaos-layer operation. Given the
//! same sequence of sends, an endpoint makes the same decisions — thread
//! scheduling moves *when* a decision happens, never *what* is decided.
//! The injected-fault process is therefore reproducible given the seed
//! even though the interleaving underneath is real.
//!
//! **Egress-side injection.** Every fault fires on the sender's side of
//! the wire, before the inner backend sees the frame. That keeps the
//! wrapper backend-agnostic (no decoding on the receive path) and mirrors
//! where netsim's transit pipeline sits — between `on_send` and the
//! delivery substrate.

use crate::WireStats;
use gr_netsim::{stream_rng, Corrupt, Delivery, RngStream};
use gr_topology::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Stream tag for per-node chaos RNGs ("CHAO" — distinct from the driver
/// and simulator streams, so chaos decisions never correlate with partner
/// picks drawn from the same master seed).
const CHAOS_STREAM: u64 = 0x4348_414F;

/// A scripted bidirectional partition: while the chaos clock of a node is
/// inside `[from_op, until_op)`, every frame crossing the boundary of
/// `members` (in either direction) is dropped at egress.
///
/// Cutting a group and cutting its complement sever the same edges — a
/// frame is cut exactly when *one* endpoint is inside the group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosCut {
    /// One side of the partition.
    pub members: Vec<NodeId>,
    /// First chaos-clock operation at which the cut is active.
    pub from_op: u64,
    /// First operation at which the cut has healed (exclusive bound).
    pub until_op: u64,
}

impl ChaosCut {
    /// `true` if a frame `src → dst` crosses this cut at clock `op`.
    fn severs(&self, src: NodeId, dst: NodeId, op: u64) -> bool {
        if op < self.from_op || op >= self.until_op {
            return false;
        }
        self.members.contains(&src) != self.members.contains(&dst)
    }
}

/// A seeded description of everything the chaos layer may do. All
/// probabilities are per frame in `[0, 1]`; a plan with every rate at
/// zero and no cuts is a verified byte-exact passthrough.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Master seed; each wrapped endpoint derives its own stream from it.
    pub seed: u64,
    /// I.i.d. drop probability per frame.
    pub drop: f64,
    /// Gilbert–Elliott good→bad transition probability (per frame).
    pub burst_enter: f64,
    /// Gilbert–Elliott bad→good transition probability (per frame); the
    /// mean burst length is `1 / burst_exit`.
    pub burst_exit: f64,
    /// Drop probability per frame while the chain is in the bad state.
    pub burst_loss: f64,
    /// Probability a surviving frame is sent twice.
    pub duplicate: f64,
    /// Probability a surviving frame has one uniformly chosen payload bit
    /// flipped before encoding.
    pub corrupt: f64,
    /// Probability a surviving frame is held back instead of sent now.
    pub delay: f64,
    /// How many chaos-clock operations a held frame waits before it is
    /// flushed (later sends overtake it: reordering).
    pub delay_ops: u64,
    /// Scripted partitions, in any order.
    pub cuts: Vec<ChaosCut>,
}

impl ChaosPlan {
    /// The do-nothing plan: all rates zero, no cuts. Wrapping a backend
    /// with it is a byte-exact passthrough (pinned by test).
    pub fn none(seed: u64) -> Self {
        ChaosPlan {
            seed,
            drop: 0.0,
            burst_enter: 0.0,
            burst_exit: 0.0,
            burst_loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_ops: 0,
            cuts: Vec::new(),
        }
    }

    /// `true` if this plan can never alter traffic.
    pub fn is_passthrough(&self) -> bool {
        self.drop == 0.0
            && (self.burst_enter == 0.0 || self.burst_loss == 0.0)
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.cuts.is_empty()
    }

    /// Every rate that is a probability, with its name (for validation).
    fn rates(&self) -> [(&'static str, f64); 7] {
        [
            ("drop", self.drop),
            ("burst_enter", self.burst_enter),
            ("burst_exit", self.burst_exit),
            ("burst_loss", self.burst_loss),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("delay", self.delay),
        ]
    }

    /// Panics if any probability is outside `[0, 1]` or a cut's window is
    /// empty or inverted.
    fn assert_valid(&self) {
        for (name, p) in self.rates() {
            assert!(
                (0.0..=1.0).contains(&p),
                "chaos {name} probability {p} outside [0,1]"
            );
        }
        for c in &self.cuts {
            assert!(
                c.from_op < c.until_op,
                "chaos cut window [{}, {}) is empty",
                c.from_op,
                c.until_op
            );
        }
    }
}

/// Counters the chaos layer keeps, alongside an order-insensitive digest
/// of its decisions (FNV over `(action, clock)` pairs) for reproducibility
/// assertions in tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames deliberately dropped (i.i.d. + burst + cut).
    pub drops: u64,
    /// Extra copies injected by duplication.
    pub duplicates: u64,
    /// Frames with a payload bit flipped.
    pub corrupted: u64,
    /// Frames held back for later flush.
    pub delayed: u64,
    /// FNV-1a fold of every decision this endpoint made.
    pub decision_digest: u64,
}

impl ChaosStats {
    fn note(&mut self, action: u64, op: u64) {
        let mut h = if self.decision_digest == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.decision_digest
        };
        for word in [action, op] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        self.decision_digest = h;
    }
}

/// Decision codes folded into [`ChaosStats::decision_digest`].
const ACT_CUT: u64 = 1;
const ACT_BURST: u64 = 2;
const ACT_DROP: u64 = 3;
const ACT_CORRUPT: u64 = 4;
const ACT_DELAY: u64 = 5;
const ACT_DUP: u64 = 6;

/// A [`Delivery`] middleware injecting seeded faults at egress.
///
/// Wrap each node's endpoint before handing the cluster to
/// [`run_cluster`](crate::run_cluster):
///
/// ```ignore
/// let endpoints = mem_cluster(n, cap)?
///     .into_iter()
///     .map(|ep| ChaosDelivery::new(ep, ep_node, &plan))
///     .collect();
/// ```
pub struct ChaosDelivery<D, M> {
    inner: D,
    node: NodeId,
    plan: ChaosPlan,
    rng: StdRng,
    /// Chaos clock: ticks once per `send`/`try_recv` call. Partition
    /// windows and delay due-times are measured on it.
    op: u64,
    /// Gilbert–Elliott chain state (`true` = bad).
    burst_bad: bool,
    /// Held-back frames: `(due op, dst, msg)` in hold order.
    held: Vec<(u64, NodeId, M)>,
    stats: ChaosStats,
}

impl<D, M> ChaosDelivery<D, M> {
    /// Wrap `inner` (node `node`'s endpoint) under `plan`.
    ///
    /// # Panics
    /// Panics if a plan probability is outside `[0, 1]` or a cut window
    /// is empty.
    pub fn new(inner: D, node: NodeId, plan: &ChaosPlan) -> Self {
        plan.assert_valid();
        ChaosDelivery {
            inner,
            node,
            plan: plan.clone(),
            rng: stream_rng(
                plan.seed,
                RngStream::Aux(CHAOS_STREAM ^ (u64::from(node) << 32)),
            ),
            op: 0,
            burst_bad: false,
            held: Vec::new(),
            stats: ChaosStats::default(),
        }
    }

    /// Chaos counters so far.
    pub fn chaos_stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Frames currently held back by the delay stage.
    pub fn held(&self) -> usize {
        self.held.len()
    }
}

impl<D, M> ChaosDelivery<D, M>
where
    M: Clone + Corrupt,
    D: Delivery<M>,
{
    /// Ship every held frame whose due op has passed (in hold order —
    /// only frames sent *after* the hold overtake it).
    fn flush_due(&mut self) -> Result<(), D::Error> {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= self.op {
                let (_, dst, msg) = self.held.remove(i);
                self.inner.send(self.node, dst, msg)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

impl<D, M> Delivery<M> for ChaosDelivery<D, M>
where
    M: Clone + Corrupt,
    D: Delivery<M>,
{
    type Error = D::Error;

    fn send(&mut self, src: NodeId, dst: NodeId, mut msg: M) -> Result<(), Self::Error> {
        self.op += 1;
        self.flush_due()?;
        let op = self.op;
        // Scripted partition: an active cut severs the frame outright —
        // no RNG draw, so cuts never shift the probabilistic decision
        // sequence.
        if self.plan.cuts.iter().any(|c| c.severs(src, dst, op)) {
            self.stats.drops += 1;
            self.stats.note(ACT_CUT, op);
            return Ok(());
        }
        // Correlated-burst chain: advance once per frame, then flip the
        // loss coin only while bad — same draw discipline as netsim.
        if self.plan.burst_enter > 0.0 {
            let u = self.rng.random::<f64>();
            self.burst_bad = if self.burst_bad {
                u >= self.plan.burst_exit
            } else {
                u < self.plan.burst_enter
            };
            if self.burst_bad && self.rng.random::<f64>() < self.plan.burst_loss {
                self.stats.drops += 1;
                self.stats.note(ACT_BURST, op);
                return Ok(());
            }
        }
        if self.plan.drop > 0.0 && self.rng.random::<f64>() < self.plan.drop {
            self.stats.drops += 1;
            self.stats.note(ACT_DROP, op);
            return Ok(());
        }
        if self.plan.corrupt > 0.0 && self.rng.random::<f64>() < self.plan.corrupt {
            let bits = msg.corruptible_bits();
            if bits > 0 {
                msg.flip_bit(self.rng.random_range(0..bits));
                self.stats.corrupted += 1;
                self.stats.note(ACT_CORRUPT, op);
            }
        }
        if self.plan.delay > 0.0 && self.rng.random::<f64>() < self.plan.delay {
            self.stats.delayed += 1;
            self.stats.note(ACT_DELAY, op);
            self.held.push((op + self.plan.delay_ops, dst, msg));
            return Ok(());
        }
        if self.plan.duplicate > 0.0 && self.rng.random::<f64>() < self.plan.duplicate {
            self.stats.duplicates += 1;
            self.stats.note(ACT_DUP, op);
            self.inner.send(src, dst, msg.clone())?;
        }
        self.inner.send(src, dst, msg)
    }

    fn try_recv(&mut self, node: NodeId) -> Result<Option<(NodeId, M)>, Self::Error> {
        // The clock ticks on receive polls too, so held frames drain even
        // after a node stops sending (the settle phase only pumps) —
        // nothing can be stranded in the delay stage at audit time.
        self.op += 1;
        self.flush_due()?;
        self.inner.try_recv(node)
    }
}

impl<D, M> crate::WireInstrumented for ChaosDelivery<D, M>
where
    D: crate::WireInstrumented,
{
    fn wire_stats(&self) -> WireStats {
        let mut w = self.inner.wire_stats();
        w.chaos_drops = self.stats.drops;
        w.chaos_dups = self.stats.duplicates;
        w.chaos_corrupt = self.stats.corrupted;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::mem_cluster;
    use gr_reduction::Mass;

    fn full_chaos(seed: u64) -> ChaosPlan {
        ChaosPlan {
            drop: 0.2,
            burst_enter: 0.2,
            burst_exit: 0.3,
            burst_loss: 0.9,
            duplicate: 0.1,
            corrupt: 0.1,
            delay: 0.2,
            delay_ops: 3,
            cuts: vec![ChaosCut {
                members: vec![0],
                from_op: 10,
                until_op: 20,
            }],
            ..ChaosPlan::none(seed)
        }
    }

    /// The same send script must produce the same decisions regardless of
    /// when the calls happen — the digest depends only on (seed, node,
    /// sequence).
    #[test]
    fn decisions_are_reproducible_given_seed() {
        let run = || {
            let eps = mem_cluster::<Mass<f64>>(2, 1024).unwrap();
            let mut it = eps.into_iter();
            let mut a = ChaosDelivery::new(it.next().unwrap(), 0, &full_chaos(9));
            let mut b = it.next().unwrap();
            for i in 0..200 {
                a.send(0, 1, Mass::new(i as f64, 1.0)).unwrap();
            }
            let mut got = 0;
            while b.try_recv(1).unwrap().is_some() {
                got += 1;
            }
            (a.chaos_stats(), got)
        };
        let (s1, got1) = run();
        let (s2, got2) = run();
        assert_eq!(s1, s2);
        assert_eq!(got1, got2);
        assert!(s1.drops > 0, "full-chaos plan never dropped");
        assert_ne!(s1.decision_digest, 0);
        // A different seed decides differently.
        let eps = mem_cluster::<Mass<f64>>(2, 1024).unwrap();
        let mut a = ChaosDelivery::new(eps.into_iter().next().unwrap(), 0, &full_chaos(10));
        for i in 0..200 {
            a.send(0, 1, Mass::new(i as f64, 1.0)).unwrap();
        }
        assert_ne!(a.chaos_stats().decision_digest, s1.decision_digest);
    }

    #[test]
    fn cut_severs_both_directions_and_heals() {
        let plan = ChaosPlan {
            cuts: vec![ChaosCut {
                members: vec![0],
                from_op: 1,
                until_op: 4,
            }],
            ..ChaosPlan::none(0)
        };
        let eps = mem_cluster::<Mass<f64>>(3, 64).unwrap();
        let mut it = eps.into_iter();
        let mut a = ChaosDelivery::new(it.next().unwrap(), 0, &plan);
        let mut b = ChaosDelivery::new(it.next().unwrap(), 1, &plan);
        let mut c = it.next().unwrap();
        // Ops 1..4 are inside the cut window for both wrapped endpoints.
        a.send(0, 1, Mass::new(1.0, 1.0)).unwrap(); // op 1: cut (crosses)
        b.send(1, 0, Mass::new(2.0, 1.0)).unwrap(); // op 1: cut (crosses)
        b.send(1, 2, Mass::new(3.0, 1.0)).unwrap(); // op 2: intra-side, passes
        a.send(0, 1, Mass::new(4.0, 1.0)).unwrap(); // op 2: cut
        a.send(0, 1, Mass::new(5.0, 1.0)).unwrap(); // op 3: cut
        a.send(0, 1, Mass::new(6.0, 1.0)).unwrap(); // op 4: healed, passes
        assert_eq!(a.chaos_stats().drops, 3);
        assert_eq!(b.chaos_stats().drops, 1);
        assert_eq!(b.try_recv(1).unwrap().unwrap().1, Mass::new(6.0, 1.0));
        assert!(b.try_recv(1).unwrap().is_none());
        assert_eq!(c.try_recv(2).unwrap().unwrap().1, Mass::new(3.0, 1.0));
    }

    #[test]
    fn delay_holds_then_flushes_in_reorder() {
        let plan = ChaosPlan {
            delay: 1.0,
            delay_ops: 2,
            ..ChaosPlan::none(3)
        };
        let eps = mem_cluster::<Mass<f64>>(2, 64).unwrap();
        let mut it = eps.into_iter();
        let mut a = ChaosDelivery::new(it.next().unwrap(), 0, &plan);
        let mut b = it.next().unwrap();
        a.send(0, 1, Mass::new(1.0, 1.0)).unwrap(); // held until op 3
        assert_eq!(a.held(), 1);
        assert!(b.try_recv(1).unwrap().is_none());
        a.send(0, 1, Mass::new(2.0, 1.0)).unwrap(); // op 2: held until op 4
        a.send(0, 1, Mass::new(3.0, 1.0)).unwrap(); // op 3: flushes #1, holds #3
        let (_, first) = b.try_recv(1).unwrap().unwrap();
        assert_eq!(first, Mass::new(1.0, 1.0));
        // Receive polls tick the clock, so the rest drains without sends.
        for _ in 0..4 {
            let _ = a.try_recv(0).unwrap();
        }
        assert_eq!(a.held(), 0);
        assert_eq!(b.try_recv(1).unwrap().unwrap().1, Mass::new(2.0, 1.0));
        assert_eq!(b.try_recv(1).unwrap().unwrap().1, Mass::new(3.0, 1.0));
        assert_eq!(a.chaos_stats().delayed, 3);
    }

    #[test]
    fn duplicate_and_corrupt_fire() {
        let plan = ChaosPlan {
            duplicate: 1.0,
            ..ChaosPlan::none(5)
        };
        let eps = mem_cluster::<Mass<f64>>(2, 64).unwrap();
        let mut it = eps.into_iter();
        let mut a = ChaosDelivery::new(it.next().unwrap(), 0, &plan);
        let mut b = it.next().unwrap();
        a.send(0, 1, Mass::new(7.0, 1.0)).unwrap();
        assert_eq!(a.chaos_stats().duplicates, 1);
        assert_eq!(b.try_recv(1).unwrap().unwrap().1, Mass::new(7.0, 1.0));
        assert_eq!(b.try_recv(1).unwrap().unwrap().1, Mass::new(7.0, 1.0));
        assert!(b.try_recv(1).unwrap().is_none());

        let plan = ChaosPlan {
            corrupt: 1.0,
            ..ChaosPlan::none(5)
        };
        let eps = mem_cluster::<Mass<f64>>(2, 64).unwrap();
        let mut it = eps.into_iter();
        let mut a = ChaosDelivery::new(it.next().unwrap(), 0, &plan);
        let mut b = it.next().unwrap();
        a.send(0, 1, Mass::new(7.0, 1.0)).unwrap();
        assert_eq!(a.chaos_stats().corrupted, 1);
        let (_, got) = b.try_recv(1).unwrap().unwrap();
        assert_ne!(got, Mass::new(7.0, 1.0), "one bit must have flipped");
    }

    #[test]
    fn wire_stats_carry_chaos_counters() {
        let plan = ChaosPlan {
            drop: 1.0,
            ..ChaosPlan::none(1)
        };
        let eps = mem_cluster::<Mass<f64>>(2, 64).unwrap();
        let mut a = ChaosDelivery::new(eps.into_iter().next().unwrap(), 0, &plan);
        a.send(0, 1, Mass::new(1.0, 1.0)).unwrap();
        let w = crate::WireInstrumented::wire_stats(&a);
        assert_eq!(w.chaos_drops, 1);
        assert_eq!(w.sent, 0, "dropped frames never reach the inner wire");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_probability_rejected() {
        let plan = ChaosPlan {
            drop: 1.5,
            ..ChaosPlan::none(0)
        };
        let eps = mem_cluster::<Mass<f64>>(2, 64).unwrap();
        let _: ChaosDelivery<_, Mass<f64>> =
            ChaosDelivery::new(eps.into_iter().next().unwrap(), 0, &plan);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_cut_window_rejected() {
        let plan = ChaosPlan {
            cuts: vec![ChaosCut {
                members: vec![0],
                from_op: 5,
                until_op: 5,
            }],
            ..ChaosPlan::none(0)
        };
        let eps = mem_cluster::<Mass<f64>>(2, 64).unwrap();
        let _: ChaosDelivery<_, Mass<f64>> =
            ChaosDelivery::new(eps.into_iter().next().unwrap(), 0, &plan);
    }
}
