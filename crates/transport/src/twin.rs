//! Twin-equivalence harness: the deterministic simulator and a real
//! transport must agree.
//!
//! The claim the transport layer stands on is that netsim is a faithful
//! *deterministic twin* of the real runtime: same `Protocol` code, same
//! wire messages, only the delivery layer swapped. This module turns the
//! claim into a checkable property — run the same lossless PCF reduction
//! (same topology, same initial data) once under the simulator and once
//! over threaded in-memory channels, and require both to land within the
//! convergence tolerance of the true aggregate (and therefore of each
//! other).
//!
//! The two runs are *not* expected to be bitwise identical: thread
//! interleaving replaces the simulator's round schedule, so the execution
//! paths differ by design. What must coincide is the fixed point — PCF
//! converges to the exact average on any connected lossless execution,
//! and the wire bytes of any single exchange are pinned byte-for-byte by
//! the codec goldens in `gr-reduction::wire`.

use crate::cluster::{run_cluster, ClusterOptions, ClusterResult};
use crate::error::TransportError;
use crate::mem::mem_cluster;
use gr_netsim::{FaultPlan, Simulator};
use gr_reduction::{AggregateKind, InitialData, PushCancelFlow, ReductionProtocol};
use gr_topology::Graph;

/// Outcome of one twin-equivalence run.
#[derive(Clone, Debug)]
pub struct TwinReport {
    /// True aggregate both runs must reach.
    pub reference: f64,
    /// Tolerance applied (relative error).
    pub tolerance: f64,
    /// Final per-node estimates of the netsim run.
    pub netsim_estimates: Vec<f64>,
    /// Final per-node estimates of the in-memory transport run.
    pub mem_estimates: Vec<f64>,
    /// Worst netsim relative error vs the reference.
    pub netsim_error: f64,
    /// Worst transport relative error vs the reference.
    pub mem_error: f64,
    /// Largest absolute disagreement between the two runs, per node.
    pub divergence: f64,
    /// Full transport-side result (rounds, bytes, mass audit).
    pub mem_result: ClusterResult,
}

impl TwinReport {
    /// Both runs within tolerance of the reference (hence of each other).
    pub fn equivalent(&self) -> bool {
        self.netsim_error <= self.tolerance && self.mem_error <= self.tolerance
    }
}

/// Run the lossless PCF average over `graph` twice — deterministic
/// simulator vs threaded in-memory transport — and report how closely the
/// twins agree. `values[i]` is node `i`'s input; `eps` is the relative
/// convergence tolerance both runs must reach within their round budgets.
pub fn twin_equivalence(
    graph: &Graph,
    values: &[f64],
    seed: u64,
    eps: f64,
    max_rounds: u64,
) -> Result<TwinReport, TransportError> {
    let n = graph.len();
    assert_eq!(values.len(), n, "one initial value per node");
    let reference = values.iter().sum::<f64>() / n as f64;
    let data = InitialData::with_kind(values.to_vec(), AggregateKind::Average);

    // Netsim leg: step in small chunks until every node is within eps.
    let mut sim = Simulator::new(
        graph,
        PushCancelFlow::new(graph, &data),
        FaultPlan::none(),
        seed,
    );
    let scale = reference.abs().max(1e-300);
    let mut netsim_error = f64::INFINITY;
    while sim.round() < max_rounds && netsim_error > eps {
        sim.run(10);
        netsim_error = (0..n as u32)
            .map(|i| (sim.protocol().scalar_estimate(i) - reference).abs() / scale)
            .fold(0.0, f64::max);
    }
    let netsim_estimates = sim.protocol().scalar_estimates();

    // Transport leg: same protocol type over threads + channels. The
    // inbox capacity is sized so a lossless run never drops.
    let endpoints = mem_cluster(n, 64 * n.max(16))?;
    let opts = ClusterOptions {
        seed,
        target: eps,
        max_rounds,
        ..ClusterOptions::default()
    };
    let mem_result = run_cluster(
        graph,
        endpoints,
        |_| PushCancelFlow::new(graph, &data),
        &[reference],
        &opts,
    )?;
    let mem_estimates: Vec<f64> = mem_result.nodes.iter().map(|r| r.estimate[0]).collect();
    let mem_error = mem_result.max_rel_error;

    let divergence = netsim_estimates
        .iter()
        .zip(&mem_estimates)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    Ok(TwinReport {
        reference,
        tolerance: eps,
        netsim_estimates,
        mem_estimates,
        netsim_error,
        mem_error,
        divergence,
        mem_result,
    })
}
