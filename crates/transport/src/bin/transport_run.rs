//! `transport-run`: execute a PCF average over a real transport backend.
//!
//! ```text
//! transport-run [--backend mem|udp] [--hc 6] [--dim 1] [--seed 42]
//!               [--target 1e-9] [--max-rounds 10000] [--capacity 4096]
//!               [--wall-limit-ms 30000] [--json]
//! ```
//!
//! Builds a `2^hc`-node hypercube, gives node `i` the initial value `i`
//! (replicated across `dim` components for vector payloads), runs
//! Push-Cancel-Flow to the target relative accuracy over the chosen
//! backend, and reports wall-clock convergence time, per-node rounds and
//! bytes-on-wire. `--json` emits the machine-readable report used for the
//! committed `TRANSPORT_BASELINE.json` example artifact.

use gr_experiments::Opts;
use gr_reduction::{AggregateKind, InitialData, Payload, PcfMsg, PushCancelFlow, WireMsg};
use gr_topology::{hypercube, Graph};
use gr_transport::{
    mem_cluster, run_cluster, udp_cluster, validate_datagram, ClusterOptions, ClusterResult,
    TransportError,
};
use std::time::Duration;

#[derive(serde::Serialize)]
struct Report {
    backend: String,
    nodes: usize,
    dim: usize,
    seed: u64,
    target: f64,
    frame_bytes: usize,
    converged: bool,
    wall_ms: f64,
    rounds_min: u64,
    rounds_mean: f64,
    rounds_max: u64,
    bytes_sent_total: u64,
    bytes_sent_per_node_mean: f64,
    dropped_total: u64,
    max_rel_error: f64,
    mass_weight: f64,
}

fn run_payload<P: Payload + Sync>(
    backend: &str,
    graph: &Graph,
    dim: usize,
    opts: &ClusterOptions,
    capacity: usize,
) -> Result<(ClusterResult, usize), TransportError> {
    let n = graph.len();
    let values: Vec<P> = (0..n)
        .map(|i| P::from_components(&vec![i as f64; dim]))
        .collect();
    let reference = vec![(n - 1) as f64 / 2.0; dim];
    let data = InitialData::with_kind(values, AggregateKind::Average);
    // A zero PCF message of this dimension has the steady-state frame
    // size (PCF frames are dimension-determined, not value-determined).
    let sample: PcfMsg<P> = PcfMsg {
        f1: gr_reduction::Mass::zero(dim),
        f2: gr_reduction::Mass::zero(dim),
        c: 1,
        r: 0,
        folded: gr_reduction::Mass::zero(dim),
        base: gr_reduction::Mass::zero(dim),
        inc: 0,
    };
    let frame_bytes = {
        let mut buf = Vec::new();
        sample.encode_frame(&mut buf);
        buf.len()
    };
    let make = |node| {
        let _ = node;
        PushCancelFlow::new(graph, &data)
    };
    let result = match backend {
        "mem" => run_cluster(graph, mem_cluster(n, capacity)?, make, &reference, opts)?,
        "udp" => {
            validate_datagram(&sample)?;
            run_cluster(graph, udp_cluster(n)?, make, &reference, opts)?
        }
        other => {
            eprintln!("unknown --backend {other:?} (expected mem or udp)");
            std::process::exit(2);
        }
    };
    Ok((result, frame_bytes))
}

fn main() {
    let o = Opts::from_env();
    let backend = o.string("backend", "mem");
    let hc = o.u64("hc", 6) as u32;
    let dim = o.u64("dim", 1) as usize;
    let seed = o.u64("seed", 42);
    let target = o.f64("target", 1e-9);
    let max_rounds = o.u64("max-rounds", 10_000);
    let capacity = o.u64("capacity", 4096) as usize;
    let wall_limit_ms = o.u64("wall-limit-ms", 30_000);
    let json = o.bool("json", false);
    o.finish();

    let graph = hypercube(hc);
    let n = graph.len();
    let opts = ClusterOptions {
        seed,
        target,
        max_rounds,
        wall_limit: Duration::from_millis(wall_limit_ms),
    };
    let outcome = if dim == 1 {
        run_payload::<f64>(&backend, &graph, dim, &opts, capacity)
    } else {
        run_payload::<gr_reduction::InlineVec>(&backend, &graph, dim, &opts, capacity)
    };
    let (result, frame_bytes) = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport-run failed: {e}");
            std::process::exit(1);
        }
    };

    let report = Report {
        backend: backend.clone(),
        nodes: n,
        dim,
        seed,
        target,
        frame_bytes,
        converged: result.converged,
        wall_ms: result.wall_ms,
        rounds_min: result.rounds_min,
        rounds_mean: result.rounds_mean,
        rounds_max: result.rounds_max,
        bytes_sent_total: result.bytes_sent_total,
        bytes_sent_per_node_mean: result.bytes_sent_total as f64 / n as f64,
        dropped_total: result.dropped_total,
        max_rel_error: result.max_rel_error,
        mass_weight: result.mass_weight,
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::to_value(&report).unwrap()).unwrap()
        );
    } else {
        println!(
            "transport-run: backend={} nodes={} dim={} seed={} frame={}B",
            report.backend, report.nodes, report.dim, report.seed, report.frame_bytes
        );
        println!(
            "{} in {:.2} ms wall (max rel error {:.3e}, target {:.0e})",
            if report.converged {
                "converged"
            } else {
                "did NOT converge"
            },
            report.wall_ms,
            report.max_rel_error,
            report.target
        );
        println!(
            "rounds per node: min {} / mean {:.1} / max {}",
            report.rounds_min, report.rounds_mean, report.rounds_max
        );
        println!(
            "bytes-on-wire: {} total, {:.0} per node mean, {} sends dropped",
            report.bytes_sent_total, report.bytes_sent_per_node_mean, report.dropped_total
        );
    }
    if !report.converged {
        std::process::exit(1);
    }
}
