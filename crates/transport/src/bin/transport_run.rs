//! `transport-run`: execute a PCF average over a real transport backend.
//!
//! ```text
//! transport-run [--backend mem|udp] [--hc 6] [--dim 1] [--seed 42]
//!               [--target 1e-9] [--max-rounds 10000] [--capacity 4096]
//!               [--wall-limit-ms 30000] [--json]
//!               [--chaos] [--chaos-drop P] [--chaos-burst-enter P]
//!               [--chaos-burst-exit P] [--chaos-burst-loss P]
//!               [--chaos-dup P] [--chaos-corrupt P] [--chaos-delay P]
//!               [--chaos-delay-ops K] [--cut-from OP --cut-until OP]
//!               [--churn K] [--churn-at R] [--churn-down-ms MS]
//!               [--detector-window W]
//! ```
//!
//! Builds a `2^hc`-node hypercube, gives node `i` the initial value `i`
//! (replicated across `dim` components for vector payloads), runs
//! Push-Cancel-Flow to the target relative accuracy over the chosen
//! backend, and reports wall-clock convergence time, per-node rounds and
//! bytes-on-wire. `--json` emits the machine-readable report used for the
//! committed `TRANSPORT_BASELINE.json` example artifact.
//!
//! `--chaos` wraps every endpoint in a seeded [`ChaosDelivery`] (default
//! rates give a survivable beating; override any rate individually — the
//! individual flags also work without `--chaos`). `--cut-from/--cut-until`
//! scripts a partition of the low half of the nodes over that chaos-clock
//! window. `--churn K` kills nodes `1..=K` mid-run and restarts them with
//! purged state after `--churn-down-ms`; recovery is driven by the driver
//! timeout detectors (`--detector-window`) plus PCF's incarnation fences,
//! and convergence is judged by estimate spread + the self-consistency
//! audit, since killed mass makes the prior reference void.

use gr_experiments::Opts;
use gr_netsim::Delivery;
use gr_reduction::{AggregateKind, InitialData, Payload, PcfMsg, PushCancelFlow, WireMsg};
use gr_topology::{hypercube, Graph, NodeId};
use gr_transport::{
    mem_cluster, run_cluster, udp_cluster, validate_datagram, ChaosCut, ChaosDelivery, ChaosPlan,
    ClusterOptions, ClusterResult, TransportError, WireInstrumented,
};
use std::time::Duration;

#[derive(serde::Serialize)]
struct Report {
    backend: String,
    nodes: usize,
    dim: usize,
    seed: u64,
    target: f64,
    frame_bytes: usize,
    converged: bool,
    wall_ms: f64,
    rounds_min: u64,
    rounds_mean: f64,
    rounds_max: u64,
    bytes_sent_total: u64,
    bytes_sent_per_node_mean: f64,
    dropped_total: u64,
    /// Frames the chaos layer deliberately dropped (0 when chaos off).
    drops: u64,
    /// Extra copies injected by chaos duplication (0 when chaos off).
    duplicates: u64,
    /// Frames the chaos layer bit-flipped (0 when chaos off).
    corrupted: u64,
    /// Churn kills performed (0 when churn off).
    churn_events: u64,
    /// Restarts completed before the cluster stopped (0 when churn off).
    recovered: u64,
    max_rel_error: f64,
    self_consistency: f64,
    mass_weight: f64,
    /// What the netsim twin's auto-partitioner would decide for this
    /// topology (count, source, and cost-model terms when measured).
    /// Transport clusters run one thread per node, so this is advisory:
    /// it documents the decision the deterministic twin gate replays.
    partitions: gr_netsim::PartitionPlan,
}

fn run_payload<P: Payload + Sync>(
    backend: &str,
    graph: &Graph,
    dim: usize,
    opts: &ClusterOptions,
    capacity: usize,
    chaos: Option<&ChaosPlan>,
) -> Result<(ClusterResult, usize), TransportError> {
    let n = graph.len();
    let values: Vec<P> = (0..n)
        .map(|i| P::from_components(&vec![i as f64; dim]))
        .collect();
    let reference = vec![(n - 1) as f64 / 2.0; dim];
    let data = InitialData::with_kind(values, AggregateKind::Average);
    // A zero PCF message of this dimension has the steady-state frame
    // size (PCF frames are dimension-determined, not value-determined).
    let sample: PcfMsg<P> = PcfMsg {
        f1: gr_reduction::Mass::zero(dim),
        f2: gr_reduction::Mass::zero(dim),
        c: 1,
        r: 0,
        folded: gr_reduction::Mass::zero(dim),
        base: gr_reduction::Mass::zero(dim),
        inc: 0,
    };
    let frame_bytes = {
        let mut buf = Vec::new();
        sample.encode_frame(&mut buf);
        buf.len()
    };
    let make = |node| {
        let _ = node;
        PushCancelFlow::new(graph, &data)
    };
    // Monomorphization-friendly dispatch: each backend runs either bare or
    // wrapped, so the chaos layer costs nothing when it is off.
    fn launch<Pr, D>(
        graph: &Graph,
        eps: Vec<D>,
        make: impl Fn(NodeId) -> Pr + Sync,
        reference: &[f64],
        opts: &ClusterOptions,
        chaos: Option<&ChaosPlan>,
    ) -> Result<ClusterResult, TransportError>
    where
        Pr: gr_reduction::ReductionProtocol + Send,
        Pr::Msg: Send,
        D: Delivery<Pr::Msg, Error = TransportError> + Send + WireInstrumented,
    {
        match chaos {
            Some(plan) => {
                let wrapped: Vec<_> = eps
                    .into_iter()
                    .enumerate()
                    .map(|(i, ep)| ChaosDelivery::new(ep, i as NodeId, plan))
                    .collect();
                run_cluster(graph, wrapped, make, reference, opts)
            }
            None => run_cluster(graph, eps, make, reference, opts),
        }
    }
    let result = match backend {
        "mem" => launch(
            graph,
            mem_cluster(n, capacity)?,
            make,
            &reference,
            opts,
            chaos,
        )?,
        "udp" => {
            validate_datagram(&sample)?;
            launch(graph, udp_cluster(n)?, make, &reference, opts, chaos)?
        }
        other => {
            eprintln!("unknown --backend {other:?} (expected mem or udp)");
            std::process::exit(2);
        }
    };
    Ok((result, frame_bytes))
}

fn main() {
    let o = Opts::from_env();
    let backend = o.string("backend", "mem");
    let hc = o.u64("hc", 6) as u32;
    let dim = o.u64("dim", 1) as usize;
    let seed = o.u64("seed", 42);
    let target = o.f64("target", 1e-9);
    let max_rounds = o.u64("max-rounds", 10_000);
    let capacity = o.u64("capacity", 4096) as usize;
    let wall_limit_ms = o.u64("wall-limit-ms", 30_000);
    let json = o.bool("json", false);
    // Chaos: `--chaos` turns on a default beating; individual rates can
    // be set with or without it (any nonzero rate/cut enables the layer).
    let chaos_on = o.bool("chaos", false);
    let drop = o.f64("chaos-drop", if chaos_on { 0.05 } else { 0.0 });
    let burst_enter = o.f64("chaos-burst-enter", if chaos_on { 0.02 } else { 0.0 });
    let burst_exit = o.f64("chaos-burst-exit", 0.25);
    let burst_loss = o.f64("chaos-burst-loss", 0.9);
    let duplicate = o.f64("chaos-dup", if chaos_on { 0.02 } else { 0.0 });
    let corrupt = o.f64("chaos-corrupt", 0.0);
    let delay = o.f64("chaos-delay", if chaos_on { 0.05 } else { 0.0 });
    let delay_ops = o.u64("chaos-delay-ops", 8);
    let cut_from = o.u64("cut-from", 0);
    let cut_until = o.u64("cut-until", 0);
    // Churn: kill nodes 1..=K (staggered), restart after the dark window.
    let churn = o.u64("churn", 0);
    let churn_at = o.u64("churn-at", 300);
    let churn_down_ms = o.u64("churn-down-ms", 300);
    let detector_window = o.u64("detector-window", if churn > 0 { 200 } else { 0 });
    o.finish();

    let graph = hypercube(hc);
    let n = graph.len();
    let mut plan = ChaosPlan {
        drop,
        burst_enter,
        burst_exit,
        burst_loss,
        duplicate,
        corrupt,
        delay,
        delay_ops,
        ..ChaosPlan::none(seed)
    };
    if cut_until > cut_from {
        // Partition the low half of the hypercube over the given window.
        plan.cuts.push(ChaosCut {
            members: (0..(n / 2) as NodeId).collect(),
            from_op: cut_from,
            until_op: cut_until,
        });
    }
    let plan = (!plan.is_passthrough()).then_some(plan);
    if churn as usize >= n {
        eprintln!(
            "--churn {churn} must leave node 0 and at least one victim in a {n}-node cluster"
        );
        std::process::exit(2);
    }
    let opts = ClusterOptions {
        seed,
        target,
        max_rounds,
        wall_limit: Duration::from_millis(wall_limit_ms),
        churn: (1..=churn as NodeId)
            .map(|i| gr_transport::ChurnEvent {
                node: i,
                at_round: churn_at + 25 * u64::from(i - 1),
                down_for: Duration::from_millis(churn_down_ms),
            })
            .collect(),
        detector_window: (detector_window > 0).then_some(detector_window),
    };
    let outcome = if dim == 1 {
        run_payload::<f64>(&backend, &graph, dim, &opts, capacity, plan.as_ref())
    } else {
        run_payload::<gr_reduction::InlineVec>(
            &backend,
            &graph,
            dim,
            &opts,
            capacity,
            plan.as_ref(),
        )
    };
    let (result, frame_bytes) = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport-run failed: {e}");
            std::process::exit(1);
        }
    };

    let report = Report {
        backend: backend.clone(),
        nodes: n,
        dim,
        seed,
        target,
        frame_bytes,
        converged: result.converged,
        wall_ms: result.wall_ms,
        rounds_min: result.rounds_min,
        rounds_mean: result.rounds_mean,
        rounds_max: result.rounds_max,
        bytes_sent_total: result.bytes_sent_total,
        bytes_sent_per_node_mean: result.bytes_sent_total as f64 / n as f64,
        dropped_total: result.dropped_total,
        drops: result.nodes.iter().map(|r| r.chaos_drops).sum(),
        duplicates: result.nodes.iter().map(|r| r.chaos_dups).sum(),
        corrupted: result.nodes.iter().map(|r| r.chaos_corrupt).sum(),
        churn_events: result.churn_events,
        recovered: result.recovered,
        max_rel_error: result.max_rel_error,
        self_consistency: result.self_consistency,
        mass_weight: result.mass_weight,
        partitions: gr_netsim::SimOptions::default().partition_plan(n, graph.arc_count()),
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::to_value(&report).unwrap()).unwrap()
        );
    } else {
        println!(
            "transport-run: backend={} nodes={} dim={} seed={} frame={}B",
            report.backend, report.nodes, report.dim, report.seed, report.frame_bytes
        );
        println!(
            "{} in {:.2} ms wall (max rel error {:.3e}, target {:.0e})",
            if report.converged {
                "converged"
            } else {
                "did NOT converge"
            },
            report.wall_ms,
            report.max_rel_error,
            report.target
        );
        println!(
            "rounds per node: min {} / mean {:.1} / max {}",
            report.rounds_min, report.rounds_mean, report.rounds_max
        );
        println!(
            "bytes-on-wire: {} total, {:.0} per node mean, {} sends dropped",
            report.bytes_sent_total, report.bytes_sent_per_node_mean, report.dropped_total
        );
        if report.drops + report.duplicates + report.corrupted + report.churn_events > 0 {
            println!(
                "chaos: {} dropped, {} duplicated, {} corrupted; churn: {} kills, {} recovered (self-consistency {:.3e})",
                report.drops,
                report.duplicates,
                report.corrupted,
                report.churn_events,
                report.recovered,
                report.self_consistency
            );
        }
    }
    if !report.converged {
        std::process::exit(1);
    }
}
