//! Typed transport errors, mirroring the simulator's
//! [`SimConfigError`](gr_netsim::SimConfigError) pattern: configuration
//! mistakes are caught before any thread or socket exists and reported as
//! values, not panics.

use gr_reduction::WireError;
use gr_topology::NodeId;

/// A transport configuration that cannot be brought up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportConfigError {
    /// A cluster needs at least one node.
    ZeroNodes,
    /// An OS socket could not be bound (ports exhausted, sockets
    /// unavailable in the sandbox, permissions).
    PortBind {
        /// The address we tried to bind.
        addr: String,
        /// The OS error text.
        detail: String,
    },
    /// A single framed message exceeds the datagram budget, so a UDP
    /// backend could never carry it (the payload dimension is too large).
    OversizeDatagram {
        /// Encoded frame size in bytes.
        bytes: usize,
        /// Largest frame the backend ships.
        max: usize,
    },
}

impl std::fmt::Display for TransportConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportConfigError::ZeroNodes => {
                write!(f, "transport cluster needs at least one node")
            }
            TransportConfigError::PortBind { addr, detail } => {
                write!(f, "could not bind UDP socket at {addr}: {detail}")
            }
            TransportConfigError::OversizeDatagram { bytes, max } => {
                write!(
                    f,
                    "framed message is {bytes} bytes, exceeding the {max}-byte datagram budget"
                )
            }
        }
    }
}

impl std::error::Error for TransportConfigError {}

/// A runtime failure inside a transport backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The backend was misconfigured (bring-up errors surfaced through a
    /// run entry point).
    Config(TransportConfigError),
    /// An OS-level I/O failure that is not plain backpressure (backends
    /// treat full buffers as message loss, which the protocols tolerate).
    Io(String),
    /// A received frame failed to decode (wrong version, kind, or length).
    Decode(WireError),
    /// A message was addressed to a node the backend does not know.
    UnknownPeer {
        /// The destination that has no endpoint.
        dst: NodeId,
    },
    /// A frame grew past the datagram budget at send time (the config
    /// check guards the steady state; this guards dynamic payloads).
    Oversize {
        /// Encoded frame size in bytes.
        bytes: usize,
        /// Largest frame the backend ships.
        max: usize,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Config(e) => write!(f, "configuration: {e}"),
            TransportError::Io(detail) => write!(f, "transport I/O error: {detail}"),
            TransportError::Decode(e) => write!(f, "undecodable frame: {e}"),
            TransportError::UnknownPeer { dst } => {
                write!(f, "message addressed to unknown node {dst}")
            }
            TransportError::Oversize { bytes, max } => {
                write!(
                    f,
                    "frame of {bytes} bytes exceeds {max}-byte datagram budget"
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportConfigError> for TransportError {
    fn from(e: TransportConfigError) -> Self {
        TransportError::Config(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TransportConfigError::ZeroNodes
            .to_string()
            .contains("one node"));
        let bind = TransportConfigError::PortBind {
            addr: "127.0.0.1:0".into(),
            detail: "permission denied".into(),
        };
        assert!(bind.to_string().contains("127.0.0.1:0"));
        assert!(bind.to_string().contains("permission denied"));
        let big = TransportConfigError::OversizeDatagram {
            bytes: 70_000,
            max: 60_000,
        };
        assert!(big.to_string().contains("70000"));
        let rt: TransportError = big.into();
        assert!(rt.to_string().starts_with("configuration:"));
        let dec: TransportError = WireError::Version { got: 9 }.into();
        assert!(dec.to_string().contains("version 9"));
    }
}
