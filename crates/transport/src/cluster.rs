//! Threaded cluster orchestration: one OS thread per node, each running a
//! [`NodeDriver`] against its own transport endpoint.
//!
//! The execution structure mirrors a real deployment: nodes step
//! independently (no global round barrier), a monitor watches published
//! per-node error levels and raises a stop flag at convergence, and a
//! settle phase drains in-flight messages before state is collected —
//! which is what makes the post-run mass-conservation check meaningful
//! (flow antisymmetry across node instances only holds once every sent
//! message was either delivered or counted as dropped).
//!
//! Everything protocol-side is the unmodified simulator code: the same
//! `Protocol` impl the deterministic twin runs, built per node and driven
//! only for that node's id.

use crate::error::TransportError;
use crate::mem::MemDelivery;
use crate::udp::UdpDelivery;
use crate::WireStats;
use gr_netsim::Delivery;
use gr_reduction::{DriverStats, NodeDriver, ReductionProtocol};
use gr_topology::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One scripted node-churn event: kill a live node thread mid-run (its
/// protocol state is discarded — fail-stop), keep it dark for a wall-clock
/// interval, then restart it with purged state (fresh protocol instance
/// from `make_proto`, fresh driver, re-armed detector). The transport
/// endpoint survives — the "machine" keeps its address; only the process
/// on it dies.
///
/// Recovery is genuinely distributed: nobody tells the peers. Their
/// timeout detectors must suspect the silent node (excising its edges and
/// bumping incarnations), and the restarted node resynchronises through
/// the incarnation numbers carried on the wire. For the mass audit to
/// come out clean, `down_for` must comfortably exceed the detector window
/// — a restart that beats the suspicion leaves peers holding flow toward
/// a node that no longer remembers it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The node to kill.
    pub node: NodeId,
    /// Kill when the node's own iteration count (cumulative across its
    /// incarnations) reaches this.
    pub at_round: u64,
    /// How long the node stays dark before restarting.
    pub down_for: Duration,
}

/// Knobs for a threaded cluster run.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Master seed for the per-node partner-pick RNGs.
    pub seed: u64,
    /// Convergence target: stop once every node's relative error against
    /// the reference aggregate is below this. With churn scheduled the
    /// reference is void (killed mass is gone), so the monitor instead
    /// requires the relative *spread* of node estimates below this after
    /// every churn event has completed.
    pub target: f64,
    /// Per-node iteration budget (a node that reaches it stops stepping
    /// and waits in the settle phase).
    pub max_rounds: u64,
    /// Hard wall-clock ceiling for the stepping phase.
    pub wall_limit: Duration,
    /// Scripted node kills/restarts, any order (empty: no churn).
    pub churn: Vec<ChurnEvent>,
    /// Arm each driver's timeout failure detector with this silence
    /// window (in own iterations). Required for churn runs to pass the
    /// mass audit; useful alone under chaos drops.
    pub detector_window: Option<u64>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            seed: 42,
            target: 1e-9,
            max_rounds: 10_000,
            wall_limit: Duration::from_secs(30),
            churn: Vec::new(),
            detector_window: None,
        }
    }
}

/// Per-node outcome of a cluster run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct NodeReport {
    /// Node id.
    pub node: NodeId,
    /// Iterations this node executed.
    pub rounds: u64,
    /// Messages this node pushed into the transport.
    pub sent: u64,
    /// Messages this node received and processed.
    pub delivered: u64,
    /// Bytes this node put on the wire.
    pub bytes_sent: u64,
    /// Bytes this node took off the wire.
    pub bytes_recv: u64,
    /// Sends lost to backpressure.
    pub dropped: u64,
    /// Frames the chaos layer deliberately dropped at this node's egress
    /// (zero on unwrapped backends).
    pub chaos_drops: u64,
    /// Extra copies the chaos layer injected at this node's egress.
    pub chaos_dups: u64,
    /// Frames the chaos layer bit-flipped at this node's egress.
    pub chaos_corrupt: u64,
    /// Neighbors this node's timeout detector suspected (all
    /// incarnations).
    pub suspected: u64,
    /// Suspected neighbors re-admitted after proving alive.
    pub rehabilitated: u64,
    /// Times this node was killed by churn.
    pub kills: u64,
    /// Times it restarted with purged state.
    pub restarts: u64,
    /// Mass (componentwise) held by incarnations at the moment they were
    /// killed — destroyed, informational for the audit.
    pub mass_lost: Vec<f64>,
    /// Final estimate, componentwise.
    pub estimate: Vec<f64>,
}

/// Aggregate outcome of a cluster run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ClusterResult {
    /// Whether every node reached the target accuracy.
    pub converged: bool,
    /// Wall-clock milliseconds from launch to convergence (or to the stop
    /// decision if the run did not converge).
    pub wall_ms: f64,
    /// Fewest iterations any node ran.
    pub rounds_min: u64,
    /// Mean iterations per node.
    pub rounds_mean: f64,
    /// Most iterations any node ran.
    pub rounds_max: u64,
    /// Total bytes put on the wire across nodes.
    pub bytes_sent_total: u64,
    /// Total sends lost to backpressure across nodes.
    pub dropped_total: u64,
    /// Worst final per-node relative error against the reference. Under
    /// churn the reference is void — read [`Self::self_consistency`]
    /// instead.
    pub max_rel_error: f64,
    /// Componentwise sum of all node masses after settling.
    pub mass_value: Vec<f64>,
    /// Sum of all node mass weights after settling.
    pub mass_weight: f64,
    /// Post-quiescence audit that survives churn: worst per-node relative
    /// deviation of the final estimate from `mass_value / mass_weight` —
    /// the aggregate the *surviving* mass actually defines. Small iff the
    /// cluster agrees on the value its own mass implies, whatever was
    /// destroyed along the way.
    pub self_consistency: f64,
    /// Churn kills performed.
    pub churn_events: u64,
    /// Restarts that completed before the cluster stopped (a node that
    /// was still dark at stop time restarts for the audit but does not
    /// count as recovered).
    pub recovered: u64,
    /// Per-node detail.
    pub nodes: Vec<NodeReport>,
}

struct NodeOutcome {
    stats: DriverStats,
    wire: WireStats,
    estimate: Vec<f64>,
    mass: Vec<f64>,
    weight: f64,
    kills: u64,
    restarts: u64,
    recovered: u64,
    mass_lost: Vec<f64>,
}

/// Sum of two driver counter sets (per-incarnation stats fold into one
/// per-node view).
fn absorb(acc: &mut DriverStats, d: DriverStats) {
    acc.rounds += d.rounds;
    acc.sent += d.sent;
    acc.delivered += d.delivered;
    acc.suspected += d.suspected;
    acc.rehabilitated += d.rehabilitated;
}

fn max_rel_error(estimate: &[f64], reference: &[f64]) -> f64 {
    estimate
        .iter()
        .zip(reference)
        .map(|(e, r)| {
            let scale = r.abs().max(1e-300);
            (e - r).abs() / scale
        })
        .fold(0.0, f64::max)
}

/// Run one reduction to convergence over real transport endpoints.
///
/// `endpoints[i]` is node `i`'s endpoint (as built by
/// [`mem_cluster`](crate::mem_cluster) / [`udp_cluster`](crate::udp_cluster));
/// `make_proto` builds node `i`'s protocol instance (each thread owns a
/// full instance, driven only for its node); `reference` is the true
/// aggregate the convergence monitor measures against.
pub fn run_cluster<Pr, D>(
    graph: &Graph,
    endpoints: Vec<D>,
    make_proto: impl Fn(NodeId) -> Pr + Sync,
    reference: &[f64],
    opts: &ClusterOptions,
) -> Result<ClusterResult, TransportError>
where
    Pr: ReductionProtocol + Send,
    D: Delivery<Pr::Msg, Error = TransportError> + Send,
    D: WireInstrumented,
{
    let n = graph.len();
    if endpoints.len() != n {
        return Err(TransportError::Io(format!(
            "{} endpoints for a {n}-node graph",
            endpoints.len()
        )));
    }
    if let Some(ev) = opts.churn.iter().find(|ev| ev.node as usize >= n) {
        return Err(TransportError::Io(format!(
            "churn event names node {} of a {n}-node cluster",
            ev.node
        )));
    }
    // With churn scheduled the reference aggregate is void (killed mass is
    // destroyed), so nodes publish their estimate (component 0) instead of
    // a relative error and the monitor watches the cluster's *spread*.
    let churn_mode = !opts.churn.is_empty();
    let stop = AtomicBool::new(false);
    let aborted = AtomicBool::new(false);
    let stepping_done = AtomicUsize::new(0);
    let restarts_done = AtomicUsize::new(0);
    // Each node publishes its current relative error (or, under churn,
    // its estimate) as f64 bits; the monitor polls these without locks.
    // A dark node publishes +inf either way.
    let errors: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    let start = Instant::now();
    let make_proto = &make_proto;
    let (wall_ms, converged, outcomes) = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(i, mut endpoint)| {
                let stop = &stop;
                let aborted = &aborted;
                let stepping_done = &stepping_done;
                let restarts_done = &restarts_done;
                let errors = &errors;
                scope.spawn(move || -> Result<NodeOutcome, TransportError> {
                    let node = i as NodeId;
                    let dim = reference.len();
                    // Churn script for this node, soonest first.
                    let mut events: Vec<&ChurnEvent> =
                        opts.churn.iter().filter(|ev| ev.node == node).collect();
                    events.sort_by_key(|ev| ev.at_round);
                    let mut next_ev = 0;
                    // Each incarnation gets a distinct partner-pick
                    // stream — a reborn node must not replay its past.
                    let fresh_driver = |generation: u64| {
                        let seed = opts.seed ^ (generation << 48);
                        let mut d = NodeDriver::new(node, make_proto(node), graph, seed);
                        if let Some(w) = opts.detector_window {
                            d = d.with_timeout_detector(w);
                        }
                        d
                    };
                    let mut generation = 0u64;
                    let mut driver = fresh_driver(generation);
                    let mut done_stats = DriverStats::default();
                    let (mut kills, mut restarts, mut recovered) = (0u64, 0u64, 0u64);
                    let mut mass_lost = vec![0.0; dim];
                    let mut estimate = vec![0.0; dim];
                    let run = (|| -> Result<(), TransportError> {
                        loop {
                            let total_rounds = done_stats.rounds + driver.stats().rounds;
                            if stop.load(Ordering::Relaxed) || total_rounds >= opts.max_rounds {
                                return Ok(());
                            }
                            if next_ev < events.len() && total_rounds >= events[next_ev].at_round {
                                let ev = events[next_ev];
                                next_ev += 1;
                                // Fail-stop: harvest the doomed state for
                                // the audit, then go dark.
                                kills += 1;
                                let mut lost = vec![0.0; dim];
                                driver.write_mass(&mut lost);
                                for (acc, l) in mass_lost.iter_mut().zip(&lost) {
                                    *acc += l;
                                }
                                absorb(&mut done_stats, driver.stats());
                                errors[i].store(f64::INFINITY.to_bits(), Ordering::Relaxed);
                                let died = Instant::now();
                                while died.elapsed() < ev.down_for && !stop.load(Ordering::Relaxed)
                                {
                                    // The endpoint outlives the process on
                                    // it: frames keep arriving and die
                                    // unprocessed at a dead node.
                                    while endpoint.try_recv(node)?.is_some() {}
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                generation += 1;
                                driver = fresh_driver(generation);
                                restarts += 1;
                                restarts_done.fetch_add(1, Ordering::SeqCst);
                                if !stop.load(Ordering::Relaxed) {
                                    recovered += 1;
                                }
                                continue;
                            }
                            driver.step(&mut endpoint)?;
                            driver.write_estimate(&mut estimate);
                            let published = if churn_mode {
                                estimate[0]
                            } else {
                                max_rel_error(&estimate, reference)
                            };
                            errors[i].store(published.to_bits(), Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                    })();
                    stepping_done.fetch_add(1, Ordering::SeqCst);
                    if let Err(e) = run {
                        aborted.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                    // Settle: keep draining until the whole cluster has
                    // stopped stepping and several consecutive sweeps find
                    // nothing in flight toward this node.
                    let mut quiet = 0;
                    while quiet < 8 {
                        let moved = driver.pump(&mut endpoint)?;
                        if aborted.load(Ordering::SeqCst) {
                            break;
                        }
                        if moved > 0 {
                            quiet = 0;
                            continue;
                        }
                        if stepping_done.load(Ordering::SeqCst) == n {
                            quiet += 1;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    driver.write_estimate(&mut estimate);
                    let mut mass = vec![0.0; reference.len()];
                    let weight = driver.write_mass(&mut mass);
                    absorb(&mut done_stats, driver.stats());
                    Ok(NodeOutcome {
                        stats: done_stats,
                        wire: endpoint.wire_stats(),
                        estimate,
                        mass,
                        weight,
                        kills,
                        restarts,
                        recovered,
                        mass_lost,
                    })
                })
            })
            .collect();

        // Convergence monitor (runs on the caller's thread inside the
        // scope). Stops the cluster at convergence, completion, error, or
        // the wall-clock ceiling. Without churn, convergence is every
        // node's published error under target; with churn it is the
        // relative spread of published estimates under target — reachable
        // only once every node is back up (dark nodes publish +inf) —
        // plus completion of the whole churn script.
        let total_churn = opts.churn.len();
        let (wall_ms, converged) = loop {
            let published = errors
                .iter()
                .map(|e| f64::from_bits(e.load(Ordering::Relaxed)));
            let converged_now = if churn_mode {
                let (mut lo, mut hi, mut finite) = (f64::INFINITY, f64::NEG_INFINITY, true);
                for v in published {
                    finite &= v.is_finite();
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                finite
                    && restarts_done.load(Ordering::SeqCst) == total_churn
                    && (hi - lo) <= opts.target * lo.abs().max(hi.abs()).max(1e-300)
            } else {
                published.fold(0.0, f64::max) <= opts.target
            };
            if converged_now {
                break (start.elapsed().as_secs_f64() * 1e3, true);
            }
            if aborted.load(Ordering::SeqCst)
                || stepping_done.load(Ordering::SeqCst) == n
                || start.elapsed() > opts.wall_limit
            {
                break (start.elapsed().as_secs_f64() * 1e3, false);
            }
            std::thread::sleep(Duration::from_micros(100));
        };
        stop.store(true, Ordering::SeqCst);
        let outcomes: Vec<Result<NodeOutcome, TransportError>> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        (wall_ms, converged, outcomes)
    });
    let outcomes: Vec<NodeOutcome> = outcomes.into_iter().collect::<Result<_, _>>()?;

    let dim = reference.len();
    let mut mass_value = vec![0.0; dim];
    let mut mass_weight = 0.0;
    let mut nodes = Vec::with_capacity(n);
    let mut max_err: f64 = 0.0;
    for (i, o) in outcomes.iter().enumerate() {
        for (acc, &m) in mass_value.iter_mut().zip(&o.mass) {
            *acc += m;
        }
        mass_weight += o.weight;
        max_err = max_err.max(max_rel_error(&o.estimate, reference));
        nodes.push(NodeReport {
            node: i as NodeId,
            rounds: o.stats.rounds,
            sent: o.stats.sent,
            delivered: o.stats.delivered,
            bytes_sent: o.wire.bytes_sent,
            bytes_recv: o.wire.bytes_recv,
            dropped: o.wire.dropped,
            chaos_drops: o.wire.chaos_drops,
            chaos_dups: o.wire.chaos_dups,
            chaos_corrupt: o.wire.chaos_corrupt,
            suspected: o.stats.suspected,
            rehabilitated: o.stats.rehabilitated,
            kills: o.kills,
            restarts: o.restarts,
            mass_lost: o.mass_lost.clone(),
            estimate: o.estimate.clone(),
        });
    }
    // Self-consistency: the estimates against the aggregate the surviving
    // mass defines. This is the audit that stays meaningful under churn.
    let self_consistency = if mass_weight != 0.0 {
        let consensus: Vec<f64> = mass_value.iter().map(|m| m / mass_weight).collect();
        outcomes
            .iter()
            .map(|o| max_rel_error(&o.estimate, &consensus))
            .fold(0.0, f64::max)
    } else {
        f64::INFINITY
    };
    let rounds: Vec<u64> = nodes.iter().map(|r| r.rounds).collect();
    Ok(ClusterResult {
        converged,
        wall_ms,
        rounds_min: rounds.iter().copied().min().unwrap_or(0),
        rounds_mean: rounds.iter().sum::<u64>() as f64 / rounds.len().max(1) as f64,
        rounds_max: rounds.iter().copied().max().unwrap_or(0),
        bytes_sent_total: nodes.iter().map(|r| r.bytes_sent).sum(),
        dropped_total: nodes.iter().map(|r| r.dropped).sum(),
        max_rel_error: max_err,
        mass_value,
        mass_weight,
        self_consistency,
        churn_events: outcomes.iter().map(|o| o.kills).sum(),
        recovered: outcomes.iter().map(|o| o.recovered).sum(),
        nodes,
    })
}

/// A backend that keeps byte/message counters ([`WireStats`]) — both real
/// backends do; the trait lets [`run_cluster`] harvest them generically.
pub trait WireInstrumented {
    /// Traffic counters so far.
    fn wire_stats(&self) -> WireStats;
}

impl<M: gr_reduction::WireMsg> WireInstrumented for crate::mem::MemDelivery<M> {
    fn wire_stats(&self) -> WireStats {
        MemDelivery::wire_stats(self)
    }
}

impl<M: gr_reduction::WireMsg> WireInstrumented for crate::udp::UdpDelivery<M> {
    fn wire_stats(&self) -> WireStats {
        UdpDelivery::wire_stats(self)
    }
}
