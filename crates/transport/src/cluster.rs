//! Threaded cluster orchestration: one OS thread per node, each running a
//! [`NodeDriver`] against its own transport endpoint.
//!
//! The execution structure mirrors a real deployment: nodes step
//! independently (no global round barrier), a monitor watches published
//! per-node error levels and raises a stop flag at convergence, and a
//! settle phase drains in-flight messages before state is collected —
//! which is what makes the post-run mass-conservation check meaningful
//! (flow antisymmetry across node instances only holds once every sent
//! message was either delivered or counted as dropped).
//!
//! Everything protocol-side is the unmodified simulator code: the same
//! `Protocol` impl the deterministic twin runs, built per node and driven
//! only for that node's id.

use crate::error::TransportError;
use crate::mem::MemDelivery;
use crate::udp::UdpDelivery;
use crate::WireStats;
use gr_netsim::Delivery;
use gr_reduction::{DriverStats, NodeDriver, ReductionProtocol};
use gr_topology::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Knobs for a threaded cluster run.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Master seed for the per-node partner-pick RNGs.
    pub seed: u64,
    /// Convergence target: stop once every node's relative error against
    /// the reference aggregate is below this.
    pub target: f64,
    /// Per-node iteration budget (a node that reaches it stops stepping
    /// and waits in the settle phase).
    pub max_rounds: u64,
    /// Hard wall-clock ceiling for the stepping phase.
    pub wall_limit: Duration,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            seed: 42,
            target: 1e-9,
            max_rounds: 10_000,
            wall_limit: Duration::from_secs(30),
        }
    }
}

/// Per-node outcome of a cluster run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct NodeReport {
    /// Node id.
    pub node: NodeId,
    /// Iterations this node executed.
    pub rounds: u64,
    /// Messages this node pushed into the transport.
    pub sent: u64,
    /// Messages this node received and processed.
    pub delivered: u64,
    /// Bytes this node put on the wire.
    pub bytes_sent: u64,
    /// Bytes this node took off the wire.
    pub bytes_recv: u64,
    /// Sends lost to backpressure.
    pub dropped: u64,
    /// Final estimate, componentwise.
    pub estimate: Vec<f64>,
}

/// Aggregate outcome of a cluster run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ClusterResult {
    /// Whether every node reached the target accuracy.
    pub converged: bool,
    /// Wall-clock milliseconds from launch to convergence (or to the stop
    /// decision if the run did not converge).
    pub wall_ms: f64,
    /// Fewest iterations any node ran.
    pub rounds_min: u64,
    /// Mean iterations per node.
    pub rounds_mean: f64,
    /// Most iterations any node ran.
    pub rounds_max: u64,
    /// Total bytes put on the wire across nodes.
    pub bytes_sent_total: u64,
    /// Total sends lost to backpressure across nodes.
    pub dropped_total: u64,
    /// Worst final per-node relative error against the reference.
    pub max_rel_error: f64,
    /// Componentwise sum of all node masses after settling.
    pub mass_value: Vec<f64>,
    /// Sum of all node mass weights after settling.
    pub mass_weight: f64,
    /// Per-node detail.
    pub nodes: Vec<NodeReport>,
}

struct NodeOutcome {
    stats: DriverStats,
    wire: WireStats,
    estimate: Vec<f64>,
    mass: Vec<f64>,
    weight: f64,
}

fn max_rel_error(estimate: &[f64], reference: &[f64]) -> f64 {
    estimate
        .iter()
        .zip(reference)
        .map(|(e, r)| {
            let scale = r.abs().max(1e-300);
            (e - r).abs() / scale
        })
        .fold(0.0, f64::max)
}

/// Run one reduction to convergence over real transport endpoints.
///
/// `endpoints[i]` is node `i`'s endpoint (as built by
/// [`mem_cluster`](crate::mem_cluster) / [`udp_cluster`](crate::udp_cluster));
/// `make_proto` builds node `i`'s protocol instance (each thread owns a
/// full instance, driven only for its node); `reference` is the true
/// aggregate the convergence monitor measures against.
pub fn run_cluster<Pr, D>(
    graph: &Graph,
    endpoints: Vec<D>,
    make_proto: impl Fn(NodeId) -> Pr + Sync,
    reference: &[f64],
    opts: &ClusterOptions,
) -> Result<ClusterResult, TransportError>
where
    Pr: ReductionProtocol + Send,
    D: Delivery<Pr::Msg, Error = TransportError> + Send,
    D: WireInstrumented,
{
    let n = graph.len();
    if endpoints.len() != n {
        return Err(TransportError::Io(format!(
            "{} endpoints for a {n}-node graph",
            endpoints.len()
        )));
    }
    let stop = AtomicBool::new(false);
    let aborted = AtomicBool::new(false);
    let stepping_done = AtomicUsize::new(0);
    // Each node publishes its current relative error as f64 bits; the
    // monitor polls these without locks.
    let errors: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    let start = Instant::now();
    let make_proto = &make_proto;
    let (wall_ms, converged, outcomes) = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(i, mut endpoint)| {
                let stop = &stop;
                let aborted = &aborted;
                let stepping_done = &stepping_done;
                let errors = &errors;
                scope.spawn(move || -> Result<NodeOutcome, TransportError> {
                    let node = i as NodeId;
                    let mut driver = NodeDriver::new(node, make_proto(node), graph, opts.seed);
                    let mut estimate = vec![0.0; reference.len()];
                    let run = (|| -> Result<(), TransportError> {
                        while !stop.load(Ordering::Relaxed)
                            && driver.stats().rounds < opts.max_rounds
                        {
                            driver.step(&mut endpoint)?;
                            driver.write_estimate(&mut estimate);
                            let err = max_rel_error(&estimate, reference);
                            errors[i].store(err.to_bits(), Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                        Ok(())
                    })();
                    stepping_done.fetch_add(1, Ordering::SeqCst);
                    if let Err(e) = run {
                        aborted.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                    // Settle: keep draining until the whole cluster has
                    // stopped stepping and several consecutive sweeps find
                    // nothing in flight toward this node.
                    let mut quiet = 0;
                    while quiet < 8 {
                        let moved = driver.pump(&mut endpoint)?;
                        if aborted.load(Ordering::SeqCst) {
                            break;
                        }
                        if moved > 0 {
                            quiet = 0;
                            continue;
                        }
                        if stepping_done.load(Ordering::SeqCst) == n {
                            quiet += 1;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    driver.write_estimate(&mut estimate);
                    let mut mass = vec![0.0; reference.len()];
                    let weight = driver.write_mass(&mut mass);
                    Ok(NodeOutcome {
                        stats: driver.stats(),
                        wire: endpoint.wire_stats(),
                        estimate,
                        mass,
                        weight,
                    })
                })
            })
            .collect();

        // Convergence monitor (runs on the caller's thread inside the
        // scope). Stops the cluster at convergence, completion, error, or
        // the wall-clock ceiling.
        let (wall_ms, converged) = loop {
            let worst = errors
                .iter()
                .map(|e| f64::from_bits(e.load(Ordering::Relaxed)))
                .fold(0.0, f64::max);
            if worst <= opts.target {
                break (start.elapsed().as_secs_f64() * 1e3, true);
            }
            if aborted.load(Ordering::SeqCst)
                || stepping_done.load(Ordering::SeqCst) == n
                || start.elapsed() > opts.wall_limit
            {
                break (start.elapsed().as_secs_f64() * 1e3, false);
            }
            std::thread::sleep(Duration::from_micros(100));
        };
        stop.store(true, Ordering::SeqCst);
        let outcomes: Vec<Result<NodeOutcome, TransportError>> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        (wall_ms, converged, outcomes)
    });
    let outcomes: Vec<NodeOutcome> = outcomes.into_iter().collect::<Result<_, _>>()?;

    let dim = reference.len();
    let mut mass_value = vec![0.0; dim];
    let mut mass_weight = 0.0;
    let mut nodes = Vec::with_capacity(n);
    let mut max_err: f64 = 0.0;
    for (i, o) in outcomes.iter().enumerate() {
        for (acc, &m) in mass_value.iter_mut().zip(&o.mass) {
            *acc += m;
        }
        mass_weight += o.weight;
        max_err = max_err.max(max_rel_error(&o.estimate, reference));
        nodes.push(NodeReport {
            node: i as NodeId,
            rounds: o.stats.rounds,
            sent: o.stats.sent,
            delivered: o.stats.delivered,
            bytes_sent: o.wire.bytes_sent,
            bytes_recv: o.wire.bytes_recv,
            dropped: o.wire.dropped,
            estimate: o.estimate.clone(),
        });
    }
    let rounds: Vec<u64> = nodes.iter().map(|r| r.rounds).collect();
    Ok(ClusterResult {
        converged,
        wall_ms,
        rounds_min: rounds.iter().copied().min().unwrap_or(0),
        rounds_mean: rounds.iter().sum::<u64>() as f64 / rounds.len().max(1) as f64,
        rounds_max: rounds.iter().copied().max().unwrap_or(0),
        bytes_sent_total: nodes.iter().map(|r| r.bytes_sent).sum(),
        dropped_total: nodes.iter().map(|r| r.dropped).sum(),
        max_rel_error: max_err,
        mass_value,
        mass_weight,
        nodes,
    })
}

/// A backend that keeps byte/message counters ([`WireStats`]) — both real
/// backends do; the trait lets [`run_cluster`] harvest them generically.
pub trait WireInstrumented {
    /// Traffic counters so far.
    fn wire_stats(&self) -> WireStats;
}

impl<M: gr_reduction::WireMsg> WireInstrumented for crate::mem::MemDelivery<M> {
    fn wire_stats(&self) -> WireStats {
        MemDelivery::wire_stats(self)
    }
}

impl<M: gr_reduction::WireMsg> WireInstrumented for crate::udp::UdpDelivery<M> {
    fn wire_stats(&self) -> WireStats {
        UdpDelivery::wire_stats(self)
    }
}
