//! Real-transport runtime for the reduction protocols.
//!
//! The simulator in [`gr_netsim`] executes the paper's protocols under a
//! deterministic round loop; this crate executes the *same protocol
//! implementations* — no forks, no adapters in protocol code — over real
//! delivery substrates, through the [`Delivery`](gr_netsim::Delivery)
//! seam extracted from the simulator:
//!
//! * [`mem_cluster`] — one thread per node over bounded in-memory
//!   channels: real OS-scheduler interleaving, frames encoded with the
//!   shared wire codec;
//! * [`udp_cluster`] — one loopback UDP socket per node, one frame per
//!   datagram, reused receive buffers;
//! * the simulator itself, which doubles as the **deterministic twin** of
//!   both: the [`twin_equivalence`] harness runs the same reduction under
//!   netsim and under threads and requires both to land on the reference
//!   aggregate within tolerance.
//!
//! [`run_cluster`] orchestrates a threaded run (convergence monitor,
//! settle/drain phase, mass audit); the `transport-run` binary wraps it
//! in a CLI that reports wall-clock convergence, rounds and bytes-on-wire
//! per node. Configuration mistakes surface as [`TransportConfigError`]
//! values (never panics), runtime failures as [`TransportError`].
//!
//! Robustness is tested by breaking the transport on purpose:
//! [`ChaosDelivery`] wraps any backend with seeded drop/burst/duplicate/
//! corrupt/delay injection and scripted partitions, and
//! [`ClusterOptions::churn`] kills and restarts live node threads
//! mid-run, letting the timeout detector and the protocols' incarnation
//! machinery drive recovery.

mod chaos;
mod cluster;
mod error;
mod mem;
mod twin;
mod udp;

pub use chaos::{ChaosCut, ChaosDelivery, ChaosPlan, ChaosStats};
pub use cluster::{
    run_cluster, ChurnEvent, ClusterOptions, ClusterResult, NodeReport, WireInstrumented,
};
pub use error::{TransportConfigError, TransportError};
pub use mem::{mem_cluster, MemDelivery};
pub use twin::{twin_equivalence, TwinReport};
pub use udp::{udp_cluster, validate_datagram, UdpDelivery, MAX_DATAGRAM};

/// Message/byte counters every real backend keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct WireStats {
    /// Frames successfully handed to the transport.
    pub sent: u64,
    /// Frames received and decoded.
    pub delivered: u64,
    /// Bytes put on the wire.
    pub bytes_sent: u64,
    /// Bytes taken off the wire.
    pub bytes_recv: u64,
    /// Frames lost to backpressure (full inbox / full socket buffer).
    pub dropped: u64,
    /// Frames deliberately dropped by the chaos layer (i.i.d., burst, or
    /// partition cut). Zero on unwrapped backends.
    pub chaos_drops: u64,
    /// Extra copies injected by chaos duplication. Zero when chaos is off.
    pub chaos_dups: u64,
    /// Frames whose payload the chaos layer bit-flipped. Zero when chaos
    /// is off.
    pub chaos_corrupt: u64,
}
