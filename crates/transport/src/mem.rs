//! In-memory channel backend: one endpoint per node over bounded
//! `std::sync::mpsc` channels.
//!
//! This is the first *real* transport: node drivers run on separate
//! threads, so message interleaving comes from the OS scheduler rather
//! than a round loop, and every message crosses the boundary as encoded
//! frame bytes — the same [`WireMsg`] frames the UDP backend ships — so
//! the codec sits on the hot path of both backends and the mem backend's
//! bytes-on-wire accounting is honest.
//!
//! Backpressure is loss: a full channel drops the frame (counted in
//! [`WireStats::dropped`]) instead of blocking the sender, matching the
//! lossy-network regime the protocols are built for. A generously sized
//! channel therefore gives a lossless run, and a tiny one doubles as a
//! loss injector with real thread-race timing.

use crate::error::{TransportConfigError, TransportError};
use crate::WireStats;
use gr_netsim::Delivery;
use gr_reduction::WireMsg;
use gr_topology::NodeId;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};

/// An encoded frame in flight: `(source node, frame bytes)`.
type Frame = (NodeId, Vec<u8>);

/// One node's endpoint on the in-memory channel fabric.
pub struct MemDelivery<M: WireMsg> {
    node: NodeId,
    peers: Vec<SyncSender<Frame>>,
    rx: Receiver<Frame>,
    stats: WireStats,
    _msg: std::marker::PhantomData<fn() -> M>,
}

/// Build the channel fabric for an `n`-node cluster: one bounded channel
/// per node, every endpoint holding a sender to every peer. `capacity` is
/// the per-node inbox depth (clamped to at least 1); sends beyond it are
/// dropped, not blocked.
pub fn mem_cluster<M: WireMsg>(
    n: usize,
    capacity: usize,
) -> Result<Vec<MemDelivery<M>>, TransportConfigError> {
    if n == 0 {
        return Err(TransportConfigError::ZeroNodes);
    }
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = sync_channel(capacity.max(1));
        senders.push(tx);
        receivers.push(rx);
    }
    Ok(receivers
        .into_iter()
        .enumerate()
        .map(|(i, rx)| MemDelivery {
            node: i as NodeId,
            peers: senders.clone(),
            rx,
            stats: WireStats::default(),
            _msg: std::marker::PhantomData,
        })
        .collect())
}

impl<M: WireMsg> MemDelivery<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Traffic counters so far.
    pub fn wire_stats(&self) -> WireStats {
        self.stats
    }
}

impl<M: WireMsg> Delivery<M> for MemDelivery<M> {
    type Error = TransportError;

    fn send(&mut self, _src: NodeId, dst: NodeId, msg: M) -> Result<(), Self::Error> {
        let Some(peer) = self.peers.get(dst as usize) else {
            return Err(TransportError::UnknownPeer { dst });
        };
        let mut frame = Vec::new();
        msg.encode_frame(&mut frame);
        let bytes = frame.len() as u64;
        match peer.try_send((self.node, frame)) {
            Ok(()) => {
                self.stats.sent += 1;
                self.stats.bytes_sent += bytes;
            }
            // Full inbox or a peer that already shut down: the message is
            // lost, which is a modelled event, not an error.
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.stats.dropped += 1;
            }
        }
        Ok(())
    }

    fn try_recv(&mut self, node: NodeId) -> Result<Option<(NodeId, M)>, Self::Error> {
        debug_assert_eq!(node, self.node, "endpoint polled for a foreign node");
        match self.rx.try_recv() {
            Ok((src, frame)) => {
                let msg = M::decode_frame(&frame)?;
                self.stats.delivered += 1;
                self.stats.bytes_recv += frame.len() as u64;
                Ok(Some((src, msg)))
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_reduction::Mass;

    #[test]
    fn zero_nodes_is_a_typed_error() {
        assert!(matches!(
            mem_cluster::<Mass<f64>>(0, 8),
            Err(TransportConfigError::ZeroNodes)
        ));
    }

    #[test]
    fn frames_cross_the_fabric() {
        let mut eps = mem_cluster::<Mass<f64>>(3, 8).unwrap();
        let m = Mass::new(2.5, 1.0);
        eps[0].send(0, 2, m.clone()).unwrap();
        eps[1].send(1, 2, Mass::new(-1.0, 0.5)).unwrap();
        let (src, got) = eps[2].try_recv(2).unwrap().unwrap();
        assert_eq!((src, got), (0, m));
        let (src, _) = eps[2].try_recv(2).unwrap().unwrap();
        assert_eq!(src, 1);
        assert!(eps[2].try_recv(2).unwrap().is_none());
        assert_eq!(eps[0].wire_stats().sent, 1);
        assert_eq!(eps[2].wire_stats().delivered, 2);
        assert!(eps[0].wire_stats().bytes_sent > 0);
    }

    #[test]
    fn full_inbox_drops_instead_of_blocking() {
        let mut eps = mem_cluster::<Mass<f64>>(2, 1).unwrap();
        eps[0].send(0, 1, Mass::new(1.0, 1.0)).unwrap();
        eps[0].send(0, 1, Mass::new(2.0, 1.0)).unwrap(); // inbox full
        assert_eq!(eps[0].wire_stats().sent, 1);
        assert_eq!(eps[0].wire_stats().dropped, 1);
        assert_eq!(eps[1].try_recv(1).unwrap().unwrap().1, Mass::new(1.0, 1.0));
        assert!(eps[1].try_recv(1).unwrap().is_none());
    }

    #[test]
    fn unknown_peer_is_a_typed_error() {
        let mut eps = mem_cluster::<Mass<f64>>(2, 4).unwrap();
        assert_eq!(
            eps[0].send(0, 9, Mass::new(1.0, 1.0)).unwrap_err(),
            TransportError::UnknownPeer { dst: 9 }
        );
    }
}
