//! UDP socket backend: one loopback socket per node, one frame per
//! datagram.
//!
//! The OS now owns delivery — real kernel buffers, real reordering, real
//! loss under pressure — while the protocol sees the same [`Delivery`]
//! face as everywhere else. Framing is the shared [`WireMsg`] format (one
//! complete frame per datagram, so no stream reassembly), and both the
//! transmit scratch and the receive buffer are allocated once per
//! endpoint and reused for every packet: the receive path hands the
//! protocol a decoded message and keeps the buffer, the datagram analogue
//! of the simulator's reclaim-pooled wire buffers.
//!
//! Peers are identified by their bound socket address; datagrams from
//! addresses outside the cluster are counted and ignored rather than
//! decoded (a stray packet on a loopback port must not abort a run).

use crate::error::{TransportConfigError, TransportError};
use crate::WireStats;
use gr_netsim::Delivery;
use gr_reduction::WireMsg;
use gr_topology::NodeId;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};

/// Largest frame the UDP backend ships. Deliberately below the 65507-byte
/// UDP payload ceiling so IP fragmentation headroom and future header
/// growth do not silently push a legal frame over the edge.
pub const MAX_DATAGRAM: usize = 60_000;

/// One node's endpoint: a bound nonblocking loopback socket plus the
/// cluster's address book.
pub struct UdpDelivery<M: WireMsg> {
    node: NodeId,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    node_of: HashMap<SocketAddr, NodeId>,
    tx_buf: Vec<u8>,
    rx_buf: Vec<u8>,
    /// Datagrams from addresses outside the cluster (ignored).
    pub foreign: u64,
    stats: WireStats,
    _msg: std::marker::PhantomData<fn() -> M>,
}

/// Encoded frame size of `sample`, checked against the datagram budget —
/// the bring-up guard that rejects payload dimensions a UDP cluster could
/// never carry. Message sizes are fixed per run (payload dimensions do
/// not change), so checking one representative message covers the run.
pub fn validate_datagram<M: WireMsg>(sample: &M) -> Result<usize, TransportConfigError> {
    let mut buf = Vec::new();
    sample.encode_frame(&mut buf);
    if buf.len() > MAX_DATAGRAM {
        return Err(TransportConfigError::OversizeDatagram {
            bytes: buf.len(),
            max: MAX_DATAGRAM,
        });
    }
    Ok(buf.len())
}

/// Bind an `n`-node loopback cluster: every node gets its own
/// OS-assigned port on 127.0.0.1. Fails with a typed error if sockets
/// are unavailable (sandboxes without network namespaces), which callers
/// treat as "skip", not "crash".
pub fn udp_cluster<M: WireMsg>(n: usize) -> Result<Vec<UdpDelivery<M>>, TransportConfigError> {
    if n == 0 {
        return Err(TransportConfigError::ZeroNodes);
    }
    let bind = |addr: &str| -> Result<UdpSocket, TransportConfigError> {
        let sock = UdpSocket::bind(addr).map_err(|e| TransportConfigError::PortBind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        sock.set_nonblocking(true)
            .map_err(|e| TransportConfigError::PortBind {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?;
        Ok(sock)
    };
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    let peers: Vec<SocketAddr> = sockets
        .iter()
        .map(|s| {
            s.local_addr().map_err(|e| TransportConfigError::PortBind {
                addr: "127.0.0.1:0".to_string(),
                detail: e.to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    let node_of: HashMap<SocketAddr, NodeId> = peers
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as NodeId))
        .collect();
    Ok(sockets
        .into_iter()
        .enumerate()
        .map(|(i, socket)| UdpDelivery {
            node: i as NodeId,
            socket,
            peers: peers.clone(),
            node_of: node_of.clone(),
            tx_buf: Vec::new(),
            rx_buf: vec![0; MAX_DATAGRAM + 64],
            foreign: 0,
            stats: WireStats::default(),
            _msg: std::marker::PhantomData,
        })
        .collect())
}

impl<M: WireMsg> UdpDelivery<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The socket address this node is reachable at.
    pub fn local_addr(&self) -> SocketAddr {
        self.peers[self.node as usize]
    }

    /// Traffic counters so far.
    pub fn wire_stats(&self) -> WireStats {
        self.stats
    }
}

impl<M: WireMsg> Delivery<M> for UdpDelivery<M> {
    type Error = TransportError;

    fn send(&mut self, _src: NodeId, dst: NodeId, msg: M) -> Result<(), Self::Error> {
        let Some(&peer) = self.peers.get(dst as usize) else {
            return Err(TransportError::UnknownPeer { dst });
        };
        self.tx_buf.clear();
        msg.encode_frame(&mut self.tx_buf);
        if self.tx_buf.len() > MAX_DATAGRAM {
            return Err(TransportError::Oversize {
                bytes: self.tx_buf.len(),
                max: MAX_DATAGRAM,
            });
        }
        match self.socket.send_to(&self.tx_buf, peer) {
            Ok(_) => {
                self.stats.sent += 1;
                self.stats.bytes_sent += self.tx_buf.len() as u64;
                Ok(())
            }
            // A full socket buffer is loss, the regime the protocols
            // already tolerate.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                self.stats.dropped += 1;
                Ok(())
            }
            Err(e) => Err(TransportError::Io(e.to_string())),
        }
    }

    fn try_recv(&mut self, node: NodeId) -> Result<Option<(NodeId, M)>, Self::Error> {
        debug_assert_eq!(node, self.node, "endpoint polled for a foreign node");
        loop {
            match self.socket.recv_from(&mut self.rx_buf) {
                Ok((len, from)) => {
                    let Some(&src) = self.node_of.get(&from) else {
                        self.foreign += 1;
                        continue;
                    };
                    let msg = M::decode_frame(&self.rx_buf[..len])?;
                    self.stats.delivered += 1;
                    self.stats.bytes_recv += len as u64;
                    return Ok(Some((src, msg)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_reduction::{Mass, PcfMsg};

    /// Sandboxes without sockets surface as `PortBind`; every test that
    /// needs a socket downgrades to a skip in that case.
    fn cluster_or_skip(n: usize) -> Option<Vec<UdpDelivery<Mass<f64>>>> {
        match udp_cluster(n) {
            Ok(eps) => Some(eps),
            Err(TransportConfigError::PortBind { addr, detail }) => {
                eprintln!("skipping UDP test: cannot bind {addr}: {detail}");
                None
            }
            Err(e) => panic!("unexpected config error: {e}"),
        }
    }

    #[test]
    fn zero_nodes_is_a_typed_error() {
        assert!(matches!(
            udp_cluster::<Mass<f64>>(0),
            Err(TransportConfigError::ZeroNodes)
        ));
    }

    #[test]
    fn oversize_payload_is_a_typed_config_error() {
        // ~8 KB per mass keeps a 4-mass PCF frame under budget…
        let ok = PcfMsg {
            f1: Mass::new(vec![0.0; 1000], 0.0),
            f2: Mass::new(vec![0.0; 1000], 0.0),
            c: 1,
            r: 0,
            folded: Mass::new(vec![0.0; 1000], 0.0),
            base: Mass::new(vec![0.0; 1000], 0.0),
            inc: 0,
        };
        assert!(validate_datagram(&ok).is_ok());
        // …but a 60 KB mass cannot ride a datagram.
        let big: Mass<Vec<f64>> = Mass::new(vec![0.0; 8000], 0.0);
        assert_eq!(
            validate_datagram(&big).unwrap_err(),
            TransportConfigError::OversizeDatagram {
                bytes: gr_reduction::FRAME_HEADER + 4 + 8000 * 8 + 8,
                max: MAX_DATAGRAM,
            }
        );
    }

    #[test]
    fn loopback_send_recv() {
        let Some(mut eps) = cluster_or_skip(2) else {
            return;
        };
        let m = Mass::new(1.25, 0.5);
        eps[0].send(0, 1, m.clone()).unwrap();
        // Nonblocking loopback delivery is near-instant but not literally
        // synchronous; poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if let Some((src, got)) = eps[1].try_recv(1).unwrap() {
                assert_eq!((src, got), (0, m));
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "datagram never arrived"
            );
            std::thread::yield_now();
        }
        assert_eq!(eps[0].wire_stats().sent, 1);
        assert_eq!(eps[1].wire_stats().delivered, 1);
        assert_eq!(
            eps[0].wire_stats().bytes_sent,
            eps[1].wire_stats().bytes_recv
        );
    }
}
