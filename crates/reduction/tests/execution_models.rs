//! The reduction algorithms under relaxed execution models: asynchronous
//! single-node activation and delayed message delivery.
//!
//! The paper's convergence claims are for the synchronous model; the
//! protocols themselves only assume that flow state eventually crosses
//! each edge, so they must converge under both relaxations — these tests
//! pin that down (and quantify the expected slowdowns qualitatively).

use gr_netsim::{Activation, DelayModel, FaultPlan, SimOptions};
use gr_reduction::{
    run_with_options, AggregateKind, FlowUpdating, InitialData, PhiMode, PushCancelFlow, PushFlow,
    PushSum, RunConfig,
};
use gr_topology::hypercube;

fn opts_async() -> SimOptions {
    SimOptions {
        activation: Activation::Asynchronous,
        ..SimOptions::default()
    }
}

fn opts_delay(d: DelayModel) -> SimOptions {
    SimOptions {
        delay: d,
        ..SimOptions::default()
    }
}

#[test]
fn all_protocols_converge_under_async_activation() {
    let g = hypercube(4);
    let data = InitialData::uniform_random(16, AggregateKind::Average, 31);
    let cfg = RunConfig::to_accuracy(1e-12, 60_000);
    macro_rules! check {
        ($proto:expr, $label:expr) => {{
            let r = run_with_options(&g, $proto, &data, FaultPlan::none(), 4, cfg, opts_async());
            assert!(r.converged, "{} async: {:?}", $label, r.final_err);
        }};
    }
    check!(PushSum::new(&g, &data), "push-sum");
    check!(PushFlow::new(&g, &data), "PF");
    check!(PushCancelFlow::new(&g, &data), "PCF");
    check!(
        PushCancelFlow::with_mode(&g, &data, PhiMode::Hardened),
        "PCF-hardened"
    );
    check!(FlowUpdating::new(&g, &data), "FU");
}

#[test]
fn pcf_converges_with_fixed_delay() {
    let g = hypercube(5);
    let data = InitialData::uniform_random(32, AggregateKind::Average, 32);
    let cfg = RunConfig::to_accuracy(1e-12, 100_000);
    for d in [1u64, 3, 8] {
        let r = run_with_options(
            &g,
            PushCancelFlow::new(&g, &data),
            &data,
            FaultPlan::none(),
            5,
            cfg,
            opts_delay(DelayModel::Fixed(d)),
        );
        assert!(r.converged, "delay {d}: {:?}", r.final_err);
    }
}

#[test]
fn pf_converges_with_random_delay_and_loss() {
    // Delay + loss together: stale flow snapshots arriving out of order
    // plus dropped messages — the flow overwrite semantics absorb both.
    let g = hypercube(4);
    let data = InitialData::uniform_random(16, AggregateKind::Average, 33);
    let cfg = RunConfig::to_accuracy(1e-11, 150_000);
    let r = run_with_options(
        &g,
        PushFlow::new(&g, &data),
        &data,
        FaultPlan::with_loss(0.1),
        6,
        cfg,
        opts_delay(DelayModel::Uniform { min: 0, max: 4 }),
    );
    assert!(r.converged, "{:?}", r.final_err);
}

#[test]
fn delay_slows_but_does_not_bias() {
    let g = hypercube(5);
    let data = InitialData::uniform_random(32, AggregateKind::Average, 34);
    let cfg = RunConfig::to_accuracy(1e-12, 100_000);
    let fast = run_with_options(
        &g,
        PushCancelFlow::new(&g, &data),
        &data,
        FaultPlan::none(),
        7,
        cfg,
        SimOptions::default(),
    );
    let slow = run_with_options(
        &g,
        PushCancelFlow::new(&g, &data),
        &data,
        FaultPlan::none(),
        7,
        cfg,
        opts_delay(DelayModel::Fixed(4)),
    );
    assert!(fast.converged && slow.converged);
    assert!(
        slow.rounds > fast.rounds,
        "delay should cost rounds: {} vs {}",
        slow.rounds,
        fast.rounds
    );
}

#[test]
fn async_link_failure_still_no_fallback_for_pcf() {
    let g = hypercube(6);
    let data = InitialData::uniform_random(64, AggregateKind::Average, 35);
    let plan = FaultPlan::none().fail_link(0, 1, 75);
    let cfg = RunConfig::fixed(200, 1);
    let r = run_with_options(
        &g,
        PushCancelFlow::new(&g, &data),
        &data,
        plan,
        8,
        cfg,
        opts_async(),
    );
    let at = |round: u64| r.series.iter().find(|s| s.round == round).unwrap().max;
    // no fall-back across the failure handling
    assert!(at(77) < at(74) * 50.0, "{} vs {}", at(77), at(74));
    assert!(at(200) < 1e-12);
}
