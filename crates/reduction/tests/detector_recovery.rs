//! Property tests for the imperfect-failure-detection story: a local
//! timeout detector under message delay raises *false* suspicions, the
//! transport's liveness probes rehabilitate them, and PCF's incarnation
//! reconciliation keeps the whole cycle mass-exact — on every builder
//! topology, not just the hand-picked ones in the unit tests.

use gr_netsim::{DelayModel, DetectorModel, FaultPlan, SimOptions, Simulator};
use gr_reduction::{AggregateKind, InitialData, PushCancelFlow, ReductionProtocol};
use gr_topology::{binary_tree, complete, grid2d, hypercube, ring, torus2d, Graph};
use proptest::prelude::*;

/// The cancellation handshake must stay *live* under sustained message
/// loss and bit flips: a lost fold acknowledgement desynchronises the
/// pair's round counters, and without the ledger/incarnation repair the
/// arc's folding deadlocks permanently while the active slot keeps
/// accumulating PF-style — flows grow without bound (observed ~1e154
/// after 2000 rounds on the pre-repair code) and the paper's central
/// `O(|aggregate|)` claim silently dies. Pin both symptoms: folds keep
/// happening late in the run, and flows stay at aggregate scale.
#[test]
fn folds_stay_live_and_flows_stay_bounded_under_loss() {
    let g = hypercube(6);
    let data = InitialData::uniform_random(64, AggregateKind::Average, 1);
    let plan = FaultPlan {
        msg_loss_prob: 0.05,
        bit_flip_prob: 1e-3,
        ..FaultPlan::none()
    };
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), plan, 1);
    sim.run(1500);
    let folds_before = sim.protocol().stats().cancellations;
    sim.run(500);
    let folds_late = sim.protocol().stats().cancellations - folds_before;
    assert!(
        folds_late > 1000,
        "fold handshake went quiet: {folds_late} folds in rounds 1500..2000"
    );
    let mut buf = [0.0f64];
    let mut max_flow: f64 = 0.0;
    for i in 0..64u32 {
        for &j in g.neighbors(i) {
            if sim.protocol().write_flow(i, j, &mut buf).is_some() {
                max_flow = max_flow.max(buf[0].abs());
            }
        }
    }
    assert!(
        max_flow < 1e3,
        "flow magnitude escaped the aggregate scale: {max_flow:e}"
    );
}

/// The builder-topology zoo the suspicion property quantifies over.
/// Degrees range from 2 (ring) to 9 (complete), so the same detector
/// window produces wildly different false-suspicion rates.
fn builder_topology(idx: usize) -> (&'static str, Graph) {
    match idx {
        0 => ("ring12", ring(12)),
        1 => ("complete10", complete(10)),
        2 => ("hypercube3", hypercube(3)),
        3 => ("hypercube4", hypercube(4)),
        4 => ("grid3x4", grid2d(3, 4)),
        5 => ("torus3x4", torus2d(3, 4)),
        _ => ("btree10", binary_tree(10)),
    }
}

fn max_rel_err<P: ReductionProtocol>(proto: &P, n: usize, reference: f64) -> f64 {
    let mut buf = [0.0];
    let mut err = 0.0f64;
    for i in 0..n as u32 {
        proto.write_estimate(i, &mut buf);
        err = err.max(((buf[0] - reference) / reference).abs());
    }
    err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// False-suspicion-then-rehabilitation converges on every builder
    /// topology: under uniform delay the timeout detector keeps wrongly
    /// excising live edges, the probe machinery keeps readmitting them,
    /// and PCF still reaches the exact average. Without outbound probing
    /// on suspected arcs this property is false — mutually suspected
    /// edges would stay dead and the believed-alive graph partitions.
    #[test]
    fn pcf_rides_out_false_suspicions_on_every_topology(
        topo_idx in 0usize..7,
        seed in 0u64..500,
        window in 5u64..9,
        delay_max in 2u64..5,
    ) {
        let (name, g) = builder_topology(topo_idx);
        let n = g.len();
        let data = InitialData::uniform_random(n, AggregateKind::Average, seed);
        let reference = data.reference()[0].hi();
        let opts = SimOptions {
            delay: DelayModel::Uniform { min: 0, max: delay_max },
            detector: DetectorModel::Timeout { window },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(
            &g,
            PushCancelFlow::new(&g, &data),
            FaultPlan::none(),
            seed,
            opts,
        );
        let mut err = f64::INFINITY;
        for _ in 0..40 {
            sim.run(100);
            err = max_rel_err(sim.protocol(), n, reference);
            if err < 1e-9 {
                break;
            }
        }
        let s = sim.stats();
        prop_assert!(
            err < 1e-9,
            "{name} w={window} d={delay_max} seed={seed}: err={err:e} \
             (susp={} rehab={} probes={})",
            s.suspected, s.rehabilitated, s.probes_sent
        );
        // The property is only meaningful if the detector actually
        // misfired: with these windows and degrees every case suspects.
        prop_assert!(s.suspected > 0, "{name}: detector never fired");
        prop_assert!(s.rehabilitated > 0, "{name}: nothing rehabilitated");
    }

    /// Crash + restart counts the rejoining node exactly once. The crash
    /// fires at round 0 — before the victim has donated or absorbed any
    /// flow — so exactly `v_victim` leaves the system, and the restart
    /// re-injects exactly `v_victim`: the network must settle on the
    /// *full-population* average. A dropped readmission leaves the
    /// average short by `v_victim / n`; a double-count overshoots by the
    /// same amount — both are ~1e-2-scale, detected at 1e-9. (A crash in
    /// mid-mix cannot make this claim: whatever mass the victim held at
    /// that instant dies with it, by design — survivors then reconverge
    /// to the reduced reference, which the campaign oracle checks.)
    /// (Oracle detection keeps the accounting airtight: detect-on-crash
    /// means no survivor ever donates flow toward the corpse. Under the
    /// timeout detector the neighbors keep donating until the silence
    /// window expires, and that flow dies with the victim — locally
    /// indistinguishable from flow the victim absorbed before crashing —
    /// so the reduced-reference reconvergence the campaign oracle checks
    /// is the right claim there, not the full average.)
    #[test]
    fn restarted_node_mass_counts_exactly_once(
        seed in 0u64..500,
        victim in 0u32..10,
        restart_round in 100u64..300,
    ) {
        let g = complete(10);
        let data = InitialData::uniform_random(10, AggregateKind::Average, seed);
        let reference = data.reference()[0].hi();
        let plan = FaultPlan::none()
            .crash_node(victim, 0)
            .restart_node(victim, restart_round);
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), plan, seed);
        let mut err = f64::INFINITY;
        for _ in 0..40 {
            sim.run(100);
            err = max_rel_err(sim.protocol(), 10, reference);
            if err < 1e-9 {
                break;
            }
        }
        prop_assert!(
            err < 1e-9,
            "victim={victim} seed={seed} restart={restart_round}: err={err:e}"
        );
    }
}
