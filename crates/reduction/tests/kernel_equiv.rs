//! SIMD ≡ scalar equivalence for the lane-blocked flow-bank kernels.
//!
//! The kernels are componentwise, so the vector path must be *byte*
//! identical to the scalar fallback — not approximately equal. Every
//! comparison here is on `f64::to_bits`, across dims 1..=67 (straddling
//! the 4-wide lane boundary, so every remainder length 0..=3 is hit many
//! times) and both FlowBank field counts (PF = 1 field, PCF = 4 fields)
//! for the row kernels.
//!
//! On hardware without a vector path `kernels::simd` delegates to the
//! scalar implementation and the suite degenerates to a self-check.

use gr_reduction::kernels::{self, scalar, simd};
use proptest::prelude::*;

/// Deterministic splitmix64-derived components. Every 16th slot is a
/// sign-sensitive or boundary special (±0.0, ±∞, denormal, ±huge) so
/// block and remainder lanes both see them.
fn gen_vec(len: usize, mut seed: u64) -> Vec<f64> {
    const SPECIALS: [f64; 8] = [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        5e-324,
        f64::MAX,
        -f64::MAX,
    ];
    (0..len)
        .map(|i| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            if i % 16 == 15 {
                SPECIALS[(z % 8) as usize]
            } else {
                (z as f64 / u64::MAX as f64 - 0.5) * 2e12
            }
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn two_arg_kernels_simd_match_scalar(dim in 1usize..=67, seed in 0u64..u64::MAX) {
        let d = gen_vec(dim, seed);
        let s = gen_vec(dim, seed.rotate_left(13));
        // add
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::add(&mut a, &s);
        scalar::add(&mut b, &s);
        prop_assert_eq!(bits(&a), bits(&b));
        // sub
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::sub(&mut a, &s);
        scalar::sub(&mut b, &s);
        prop_assert_eq!(bits(&a), bits(&b));
        // store_neg
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::store_neg(&mut a, &s);
        scalar::store_neg(&mut b, &s);
        prop_assert_eq!(bits(&a), bits(&b));
        // scale / neg
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::scale(&mut a, 0.7418);
        scalar::scale(&mut b, 0.7418);
        prop_assert_eq!(bits(&a), bits(&b));
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::neg(&mut a);
        scalar::neg(&mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        // is_neg: arbitrary input (almost always false) ...
        prop_assert_eq!(simd::is_neg(&d, &s), scalar::is_neg(&d, &s));
        // ... and a constructed all-negated pair (true unless ±∞/NaN mix).
        let negs: Vec<f64> = d.iter().map(|x| -x).collect();
        prop_assert_eq!(simd::is_neg(&d, &negs), scalar::is_neg(&d, &negs));
        prop_assert!(scalar::is_neg(&d, &negs));
    }

    #[test]
    fn three_arg_kernels_simd_match_scalar(dim in 1usize..=67, seed in 0u64..u64::MAX) {
        let d = gen_vec(dim, seed);
        let x = gen_vec(dim, seed.rotate_left(7));
        let y = gen_vec(dim, seed.rotate_left(29));
        // sub_sum
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::sub_sum(&mut a, &x, &y);
        scalar::sub_sum(&mut b, &x, &y);
        prop_assert_eq!(bits(&a), bits(&b));
        // add_sum
        let (mut a, mut b) = (d.clone(), d.clone());
        simd::add_sum(&mut a, &x, &y);
        scalar::add_sum(&mut b, &x, &y);
        prop_assert_eq!(bits(&a), bits(&b));
        // fold1 (two destinations, one source)
        let (mut p1, mut b1) = (d.clone(), x.clone());
        let (mut p2, mut b2) = (d.clone(), x.clone());
        simd::fold1(&mut p1, &mut b1, &y);
        scalar::fold1(&mut p2, &mut b2, &y);
        prop_assert_eq!(bits(&p1), bits(&p2));
        prop_assert_eq!(bits(&b1), bits(&b2));
        // fold2 (two destinations, two sources)
        let (mut p1, mut b1) = (d.clone(), d.clone());
        let (mut p2, mut b2) = (d.clone(), d.clone());
        simd::fold2(&mut p1, &mut b1, &x, &y);
        scalar::fold2(&mut p2, &mut b2, &x, &y);
        prop_assert_eq!(bits(&p1), bits(&p2));
        prop_assert_eq!(bits(&b1), bits(&b2));
    }

    /// Row kernels at both FlowBank field counts: PF banks have 1 field
    /// per arc (`sub_rows`), PCF banks have 4 (`sub_leading2_rows`).
    #[test]
    fn row_kernels_simd_match_scalar(
        dim in 1usize..=67,
        narcs in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let d0 = gen_vec(dim, seed ^ 0x9e37_79b9);
        // PF: fields = 1.
        let rows = gen_vec(narcs * dim, seed);
        let (mut a, mut b) = (d0.clone(), d0.clone());
        simd::sub_rows(&mut a, &rows);
        scalar::sub_rows(&mut b, &rows);
        prop_assert_eq!(bits(&a), bits(&b));
        // PCF: fields = 4.
        let rows4 = gen_vec(narcs * 4 * dim, seed.rotate_left(17));
        let (mut a, mut b) = (d0.clone(), d0);
        simd::sub_leading2_rows(&mut a, &rows4, 4);
        scalar::sub_leading2_rows(&mut b, &rows4, 4);
        prop_assert_eq!(bits(&a), bits(&b));
    }
}

/// Boundary pins: every remainder class at the lane width, plus exact
/// sign/zero semantics — deterministic, no generated inputs.
#[test]
fn boundary_dims_and_special_values_pin() {
    for dim in [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 66, 67] {
        let src: Vec<f64> = (0..dim).map(|k| (k as f64 - 2.0) * 0.5).collect();
        let dst: Vec<f64> = (0..dim).map(|k| (k as f64) * 1.25 + 0.125).collect();
        let (mut a, mut b) = (dst.clone(), dst.clone());
        simd::add(&mut a, &src);
        scalar::add(&mut b, &src);
        assert_eq!(bits(&a), bits(&b), "add dim {dim}");
        // the dispatching entry point agrees with both
        let mut c = dst.clone();
        kernels::add(&mut c, &src);
        assert_eq!(bits(&c), bits(&b), "dispatch add dim {dim}");
    }
    // Signed-zero semantics: 0.0 == -(-0.0) and -0.0 == -(0.0) per IEEE.
    let pos = [0.0, -0.0, 1.0, -1.0, 2.5];
    let neg = [-0.0, 0.0, -1.0, 1.0, -2.5];
    assert!(simd::is_neg(&pos, &neg));
    assert!(scalar::is_neg(&pos, &neg));
    // NaN never equals anything, on either path, in block or remainder.
    let mut a = vec![1.0; 6];
    let mut b = vec![-1.0; 6];
    for lane in 0..6 {
        a[lane] = f64::NAN;
        assert!(!simd::is_neg(&a, &b), "NaN lane {lane}");
        assert!(!scalar::is_neg(&a, &b), "NaN lane {lane}");
        a[lane] = 1.0;
        b[lane] = f64::NAN;
        assert!(!simd::is_neg(&a, &b), "NaN lane {lane}");
        assert!(!scalar::is_neg(&a, &b), "NaN lane {lane}");
        b[lane] = -1.0;
    }
    // Negation is a sign-bit flip even for NaN (exact, never rounds).
    let mut v = vec![f64::NAN, -f64::NAN, 0.0, -0.0, 3.0];
    let mut w = v.clone();
    simd::neg(&mut v);
    scalar::neg(&mut w);
    assert_eq!(bits(&v), bits(&w));
    assert_eq!(v[2].to_bits(), (-0.0f64).to_bits());
    assert_eq!(v[3].to_bits(), 0.0f64.to_bits());
}

/// The dispatch state is hardware-bounded and the env override works in
/// the direction that matters (can force scalar, can never force SIMD
/// onto hardware that lacks it).
#[test]
fn dispatch_never_exceeds_hardware() {
    if !kernels::simd_supported() {
        assert!(!kernels::simd_enabled());
        assert_eq!(kernels::active_path(), "scalar");
    }
    if std::env::var_os("GR_SIMD").is_some_and(|v| v == "0") {
        assert!(
            !kernels::simd_enabled(),
            "GR_SIMD=0 must force scalar dispatch"
        );
    }
}
