//! Live monitoring: inputs that change while the reduction runs.
//!
//! Flow-based algorithms derive the live data from `v − (flow state)`, so
//! an input change is a local, instantaneous operation and the gossip
//! re-converges to the new aggregate — the capability LiMoSense built a
//! protocol around falls out of PF/PCF/FU for free. Push-sum, whose
//! initial mass is dispersed at round one, has no such operation.

use gr_netsim::{FaultPlan, Simulator};
use gr_numerics::Dd;
use gr_reduction::{
    AggregateKind, FlowUpdating, InitialData, PushCancelFlow, PushFlow, ReductionProtocol,
};
use gr_topology::hypercube;

fn max_err_vs(protocol_estimates: Vec<f64>, target: f64) -> f64 {
    protocol_estimates
        .iter()
        .map(|e| ((e - target) / target).abs())
        .fold(0.0, f64::max)
}

/// Average of `values` with `values[k] = patch` applied, in Dd.
fn avg_with(values: &[f64], patch: Option<(usize, f64)>) -> f64 {
    let mut acc = Dd::ZERO;
    for (i, &v) in values.iter().enumerate() {
        let v = match patch {
            Some((k, p)) if k == i => p,
            _ => v,
        };
        acc += v;
    }
    (acc / values.len() as f64).to_f64()
}

#[test]
fn pcf_tracks_an_input_change() {
    let n = 64;
    let g = hypercube(6);
    let data = InitialData::uniform_random(n, AggregateKind::Average, 1);
    let values: Vec<f64> = (0..n).map(|i| *data.value(i)).collect();
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 1);

    sim.run(300);
    let before = avg_with(&values, None);
    assert!(max_err_vs(sim.protocol().scalar_estimates(), before) < 1e-13);

    // Sensor 10 jumps from its old reading to 50.0 mid-run.
    sim.protocol_mut().set_local_value(10, 50.0);
    let after = avg_with(&values, Some((10, 50.0)));
    // Immediately after, only node 10's estimate moved; convergence to the
    // new aggregate follows within ordinary gossip time (the jump from
    // ~0.5 to 50 is a ~16-decade perturbation relative to the target
    // accuracy, so allow a full convergence horizon).
    sim.run(600);
    assert!(
        max_err_vs(sim.protocol().scalar_estimates(), after) < 1e-12,
        "PCF should re-converge to the updated aggregate"
    );
}

#[test]
fn pf_and_fu_track_changes_too() {
    let n = 32;
    let g = hypercube(5);
    let data = InitialData::uniform_random(n, AggregateKind::Average, 2);
    let values: Vec<f64> = (0..n).map(|i| *data.value(i)).collect();
    let after = avg_with(&values, Some((3, -7.5)));

    let mut pf = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 2);
    pf.run(200);
    pf.protocol_mut().set_local_value(3, -7.5);
    pf.run(600);
    assert!(max_err_vs(pf.protocol().scalar_estimates(), after) < 1e-11);

    let mut fu = Simulator::new(&g, FlowUpdating::new(&g, &data), FaultPlan::none(), 2);
    fu.run(200);
    fu.protocol_mut().set_local_value(3, -7.5);
    fu.run(1500);
    assert!(max_err_vs(fu.protocol().scalar_estimates(), after) < 1e-11);
}

#[test]
fn repeated_updates_follow_a_drifting_signal() {
    // A slowly drifting input: the running estimates chase the moving
    // aggregate and stay within a lag proportional to the drift rate.
    let n = 64;
    let g = hypercube(6);
    let data = InitialData::uniform_random(n, AggregateKind::Average, 3);
    let mut values: Vec<f64> = (0..n).map(|i| *data.value(i)).collect();
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 3);
    sim.run(200);

    for step in 0..20 {
        // every 40 rounds, node (step mod n) gets a fresh reading
        let node = (step * 7) % n;
        let new = 0.5 + (step as f64) * 0.01;
        values[node] = new;
        sim.protocol_mut().set_local_value(node as u32, new);
        sim.run(40);
        let target = avg_with(&values, None);
        // The *max* over nodes has a heavy tail while perturbations are in
        // flight (a node whose gossip weight is transiently tiny amplifies
        // absolute mass noise), so track the median node.
        let errs: Vec<f64> = sim
            .protocol()
            .scalar_estimates()
            .iter()
            .map(|e| ((e - target) / target).abs())
            .collect();
        let med = gr_numerics::Summary::from_iter(errs).median();
        assert!(
            med < 2e-3,
            "step {step}: median estimate should lag only slightly, err={med}"
        );
    }
    // Let it settle after the last change: machine precision returns.
    sim.run(300);
    let target = avg_with(&values, None);
    assert!(max_err_vs(sim.protocol().scalar_estimates(), target) < 1e-13);
}

#[test]
fn update_with_concurrent_faults() {
    let n = 32;
    let g = hypercube(5);
    let data = InitialData::uniform_random(n, AggregateKind::Average, 4);
    let values: Vec<f64> = (0..n).map(|i| *data.value(i)).collect();
    let plan = FaultPlan::with_loss(0.15).fail_link(0, 1, 250);
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), plan, 4);
    sim.run(200);
    sim.protocol_mut().set_local_value(20, 3.25);
    sim.run(800);
    let after = avg_with(&values, Some((20, 3.25)));
    assert!(
        max_err_vs(sim.protocol().scalar_estimates(), after) < 1e-12,
        "update + loss + link failure should all be absorbed"
    );
}
