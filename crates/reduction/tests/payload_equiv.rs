//! Property test: `InlineVec` is a drop-in, bit-identical replacement for
//! `Vec<f64>` payloads.
//!
//! The inline small-vector representation changes *where* components live
//! (an inline array below `INLINE_CAP`, a heap spill above), never *what*
//! arithmetic runs on them — every payload op lowers to the same
//! slice-wise f64 loops. This test pins that claim end to end: full
//! simulations over both payload types, same topology / seed / fault
//! plan, must produce bit-identical estimate streams and transport
//! counters on every checkpoint, on both sides of the inline cap.

use gr_netsim::{FaultPlan, Simulator};
use gr_reduction::{
    AggregateKind, FlowUpdating, InitialData, InlineVec, Payload, PhiMode, PushCancelFlow,
    PushFlow, PushSum, ReductionProtocol, INLINE_CAP,
};
use gr_topology::{complete, hypercube, ring, Graph};
use proptest::prelude::*;
use rand::prelude::*;

/// FNV-1a fold step over raw bytes.
fn mix(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Shared random per-node vectors — the single source both payload types
/// are built from, so any divergence is the payload's fault.
fn rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
        .collect()
}

/// The fault-plan sweep: failure-free, probabilistic loss, payload bit
/// flips, and a scheduled link failure + node crash combination.
fn fault_plan(kind: usize, graph: &Graph) -> FaultPlan {
    match kind {
        0 => FaultPlan::none(),
        1 => FaultPlan::with_loss(0.1),
        2 => FaultPlan {
            bit_flip_prob: 1e-3,
            ..FaultPlan::default()
        },
        _ => {
            let nbr = graph.neighbors(0)[0];
            FaultPlan::with_loss(0.05)
                .fail_link(0, nbr, 50)
                .crash_node(1, 60)
        }
    }
}

/// Run 300 rounds, folding every alive node's estimate bits at each
/// 50-round checkpoint plus the final transport counters into one hash.
fn run_hash<Pr: ReductionProtocol>(
    graph: &Graph,
    protocol: Pr,
    plan: FaultPlan,
    seed: u64,
    dim: usize,
) -> u64 {
    let mut sim = Simulator::new(graph, protocol, plan, seed);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = vec![0.0; dim];
    for round in 1..=300u32 {
        sim.step();
        if round % 50 == 0 {
            for node in sim.alive_nodes() {
                sim.protocol().write_estimate(node, &mut buf);
                for &x in &buf {
                    mix(&mut h, &x.to_bits().to_le_bytes());
                }
            }
        }
    }
    mix(&mut h, format!("{:?}", sim.stats()).as_bytes());
    h
}

fn pcf_hardened<'a, P: Payload>(g: &'a Graph, d: &InitialData<P>) -> PushCancelFlow<'a, P> {
    PushCancelFlow::with_mode(g, d, PhiMode::Hardened)
}

/// One full equivalence check: both payload types through every
/// algorithm, identical run hashes required.
fn check_equiv(topo: usize, dim: usize, seed: u64, fault: usize) -> Result<(), TestCaseError> {
    let graph = match topo {
        0 => complete(8),
        1 => hypercube(4),
        _ => ring(12),
    };
    let data_vec: InitialData<Vec<f64>> =
        InitialData::with_kind(rows(graph.len(), dim, seed), AggregateKind::Average);
    let data_inline: InitialData<InlineVec> = InitialData::with_kind(
        rows(graph.len(), dim, seed)
            .into_iter()
            .map(InlineVec::from)
            .collect(),
        AggregateKind::Average,
    );
    macro_rules! check {
        ($make:path, $label:expr) => {{
            let a = run_hash(
                &graph,
                $make(&graph, &data_vec),
                fault_plan(fault, &graph),
                seed,
                dim,
            );
            let b = run_hash(
                &graph,
                $make(&graph, &data_inline),
                fault_plan(fault, &graph),
                seed,
                dim,
            );
            prop_assert_eq!(
                a,
                b,
                "{} diverged: topo={} dim={} seed={} fault={}",
                $label,
                topo,
                dim,
                seed,
                fault
            );
        }};
    }
    check!(PushSum::new, "push-sum");
    check!(PushFlow::new, "PF");
    check!(PushCancelFlow::new, "PCF");
    check!(pcf_hardened, "PCF-hardened");
    check!(FlowUpdating::new, "FU");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn inline_vec_runs_are_bit_identical_to_vec(
        topo in 0usize..3,
        // Straddle the inline cap: `spill` shifts the drawn dim past
        // `INLINE_CAP`, so both the inline representation and the heap
        // spill get cases.
        dim in 1usize..=INLINE_CAP,
        spill in proptest::bool::ANY,
        seed in 0u64..1_000_000,
        fault in 0usize..4,
    ) {
        let dim = if spill { dim + INLINE_CAP } else { dim };
        check_equiv(topo, dim, seed, fault)?;
    }
}

/// Deterministic pin exactly at the representation boundary: the largest
/// inline dim and the smallest spilled dim, under the multi-fault plan.
#[test]
fn boundary_dims_are_bit_identical() {
    for dim in [INLINE_CAP, INLINE_CAP + 1] {
        check_equiv(1, dim, 42, 3).unwrap();
    }
}
