//! Gossip fairness on degree-skewed topologies, observed through the
//! simulator's link-load counters.
//!
//! Uniform partner choice is fair *per sender* but not per receiver: a
//! node's expected incoming traffic is `Σ_{j∈N} 1/deg(j)`, so hubs of a
//! scale-free network receive far more than leaf-ish nodes — the
//! structural reason degree-asymmetric topologies starve push gossip
//! (see `gr-spectral`'s starvation notes).

use gr_netsim::{FaultPlan, Simulator};
use gr_reduction::{AggregateKind, InitialData, PushCancelFlow, ReductionProtocol};
use gr_topology::{barabasi_albert, hypercube, NodeId};

#[test]
fn regular_topologies_balance_incoming_load() {
    let g = hypercube(5);
    let data = InitialData::uniform_random(32, AggregateKind::Average, 1);
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 1);
    sim.enable_link_load();
    sim.run(3000);
    let incoming = |node: NodeId| -> u64 {
        g.neighbors(node)
            .iter()
            .map(|&j| sim.link_load(j, node).unwrap())
            .sum()
    };
    let loads: Vec<u64> = (0..32).map(incoming).collect();
    let min = *loads.iter().min().unwrap() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    assert!(
        max / min < 1.35,
        "regular graph should balance receive load: {min}..{max}"
    );
}

#[test]
fn scale_free_topologies_overload_hubs() {
    let g = barabasi_albert(64, 2, 7);
    let data = InitialData::uniform_random(64, AggregateKind::Average, 2);
    let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 2);
    sim.enable_link_load();
    sim.run(3000);
    let incoming = |node: NodeId| -> u64 {
        g.neighbors(node)
            .iter()
            .map(|&j| sim.link_load(j, node).unwrap())
            .sum()
    };
    let hub = (0..64).max_by_key(|&i| g.degree(i)).unwrap();
    let leaf = (0..64).min_by_key(|&i| g.degree(i)).unwrap();
    let (h, l) = (incoming(hub), incoming(leaf));
    assert!(
        h as f64 > 3.0 * l as f64,
        "hub (deg {}) should receive far more than a leaf (deg {}): {h} vs {l}",
        g.degree(hub),
        g.degree(leaf)
    );
    // ... and despite the skew, the reduction still converges.
    let reference = data.reference()[0];
    let worst = sim
        .protocol()
        .scalar_estimates()
        .iter()
        .map(|e| ((e - reference.to_f64()) / reference.to_f64()).abs())
        .fold(0.0f64, f64::max);
    assert!(worst < 1e-7, "PCF should converge on BA graphs: {worst:e}");
}
