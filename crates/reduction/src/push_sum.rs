//! The push-sum algorithm of Kempe, Dobra & Gehrke (FOCS 2003).
//!
//! The non-fault-tolerant baseline: each node holds a mass `(s_i, w_i)`,
//! initially `(x_i, w_i(0))`; every round it keeps half and sends half to a
//! random neighbor; receivers add what arrives. The estimate `s_i/w_i`
//! converges to `(Σx)/(Σw)` on every connected topology — *as long as
//! total mass is conserved*. Mass conservation is a global property: a
//! single lost message permanently removes mass and biases every node's
//! limit, which is exactly the weakness PF/PCF exist to fix (paper Sec.
//! II-A).

use crate::aggregate::InitialData;
use crate::payload::{Mass, Payload};
use crate::protocol::ReductionProtocol;
use gr_netsim::Protocol;
use gr_topology::{Graph, NodeId};

/// Push-sum protocol state (all nodes).
pub struct PushSum<P: Payload> {
    mass: Vec<Mass<P>>,
    /// Retained initial data, so a restarted node can rejoin with `v_i`
    /// (its dispersed pre-crash mass is unrecoverable — see
    /// [`Protocol::on_restart`]).
    init: Vec<Mass<P>>,
    dim: usize,
    /// Recycled wire buffers, one arena per engine partition (fed by
    /// [`Protocol::reclaim`] / [`Protocol::part_reclaim`]; a single arena
    /// under the classic engine).
    pools: Vec<Vec<Mass<P>>>,
}

impl<P: Payload> PushSum<P> {
    /// Initialise from per-node data. The graph is accepted for interface
    /// symmetry with the flow-based protocols (push-sum itself keeps no
    /// per-edge state).
    pub fn new(graph: &Graph, init: &InitialData<P>) -> Self {
        assert_eq!(graph.len(), init.len(), "graph/init size mismatch");
        let mass: Vec<Mass<P>> = (0..init.len())
            .map(|i| Mass::new(init.value(i).clone(), init.weight(i)))
            .collect();
        PushSum {
            init: mass.clone(),
            mass,
            dim: init.dim(),
            pools: vec![Vec::new()],
        }
    }

    /// [`Protocol::on_send`] against partition `part`'s wire-buffer arena.
    fn send_impl(&mut self, part: usize, node: NodeId) -> Mass<P> {
        // Recycled buffers are fully overwritten, so the wire bytes are
        // identical to a freshly cloned message.
        let out = self.pools[part].pop();
        let m = &mut self.mass[node as usize];
        m.scale(0.5);
        match out {
            Some(mut buf) => {
                buf.copy_from(m);
                buf
            }
            None => m.clone(),
        }
    }

    /// Current mass of a node (test/inspection hook).
    pub fn mass(&self, node: NodeId) -> &Mass<P> {
        &self.mass[node as usize]
    }

    /// Total mass over all nodes — conserved in a failure-free run,
    /// visibly *not* conserved once messages get lost.
    pub fn total_mass(&self) -> Mass<P> {
        let mut total = Mass::zero(self.dim);
        for m in &self.mass {
            total.add_assign(m);
        }
        total
    }
}

impl<P: Payload> Protocol for PushSum<P> {
    type Msg = Mass<P>;

    // Per-partition arenas: the only non-node-owned state is the wire-
    // buffer pool, kept as one arena per partition. Everything else a
    // hook touches belongs to its `node`/first argument.
    const PARALLEL_SAFE: bool = true;

    fn set_partitions(&mut self, partitions: usize) {
        self.pools.resize_with(partitions, Vec::new);
    }

    fn on_send(&mut self, node: NodeId, _target: NodeId) -> Mass<P> {
        self.send_impl(0, node)
    }

    fn part_send(&mut self, part: usize, node: NodeId, _target: NodeId) -> Mass<P> {
        self.send_impl(part, node)
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, msg: &mut Mass<P>) {
        self.mass[node as usize].add_assign(msg);
    }

    fn reclaim(&mut self, msg: Mass<P>) {
        self.pools[0].push(msg);
    }

    fn part_reclaim(&mut self, part: usize, msg: Mass<P>) {
        self.pools[part].push(msg);
    }

    // No `on_link_failed` override: push-sum has no failure handling.
    // Whatever mass was in flight or earmarked is simply gone.

    fn on_restart(&mut self, node: NodeId) {
        // Rejoin with the retained initial mass. Push-sum has no
        // mass-accounting story for the node's *previous* life (that mass
        // is dispersed or destroyed), so like every crash-related event in
        // this baseline the result is a biased limit — the reference
        // algorithms to compare against are the flow family.
        self.mass[node as usize] = self.init[node as usize].clone();
    }
}

impl<P: Payload> ReductionProtocol for PushSum<P> {
    fn node_count(&self) -> usize {
        self.mass.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64 {
        let m = &self.mass[node as usize];
        values.copy_from_slice(m.value.components());
        m.weight
    }

    fn write_estimate(&self, node: NodeId, out: &mut [f64]) {
        self.mass[node as usize].write_estimate(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use gr_netsim::{FaultPlan, Simulator};
    use gr_numerics::max_relative_error;
    use gr_topology::{complete, hypercube, ring};

    fn avg_data(n: usize) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, 42)
    }

    #[test]
    fn converges_on_complete_graph() {
        let g = complete(16);
        let data = avg_data(16);
        let reference = data.reference()[0];
        let ps = PushSum::new(&g, &data);
        let mut sim = Simulator::new(&g, ps, FaultPlan::none(), 1);
        sim.run(200);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "push-sum did not converge: err={err}");
    }

    #[test]
    fn converges_on_ring() {
        let g = ring(8);
        let data = avg_data(8);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushSum::new(&g, &data), FaultPlan::none(), 2);
        sim.run(600);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "err={err}");
    }

    #[test]
    fn sum_aggregate_on_hypercube() {
        let g = hypercube(4);
        let data = InitialData::uniform_random(16, AggregateKind::Sum, 7);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushSum::new(&g, &data), FaultPlan::none(), 3);
        sim.run(400);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "err={err}");
        // and the reference really is the plain sum
        let direct: f64 = (0..16).map(|i| *data.value(i)).sum();
        assert!((reference.to_f64() - direct).abs() < 1e-12);
    }

    #[test]
    fn mass_is_conserved_without_failures() {
        let g = hypercube(3);
        let data = avg_data(8);
        let mut sim = Simulator::new(&g, PushSum::new(&g, &data), FaultPlan::none(), 4);
        for _ in 0..50 {
            sim.step();
            let total = sim.protocol().total_mass();
            assert!((total.weight - 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn message_loss_destroys_mass_and_biases_result() {
        let g = complete(16);
        let data = avg_data(16);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushSum::new(&g, &data), FaultPlan::with_loss(0.2), 5);
        sim.run(300);
        // Mass leaked:
        let total = sim.protocol().total_mass();
        assert!(
            total.weight < 16.0 * 0.9,
            "weight should have leaked: {}",
            total.weight
        );
        // Estimates still agree with each other (consensus) but not with
        // the true aggregate — push-sum converges to the wrong value.
        let ests = sim.protocol().scalar_estimates();
        let spread = ests.iter().cloned().fold(f64::MIN, f64::max)
            - ests.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread.abs() < 1e-6,
            "estimates should agree, spread={spread}"
        );
        let err = max_relative_error(ests, reference);
        assert!(err > 1e-8, "lost mass must bias the limit, err={err}");
    }

    #[test]
    fn vector_payload_reduces_componentwise() {
        let g = complete(8);
        let values: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let refs = data.reference();
        let mut sim = Simulator::new(&g, PushSum::new(&g, &data), FaultPlan::none(), 6);
        sim.run(200);
        let mut out = [0.0; 2];
        for i in 0..8 {
            sim.protocol().write_estimate(i, &mut out);
            for k in 0..2 {
                let rel = ((out[k] - refs[k].to_f64()) / refs[k].to_f64()).abs();
                assert!(rel < 1e-12, "node {i} comp {k}: {rel}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn graph_data_mismatch_panics() {
        let g = complete(4);
        let _ = PushSum::new(&g, &avg_data(5));
    }
}
