//! Fault-tolerant gossip-based distributed reduction algorithms.
//!
//! This crate is the core of the workspace: it implements the push-sum
//! family of all-to-all reduction algorithms studied in *"Improving Fault
//! Tolerance and Accuracy of a Distributed Reduction Algorithm"*
//! (Niederbrucker, Straková, Gansterer — SC 2012):
//!
//! * [`PushSum`] — the gossip baseline (Kempe et al., FOCS'03): fast,
//!   simple, and broken by a single lost message;
//! * [`PushFlow`] — fault tolerance via graph-theoretical flows (paper
//!   Fig. 1), with the accuracy and failure-recovery weaknesses analysed
//!   in paper Sec. II;
//! * [`PushCancelFlow`] — the paper's contribution (Fig. 5): PF plus
//!   continuous flow cancellation, which pins every flow variable to the
//!   magnitude of the target aggregate, restoring machine-precision
//!   accuracy at scale and making permanent-failure handling a local,
//!   cheap correction;
//! * [`FlowUpdating`] — the independent flow-based comparator from the
//!   related work (Jesus, Baquero, Almeida — DAIS'09).
//!
//! Protocols are generic over a [`Payload`] (scalar or vector) and are
//! driven by the deterministic simulator in [`gr_netsim`]; the
//! [`runner`] module bundles the workflow (build → run → measure against
//! a high-precision reference) used by tests, examples and the experiment
//! harness.
//!
//! ```
//! use gr_reduction::{AggregateKind, InitialData, PushCancelFlow, ReductionProtocol};
//! use gr_netsim::{FaultPlan, Simulator};
//! use gr_topology::hypercube;
//!
//! // 16 nodes compute the average of 0..16 — under 10% message loss.
//! let graph = hypercube(4);
//! let values: Vec<f64> = (0..16).map(f64::from).collect();
//! let data = InitialData::with_kind(values, AggregateKind::Average);
//! let pcf = PushCancelFlow::new(&graph, &data);
//! let mut sim = Simulator::new(&graph, pcf, FaultPlan::with_loss(0.1), 42);
//! sim.run(400);
//! for i in 0..16 {
//!     assert!((sim.protocol().scalar_estimate(i) - 7.5).abs() < 1e-12);
//! }
//! ```

pub mod aggregate;
pub(crate) mod bank;
pub mod convergence;
pub mod drive;
pub mod extremum;
pub mod flow_updating;
pub mod kernels;
pub mod payload;
pub mod protocol;
pub mod push_cancel_flow;
pub mod push_flow;
pub mod push_pull_sum;
pub mod push_sum;
pub mod runner;
pub mod wire;

pub use aggregate::{AggregateKind, InitialData};
pub use convergence::LocalConvergence;
pub use drive::{DriverStats, NodeDriver};
pub use extremum::{Extremum, ExtremumGossip};
pub use flow_updating::FlowUpdating;
pub use payload::{InlineVec, Mass, Payload, INLINE_CAP};
pub use protocol::ReductionProtocol;
pub use push_cancel_flow::{PcfMsg, PhiMode, PushCancelFlow};
pub use push_flow::PushFlow;
pub use push_pull_sum::PushPullSum;
pub use push_sum::PushSum;
pub use runner::{
    mass_reference, measure_error, run_reduction, run_with_options, run_with_protocol,
    run_with_schedule, Algorithm, ErrorSample, Measurer, RunConfig, RunResult,
};
pub use wire::{WireError, WireMsg, FRAME_HEADER, WIRE_VERSION};
