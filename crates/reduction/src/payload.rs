//! Data payloads flowing through the reduction protocols.
//!
//! The push-sum family aggregates a pair `(value, weight)`: the estimate at
//! a node is `value/weight`. The *value* may be a scalar or a short vector
//! (vector payloads let `gr-dmgs` batch all the dot products of one
//! orthogonalization step into a single reduction); the *weight* is always
//! a scalar. [`Mass`] bundles the two — it is simultaneously the unit of
//! initial data, the flow-variable type of PF/PCF, and the wire payload.

use gr_netsim::Corrupt;
use std::fmt;

/// The value component of a mass: scalar `f64` or a fixed-dimension vector.
///
/// All arithmetic is plain IEEE-754 — deliberately so: the numerical
/// weaknesses of push-flow that the paper analyses *are* plain-f64
/// artefacts, and compensated tricks here would mask the phenomenon under
/// study.
pub trait Payload: Clone + PartialEq + fmt::Debug + Corrupt + Send + 'static {
    /// A zero value of dimension `dim`.
    fn zeros(dim: usize) -> Self;

    /// Number of scalar components.
    fn dim(&self) -> usize;

    /// `self += rhs` componentwise.
    fn add_assign(&mut self, rhs: &Self);

    /// `self -= rhs` componentwise.
    fn sub_assign(&mut self, rhs: &Self);

    /// `self = -self`.
    fn negate(&mut self);

    /// `self *= s`.
    fn scale(&mut self, s: f64);

    /// Set every component to exactly `+0.0` (keeping the allocation of
    /// vector payloads). Unlike `scale(0.0)` this also clears non-finite
    /// components, so it is the right primitive for zeroing a possibly
    /// corrupted flow.
    fn set_zero(&mut self);

    /// IEEE semantic equality of every component (`0.0 == -0.0`, NaN never
    /// equal). This is the conservation test `f_{j,i} = −f_{i,j}` of the
    /// PCF pseudocode: it holds exactly when the last exchange on the edge
    /// completed, because receivers produce their flow by negating the
    /// sender's bits.
    fn eq_components(&self, rhs: &Self) -> bool;

    /// `true` iff `self == -rhs` componentwise (without allocating).
    fn is_neg_of(&self, rhs: &Self) -> bool;

    /// Read-only view of the scalar components.
    fn components(&self) -> &[f64];

    /// Build a payload from scalar components.
    ///
    /// # Panics
    /// Implementations panic if the slice length does not fit the type
    /// (scalar payloads require exactly one component).
    fn from_components(comps: &[f64]) -> Self;
}

impl Payload for f64 {
    #[inline]
    fn zeros(dim: usize) -> Self {
        assert_eq!(dim, 1, "scalar payload has dimension 1, asked for {dim}");
        0.0
    }
    #[inline]
    fn dim(&self) -> usize {
        1
    }
    #[inline]
    fn add_assign(&mut self, rhs: &Self) {
        *self += *rhs;
    }
    #[inline]
    fn sub_assign(&mut self, rhs: &Self) {
        *self -= *rhs;
    }
    #[inline]
    fn negate(&mut self) {
        *self = -*self;
    }
    #[inline]
    fn scale(&mut self, s: f64) {
        *self *= s;
    }
    #[inline]
    fn set_zero(&mut self) {
        *self = 0.0;
    }
    #[inline]
    fn eq_components(&self, rhs: &Self) -> bool {
        *self == *rhs
    }
    #[inline]
    fn is_neg_of(&self, rhs: &Self) -> bool {
        *self == -*rhs
    }
    #[inline]
    fn components(&self) -> &[f64] {
        std::slice::from_ref(self)
    }
    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        assert_eq!(comps.len(), 1, "scalar payload has one component");
        comps[0]
    }
}

impl Payload for Vec<f64> {
    fn zeros(dim: usize) -> Self {
        vec![0.0; dim]
    }
    fn dim(&self) -> usize {
        self.len()
    }
    fn add_assign(&mut self, rhs: &Self) {
        debug_assert_eq!(self.len(), rhs.len());
        for (a, b) in self.iter_mut().zip(rhs) {
            *a += *b;
        }
    }
    fn sub_assign(&mut self, rhs: &Self) {
        debug_assert_eq!(self.len(), rhs.len());
        for (a, b) in self.iter_mut().zip(rhs) {
            *a -= *b;
        }
    }
    fn negate(&mut self) {
        for a in self.iter_mut() {
            *a = -*a;
        }
    }
    fn scale(&mut self, s: f64) {
        for a in self.iter_mut() {
            *a *= s;
        }
    }
    fn set_zero(&mut self) {
        self.fill(0.0);
    }
    fn eq_components(&self, rhs: &Self) -> bool {
        self.len() == rhs.len() && self.iter().zip(rhs).all(|(a, b)| a == b)
    }
    fn is_neg_of(&self, rhs: &Self) -> bool {
        self.len() == rhs.len() && self.iter().zip(rhs).all(|(a, b)| *a == -*b)
    }
    fn components(&self) -> &[f64] {
        self
    }
    fn from_components(comps: &[f64]) -> Self {
        comps.to_vec()
    }
}

/// A `(value, weight)` pair — the paper's `(x_i, w_i)` tuples.
#[derive(Clone, Debug, PartialEq)]
pub struct Mass<P> {
    /// Aggregated data.
    pub value: P,
    /// Aggregation weight.
    pub weight: f64,
}

impl<P: Payload> Mass<P> {
    /// A new mass.
    pub fn new(value: P, weight: f64) -> Self {
        Mass { value, weight }
    }

    /// The zero mass of dimension `dim`.
    pub fn zero(dim: usize) -> Self {
        Mass {
            value: P::zeros(dim),
            weight: 0.0,
        }
    }

    /// Dimension of the value component.
    pub fn dim(&self) -> usize {
        self.value.dim()
    }

    /// `self += rhs`.
    #[inline]
    pub fn add_assign(&mut self, rhs: &Self) {
        self.value.add_assign(&rhs.value);
        self.weight += rhs.weight;
    }

    /// `self -= rhs`.
    #[inline]
    pub fn sub_assign(&mut self, rhs: &Self) {
        self.value.sub_assign(&rhs.value);
        self.weight -= rhs.weight;
    }

    /// `self = -self`.
    #[inline]
    pub fn negate(&mut self) {
        self.value.negate();
        self.weight = -self.weight;
    }

    /// A negated copy.
    #[inline]
    pub fn negated(&self) -> Self {
        let mut m = self.clone();
        m.negate();
        m
    }

    /// `self *= s` (value and weight).
    #[inline]
    pub fn scale(&mut self, s: f64) {
        self.value.scale(s);
        self.weight *= s;
    }

    /// Set to zero in place (keeps the allocation of vector payloads).
    #[inline]
    pub fn clear(&mut self) {
        self.value.set_zero();
        self.weight = 0.0;
    }

    /// Conservation test: `self == -rhs` on every component and the weight.
    #[inline]
    pub fn is_neg_of(&self, rhs: &Self) -> bool {
        self.weight == -rhs.weight && self.value.is_neg_of(&rhs.value)
    }

    /// `true` iff value and weight are all exactly zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.weight == 0.0 && self.value.components().iter().all(|&c| c == 0.0)
    }

    /// The estimate this mass encodes, written componentwise into `out`:
    /// `out[k] = value[k] / weight`.
    #[inline]
    pub fn write_estimate(&self, out: &mut [f64]) {
        let comps = self.value.components();
        debug_assert_eq!(out.len(), comps.len());
        for (o, &c) in out.iter_mut().zip(comps) {
            *o = c / self.weight;
        }
    }
}

impl<P: Payload> Corrupt for Mass<P> {
    fn corruptible_bits(&self) -> u32 {
        self.value.corruptible_bits() + 64
    }
    fn flip_bit(&mut self, bit: u32) {
        let vb = self.value.corruptible_bits();
        if bit < vb {
            self.value.flip_bit(bit);
        } else {
            self.weight.flip_bit(bit - vb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_payload_ops() {
        let mut x = 2.0f64;
        x.add_assign(&3.0);
        assert_eq!(x, 5.0);
        x.negate();
        assert_eq!(x, -5.0);
        x.scale(2.0);
        assert_eq!(x, -10.0);
        assert!(x.is_neg_of(&10.0));
        assert_eq!(x.components(), &[-10.0]);
        assert_eq!(f64::zeros(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension 1")]
    fn scalar_payload_wrong_dim() {
        let _ = f64::zeros(3);
    }

    #[test]
    fn vector_payload_ops() {
        let mut v = vec![1.0, -2.0];
        v.add_assign(&vec![1.0, 1.0]);
        assert_eq!(v, vec![2.0, -1.0]);
        v.scale(-1.0);
        assert!(v.is_neg_of(&vec![2.0, -1.0]));
        assert_eq!(Vec::<f64>::zeros(3), vec![0.0; 3]);
    }

    #[test]
    fn signed_zero_is_semantically_equal() {
        // Conservation must hold between 0.0 and -0.0 (bit patterns differ).
        assert!(0.0f64.is_neg_of(&-0.0));
        assert!(0.0f64.is_neg_of(&0.0));
        assert!(Mass::new(0.0, 0.0).is_neg_of(&Mass::new(-0.0, -0.0)));
    }

    #[test]
    fn nan_is_never_conserved() {
        let m = Mass::new(f64::NAN, 0.0);
        assert!(!m.is_neg_of(&m.negated()));
    }

    #[test]
    fn mass_arithmetic() {
        let mut m = Mass::new(4.0, 1.0);
        m.add_assign(&Mass::new(1.0, 0.5));
        assert_eq!(m, Mass::new(5.0, 1.5));
        m.sub_assign(&Mass::new(5.0, 0.5));
        assert_eq!(m, Mass::new(0.0, 1.0));
        m.scale(0.5);
        assert_eq!(m.weight, 0.5);
    }

    #[test]
    fn mass_clear_handles_nonfinite() {
        let mut m = Mass::new(f64::INFINITY, 3.0);
        m.clear();
        assert!(m.is_zero());
        let mut v = Mass::new(vec![f64::NAN, 1.0], 2.0);
        v.clear();
        assert!(v.is_zero());
    }

    #[test]
    fn mass_estimate() {
        let m = Mass::new(vec![6.0, 9.0], 3.0);
        let mut out = [0.0; 2];
        m.write_estimate(&mut out);
        assert_eq!(out, [2.0, 3.0]);
    }

    #[test]
    fn mass_corruption_reaches_weight() {
        let mut m = Mass::new(1.0f64, 1.0);
        assert_eq!(m.corruptible_bits(), 128);
        m.flip_bit(64 + 63); // sign bit of weight
        assert_eq!(m.weight, -1.0);
        assert_eq!(m.value, 1.0);
    }

    #[test]
    fn conservation_after_negation_roundtrip() {
        let m = Mass::new(vec![1.25, -7.5, 0.0], 2.5);
        assert!(m.is_neg_of(&m.negated()));
        assert!(m.negated().is_neg_of(&m));
        assert!(!m.is_neg_of(&m));
    }
}
