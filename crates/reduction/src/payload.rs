//! Data payloads flowing through the reduction protocols.
//!
//! The push-sum family aggregates a pair `(value, weight)`: the estimate at
//! a node is `value/weight`. The *value* may be a scalar or a short vector
//! (vector payloads let `gr-dmgs` batch all the dot products of one
//! orthogonalization step into a single reduction); the *weight* is always
//! a scalar. [`Mass`] bundles the two — it is simultaneously the unit of
//! initial data, the flow-variable type of PF/PCF, and the wire payload.

use gr_netsim::Corrupt;
use std::fmt;

/// The value component of a mass: scalar `f64` or a fixed-dimension vector.
///
/// All arithmetic is plain IEEE-754 — deliberately so: the numerical
/// weaknesses of push-flow that the paper analyses *are* plain-f64
/// artefacts, and compensated tricks here would mask the phenomenon under
/// study.
pub trait Payload: Clone + PartialEq + fmt::Debug + Corrupt + Send + 'static {
    /// A zero value of dimension `dim`.
    fn zeros(dim: usize) -> Self;

    /// Number of scalar components.
    fn dim(&self) -> usize;

    /// `self += rhs` componentwise.
    fn add_assign(&mut self, rhs: &Self);

    /// `self -= rhs` componentwise.
    fn sub_assign(&mut self, rhs: &Self);

    /// `self = -self`.
    fn negate(&mut self);

    /// `self *= s`.
    fn scale(&mut self, s: f64);

    /// Set every component to exactly `+0.0` (keeping the allocation of
    /// vector payloads). Unlike `scale(0.0)` this also clears non-finite
    /// components, so it is the right primitive for zeroing a possibly
    /// corrupted flow.
    fn set_zero(&mut self);

    /// IEEE semantic equality of every component (`0.0 == -0.0`, NaN never
    /// equal). This is the conservation test `f_{j,i} = −f_{i,j}` of the
    /// PCF pseudocode: it holds exactly when the last exchange on the edge
    /// completed, because receivers produce their flow by negating the
    /// sender's bits.
    fn eq_components(&self, rhs: &Self) -> bool;

    /// `true` iff `self == -rhs` componentwise (without allocating).
    fn is_neg_of(&self, rhs: &Self) -> bool;

    /// Read-only view of the scalar components.
    fn components(&self) -> &[f64];

    /// Build a payload from scalar components.
    ///
    /// # Panics
    /// Implementations panic if the slice length does not fit the type
    /// (scalar payloads require exactly one component).
    fn from_components(comps: &[f64]) -> Self;

    /// Mutable view of the scalar components.
    ///
    /// The slice aliases the payload's storage, so componentwise kernels
    /// (the structure-of-arrays flow banks) can update a payload in place
    /// without routing every operation through a `Self`-typed temporary.
    fn components_mut(&mut self) -> &mut [f64];

    /// Overwrite `self` with `comps`, reusing the existing allocation
    /// whenever the dimension already matches (it always does on the
    /// steady-state paths — payload dimensions are fixed per run). This is
    /// the no-alloc counterpart of [`Payload::from_components`] used when
    /// refilling recycled wire buffers.
    fn copy_from_components(&mut self, comps: &[f64]);
}

impl Payload for f64 {
    #[inline]
    fn zeros(dim: usize) -> Self {
        assert_eq!(dim, 1, "scalar payload has dimension 1, asked for {dim}");
        0.0
    }
    #[inline]
    fn dim(&self) -> usize {
        1
    }
    #[inline]
    fn add_assign(&mut self, rhs: &Self) {
        *self += *rhs;
    }
    #[inline]
    fn sub_assign(&mut self, rhs: &Self) {
        *self -= *rhs;
    }
    #[inline]
    fn negate(&mut self) {
        *self = -*self;
    }
    #[inline]
    fn scale(&mut self, s: f64) {
        *self *= s;
    }
    #[inline]
    fn set_zero(&mut self) {
        *self = 0.0;
    }
    #[inline]
    fn eq_components(&self, rhs: &Self) -> bool {
        *self == *rhs
    }
    #[inline]
    fn is_neg_of(&self, rhs: &Self) -> bool {
        *self == -*rhs
    }
    #[inline]
    fn components(&self) -> &[f64] {
        std::slice::from_ref(self)
    }
    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        assert_eq!(comps.len(), 1, "scalar payload has one component");
        comps[0]
    }
    #[inline]
    fn components_mut(&mut self) -> &mut [f64] {
        std::slice::from_mut(self)
    }
    #[inline]
    fn copy_from_components(&mut self, comps: &[f64]) {
        assert_eq!(comps.len(), 1, "scalar payload has one component");
        *self = comps[0];
    }
}

impl Payload for Vec<f64> {
    fn zeros(dim: usize) -> Self {
        vec![0.0; dim]
    }
    fn dim(&self) -> usize {
        self.len()
    }
    fn add_assign(&mut self, rhs: &Self) {
        debug_assert_eq!(self.len(), rhs.len());
        crate::kernels::add(self, rhs);
    }
    fn sub_assign(&mut self, rhs: &Self) {
        debug_assert_eq!(self.len(), rhs.len());
        crate::kernels::sub(self, rhs);
    }
    fn negate(&mut self) {
        crate::kernels::neg(self);
    }
    fn scale(&mut self, s: f64) {
        crate::kernels::scale(self, s);
    }
    fn set_zero(&mut self) {
        self.fill(0.0);
    }
    fn eq_components(&self, rhs: &Self) -> bool {
        self.len() == rhs.len() && self.iter().zip(rhs).all(|(a, b)| a == b)
    }
    fn is_neg_of(&self, rhs: &Self) -> bool {
        crate::kernels::is_neg(self, rhs)
    }
    fn components(&self) -> &[f64] {
        self
    }
    fn from_components(comps: &[f64]) -> Self {
        comps.to_vec()
    }
    fn components_mut(&mut self) -> &mut [f64] {
        self
    }
    fn copy_from_components(&mut self, comps: &[f64]) {
        if self.len() == comps.len() {
            self.copy_from_slice(comps);
        } else {
            self.clear();
            self.extend_from_slice(comps);
        }
    }
}

/// Largest dimension an [`InlineVec`] stores inline (in the payload
/// itself, without a heap allocation). Chosen to cover the dot-product
/// batches `gr-dmgs` actually ships (a panel of ≤16 columns) while keeping
/// the inline footprint at two cache lines.
pub const INLINE_CAP: usize = 16;

/// The storage of an [`InlineVec`]: components live in the fixed inline
/// buffer up to [`INLINE_CAP`], on the heap above it. The representation is
/// decided once (by the construction dimension) and never migrates —
/// payload dimensions are fixed per run.
#[derive(Clone, Debug)]
enum Repr {
    Inline { len: u8, buf: [f64; INLINE_CAP] },
    Heap(Vec<f64>),
}

/// A small-vector payload: bit-identical arithmetic to `Vec<f64>`, but
/// dimensions up to [`INLINE_CAP`] are stored inline so cloning a mass or
/// refilling a wire buffer never touches the allocator.
///
/// Every operation routes through [`InlineVec::as_slice`] /
/// [`InlineVec::as_mut_slice`] and reuses the exact componentwise loops of
/// the `Vec<f64>` impl, so a run over `InlineVec` payloads replays the
/// `Vec<f64>` run bit for bit (pinned by the `payload_equiv` proptest).
#[derive(Debug)]
pub struct InlineVec(Repr);

impl InlineVec {
    /// Read-only view of the components.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Mutable view of the components.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// `true` iff the components are stored inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Clone for InlineVec {
    #[inline]
    fn clone(&self) -> Self {
        InlineVec(self.0.clone())
    }
    #[inline]
    fn clone_from(&mut self, source: &Self) {
        // Reuse an existing heap buffer instead of reallocating (the
        // derived `clone_from` would drop and clone). Inline reprs are a
        // plain copy either way.
        match (&mut self.0, &source.0) {
            (Repr::Heap(dst), Repr::Heap(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl PartialEq for InlineVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<f64>> for InlineVec {
    fn from(v: Vec<f64>) -> Self {
        InlineVec::from_components(&v)
    }
}

impl Corrupt for InlineVec {
    fn corruptible_bits(&self) -> u32 {
        // Same layout as `Vec<f64>`: 64 sequential bits per component.
        self.as_slice().len() as u32 * 64
    }
    fn flip_bit(&mut self, bit: u32) {
        let comps = self.as_mut_slice();
        let idx = (bit / 64) as usize;
        assert!(idx < comps.len(), "bit index out of range for InlineVec");
        comps[idx].flip_bit(bit % 64);
    }
}

impl Payload for InlineVec {
    fn zeros(dim: usize) -> Self {
        if dim <= INLINE_CAP {
            InlineVec(Repr::Inline {
                len: dim as u8,
                buf: [0.0; INLINE_CAP],
            })
        } else {
            InlineVec(Repr::Heap(vec![0.0; dim]))
        }
    }
    fn dim(&self) -> usize {
        self.as_slice().len()
    }
    fn add_assign(&mut self, rhs: &Self) {
        let (a, b) = (self.as_mut_slice(), rhs.as_slice());
        debug_assert_eq!(a.len(), b.len());
        crate::kernels::add(a, b);
    }
    fn sub_assign(&mut self, rhs: &Self) {
        let (a, b) = (self.as_mut_slice(), rhs.as_slice());
        debug_assert_eq!(a.len(), b.len());
        crate::kernels::sub(a, b);
    }
    fn negate(&mut self) {
        crate::kernels::neg(self.as_mut_slice());
    }
    fn scale(&mut self, s: f64) {
        crate::kernels::scale(self.as_mut_slice(), s);
    }
    fn set_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }
    fn eq_components(&self, rhs: &Self) -> bool {
        let (a, b) = (self.as_slice(), rhs.as_slice());
        a.len() == b.len() && a.iter().zip(b).all(|(a, b)| a == b)
    }
    fn is_neg_of(&self, rhs: &Self) -> bool {
        crate::kernels::is_neg(self.as_slice(), rhs.as_slice())
    }
    fn components(&self) -> &[f64] {
        self.as_slice()
    }
    fn from_components(comps: &[f64]) -> Self {
        let mut v = Self::zeros(comps.len());
        v.as_mut_slice().copy_from_slice(comps);
        v
    }
    fn components_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
    fn copy_from_components(&mut self, comps: &[f64]) {
        if self.as_slice().len() == comps.len() {
            self.as_mut_slice().copy_from_slice(comps);
        } else {
            *self = Self::from_components(comps);
        }
    }
}

/// A `(value, weight)` pair — the paper's `(x_i, w_i)` tuples.
#[derive(Clone, Debug, PartialEq)]
pub struct Mass<P> {
    /// Aggregated data.
    pub value: P,
    /// Aggregation weight.
    pub weight: f64,
}

impl<P: Payload> Mass<P> {
    /// A new mass.
    pub fn new(value: P, weight: f64) -> Self {
        Mass { value, weight }
    }

    /// The zero mass of dimension `dim`.
    pub fn zero(dim: usize) -> Self {
        Mass {
            value: P::zeros(dim),
            weight: 0.0,
        }
    }

    /// Dimension of the value component.
    pub fn dim(&self) -> usize {
        self.value.dim()
    }

    /// `self += rhs`.
    #[inline]
    pub fn add_assign(&mut self, rhs: &Self) {
        self.value.add_assign(&rhs.value);
        self.weight += rhs.weight;
    }

    /// `self -= rhs`.
    #[inline]
    pub fn sub_assign(&mut self, rhs: &Self) {
        self.value.sub_assign(&rhs.value);
        self.weight -= rhs.weight;
    }

    /// `self = -self`.
    #[inline]
    pub fn negate(&mut self) {
        self.value.negate();
        self.weight = -self.weight;
    }

    /// A negated copy.
    #[inline]
    pub fn negated(&self) -> Self {
        let mut m = self.clone();
        m.negate();
        m
    }

    /// `self *= s` (value and weight).
    #[inline]
    pub fn scale(&mut self, s: f64) {
        self.value.scale(s);
        self.weight *= s;
    }

    /// Set to zero in place (keeps the allocation of vector payloads).
    #[inline]
    pub fn clear(&mut self) {
        self.value.set_zero();
        self.weight = 0.0;
    }

    /// Overwrite `self` with `src` without allocating (dimension
    /// permitting) — the recycled-wire-buffer counterpart of `clone_from`.
    #[inline]
    pub fn copy_from(&mut self, src: &Self) {
        self.value.copy_from_components(src.value.components());
        self.weight = src.weight;
    }

    /// Conservation test: `self == -rhs` on every component and the weight.
    #[inline]
    pub fn is_neg_of(&self, rhs: &Self) -> bool {
        self.weight == -rhs.weight && self.value.is_neg_of(&rhs.value)
    }

    /// `true` iff value and weight are all exactly zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.weight == 0.0 && self.value.components().iter().all(|&c| c == 0.0)
    }

    /// The estimate this mass encodes, written componentwise into `out`:
    /// `out[k] = value[k] / weight`.
    #[inline]
    pub fn write_estimate(&self, out: &mut [f64]) {
        let comps = self.value.components();
        debug_assert_eq!(out.len(), comps.len());
        for (o, &c) in out.iter_mut().zip(comps) {
            *o = c / self.weight;
        }
    }
}

impl<P: Payload> Corrupt for Mass<P> {
    fn corruptible_bits(&self) -> u32 {
        self.value.corruptible_bits() + 64
    }
    fn flip_bit(&mut self, bit: u32) {
        let vb = self.value.corruptible_bits();
        if bit < vb {
            self.value.flip_bit(bit);
        } else {
            self.weight.flip_bit(bit - vb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_payload_ops() {
        let mut x = 2.0f64;
        x.add_assign(&3.0);
        assert_eq!(x, 5.0);
        x.negate();
        assert_eq!(x, -5.0);
        x.scale(2.0);
        assert_eq!(x, -10.0);
        assert!(x.is_neg_of(&10.0));
        assert_eq!(x.components(), &[-10.0]);
        assert_eq!(f64::zeros(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension 1")]
    fn scalar_payload_wrong_dim() {
        let _ = f64::zeros(3);
    }

    #[test]
    fn vector_payload_ops() {
        let mut v = vec![1.0, -2.0];
        v.add_assign(&vec![1.0, 1.0]);
        assert_eq!(v, vec![2.0, -1.0]);
        v.scale(-1.0);
        assert!(v.is_neg_of(&vec![2.0, -1.0]));
        assert_eq!(Vec::<f64>::zeros(3), vec![0.0; 3]);
    }

    #[test]
    fn signed_zero_is_semantically_equal() {
        // Conservation must hold between 0.0 and -0.0 (bit patterns differ).
        assert!(0.0f64.is_neg_of(&-0.0));
        assert!(0.0f64.is_neg_of(&0.0));
        assert!(Mass::new(0.0, 0.0).is_neg_of(&Mass::new(-0.0, -0.0)));
    }

    #[test]
    fn nan_is_never_conserved() {
        let m = Mass::new(f64::NAN, 0.0);
        assert!(!m.is_neg_of(&m.negated()));
    }

    #[test]
    fn mass_arithmetic() {
        let mut m = Mass::new(4.0, 1.0);
        m.add_assign(&Mass::new(1.0, 0.5));
        assert_eq!(m, Mass::new(5.0, 1.5));
        m.sub_assign(&Mass::new(5.0, 0.5));
        assert_eq!(m, Mass::new(0.0, 1.0));
        m.scale(0.5);
        assert_eq!(m.weight, 0.5);
    }

    #[test]
    fn mass_clear_handles_nonfinite() {
        let mut m = Mass::new(f64::INFINITY, 3.0);
        m.clear();
        assert!(m.is_zero());
        let mut v = Mass::new(vec![f64::NAN, 1.0], 2.0);
        v.clear();
        assert!(v.is_zero());
    }

    #[test]
    fn mass_estimate() {
        let m = Mass::new(vec![6.0, 9.0], 3.0);
        let mut out = [0.0; 2];
        m.write_estimate(&mut out);
        assert_eq!(out, [2.0, 3.0]);
    }

    #[test]
    fn mass_corruption_reaches_weight() {
        let mut m = Mass::new(1.0f64, 1.0);
        assert_eq!(m.corruptible_bits(), 128);
        m.flip_bit(64 + 63); // sign bit of weight
        assert_eq!(m.weight, -1.0);
        assert_eq!(m.value, 1.0);
    }

    #[test]
    fn inline_vec_matches_vec_ops_both_sides_of_cap() {
        for dim in [1, 4, INLINE_CAP, INLINE_CAP + 8, 64] {
            let comps: Vec<f64> = (0..dim).map(|k| 0.5 * k as f64 - 3.0).collect();
            let rhs: Vec<f64> = (0..dim).map(|k| 1.0 / (k as f64 + 1.0)).collect();
            let mut iv = InlineVec::from_components(&comps);
            assert_eq!(iv.is_inline(), dim <= INLINE_CAP);
            assert_eq!(iv.dim(), dim);
            let mut v = comps.clone();
            iv.add_assign(&InlineVec::from_components(&rhs));
            v.add_assign(&rhs);
            assert_eq!(iv.components(), v.as_slice());
            iv.scale(-0.75);
            v.scale(-0.75);
            assert_eq!(iv.components(), v.as_slice());
            iv.sub_assign(&InlineVec::from_components(&rhs));
            v.sub_assign(&rhs);
            assert_eq!(iv.components(), v.as_slice());
            let neg = {
                let mut n = iv.clone();
                n.negate();
                n
            };
            assert!(iv.is_neg_of(&neg));
            assert!(iv.eq_components(&iv.clone()));
            iv.set_zero();
            assert!(iv.components().iter().all(|&c| c == 0.0));
        }
    }

    #[test]
    fn inline_vec_corruption_matches_vec_layout() {
        for dim in [3, INLINE_CAP + 2] {
            let comps: Vec<f64> = (0..dim).map(|k| k as f64 + 1.0).collect();
            let mut iv = InlineVec::from_components(&comps);
            let mut v = comps.clone();
            assert_eq!(iv.corruptible_bits(), v.corruptible_bits());
            for bit in [0, 63, 64 * (dim as u32 - 1) + 17] {
                iv.flip_bit(bit);
                v.flip_bit(bit);
            }
            assert_eq!(iv.components(), v.as_slice());
        }
    }

    #[test]
    fn inline_vec_copy_from_components_reuses_storage() {
        let mut iv = InlineVec::zeros(4);
        iv.copy_from_components(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(iv.components(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(iv.is_inline());
        let mut big = InlineVec::zeros(INLINE_CAP + 4);
        assert!(!big.is_inline());
        let vals: Vec<f64> = (0..INLINE_CAP + 4).map(|k| k as f64).collect();
        big.copy_from_components(&vals);
        assert_eq!(big.components(), vals.as_slice());
    }

    #[test]
    fn mass_copy_from_matches_clone() {
        let src = Mass::new(InlineVec::from_components(&[1.5, -2.5]), 0.75);
        let mut dst = Mass::zero(2);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn conservation_after_negation_roundtrip() {
        let m = Mass::new(vec![1.25, -7.5, 0.0], 2.5);
        assert!(m.is_neg_of(&m.negated()));
        assert!(m.negated().is_neg_of(&m));
        assert!(!m.is_neg_of(&m));
    }
}
