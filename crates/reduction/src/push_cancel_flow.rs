//! The push-cancel-flow (PCF) algorithm — the paper's contribution
//! (Fig. 5).
//!
//! # Why PF is not enough
//!
//! In push-flow, flow variables converge to execution-dependent values
//! that are unrelated to (and often vastly larger than) the aggregate.
//! Two consequences (paper Sec. II): catastrophic cancellation in
//! `e_i = v_i − Σf` limits the achievable accuracy, increasingly so with
//! scale; and zeroing a flow on permanent-failure handling perturbs the
//! local estimate by the flow's magnitude — a near-restart.
//!
//! # The cancel-flow idea
//!
//! Keep exchanging *only* flows (that is where all the fault tolerance
//! lives), but continuously *cancel* them: whenever an edge's flow pair is
//! conserved (`f_{i,j} = −f_{j,i}` exactly), both endpoints fold their
//! flow into a local "sum of flows" accumulator `ϕ` and reset the flow
//! variable to zero. The two folded values cancel globally, so mass is
//! conserved, and each node's estimate `e_i` is untouched. To keep the
//! computation running while cancellation is in progress, every edge
//! carries **two** flows in alternating roles: an *active* flow running
//! plain PF, and a *passive* flow being driven to zero. Control variables
//! `c_{i,j} ∈ {1,2}` (which slot is active) and `r_{i,j}` (how many role
//! swaps happened) coordinate the two endpoints; all comparisons are
//! *exact* floating-point equality, which works because flow values
//! propagate by negation of the sender's bits — and which makes any
//! bit-flipped value fail the test and be retried rather than folded.
//!
//! The result: flows never accumulate more than a few halved estimates
//! before being reset, so their magnitude tracks the target aggregate.
//! Subtracting them loses no precision, and excising them on failure
//! barely moves the estimate. PCF is otherwise *equivalent* to PF — for
//! the same schedule it performs the same aggregate-carrying exchanges.
//!
//! # ϕ-update variants
//!
//! [`PhiMode::Eager`] is Fig. 5 as printed: `ϕ` mirrors the running sum of
//! all flows (updated at lines 11/23/32), and `e_i = v_i − ϕ_i` costs
//! O(1). A bit flip that corrupts a received flow transiently pollutes
//! `ϕ`, but the pollution cancels at the next successful exchange on that
//! edge (the same self-healing as PF).
//! [`PhiMode::Hardened`] is the variant the paper sketches for full
//! bit-flip tolerance: `ϕ` accumulates *only* cancelled flows (updated
//! just before a flow is zeroed), and the live flows are re-summed for
//! every estimate: `e_i = v_i − ϕ_i − Σ_j (f_{i,j,1} + f_{i,j,2})`. That
//! re-summation is benign here precisely because PCF keeps flows small.

use crate::aggregate::InitialData;
use crate::bank::{self, FlowBank};
use crate::payload::{Mass, Payload};
use crate::protocol::ReductionProtocol;
use gr_netsim::{Corrupt, Protocol};
use gr_topology::{Graph, NodeId};

/// How the sum-of-flows accumulator `ϕ` is maintained (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PhiMode {
    /// Fig. 5 as printed: `ϕ` tracks the running flow sum; O(1) estimates.
    #[default]
    Eager,
    /// Bit-flip-hardened: `ϕ` holds only cancelled flows; estimates re-sum
    /// the live flows (O(deg)). Non-finite message fields are always
    /// rejected in this mode — a NaN that reached a fold would be locked
    /// into `ϕ` permanently.
    Hardened,
}

/// The wire message of PCF: both flow slots plus the control variables
/// (paper Fig. 5 line 33: "Send ⟨f_{i,k,1}, f_{i,k,2}, c_{i,k}, r_{i,k}⟩"),
/// extended with the sender's most recently folded value for this edge.
///
/// The `folded` field is this implementation's extension beyond Fig. 5:
/// it lets the fold-acknowledgement receiver *verify and re-synchronise*
/// against exactly what the peer folded, which makes the cancellation
/// handshake safe under message delay. In the paper's model (delivery
/// within the iteration) the re-sync is always a bitwise no-op; with
/// delayed links the unextended protocol systematically destroys mass
/// through mismatched folds (see `ablation_execution_models` and
/// DESIGN.md §4).
#[derive(Clone, Debug, PartialEq)]
pub struct PcfMsg<P> {
    /// Flow slot 1.
    pub f1: Mass<P>,
    /// Flow slot 2.
    pub f2: Mass<P>,
    /// Which slot the sender considers active (1 or 2).
    pub c: u8,
    /// The sender's role-swap counter for this edge.
    pub r: u64,
    /// The value of the sender's passive flow at its last fold on this
    /// edge (zero before any fold).
    pub folded: Mass<P>,
    /// The sender's cumulative fold ledger for this edge (see the
    /// [`BASE`] bank field's docs).
    pub base: Mass<P>,
    /// The sender's incarnation number for this edge (see
    /// [`ArcCtl::inc`] — bumped on every excision).
    pub inc: u64,
}

impl<P: Payload> Corrupt for PcfMsg<P> {
    fn corruptible_bits(&self) -> u32 {
        self.f1.corruptible_bits()
            + self.f2.corruptible_bits()
            + self.folded.corruptible_bits()
            + self.base.corruptible_bits()
            + 8
            + 64
            + 64
    }
    fn flip_bit(&mut self, mut bit: u32) {
        let b1 = self.f1.corruptible_bits();
        if bit < b1 {
            return self.f1.flip_bit(bit);
        }
        bit -= b1;
        let b2 = self.f2.corruptible_bits();
        if bit < b2 {
            return self.f2.flip_bit(bit);
        }
        bit -= b2;
        let b3 = self.folded.corruptible_bits();
        if bit < b3 {
            return self.folded.flip_bit(bit);
        }
        bit -= b3;
        let b4 = self.base.corruptible_bits();
        if bit < b4 {
            return self.base.flip_bit(bit);
        }
        bit -= b4;
        if bit < 8 {
            self.c ^= 1 << bit;
        } else if bit < 72 {
            self.r ^= 1 << (bit - 8);
        } else {
            self.inc ^= 1 << (bit - 72);
        }
    }
}

/// Per-run instrumentation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcfStats {
    /// Passive flows driven to zero (folds).
    pub cancellations: u64,
    /// Active/passive role swaps completed.
    pub swaps: u64,
    /// Messages dropped because the control field was corrupted out of
    /// range (`c ∉ {1, 2}`).
    pub rejected_messages: u64,
    /// Fold acknowledgements whose passive flow had moved since the peer
    /// verified it and had to be re-synchronised to the advertised folded
    /// value (always 0 in the paper's intra-round delivery model; nonzero
    /// only under message delay).
    pub fold_resyncs: u64,
    /// Messages ignored because sender and receiver disagreed about which
    /// slot is active and the swap counters did not permit adoption.
    pub ignored_messages: u64,
    /// Messages rejected because they carried a stale incarnation number:
    /// they were in flight when the receiver excised the arc, and acting
    /// on them would re-apply flow state that has already been folded.
    pub stale_rejected: u64,
    /// Arc resets forced by a peer's higher incarnation number: the peer
    /// excised the arc (suspicion or failure detection) and folded its
    /// half of the flow pair, so we fold ours — the two folds cancel
    /// globally — and join the new incarnation fresh.
    pub recancellations: u64,
}

impl PcfStats {
    /// Componentwise sum — folds per-partition counter banks into one
    /// run-level view.
    fn absorb(&mut self, d: &PcfStats) {
        self.cancellations += d.cancellations;
        self.swaps += d.swaps;
        self.rejected_messages += d.rejected_messages;
        self.fold_resyncs += d.fold_resyncs;
        self.ignored_messages += d.ignored_messages;
        self.stale_rejected += d.stale_rejected;
        self.recancellations += d.recancellations;
    }
}

/// Bank field index of flow slot 1 (`f_{i,j,1}`).
const F1: usize = 0;
/// Bank field index of flow slot 2 (`f_{i,j,2}`).
const F2: usize = 1;
/// Bank field index of the value most recently folded on the arc
/// (advertised in messages so the peer can verify/re-sync its matching
/// fold; see [`PcfMsg`]).
const FOLDED: usize = 2;
/// Bank field index of the cumulative fold ledger: every value folded on
/// the arc — ordinary cancellations and excisions alike — is added, never
/// removed. Completed ordinary folds keep the two endpoints' ledgers
/// exact negations of each other (the ack path re-syncs them bitwise);
/// an excision breaks that symmetry *unilaterally*, so the ledger is
/// advertised on the wire and the incarnation-adoption path restores
/// antisymmetry by overwriting the adopter's ledger with the negation
/// of the peer's — the pair-ledger analogue of PF's absolute-flow
/// overwrite, and like it self-healing under loss and reordering.
/// Its magnitude converges to the arc's net equilibrium transport,
/// which can exceed the live-flow bound — worth remembering when
/// sizing a [`PushCancelFlow::with_guard`] bound.
const BASE: usize = 3;
/// Vector variables per arc in the bank.
const FIELDS: usize = 4;

/// The flow slot a control value designates (`c ∈ {1, 2}` maps to bank
/// field `F1`/`F2`); its partner ([`pas_idx`]) is the passive one.
/// Branchless: slot selection by the control variable is address
/// arithmetic rather than a data-dependent branch, because `c` alternates
/// per fold generation and arrives in random edge order, making such
/// branches inherently unpredictable.
#[inline(always)]
fn act_idx(c: u8) -> usize {
    ((c - 1) & 1) as usize
}

/// The passive partner slot of control value `c` (see [`act_idx`]).
#[inline(always)]
fn pas_idx(c: u8) -> usize {
    ((2 - c) & 1) as usize
}

/// Per-arc *control* state: the weights of the four vector variables plus
/// the role/control counters. The value components live at the same arc
/// index in the structure-of-arrays [`FlowBank`] (fields [`F1`]/[`F2`]/
/// [`FOLDED`]/[`BASE`]), so a message receipt touches exactly one `ArcCtl`
/// line plus one contiguous bank row regardless of payload dimension —
/// on large topologies the arc state no longer fits in L2 and this split
/// is what keeps the hot loop from paying a miss per field. The alignment
/// keeps elements from straddling line boundaries under the random
/// per-receiver access pattern.
#[derive(Clone, Debug)]
#[repr(align(64))]
struct ArcCtl {
    /// Weights of the four vector variables, indexed by bank field.
    w: [f64; FIELDS],
    /// Role-swap counter `r_{i,j}`.
    r: u64,
    /// Incarnation number: bumped every time this endpoint *excises* the
    /// arc (fail-detection or suspicion folds both slots and resets the
    /// control state). Carried on the wire so the two endpoints can fence
    /// off state from dead generations: a message with a lower number was
    /// sent before the excision and is rejected; one with a higher number
    /// proves the peer excised, so this side folds its matching half,
    /// reconciles the fold ledgers, and adopts the new generation.
    /// Starts at 1 on both sides; a *self*-bumped number always lands on
    /// this endpoint's parity class (lower node id → even, higher → odd),
    /// so simultaneous excisions of the same edge can never collide on
    /// equal numbers — there is always a strict winner for the two sides
    /// to reconcile toward.
    inc: u64,
    /// Active-slot indicator `c_{i,j} ∈ {1,2}`.
    c: u8,
}

impl ArcCtl {
    fn fresh() -> Self {
        ArcCtl {
            w: [0.0; FIELDS],
            r: 1,
            inc: 1,
            c: 1,
        }
    }
}

/// Per-node state: the immutable initial data `v_i = (x_i, w_i)` next to
/// the sum-of-flows accumulator `ϕ_i` it is estimated against, so the
/// per-send estimate reads one cache line instead of two.
#[derive(Clone, Debug)]
struct NodeState<P> {
    init: Mass<P>,
    phi: Mass<P>,
}

/// Push-cancel-flow protocol state (all nodes; per-edge state arc-indexed).
pub struct PushCancelFlow<'g, P: Payload> {
    graph: &'g Graph,
    mode: PhiMode,
    /// Per-node data (`ϕ_i` meaning depends on `mode`).
    nodes: Vec<NodeState<P>>,
    /// Per-arc control state, `ctl[arc(i, j)]`.
    ctl: Vec<ArcCtl>,
    /// Value components of the four per-arc vector variables
    /// (structure-of-arrays; see [`ArcCtl`]).
    bank: FlowBank,
    /// Optional plausibility bound on incoming flows (see
    /// [`PushCancelFlow::with_guard`]).
    guard: Option<f64>,
    dim: usize,
    /// Instrumentation counters, one bank per engine partition (a receive
    /// counts into its receiver-partition bank; [`Self::stats`] folds the
    /// banks). A single bank under the classic engine.
    stats: Vec<PcfStats>,
    /// Recycled wire buffers, one arena per engine partition (fed by
    /// [`Protocol::reclaim`] / [`Protocol::part_reclaim`]).
    pools: Vec<Vec<PcfMsg<P>>>,
    /// Reused estimate buffers for `on_send`, one per engine partition —
    /// keep heap-spilled payloads (dim above the inline cap)
    /// allocation-free on the hot path.
    scratches: Vec<Mass<P>>,
}

impl<'g, P: Payload> PushCancelFlow<'g, P> {
    /// Initialise over `graph` with the given data, in [`PhiMode::Eager`].
    pub fn new(graph: &'g Graph, init: &InitialData<P>) -> Self {
        Self::with_mode(graph, init, PhiMode::Eager)
    }

    /// Initialise with an explicit ϕ-update variant.
    pub fn with_mode(graph: &'g Graph, init: &InitialData<P>, mode: PhiMode) -> Self {
        assert_eq!(graph.len(), init.len(), "graph/init size mismatch");
        let dim = init.dim();
        let nodes: Vec<NodeState<P>> = (0..init.len())
            .map(|i| NodeState {
                init: Mass::new(init.value(i).clone(), init.weight(i)),
                phi: Mass::zero(dim),
            })
            .collect();
        let arcs = graph.arc_count();
        PushCancelFlow {
            graph,
            mode,
            nodes,
            ctl: vec![ArcCtl::fresh(); arcs],
            bank: FlowBank::new(arcs, FIELDS, dim),
            guard: None,
            dim,
            stats: vec![PcfStats::default()],
            pools: vec![Vec::new()],
            scratches: vec![Mass::zero(dim)],
        }
    }

    /// Enable the magnitude guard: messages carrying any non-finite flow
    /// component, or one larger than `bound` in magnitude, are rejected as
    /// corrupted and recovered like losses. PCF keeps legitimate flows at
    /// `O(|aggregate|)`, so even a tight bound is safe — this closes the
    /// exponent-bit-flip hole that no f64 flow algorithm survives unaided
    /// (see `ablation_phi_variants`).
    pub fn with_guard(mut self, bound: f64) -> Self {
        assert!(bound > 0.0 && bound.is_finite(), "guard must be positive");
        self.guard = Some(bound);
        self
    }

    #[inline]
    fn mass_plausible(&self, m: &Mass<P>) -> bool {
        let finite = || m.weight.is_finite() && m.value.components().iter().all(|c| c.is_finite());
        match self.guard {
            Some(b) => {
                finite() && m.weight.abs() <= b && m.value.components().iter().all(|c| c.abs() <= b)
            }
            // Hardened mode screens non-finite fields even without a
            // magnitude guard: NaN/∞ is implausible under any aggregate,
            // and a NaN that reaches a fold is locked into ϕ forever
            // (ϕ only ever accumulates). Eager mode stays faithful to
            // Fig. 5 as printed, which has no such check — and pays no
            // per-field classification on the hot path either.
            None => self.mode != PhiMode::Hardened || finite(),
        }
    }

    /// The ϕ-update variant in use.
    pub fn mode(&self) -> PhiMode {
        self.mode
    }

    /// Instrumentation counters (summed over the per-partition banks).
    pub fn stats(&self) -> PcfStats {
        let mut total = PcfStats::default();
        for part in &self.stats {
            total.absorb(part);
        }
        total
    }

    #[inline]
    fn arc(&self, i: NodeId, j: NodeId) -> usize {
        let slot = self
            .graph
            .neighbor_slot(i, j)
            .expect("message/failure on a non-edge");
        self.graph.arc_base(i) + slot
    }

    /// Flow `f_{i,j,slot}` (test/inspection hook; `slot` is 1 or 2;
    /// materialises a `Mass` from the flow bank).
    pub fn flow(&self, i: NodeId, j: NodeId, slot: u8) -> Mass<P> {
        let idx = self.arc(i, j);
        let field = match slot {
            1 => F1,
            2 => F2,
            _ => panic!("flow slot must be 1 or 2"),
        };
        Mass::new(
            P::from_components(self.bank.slice(idx, field)),
            self.ctl[idx].w[field],
        )
    }

    /// The active-slot indicator `c_{i,j}`.
    pub fn active_slot(&self, i: NodeId, j: NodeId) -> u8 {
        self.ctl[self.arc(i, j)].c
    }

    /// The role-swap counter `r_{i,j}`.
    pub fn swap_round(&self, i: NodeId, j: NodeId) -> u64 {
        self.ctl[self.arc(i, j)].r
    }

    /// The sum-of-flows accumulator `ϕ_i` (diagnostic; its exact meaning
    /// depends on [`PhiMode`], see the module docs).
    pub fn phi(&self, i: NodeId) -> &Mass<P> {
        &self.nodes[i as usize].phi
    }

    /// Live data `e_i` (see module docs for the per-mode formula).
    pub fn estimate_mass(&self, i: NodeId) -> Mass<P> {
        let node = &self.nodes[i as usize];
        let mut e = node.init.clone();
        e.sub_assign(&node.phi);
        if self.mode == PhiMode::Hardened {
            // Fused slice kernel over the node's contiguous arc-row range:
            // per arc, subtract F1 then F2 in slot order — the same
            // per-component operations in the same order as the former
            // per-slot loop. Value components and the weight are
            // independent accumulators, so splitting the weight into its
            // own (order-preserving) loop is bit-identical too.
            let base = self.graph.arc_base(i);
            let deg = self.graph.degree(i);
            bank::sub_leading2_rows(
                e.value.components_mut(),
                self.bank.arc_rows(base, deg),
                FIELDS,
            );
            for s in &self.ctl[base..base + deg] {
                e.weight -= s.w[F1];
                e.weight -= s.w[F2];
            }
        }
        e
    }

    /// [`Self::estimate_mass`] into partition `part`'s reused scratch
    /// buffer (same operation order, so results are bit-identical) — the
    /// hot-path variant that never allocates, whatever the payload
    /// dimension.
    fn fill_scratch_estimate(&mut self, part: usize, i: NodeId) {
        let PushCancelFlow {
            graph,
            mode,
            nodes,
            ctl,
            bank,
            scratches,
            ..
        } = self;
        let scratch = &mut scratches[part];
        let node = &nodes[i as usize];
        scratch.copy_from(&node.init);
        scratch.sub_assign(&node.phi);
        if *mode == PhiMode::Hardened {
            let base = graph.arc_base(i);
            let deg = graph.degree(i);
            bank::sub_leading2_rows(
                scratch.value.components_mut(),
                bank.arc_rows(base, deg),
                FIELDS,
            );
            for s in &ctl[base..base + deg] {
                scratch.weight -= s.w[F1];
                scratch.weight -= s.w[F2];
            }
        }
    }

    /// Replace node `i`'s local input value mid-run (live monitoring, cf.
    /// LiMoSense): the estimate moves by the delta and the gossip
    /// re-converges to the new aggregate. See
    /// [`PushFlow::set_local_value`](crate::PushFlow::set_local_value).
    pub fn set_local_value(&mut self, i: NodeId, value: P) {
        assert_eq!(value.dim(), self.dim, "payload dimension mismatch");
        self.nodes[i as usize].init.value = value;
    }

    /// Largest live-flow magnitude in the system. The paper's key
    /// structural claim is that this stays `O(|aggregate|)` for PCF while
    /// it grows without bound relative to the aggregate for PF.
    pub fn max_flow_magnitude(&self) -> f64 {
        (0..self.graph.arc_count())
            .flat_map(|arc| {
                self.bank
                    .slice(arc, F1)
                    .iter()
                    .chain(self.bank.slice(arc, F2))
                    .copied()
            })
            .fold(0.0f64, |a, c| a.max(c.abs()))
    }

    /// Fold a passive flow into the estimate bookkeeping and zero it.
    /// In eager mode ϕ already contains the flow (ϕ tracks the running
    /// sum), so zeroing the slot *is* the fold; in hardened mode the flow
    /// is moved into ϕ explicitly. Either way `e_i` is unchanged.
    /// Componentwise the loops perform exactly the operations of the
    /// former `Mass`-level code (`phi += f; base += f; f = 0`), fused per
    /// component — bit-identical because components are independent.
    #[inline]
    fn fold_and_clear(
        mode: PhiMode,
        phi: &mut Mass<P>,
        s: &mut ArcCtl,
        fbank: &mut FlowBank,
        idx: usize,
        field: usize,
        stats: &mut PcfStats,
    ) {
        {
            let (f, base) = fbank.src_dst(idx, field, BASE);
            if mode == PhiMode::Hardened {
                bank::fold1(phi.value.components_mut(), base, f);
            } else {
                bank::add(base, f);
            }
        }
        if mode == PhiMode::Hardened {
            phi.weight += s.w[field];
        }
        s.w[BASE] += s.w[field];
        fbank.fill_zero(idx, field);
        s.w[field] = 0.0;
        stats.cancellations += 1;
    }

    /// Fold *both* slots of an arc into the estimate bookkeeping and the
    /// fold ledger, and reset its flow/control state (the incarnation
    /// number is left for the caller, which is what distinguishes an
    /// excision from a restart). Like any fold, the local estimate does
    /// not move: in eager mode ϕ keeps the flows' value, in hardened mode
    /// they are moved into ϕ explicitly. (Per component: `t = f1 + f2;
    /// [phi += t;] base += t` — the fused form of the former `Mass`-level
    /// total/add sequence, bit-identical by component independence.)
    fn fold_arc(
        mode: PhiMode,
        phi: &mut Mass<P>,
        s: &mut ArcCtl,
        fbank: &mut FlowBank,
        idx: usize,
    ) {
        {
            let (f1, f2, base) = fbank.two_src_dst(idx, F1, F2, BASE);
            if mode == PhiMode::Hardened {
                bank::fold2(phi.value.components_mut(), base, f1, f2);
            } else {
                bank::add_sum(base, f1, f2);
            }
        }
        let tw = s.w[F1] + s.w[F2];
        if mode == PhiMode::Hardened {
            phi.weight += tw;
        }
        s.w[BASE] += tw;
        fbank.fill_zero(idx, F1);
        fbank.fill_zero(idx, F2);
        fbank.fill_zero(idx, FOLDED);
        s.w[F1] = 0.0;
        s.w[F2] = 0.0;
        s.w[FOLDED] = 0.0;
        s.c = 1;
        s.r = 1;
    }
}

impl<'g, P: Payload> PushCancelFlow<'g, P> {
    /// [`Protocol::on_send`] against partition `part`'s arenas.
    fn send_impl(&mut self, part: usize, node: NodeId, target: NodeId) -> PcfMsg<P> {
        // Fig. 5 lines 30–33.
        let idx = self.arc(node, target);
        self.fill_scratch_estimate(part, node);
        self.scratches[part].scale(0.5);
        let eager = self.mode == PhiMode::Eager;
        let mut msg = self.pools[part].pop().unwrap_or_else(|| PcfMsg {
            f1: Mass::zero(self.dim),
            f2: Mass::zero(self.dim),
            c: 0,
            r: 0,
            folded: Mass::zero(self.dim),
            base: Mass::zero(self.dim),
            inc: 0,
        });
        let PushCancelFlow {
            nodes,
            ctl,
            bank,
            scratches,
            ..
        } = self;
        let e = &scratches[part];
        let s = &mut ctl[idx];
        let act = act_idx(s.c);
        bank::add(bank.slice_mut(idx, act), e.value.components());
        s.w[act] += e.weight;
        if eager {
            nodes[node as usize].phi.add_assign(e);
        }
        // Every field of the recycled buffer is overwritten, so the wire
        // bytes are identical to a freshly cloned message.
        msg.f1.value.copy_from_components(bank.slice(idx, F1));
        msg.f1.weight = s.w[F1];
        msg.f2.value.copy_from_components(bank.slice(idx, F2));
        msg.f2.weight = s.w[F2];
        msg.folded
            .value
            .copy_from_components(bank.slice(idx, FOLDED));
        msg.folded.weight = s.w[FOLDED];
        msg.base.value.copy_from_components(bank.slice(idx, BASE));
        msg.base.weight = s.w[BASE];
        msg.c = s.c;
        msg.r = s.r;
        msg.inc = s.inc;
        msg
    }
}

impl<'g, P: Payload> Protocol for PushCancelFlow<'g, P> {
    type Msg = PcfMsg<P>;

    // A send touches the sending node's arc row/control word and ϕ plus
    // partition-indexed arenas (scratch, pool); a receive touches the
    // receiving node's mirror arc, its ϕ, and its receiver-partition stats
    // bank. Failure hooks fold only the first argument's arcs.
    const PARALLEL_SAFE: bool = true;

    fn set_partitions(&mut self, partitions: usize) {
        self.pools.resize_with(partitions, Vec::new);
        let dim = self.dim;
        self.scratches.resize_with(partitions, || Mass::zero(dim));
        self.stats.resize_with(partitions, PcfStats::default);
    }

    fn on_send(&mut self, node: NodeId, target: NodeId) -> PcfMsg<P> {
        self.send_impl(0, node, target)
    }

    fn part_send(&mut self, part: usize, node: NodeId, target: NodeId) -> PcfMsg<P> {
        self.send_impl(part, node, target)
    }

    fn reclaim(&mut self, msg: PcfMsg<P>) {
        self.pools[0].push(msg);
    }

    fn part_reclaim(&mut self, part: usize, msg: PcfMsg<P>) {
        self.pools[part].push(msg);
    }

    fn prewarm(&self, node: NodeId, from: NodeId) {
        // Touch the cache lines `on_receive(node, from, _)` starts with;
        // the arc index is recomputed there, but the neighbor scan is
        // cheap next to the miss this hides.
        #[cfg(target_arch = "x86_64")]
        if let Some(slot) = self.graph.neighbor_slot(node, from) {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let idx = self.graph.arc_base(node) + slot;
            // SAFETY: prefetch has no memory effects; both pointers are
            // in-bounds elements of live allocations.
            unsafe {
                _mm_prefetch((&raw const self.ctl[idx]).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(self.bank.slice(idx, F1).as_ptr().cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(
                    (&raw const self.nodes[node as usize]).cast::<i8>(),
                    _MM_HINT_T0,
                );
            }
        }
    }

    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut PcfMsg<P>) {
        self.receive_impl(0, node, from, msg)
    }

    fn part_receive(&mut self, part: usize, node: NodeId, from: NodeId, msg: &mut PcfMsg<P>) {
        self.receive_impl(part, node, from, msg)
    }

    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        self.link_failed_impl(node, neighbor)
    }

    fn on_restart(&mut self, node: NodeId) {
        self.restart_impl(node)
    }

    fn on_neighbor_restarted(&mut self, node: NodeId, restarted: NodeId) {
        self.neighbor_restarted_impl(node, restarted)
    }
}

impl<'g, P: Payload> PushCancelFlow<'g, P> {
    /// [`Protocol::on_receive`] against partition `part`'s arenas.
    fn receive_impl(&mut self, part: usize, node: NodeId, from: NodeId, msg: &mut PcfMsg<P>) {
        // Fig. 5 lines 6–29 for one received tuple.
        if msg.c != 1 && msg.c != 2 {
            // Corrupted control field: no branch of the pseudocode is
            // meaningful; drop the message (the next clean exchange
            // supersedes it — same recovery as a lost message).
            self.stats[part].rejected_messages += 1;
            return;
        }
        if msg.f1.dim() != self.dim || msg.f2.dim() != self.dim {
            self.stats[part].rejected_messages += 1;
            return;
        }
        if !(self.mass_plausible(&msg.f1)
            && self.mass_plausible(&msg.f2)
            && self.mass_plausible(&msg.folded)
            && self.mass_plausible(&msg.base))
        {
            self.stats[part].rejected_messages += 1;
            return;
        }
        let idx = self.arc(node, from);
        let i = node as usize;
        let (c_ji, r_ji) = (msg.c, msg.r);
        let mode = self.mode;
        // One borrow of each hot field for the whole handler — the arc
        // control word, the bank row, this node's ϕ and the counters are
        // disjoint, and binding them once keeps the indexing (and its
        // bounds checks) out of the per-branch code below.
        let PushCancelFlow {
            nodes,
            ctl,
            bank,
            stats,
            ..
        } = self;
        let stats = &mut stats[part];
        let s = &mut ctl[idx];
        let phi = &mut nodes[i].phi;

        // Incarnation fencing, ahead of all flow interpretation: a lower
        // number is a message from a generation we already excised —
        // acting on it would re-apply flow state whose mass has been
        // folded, double-counting it. A higher number proves the *peer*
        // excised (false suspicion, failure detection): fold our live
        // slots into our ledger, then overwrite the ledger with the exact
        // negation of the peer's advertised one. Ordinary completed folds
        // already cancel pairwise, so the overwrite heals precisely the
        // unilateral part — both sides' excision folds and any fold this
        // side completed against stale in-flight state — restoring the
        // pairwise ledger antisymmetry that global mass conservation
        // rests on, out-of-order delivery and simultaneous excisions
        // included. A corrupted `inc` is self-healing under the same two
        // rules: the inflated side wins and the other side adopts.
        if msg.inc < s.inc {
            stats.stale_rejected += 1;
            return;
        }
        if msg.inc > s.inc {
            Self::fold_arc(mode, phi, s, bank, idx);
            // ϕ ← ϕ − (base + msg.base), then base ← −msg.base (fused per
            // component; identical operations to the former delta `Mass`).
            bank::sub_sum(
                phi.value.components_mut(),
                bank.slice(idx, BASE),
                msg.base.value.components(),
            );
            phi.weight -= s.w[BASE] + msg.base.weight;
            bank::store_neg(bank.slice_mut(idx, BASE), msg.base.value.components());
            s.w[BASE] = -msg.base.weight;
            s.inc = msg.inc;
            stats.recancellations += 1;
        }

        // Fold acknowledgement, evaluated *before* the active-slot
        // agreement guard and in terms of the message's own slot roles:
        // the peer is one generation ahead and reports its passive slot
        // (slot `3 − msg.c` from its perspective) folded to zero. We
        // complete the generation: fold our matching slot — re-synced to
        // the exact negation of what the peer folded — and take the swap
        // from the *initiator's* indicator. Keeping this outside the
        // c-agreement guard matters: a stale pre-adoption message can
        // revert our `c` through line 7 after the peer folded, creating a
        // (c mismatch, r skew 1) state that the pseudocode's guard would
        // ignore forever, deadlocking the edge while sends keep paying
        // mass into it.
        let msg_f = [&msg.f1, &msg.f2];
        let msg_pas_by_msg = msg_f[pas_idx(c_ji)];
        if s.r + 1 == r_ji && msg_pas_by_msg.is_zero() {
            {
                let pas = pas_idx(c_ji);
                if !(s.w[pas] == -msg.folded.weight
                    && bank::is_neg(bank.slice(idx, pas), msg.folded.value.components()))
                {
                    // Our passive moved since the peer verified it (only
                    // possible under message delay): re-sync it with the
                    // same invariant-preserving overwrite as the
                    // active-flow rule, so the pairwise fold cancels
                    // exactly.
                    if mode == PhiMode::Eager {
                        bank::sub_sum(
                            phi.value.components_mut(),
                            bank.slice(idx, pas),
                            msg.folded.value.components(),
                        );
                        phi.weight -= s.w[pas] + msg.folded.weight;
                    }
                    bank::store_neg(bank.slice_mut(idx, pas), msg.folded.value.components());
                    s.w[pas] = -msg.folded.weight;
                    stats.fold_resyncs += 1;
                }
                bank.copy_field(idx, pas, FOLDED);
                s.w[FOLDED] = s.w[pas];
                Self::fold_and_clear(mode, phi, s, bank, idx, pas, stats);
            }
            s.r += 1;
            s.c = 3 - c_ji;
            stats.swaps += 1;
            // The message's active slot still carries fresh flow state:
            // apply the plain-PF overwrite to it as well.
            let msg_act = msg_f[act_idx(c_ji)];
            let act = act_idx(c_ji);
            if mode == PhiMode::Eager {
                bank::sub_sum(
                    phi.value.components_mut(),
                    bank.slice(idx, act),
                    msg_act.value.components(),
                );
                phi.weight -= s.w[act] + msg_act.weight;
            }
            bank::store_neg(bank.slice_mut(idx, act), msg_act.value.components());
            s.w[act] = -msg_act.weight;
            return;
        }

        // Line 7–9: adopt the peer's swap if we missed it.
        if s.c != c_ji && s.r == r_ji {
            s.c = c_ji;
        }

        // Line 10: only interact when we agree which slot is active.
        if s.c != c_ji {
            stats.ignored_messages += 1;
            return;
        }
        let c = s.c;
        let msg_act = msg_f[act_idx(c)];
        let msg_pas = msg_f[pas_idx(c)];

        // Lines 11–12: plain PF on the active slot.
        let act = act_idx(c);
        if mode == PhiMode::Eager {
            // ϕ_i ← ϕ_i − (f_{i,j,c} + f_{j,i,c})
            bank::sub_sum(
                phi.value.components_mut(),
                bank.slice(idx, act),
                msg_act.value.components(),
            );
            phi.weight -= s.w[act] + msg_act.weight;
        }
        bank::store_neg(bank.slice_mut(idx, act), msg_act.value.components());
        s.w[act] = -msg_act.weight;
        let pas = pas_idx(c);

        // Lines 13–27: passive-slot handling, with *directed* cancellation:
        // only the lower-id endpoint of an edge may initiate a fold (case
        // i); the higher-id endpoint folds exclusively through the
        // acknowledgement path (case ii), re-synchronised to the exact
        // value the initiator advertised. In the paper's intra-round
        // delivery model this merely fixes which of the two legitimate
        // fold orderings happens; under message *delay* it is what keeps
        // folds pairwise matched — verifying conservation against a stale
        // snapshot of the peer's passive flow lets both sides "confirm"
        // folds of values that do not cancel, which demonstrably destroys
        // mass (see `ablation_execution_models`).
        let initiator = node < from;
        if initiator
            && msg_pas.weight == -s.w[pas]
            && bank::is_neg(msg_pas.value.components(), bank.slice(idx, pas))
            && s.r == r_ji
        {
            // (i) conservation reached: cancel our passive flow.
            bank.copy_field(idx, pas, FOLDED);
            s.w[FOLDED] = s.w[pas];
            Self::fold_and_clear(mode, phi, s, bank, idx, pas, stats);
            s.r += 1;
        } else if s.r <= r_ji {
            // (iii) passive pair not conserved (e.g. after a loss): treat
            // it like an active flow to restore conservation.
            if mode == PhiMode::Eager {
                bank::sub_sum(
                    phi.value.components_mut(),
                    bank.slice(idx, pas),
                    msg_pas.value.components(),
                );
                phi.weight -= s.w[pas] + msg_pas.weight;
            }
            bank::store_neg(bank.slice_mut(idx, pas), msg_pas.value.components());
            s.w[pas] = -msg_pas.weight;
        }
        // else: we are ahead of the peer (r_{i,j} > r_{j,i}); wait for it.
    }

    fn link_failed_impl(&mut self, node: NodeId, neighbor: NodeId) {
        // Permanent-failure handling: "set the corresponding flow variables
        // to zero" — which in PCF means *folding* them: in eager mode ϕ
        // keeps their value (zeroing the slot is the fold), in hardened
        // mode they are moved into ϕ explicitly. Either way the local
        // estimate does not move at all: the net mass that historically
        // crossed the dead link simply stays where it is. This is why PCF
        // shows no convergence fall-back (paper Fig. 7) while PF — whose
        // estimate is defined as `v − Σf` and therefore *must* jump by the
        // zeroed flow's magnitude — restarts (Fig. 4).
        //
        // The incarnation bump makes the same excision safe when the
        // "failure" is a timeout detector's *suspicion* that may be false
        // (the default `on_suspect` routes here): the peer is still alive
        // and still holds its half of the flow pair, but the next message
        // it receives carries the higher number and triggers the ledger
        // reconciliation there (see the fencing in `on_receive`). The
        // bump lands on this endpoint's parity class — lower node id on
        // even numbers, higher on odd — so when *both* ends suspect each
        // other in the same window their independent bumps cannot tie:
        // one side is strictly ahead and the other reconciles toward it.
        let idx = self.arc(node, neighbor);
        let PushCancelFlow {
            nodes,
            ctl,
            bank,
            mode,
            ..
        } = self;
        let s = &mut ctl[idx];
        Self::fold_arc(*mode, &mut nodes[node as usize].phi, s, bank, idx);
        s.inc += 1;
        if (s.inc & 1) != u64::from(node >= neighbor) {
            s.inc += 1;
        }
    }

    fn restart_impl(&mut self, node: NodeId) {
        // Rejoin with the retained initial data and no memory of past
        // flows: ϕ = 0 and every incident arc fresh at incarnation 1.
        // The node's pre-crash mass is *not* resurrected — the simulator
        // guarantees peers excised the links at crash detection (folding
        // the in-transit mass in place), so re-contributing exactly
        // `v_node` once is what makes the restarted node counted exactly
        // once in the new aggregate.
        self.nodes[node as usize].phi.clear();
        let base = self.graph.arc_base(node);
        for slot in 0..self.graph.degree(node) {
            let idx = base + slot;
            for field in 0..FIELDS {
                self.bank.fill_zero(idx, field);
            }
            self.ctl[idx] = ArcCtl::fresh();
        }
    }

    fn neighbor_restarted_impl(&mut self, node: NodeId, restarted: NodeId) {
        // The peer came back blank at incarnation 1, so the wire fence
        // cannot re-sync us (our number is never lower): fold whatever
        // our half of the old pair still holds and meet the peer fresh.
        // Usually this is a no-op on the flows — crash detection already
        // excised them — but under a timeout detector a quick restart can
        // beat the suspicion window. The fold ledger re-bases to zero on
        // both sides (without touching ϕ): its pre-crash contents are
        // exactly the crash-destroyed / restart-recreated part of the
        // accounting, which no future reconciliation may undo — only the
        // *relative* ledger matters for the adoption overwrite, and both
        // ends of the reborn edge restart it from zero together.
        let idx = self.arc(node, restarted);
        let PushCancelFlow {
            nodes,
            ctl,
            bank,
            mode,
            ..
        } = self;
        let s = &mut ctl[idx];
        Self::fold_arc(*mode, &mut nodes[node as usize].phi, s, bank, idx);
        bank.fill_zero(idx, BASE);
        s.w[BASE] = 0.0;
        s.inc = 1;
    }
}

impl<'g, P: Payload> ReductionProtocol for PushCancelFlow<'g, P> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64 {
        let e = self.estimate_mass(node);
        values.copy_from_slice(e.value.components());
        e.weight
    }

    fn write_estimate(&self, node: NodeId, out: &mut [f64]) {
        self.estimate_mass(node).write_estimate(out);
    }

    fn write_flow(&self, i: NodeId, j: NodeId, values: &mut [f64]) -> Option<f64> {
        // The per-edge net flow is the sum over both slots: during an
        // exchange one slot is mid-handoff, but once the exchange
        // completes `f1 + f2` obeys pairwise antisymmetry just like PF's
        // single flow variable.
        let idx = self.arc(i, j);
        let (f1, f2) = (self.bank.slice(idx, F1), self.bank.slice(idx, F2));
        for ((v, &x), &y) in values.iter_mut().zip(f1).zip(f2) {
            *v = x + y;
        }
        let s = &self.ctl[idx];
        Some(s.w[F1] + s.w[F2])
    }

    fn max_flow(&self) -> Option<f64> {
        Some(self.max_flow_magnitude())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use crate::push_flow::PushFlow;
    use gr_netsim::{DelayModel, DetectorModel, FaultPlan, SimOptions, Simulator};
    use gr_numerics::{max_relative_error, RelErr};
    use gr_topology::{bus, complete, hypercube, ring, torus3d};
    use rand::prelude::*;

    fn avg_data(n: usize, seed: u64) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, seed)
    }

    fn run_err(
        g: &gr_topology::Graph,
        data: &InitialData<f64>,
        mode: PhiMode,
        rounds: u64,
        seed: u64,
    ) -> f64 {
        let mut sim = Simulator::new(
            g,
            PushCancelFlow::with_mode(g, data, mode),
            FaultPlan::none(),
            seed,
        );
        sim.run(rounds);
        max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0])
    }

    #[test]
    fn converges_on_complete_graph_both_modes() {
        let g = complete(16);
        let data = avg_data(16, 1);
        for mode in [PhiMode::Eager, PhiMode::Hardened] {
            let err = run_err(&g, &data, mode, 300, 1);
            assert!(err < 1e-13, "{mode:?}: err={err}");
        }
    }

    #[test]
    fn converges_on_ring_and_hypercube() {
        let g = ring(12);
        let data = avg_data(12, 2);
        assert!(run_err(&g, &data, PhiMode::Eager, 1500, 2) < 1e-13);
        let h = hypercube(5);
        let data = avg_data(32, 3);
        assert!(run_err(&h, &data, PhiMode::Eager, 500, 3) < 1e-13);
    }

    #[test]
    fn converges_for_sum_aggregate() {
        let g = hypercube(4);
        let data = InitialData::uniform_random(16, AggregateKind::Sum, 4);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 4);
        sim.run(600);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-13, "err={err}");
    }

    #[test]
    fn cancellations_and_swaps_actually_happen() {
        let g = complete(8);
        let data = avg_data(8, 5);
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 5);
        sim.run(100);
        let stats = sim.protocol().stats();
        assert!(stats.cancellations > 100, "{stats:?}");
        assert!(stats.swaps > 20, "{stats:?}");
        assert_eq!(stats.rejected_messages, 0);
    }

    #[test]
    fn flows_stay_small_while_pf_flows_grow() {
        // The structural difference that buys everything else: on the bus
        // case (aggregate 2, mass n+1 at one end) PF's flows reach O(n),
        // PCF's stay within a small multiple of the aggregate.
        let n = 32;
        let g = bus(n);
        let data = InitialData::bus_case(n);
        let seed = 6;
        let mut pf_sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), seed);
        let mut pcf_sim =
            Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), seed);
        pf_sim.run(20_000);
        pcf_sim.run(20_000);
        let pf_max = pf_sim.protocol().max_flow_magnitude();
        let pcf_max = pcf_sim.protocol().max_flow_magnitude();
        assert!(pf_max > (n / 2) as f64, "PF flows should grow: {pf_max}");
        assert!(
            pcf_max < 40.0,
            "PCF flows should stay near the aggregate: {pcf_max} (PF: {pf_max})"
        );
    }

    #[test]
    fn equivalent_to_pf_before_any_failure() {
        // Same seed ⇒ same schedule ⇒ (theoretical) identical estimates.
        // In f64 the two differ only by rounding, far below the running
        // error level early in the run.
        let g = hypercube(6);
        let data = avg_data(64, 7);
        let seed = 7;
        let mut pf = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), seed);
        let mut pcf = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), seed);
        for _ in 0..60 {
            pf.step();
            pcf.step();
        }
        for i in 0..64 {
            let a = pf.protocol().scalar_estimate(i);
            let b = pcf.protocol().scalar_estimate(i);
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "node {i}: PF {a} vs PCF {b}"
            );
        }
    }

    #[test]
    fn mass_conservation_sequential_both_modes() {
        for mode in [PhiMode::Eager, PhiMode::Hardened] {
            let g = hypercube(3);
            let data = avg_data(8, 8);
            let mut pcf = PushCancelFlow::with_mode(&g, &data, mode);
            let total_v0: f64 = (0..8).map(|i| pcf.estimate_mass(i).value).sum();
            let mut rng = StdRng::seed_from_u64(11);
            for step in 0..600 {
                let i: NodeId = rng.random_range(0..8);
                let nbrs = g.neighbors(i);
                let k = nbrs[rng.random_range(0..nbrs.len())];
                let mut msg = pcf.on_send(i, k);
                pcf.on_receive(k, i, &mut msg);
                let total_w: f64 = (0..8).map(|i| pcf.estimate_mass(i).weight).sum();
                let total_v: f64 = (0..8).map(|i| pcf.estimate_mass(i).value).sum();
                assert!(
                    (total_w - 8.0).abs() < 1e-9,
                    "{mode:?} step {step}: weight drifted to {total_w}"
                );
                assert!(
                    (total_v - total_v0).abs() < 1e-9,
                    "{mode:?} step {step}: value drifted to {total_v}"
                );
            }
            assert!(pcf.stats().cancellations > 0);
        }
    }

    #[test]
    fn swap_counter_skew_never_exceeds_one() {
        // Protocol invariant: |r_{i,j} − r_{j,i}| ≤ 1 in failure-free
        // operation (each side must wait for the other before advancing).
        let g = ring(6);
        let data = avg_data(6, 9);
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), 9);
        for _ in 0..300 {
            sim.step();
            let pcf = sim.protocol();
            for (i, j) in g.edges() {
                let a = pcf.swap_round(i, j);
                let b = pcf.swap_round(j, i);
                assert!(a.abs_diff(b) <= 1, "edge ({i},{j}): r skew {a} vs {b}");
            }
        }
    }

    #[test]
    fn recovers_from_message_loss() {
        let g = complete(16);
        let data = avg_data(16, 10);
        let reference = data.reference()[0];
        for mode in [PhiMode::Eager, PhiMode::Hardened] {
            let plan = FaultPlan::with_loss(0.2);
            let mut sim = Simulator::new(&g, PushCancelFlow::with_mode(&g, &data, mode), plan, 10);
            sim.run(800);
            let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
            assert!(err < 1e-12, "{mode:?}: err={err}");
        }
    }

    #[test]
    fn link_failure_causes_no_fallback() {
        // The headline fault-tolerance result (Fig. 7): kill a link late;
        // PCF's error keeps shrinking instead of rebounding.
        let g = hypercube(6);
        let data = avg_data(64, 11);
        let reference = data.reference()[0];
        let seed = 11;

        let mut clean = Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), seed);
        clean.run(80);
        let clean_err = RelErr::of(clean.protocol().scalar_estimates(), reference).max;

        let plan = FaultPlan::none().fail_link(0, 1, 75);
        let mut faulty = Simulator::new(&g, PushCancelFlow::new(&g, &data), plan, seed);
        faulty.run(80);
        let faulty_err = RelErr::of(faulty.protocol().scalar_estimates(), reference).max;

        // A small local perturbation is allowed; a PF-style restart (orders
        // of magnitude) is not.
        assert!(
            faulty_err < clean_err * 50.0,
            "PCF fell back after failure: clean={clean_err:e} faulty={faulty_err:e}"
        );
        faulty.run(200);
        let final_err = RelErr::of(faulty.protocol().scalar_estimates(), reference).max;
        assert!(
            final_err < 1e-12,
            "PCF should keep converging: {final_err:e}"
        );
    }

    #[test]
    fn accuracy_beats_pf_at_scale() {
        // Fig. 3 vs Fig. 6 in miniature: on a 512-node torus, run both to
        // their floor; PCF's floor must be orders of magnitude lower. The
        // instantaneous max-error fluctuates (nodes whose gossip weight is
        // transiently tiny amplify bookkeeping noise), so compare the
        // best error each algorithm ever achieves, sampled periodically.
        let g = torus3d(8, 8, 8);
        let data = avg_data(512, 12);
        let reference = data.reference()[0];
        let seed = 12;
        let best = |pcf: bool| {
            let mut best = f64::INFINITY;
            if pcf {
                let mut sim =
                    Simulator::new(&g, PushCancelFlow::new(&g, &data), FaultPlan::none(), seed);
                for _ in 0..40 {
                    sim.run(500);
                    best = best.min(max_relative_error(
                        sim.protocol().scalar_estimates(),
                        reference,
                    ));
                }
            } else {
                let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), seed);
                for _ in 0..40 {
                    sim.run(500);
                    best = best.min(max_relative_error(
                        sim.protocol().scalar_estimates(),
                        reference,
                    ));
                }
            }
            best
        };
        let pcf_err = best(true);
        let pf_err = best(false);
        assert!(
            pcf_err < 5e-14,
            "PCF should reach machine precision: {pcf_err:e}"
        );
        // Best-ever sampling flatters PF (it catches PF's luckiest dip),
        // so one order of magnitude is the robust qualitative margin.
        assert!(
            pcf_err * 10.0 < pf_err,
            "PCF ({pcf_err:e}) should be far below PF ({pf_err:e})"
        );
    }

    #[test]
    fn corrupted_control_field_is_rejected() {
        let g = bus(2);
        let data = avg_data(2, 13);
        let mut pcf = PushCancelFlow::new(&g, &data);
        let mut msg = PcfMsg {
            f1: Mass::new(0.5, 0.5),
            f2: Mass::zero(1),
            c: 7, // corrupted
            r: 1,
            folded: Mass::zero(1),
            base: Mass::zero(1),
            inc: 1,
        };
        pcf.on_receive(0, 1, &mut msg);
        assert_eq!(pcf.stats().rejected_messages, 1);
        // state untouched
        assert!(pcf.flow(0, 1, 1).is_zero());
    }

    #[test]
    fn msg_corruption_covers_all_fields() {
        let mut m = PcfMsg {
            f1: Mass::new(1.0f64, 1.0),
            f2: Mass::new(2.0, 0.0),
            c: 1,
            r: 5,
            folded: Mass::new(4.0, 1.0),
            base: Mass::new(8.0, 1.0),
            inc: 2,
        };
        assert_eq!(m.corruptible_bits(), 128 + 128 + 128 + 128 + 8 + 64 + 64);
        m.flip_bit(63); // sign of f1.value
        assert_eq!(m.f1.value, -1.0);
        m.flip_bit(256 + 63); // sign of folded.value
        assert_eq!(m.folded.value, -4.0);
        m.flip_bit(384 + 63); // sign of base.value
        assert_eq!(m.base.value, -8.0);
        m.flip_bit(512); // lowest bit of c
        assert_eq!(m.c, 0);
        m.flip_bit(520); // lowest bit of r
        assert_eq!(m.r, 4);
        m.flip_bit(584); // lowest bit of inc
        assert_eq!(m.inc, 3);
    }

    #[test]
    fn survives_bit_flip_storm_then_heals() {
        // Hardened mode: flip bits for a while, then run clean and verify
        // convergence to machine precision resumes.
        let g = complete(12);
        let data = avg_data(12, 14);
        let reference = data.reference()[0];
        // Phase 1: heavy corruption. We simulate by manual message
        // tampering: run a normal sim but corrupt random flows directly.
        let mut sim = Simulator::new(
            &g,
            PushCancelFlow::with_mode(&g, &data, PhiMode::Hardened),
            FaultPlan::with_bit_flips(0.02),
            14,
        );
        sim.run(400);
        assert!(sim.stats().bit_flips > 0);
        // Phase 2 equivalent: fresh clean run from scratch converges —
        // and the corrupted run's estimates should not be absurdly far
        // (NaN/Inf) unless a flip manufactured one, which exact-equality
        // folding must not have *locked in*: re-run and check that the
        // error is finite for the vast majority of nodes.
        let errs: Vec<f64> = sim
            .protocol()
            .scalar_estimates()
            .iter()
            .map(|&e| ((e - reference.to_f64()) / reference.to_f64()).abs())
            .collect();
        let finite = errs.iter().filter(|e| e.is_finite()).count();
        assert!(finite >= 11, "too many destroyed nodes: {errs:?}");
    }

    #[test]
    fn guard_rejects_implausible_messages() {
        let g = bus(2);
        let data = avg_data(2, 16);
        let mut pcf = PushCancelFlow::new(&g, &data).with_guard(100.0);
        let mut msg = PcfMsg {
            f1: Mass::new(1e30, 1.0), // exponent-flipped
            f2: Mass::zero(1),
            c: 1,
            r: 1,
            folded: Mass::zero(1),
            base: Mass::zero(1),
            inc: 1,
        };
        pcf.on_receive(0, 1, &mut msg);
        assert_eq!(pcf.stats().rejected_messages, 1);
        assert!(pcf.flow(0, 1, 1).is_zero());
        // a corrupted `folded` field is caught too
        let mut msg = PcfMsg {
            f1: Mass::new(0.5, 0.5),
            f2: Mass::zero(1),
            c: 1,
            r: 1,
            folded: Mass::new(f64::NEG_INFINITY, 0.0),
            base: Mass::zero(1),
            inc: 1,
        };
        pcf.on_receive(0, 1, &mut msg);
        assert_eq!(pcf.stats().rejected_messages, 2);
    }

    #[test]
    fn stale_incarnation_messages_are_rejected() {
        let g = bus(2);
        let data = avg_data(2, 17);
        let mut pcf = PushCancelFlow::new(&g, &data);
        // A message leaves node 1, then node 0 excises the arc (e.g. a
        // suspicion) before it arrives: the stale tuple must be fenced off,
        // not interpreted against the fresh incarnation.
        let mut stale = pcf.on_send(1, 0);
        pcf.on_link_failed(0, 1);
        pcf.on_receive(0, 1, &mut stale);
        assert_eq!(pcf.stats().stale_rejected, 1);
        assert!(pcf.flow(0, 1, 1).is_zero());
        assert!(pcf.flow(0, 1, 2).is_zero());
        // Node 0's next message advertises the bumped incarnation; node 1
        // folds its orphaned half (re-cancel) and adopts it.
        let mut fresh = pcf.on_send(0, 1);
        pcf.on_receive(1, 0, &mut fresh);
        assert_eq!(pcf.stats().recancellations, 1);
        assert_eq!(pcf.swap_round(1, 0), 1);
    }

    #[test]
    fn false_suspicion_conserves_mass_both_modes() {
        // A one-sided excision (false suspicion) followed by continued
        // operation: every fold is estimate-invariant and the wire fence
        // re-cancels the peer's half, so total mass never drifts and the
        // run still converges to the exact aggregate.
        for mode in [PhiMode::Eager, PhiMode::Hardened] {
            let g = hypercube(3);
            let data = avg_data(8, 18);
            let reference = data.reference()[0];
            let mut pcf = PushCancelFlow::with_mode(&g, &data, mode);
            let total_v0: f64 = (0..8).map(|i| pcf.estimate_mass(i).value).sum();
            let mut rng = StdRng::seed_from_u64(19);
            for step in 0..1200 {
                if step == 300 {
                    pcf.on_suspect(0, g.neighbors(0)[0]);
                }
                let i: NodeId = rng.random_range(0..8);
                let nbrs = g.neighbors(i);
                let k = nbrs[rng.random_range(0..nbrs.len())];
                let mut msg = pcf.on_send(i, k);
                pcf.on_receive(k, i, &mut msg);
                let total_v: f64 = (0..8).map(|i| pcf.estimate_mass(i).value).sum();
                assert!(
                    (total_v - total_v0).abs() < 1e-9,
                    "{mode:?} step {step}: value drifted to {total_v}"
                );
            }
            assert!(pcf.stats().recancellations >= 1, "{mode:?}");
            let err = max_relative_error(pcf.scalar_estimates(), reference);
            assert!(err < 1e-12, "{mode:?}: err={err}");
        }
    }

    #[test]
    fn restarted_node_counted_exactly_once() {
        // Crash node 3, restart it later: the system must reconverge to
        // the *new* true average — the crashed node's mass gone, its
        // initial value re-contributed exactly once.
        let g = complete(8);
        let data = avg_data(8, 21);
        let plan = FaultPlan::none().crash_node(3, 10).restart_node(3, 30);
        let mut sim = Simulator::new(&g, PushCancelFlow::new(&g, &data), plan, 21);
        sim.run(10); // the crash fires at the start of round 10
        let at_crash = sim.protocol().estimate_mass(3);
        let total_v: f64 = (0..8).map(|i| *data.value(i)).sum();
        let total_w: f64 = (0..8).map(|i| data.weight(i)).sum();
        let expected =
            (total_v - at_crash.value + data.value(3)) / (total_w - at_crash.weight + 1.0);
        sim.run(400);
        let err = max_relative_error(sim.protocol().scalar_estimates(), expected.into());
        assert!(err < 1e-12, "err={err}");
    }

    #[test]
    fn survives_false_suspicions_under_timeout_detector() {
        // Timeout detector + random delay on a fault-free run: suspicions
        // are *all* false here, each one excises an arc, and the stale
        // fence plus re-cancel must keep the aggregate exact through the
        // churn.
        let g = complete(4);
        let data = avg_data(4, 22);
        let reference = data.reference()[0];
        let opts = SimOptions {
            delay: DelayModel::Uniform { min: 0, max: 4 },
            detector: DetectorModel::Timeout { window: 6 },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(
            &g,
            PushCancelFlow::new(&g, &data),
            FaultPlan::none(),
            22,
            opts,
        );
        sim.run(600);
        assert!(sim.stats().suspected > 0, "{:?}", sim.stats());
        assert!(sim.stats().rehabilitated > 0, "{:?}", sim.stats());
        let stats = sim.protocol().stats();
        assert!(stats.stale_rejected > 0, "{stats:?}");
        assert!(stats.recancellations > 0, "{stats:?}");
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "err={err}");
    }

    #[test]
    #[should_panic(expected = "slot must be 1 or 2")]
    fn bad_flow_slot_panics() {
        let g = bus(2);
        let data = avg_data(2, 15);
        let pcf = PushCancelFlow::new(&g, &data);
        let _ = pcf.flow(0, 1, 3);
    }
}
