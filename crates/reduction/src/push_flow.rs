//! The push-flow (PF) algorithm (paper Fig. 1; Gansterer et al. 2011/12).
//!
//! PF makes push-sum fault tolerant by replacing mass transfers with graph
//! flows: node `i` keeps, per neighbor `j`, a flow variable `f_{i,j}` —
//! "what has (net) flowed from me to `j`" — and its live data is derived,
//! never transferred: `e_i = v_i − Σ_j f_{i,j}`. A send updates the local
//! flow and transmits the *entire* flow variable; the receiver overwrites
//! its mirror with the negation (`f_{j,i} = −f_{i,j}`). Flow conservation
//! (`f_{i,j} + f_{j,i} = 0`) is a *local* pairwise property, and it implies
//! global mass conservation — so a lost or corrupted message is healed by
//! the next successful exchange on that edge, with no detection logic.
//!
//! The price, analysed in paper Sec. II and fixed by
//! [`crate::PushCancelFlow`]: flow variables converge to execution-
//! dependent values that can exceed the aggregate by orders of magnitude
//! (on the bus case they grow linearly in `n`), so (a) the subtraction
//! `v_i − Σf` loses up to `log₂(max|f|/|e|)` bits to cancellation, and
//! (b) zeroing flows on permanent-failure handling perturbs estimates by
//! `O(max|f|)` — effectively restarting the computation.

use crate::aggregate::InitialData;
use crate::bank::{self, FlowBank};
use crate::payload::{Mass, Payload};
use crate::protocol::ReductionProtocol;
use gr_netsim::Protocol;
use gr_topology::{Graph, NodeId};

/// Push-flow protocol state (all nodes; flows arc-indexed).
///
/// Flow *values* live in a structure-of-arrays [`FlowBank`] (one
/// contiguous, cache-line-aligned `f64` slab over all arcs); flow *weights*
/// stay in a plain arc-indexed array. Both use the CSR
/// `arc_base`/`neighbor_slot` indexing.
pub struct PushFlow<'g, P: Payload> {
    graph: &'g Graph,
    /// Immutable initial data `v_i = (x_i, w_i)`.
    init: Vec<Mass<P>>,
    /// Value components of `f_{i, neighbors(i)[slot]}` at arc
    /// `arc_base(i) + slot` (single-field bank).
    bank: FlowBank,
    /// Weight of the flow at each arc.
    flow_w: Vec<f64>,
    /// Optional plausibility bound on incoming flows (see
    /// [`PushFlow::with_guard`]).
    guard: Option<f64>,
    /// Compensated estimate summation (see
    /// [`PushFlow::with_compensated_estimates`]).
    compensated: bool,
    dim: usize,
    /// Recycled wire buffers, one arena per engine partition (fed by
    /// [`Protocol::reclaim`] / [`Protocol::part_reclaim`]).
    pools: Vec<Vec<Mass<P>>>,
    /// Reused estimate buffers for `on_send`, one per engine partition —
    /// keep heap-spilled payloads (dim above the inline cap)
    /// allocation-free on the hot path.
    scratches: Vec<Mass<P>>,
}

/// The bank's single field: the flow value vector.
const FLOW: usize = 0;

impl<'g, P: Payload> PushFlow<'g, P> {
    /// Initialise over `graph` with the given data.
    pub fn new(graph: &'g Graph, init: &InitialData<P>) -> Self {
        assert_eq!(graph.len(), init.len(), "graph/init size mismatch");
        let dim = init.dim();
        let init_mass: Vec<Mass<P>> = (0..init.len())
            .map(|i| Mass::new(init.value(i).clone(), init.weight(i)))
            .collect();
        let arcs = graph.arc_count();
        PushFlow {
            graph,
            init: init_mass,
            bank: FlowBank::new(arcs, 1, dim),
            flow_w: vec![0.0; arcs],
            guard: None,
            compensated: false,
            dim,
            pools: vec![Vec::new()],
            scratches: vec![Mass::zero(dim)],
        }
    }

    /// Compute estimates with Neumaier-compensated summation over the
    /// flows instead of plain left-to-right subtraction.
    ///
    /// This is an *ablation hook* for a specific sentence of the paper
    /// (Sec. II-B): "Even if the sum of flows is stored in a single
    /// variable (for efficiency reasons) the updates of this variable will
    /// still lead to inaccurate results due to the linearly growing flow
    /// variables." Compensation removes the *read-side* cancellation in
    /// `v − Σf`, but the *write-side* rounding — `f += e/2` rounds at
    /// `ε·|f|`, and with `|f| = O(n·aggregate)` that error is baked into
    /// the flow values themselves — remains. The
    /// `ablation_compensated_pf` experiment quantifies how far this gets
    /// (part of the way to PCF, never all the way).
    pub fn with_compensated_estimates(mut self) -> Self {
        self.compensated = true;
        self
    }

    /// Enable the magnitude guard: any received flow with a non-finite
    /// component or one exceeding `bound` in magnitude is rejected as
    /// corrupted (recovered like a lost message). The paper's bit-flip
    /// tolerance is theoretical — in f64, an exponent-bit flip turns a
    /// flow into ~1e±300 and its rounding shadow (~|poison|·ε) permanently
    /// destroys precision even after the flow itself heals. Legitimate
    /// flows are bounded by the total transported mass, so a loose bound
    /// (say 1e6× the initial data scale) costs nothing and converts the
    /// one unsurvivable soft-error class into an ordinary message drop.
    pub fn with_guard(mut self, bound: f64) -> Self {
        assert!(bound > 0.0 && bound.is_finite(), "guard must be positive");
        self.guard = Some(bound);
        self
    }

    fn msg_plausible(guard: Option<f64>, m: &Mass<P>) -> bool {
        match guard {
            None => true,
            Some(b) => {
                m.weight.is_finite()
                    && m.weight.abs() <= b
                    && m.value
                        .components()
                        .iter()
                        .all(|c| c.is_finite() && c.abs() <= b)
            }
        }
    }

    #[inline]
    fn arc(&self, i: NodeId, j: NodeId) -> usize {
        let slot = self
            .graph
            .neighbor_slot(i, j)
            .expect("message/failure on a non-edge");
        self.graph.arc_base(i) + slot
    }

    /// The flow variable `f_{i,j}` (test/inspection hook; materialises a
    /// `Mass` from the flow bank).
    pub fn flow(&self, i: NodeId, j: NodeId) -> Mass<P> {
        let idx = self.arc(i, j);
        Mass::new(
            P::from_components(self.bank.slice(idx, FLOW)),
            self.flow_w[idx],
        )
    }

    /// Live data `e_i = v_i − Σ_j f_{i,j}`. By default in plain f64
    /// arithmetic — the summation order is the neighbor order,
    /// *deliberately* uncompensated (the cancellation here is the
    /// phenomenon under study); with
    /// [`with_compensated_estimates`](Self::with_compensated_estimates)
    /// each component is accumulated with a Neumaier sum.
    pub fn estimate_mass(&self, i: NodeId) -> Mass<P> {
        let base = self.graph.arc_base(i);
        let deg = self.graph.degree(i);
        if !self.compensated {
            // Fused slice kernel over the node's contiguous arc rows
            // (single-field bank ⇒ one run) — same per-component
            // subtractions in the same order as a per-slot loop.
            let mut e = self.init[i as usize].clone();
            bank::sub_rows(e.value.components_mut(), self.bank.arc_rows(base, deg));
            for slot in 0..deg {
                e.weight -= self.flow_w[base + slot];
            }
            return e;
        }
        // Compensated path: componentwise Neumaier accumulation.
        let init = &self.init[i as usize];
        let comps = init.value.components();
        let mut out_vals = vec![0.0; comps.len()];
        for (k, &v0) in comps.iter().enumerate() {
            let mut acc = gr_numerics::CompensatedSum::new();
            acc.add(v0);
            for slot in 0..deg {
                acc.add(-self.bank.slice(base + slot, FLOW)[k]);
            }
            out_vals[k] = acc.value();
        }
        let mut wacc = gr_numerics::CompensatedSum::new();
        wacc.add(init.weight);
        for slot in 0..deg {
            wacc.add(-self.flow_w[base + slot]);
        }
        Mass::new(P::from_components(&out_vals), wacc.value())
    }

    /// Replace node `i`'s local input value mid-run (live monitoring, cf.
    /// LiMoSense): because the live data is *derived* (`e = v − Σf`), an
    /// input change simply moves the node's estimate by the delta and the
    /// gossip re-converges to the new global aggregate — no restart, no
    /// coordination. (Push-sum cannot do this: its initial mass is already
    /// dispersed.)
    pub fn set_local_value(&mut self, i: NodeId, value: P) {
        assert_eq!(value.dim(), self.dim, "payload dimension mismatch");
        self.init[i as usize].value = value;
    }

    /// Largest flow magnitude in the system (diagnostic: PF's accuracy
    /// problem is `max|f| ≫ |aggregate|`).
    pub fn max_flow_magnitude(&self) -> f64 {
        (0..self.graph.arc_count())
            .flat_map(|arc| self.bank.slice(arc, FLOW).iter().copied())
            .fold(0.0f64, |a, c| a.max(c.abs()))
    }
}

impl<'g, P: Payload> PushFlow<'g, P> {
    /// [`Self::estimate_mass`] into partition `part`'s reused scratch
    /// buffer (same operation order, so results are bit-identical) — the
    /// hot-path variant that never allocates, whatever the payload
    /// dimension. The opt-in compensated mode still materialises a fresh
    /// estimate (its Neumaier accumulators are not part of the hot-path
    /// claim).
    fn fill_scratch_estimate(&mut self, part: usize, i: NodeId) {
        if self.compensated {
            self.scratches[part] = self.estimate_mass(i);
            return;
        }
        let PushFlow {
            graph,
            init,
            bank,
            flow_w,
            scratches,
            ..
        } = self;
        let scratch = &mut scratches[part];
        let base = graph.arc_base(i);
        let deg = graph.degree(i);
        scratch.copy_from(&init[i as usize]);
        bank::sub_rows(scratch.value.components_mut(), bank.arc_rows(base, deg));
        for slot in 0..deg {
            scratch.weight -= flow_w[base + slot];
        }
    }

    /// [`Protocol::on_send`] against partition `part`'s arenas.
    fn send_impl(&mut self, part: usize, node: NodeId, target: NodeId) -> Mass<P> {
        // Fig. 1 lines 8–11: e_i = v_i − Σf; f_{i,k} += e_i/2; send f_{i,k}.
        self.fill_scratch_estimate(part, node);
        self.scratches[part].scale(0.5);
        let idx = self.arc(node, target);
        bank::add(
            self.bank.slice_mut(idx, FLOW),
            self.scratches[part].value.components(),
        );
        self.flow_w[idx] += self.scratches[part].weight;
        // Refill a recycled wire buffer (every field overwritten) instead
        // of cloning the flow into a fresh allocation.
        let mut msg = self.pools[part]
            .pop()
            .unwrap_or_else(|| Mass::zero(self.dim));
        msg.value.copy_from_components(self.bank.slice(idx, FLOW));
        msg.weight = self.flow_w[idx];
        msg
    }
}

impl<'g, P: Payload> Protocol for PushFlow<'g, P> {
    type Msg = Mass<P>;

    // A send touches the sending node's own arc rows / flow weights plus
    // partition-indexed arenas (scratch estimate, wire-buffer pool); a
    // receive touches the receiving node's mirror arc. Failure hooks
    // touch only the first argument's arcs.
    const PARALLEL_SAFE: bool = true;

    fn set_partitions(&mut self, partitions: usize) {
        self.pools.resize_with(partitions, Vec::new);
        let dim = self.dim;
        self.scratches.resize_with(partitions, || Mass::zero(dim));
    }

    fn on_send(&mut self, node: NodeId, target: NodeId) -> Mass<P> {
        self.send_impl(0, node, target)
    }

    fn part_send(&mut self, part: usize, node: NodeId, target: NodeId) -> Mass<P> {
        self.send_impl(part, node, target)
    }

    fn on_receive(&mut self, node: NodeId, from: NodeId, msg: &mut Mass<P>) {
        if !Self::msg_plausible(self.guard, msg) {
            return; // corrupted beyond plausibility: treat as lost
        }
        // Fig. 1 line 6: f_{i,j} ← −f_{j,i}. Overwrite semantics: whatever
        // our mirror held (possibly corrupted) is discarded — this is the
        // self-healing step. The wire buffer itself goes back to the pool
        // through `reclaim`.
        let idx = self.arc(node, from);
        bank::store_neg(self.bank.slice_mut(idx, FLOW), msg.value.components());
        self.flow_w[idx] = -msg.weight;
    }

    fn reclaim(&mut self, msg: Mass<P>) {
        self.pools[0].push(msg);
    }

    fn part_reclaim(&mut self, part: usize, msg: Mass<P>) {
        self.pools[part].push(msg);
    }

    fn on_link_failed(&mut self, node: NodeId, neighbor: NodeId) {
        // Permanent-failure handling: zero the flow, algorithmically
        // excluding the dead link (paper Sec. II-C). This is exactly the
        // step whose impact PCF bounds.
        let idx = self.arc(node, neighbor);
        self.bank.fill_zero(idx, FLOW);
        self.flow_w[idx] = 0.0;
    }

    fn on_restart(&mut self, node: NodeId) {
        // Rejoin with zeroed flows: the estimate reverts to the retained
        // `v_i`, contributing the node's initial mass exactly once.
        // Surviving peers zero their mirrors via `on_neighbor_restarted`
        // (default: the link-failure excision), which keeps every flow
        // pair conserved — at the usual PF price of an O(max|f|) estimate
        // perturbation on both sides.
        let base = self.graph.arc_base(node);
        for slot in 0..self.graph.degree(node) {
            self.bank.fill_zero(base + slot, FLOW);
            self.flow_w[base + slot] = 0.0;
        }
    }
}

impl<'g, P: Payload> ReductionProtocol for PushFlow<'g, P> {
    fn node_count(&self) -> usize {
        self.init.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64 {
        let e = self.estimate_mass(node);
        values.copy_from_slice(e.value.components());
        e.weight
    }

    fn write_estimate(&self, node: NodeId, out: &mut [f64]) {
        self.estimate_mass(node).write_estimate(out);
    }

    fn write_flow(&self, i: NodeId, j: NodeId, values: &mut [f64]) -> Option<f64> {
        let idx = self.arc(i, j);
        values.copy_from_slice(self.bank.slice(idx, FLOW));
        Some(self.flow_w[idx])
    }

    fn max_flow(&self) -> Option<f64> {
        Some(self.max_flow_magnitude())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use gr_netsim::{FaultPlan, Schedule, Simulator};
    use gr_numerics::{max_relative_error, RelErr};
    use gr_topology::{bus, complete, hypercube, ring};
    use rand::prelude::*;

    fn avg_data(n: usize, seed: u64) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, seed)
    }

    #[test]
    fn converges_on_complete_graph() {
        let g = complete(16);
        let data = avg_data(16, 1);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 1);
        sim.run(300);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "err={err}");
    }

    #[test]
    fn trait_flow_accessors_report_antisymmetry() {
        // Asynchronous activation: exchanges are atomic, so fault-free
        // rounds leave every edge exactly antisymmetric. (Synchronous
        // rounds can leave crossing exchanges mid-flight.)
        let g = ring(8);
        let data = avg_data(8, 11);
        let opts = gr_netsim::SimOptions {
            activation: gr_netsim::Activation::Asynchronous,
            ..Default::default()
        };
        let mut sim =
            Simulator::with_options(&g, PushFlow::new(&g, &data), FaultPlan::none(), 7, opts);
        sim.run(50);
        let p = sim.protocol();
        let (mut fij, mut fji) = ([0.0], [0.0]);
        for i in 0..8u32 {
            for j in g.neighbors(i).to_vec() {
                let wij = ReductionProtocol::write_flow(p, i, j, &mut fij).unwrap();
                let wji = ReductionProtocol::write_flow(p, j, i, &mut fji).unwrap();
                // Fault-free rounds are completed exchanges: f_ij == −f_ji.
                assert_eq!(fij[0], -fji[0], "edge ({i},{j})");
                assert_eq!(wij, -wji, "edge ({i},{j}) weight");
            }
        }
        assert!(ReductionProtocol::max_flow(p).unwrap() > 0.0);
    }

    #[test]
    fn converges_on_hypercube_sum() {
        let g = hypercube(5);
        let data = InitialData::uniform_random(32, AggregateKind::Sum, 3);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 2);
        sim.run(800);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-10, "err={err}");
    }

    /// Drive one complete sequential exchange `i → k` (send immediately
    /// delivered). With no crossing messages, flow conservation holds on
    /// every edge after every exchange.
    fn exchange(pf: &mut PushFlow<'_, f64>, i: NodeId, k: NodeId) {
        let mut msg = pf.on_send(i, k);
        pf.on_receive(k, i, &mut msg);
    }

    #[test]
    fn flow_conservation_after_each_sequential_exchange() {
        let g = ring(10);
        let data = avg_data(10, 4);
        let mut pf = PushFlow::new(&g, &data);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let i: NodeId = rng.random_range(0..10);
            let nbrs = g.neighbors(i);
            let k = nbrs[rng.random_range(0..nbrs.len())];
            exchange(&mut pf, i, k);
            for (a, b) in g.edges() {
                assert!(
                    pf.flow(a, b).is_neg_of(&pf.flow(b, a)),
                    "edge ({a},{b}) unconserved after exchange {i}->{k}"
                );
            }
        }
    }

    #[test]
    fn mass_conservation_sequential() {
        // Flow conservation implies mass conservation: Σ_i e_i stays at
        // its initial value (up to f64 rounding) after every completed
        // exchange.
        let g = hypercube(3);
        let data = avg_data(8, 5);
        let mut pf = PushFlow::new(&g, &data);
        let total_v0: f64 = (0..8).map(|i| pf.estimate_mass(i).value).sum();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..400 {
            let i: NodeId = rng.random_range(0..8);
            let nbrs = g.neighbors(i);
            let k = nbrs[rng.random_range(0..nbrs.len())];
            exchange(&mut pf, i, k);
            let total_w: f64 = (0..8).map(|i| pf.estimate_mass(i).weight).sum();
            let total_v: f64 = (0..8).map(|i| pf.estimate_mass(i).value).sum();
            assert!((total_w - 8.0).abs() < 1e-10, "weight drifted: {total_w}");
            assert!(
                (total_v - total_v0).abs() < 1e-10,
                "value drifted: {total_v}"
            );
        }
    }

    #[test]
    fn bus_flows_grow_linearly_as_in_paper_fig2() {
        // Paper Fig. 2: v₁ = n+1, vᵢ = 1 ⇒ the equilibrium *transport*
        // across edge (i−1, i) is n−i+1 (1-indexed) while every estimate is
        // 2. The live weighted algorithm superimposes an O(estimate)
        // circulation on that transport, so we assert the flows match the
        // schematic within a small constant, and exactly exhibit the
        // linear-in-n growth that causes PF's cancellation problem.
        let n = 16;
        let g = bus(n);
        let data = InitialData::bus_case(n);
        let mut sim = Simulator::with_schedule(
            &g,
            PushFlow::new(&g, &data),
            FaultPlan::none(),
            0,
            Schedule::round_robin(n),
        );
        sim.run(20_000);
        let pf = sim.protocol();
        let reference = data.reference()[0];
        let err = max_relative_error(pf.scalar_estimates(), reference);
        assert!(err < 1e-9, "bus not converged: {err}");
        for i in 2..=n {
            // 1-indexed paper notation -> 0-indexed ids
            let (a, b) = ((i - 2) as NodeId, (i - 1) as NodeId);
            let expect = (n - i + 1) as f64;
            let f = pf.flow(a, b).value;
            assert!(
                (f - expect).abs() <= 3.0,
                "edge ({a},{b}): flow {f}, schematic value {expect}"
            );
        }
        // Flows grow with n while the aggregate stays 2 — the cancellation
        // hazard the paper analyses.
        assert!(pf.max_flow_magnitude() >= (n - 3) as f64);
    }

    #[test]
    fn recovers_from_message_loss() {
        let g = complete(16);
        let data = avg_data(16, 6);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::with_loss(0.2), 5);
        sim.run(600);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-10, "PF must converge through 20% loss, err={err}");
    }

    #[test]
    fn recovers_from_bounded_corruption() {
        // The self-healing claim in practice: corrupt one flow variable by
        // a *bounded* amount (sign flip — the worst mantissa-or-sign-class
        // soft error). The next exchanges overwrite the corrupt state and
        // convergence resumes to full accuracy.
        let g = complete(16);
        let data = avg_data(16, 7);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 7);
        sim.run(50);
        {
            let pf = sim.protocol_mut();
            let idx = pf.arc(0, 1);
            let f = &mut pf.bank.slice_mut(idx, FLOW)[0];
            *f = -*f; // sign flip
        }
        sim.run(500);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "PF must heal a sign-flipped flow, err={err}");
    }

    #[test]
    fn exponent_corruption_is_fatal_in_floating_point() {
        // The paper's practical critique (Sec. I/II): PF's bit-flip
        // tolerance is a *theoretical* property. A high-exponent-bit flip
        // turns a flow into ~1e30; the poisoned mass circulates through
        // v − Σf subtractions whose rounding error (~1e30·ε ≈ 1e14) then
        // dwarfs the true aggregate forever. PF never recovers the lost
        // precision.
        let g = complete(16);
        let data = avg_data(16, 7);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 7);
        sim.run(50);
        {
            let pf = sim.protocol_mut();
            let idx = pf.arc(0, 1);
            pf.bank.slice_mut(idx, FLOW)[0] = 1e30;
        }
        sim.run(2000);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(
            err > 1e6,
            "expected permanent precision loss after exponent corruption, err={err}"
        );
    }

    #[test]
    fn link_failure_causes_convergence_fallback() {
        // Paper Sec. II-C / Fig. 4: handling a permanent link failure late
        // in the run throws PF almost back to the start. Spike data makes
        // the transported flows large, so the excision is unmistakable
        // (the figure harness reproduces the paper's exact uniform-data
        // curves; this test pins the qualitative mechanism).
        let g = hypercube(6);
        let data = InitialData::spike(64);
        let reference = data.reference()[0];
        let seed = 9;

        // The failure lands late enough (round 150) that the run is well
        // past its slow transient, so the pre/post gap is unambiguous.
        let plan = FaultPlan::none().fail_link(0, 1, 150);
        let mut faulty = Simulator::new(&g, PushFlow::new(&g, &data), plan, seed);
        faulty.run(149);
        let pre_err = RelErr::of(faulty.protocol().scalar_estimates(), reference).max;
        faulty.run(2);
        let post_err = RelErr::of(faulty.protocol().scalar_estimates(), reference).max;

        assert!(
            post_err > pre_err * 1e2,
            "failure handling should throw PF back: pre={pre_err:e}, post={post_err:e}"
        );
        // ... but PF still re-converges eventually (fault tolerant, just slow).
        faulty.run(1000);
        let final_err = RelErr::of(faulty.protocol().scalar_estimates(), reference).max;
        assert!(final_err < 1e-10, "PF should reconverge, err={final_err}");
    }

    #[test]
    fn isolated_node_keeps_its_own_estimate() {
        // After its only link dies, a bus endpoint reverts to its initial
        // value (flows zeroed) and stays there.
        let g = bus(3);
        let data = InitialData::with_kind(vec![10.0, 1.0, 1.0], AggregateKind::Average);
        let plan = FaultPlan::none().fail_link(0, 1, 5);
        let mut sim = Simulator::new(&g, PushFlow::new(&g, &data), plan, 10);
        sim.run(300);
        let pf = sim.protocol();
        assert_eq!(pf.scalar_estimate(0), 10.0);
        // survivors converge to the average of their own data: (1+1)/2 = 1
        // ... plus whatever mass had already flowed to/from node 0 before
        // the cut; after zeroing flows, nodes 1,2 hold exactly their v_i
        // minus remaining mutual flows, which converge to avg of (1,1) = 1
        // only if no mass was exchanged with node 0. With the cut at round
        // 5 some mass did move, so just check consensus between 1 and 2.
        let (e1, e2) = (pf.scalar_estimate(1), pf.scalar_estimate(2));
        assert!(
            (e1 - e2).abs() < 1e-9,
            "survivors should agree: {e1} vs {e2}"
        );
    }

    #[test]
    fn compensated_estimates_match_plain_when_benign() {
        // On well-scaled flows the compensated and plain paths agree to
        // rounding; the difference only matters when flows dwarf the
        // estimate (the ablation_compensated_pf experiment).
        let g = hypercube(3);
        let data = avg_data(8, 30);
        let mut plain = PushFlow::new(&g, &data);
        let mut comp = PushFlow::new(&g, &data).with_compensated_estimates();
        let mut rng = StdRng::seed_from_u64(30);
        for _ in 0..200 {
            let i: NodeId = rng.random_range(0..8);
            let nbrs = g.neighbors(i);
            let k = nbrs[rng.random_range(0..nbrs.len())];
            let mut m1 = plain.on_send(i, k);
            plain.on_receive(k, i, &mut m1);
            let mut m2 = comp.on_send(i, k);
            comp.on_receive(k, i, &mut m2);
        }
        for i in 0..8 {
            let a = plain.scalar_estimate(i);
            let b = comp.scalar_estimate(i);
            assert!(
                (a - b).abs() <= 1e-10 * a.abs().max(1.0),
                "node {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn guard_rejects_implausible_flows() {
        let g = bus(2);
        let data = avg_data(2, 31);
        let mut pf = PushFlow::new(&g, &data).with_guard(100.0);
        // plausible message accepted
        pf.on_receive(0, 1, &mut Mass::new(3.0, 1.0));
        assert_eq!(pf.flow(0, 1).value, -3.0);
        // huge (exponent-flipped) message rejected: state unchanged
        pf.on_receive(0, 1, &mut Mass::new(1e30, 1.0));
        assert_eq!(pf.flow(0, 1).value, -3.0);
        // non-finite rejected too
        pf.on_receive(0, 1, &mut Mass::new(f64::NAN, 1.0));
        assert_eq!(pf.flow(0, 1).value, -3.0);
        pf.on_receive(0, 1, &mut Mass::new(1.0, f64::INFINITY));
        assert_eq!(pf.flow(0, 1).value, -3.0);
    }

    #[test]
    fn guarded_pf_survives_exponent_corruption() {
        // The counterpart to `exponent_corruption_is_fatal_in_floating_point`:
        // with the guard, the poison never enters and the run converges.
        let g = complete(16);
        let data = avg_data(16, 7);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(
            &g,
            PushFlow::new(&g, &data).with_guard(1e6),
            FaultPlan::with_bit_flips(0.01),
            7,
        );
        sim.run(600);
        sim.set_fault_plan(FaultPlan::none());
        sim.run(600);
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-9, "guarded PF should recover, err={err}");
    }

    #[test]
    #[should_panic(expected = "guard must be positive")]
    fn invalid_guard_rejected() {
        let g = bus(2);
        let data = avg_data(2, 32);
        let _ = PushFlow::new(&g, &data).with_guard(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn receive_from_non_neighbor_panics() {
        let g = bus(3);
        let data = avg_data(3, 0);
        let mut pf = PushFlow::new(&g, &data);
        pf.on_receive(0, 2, &mut Mass::new(1.0, 1.0));
    }
}
