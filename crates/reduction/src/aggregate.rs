//! Aggregation targets and initial-data workloads.
//!
//! Push-sum-family protocols compute `(Σᵢ xᵢ·)/(Σᵢ wᵢ)`; the *type* of
//! aggregate is selected purely through the initial weights (paper Sec.
//! II-A: "scalar weights are exchanged which determine the type of
//! aggregation"): all-ones weights give the average, a single unit weight
//! gives the sum.

use crate::payload::Payload;
use gr_numerics::Dd;
use rand::prelude::*;

/// The aggregation kinds the paper evaluates (Figs. 3/6 sweep both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// `(Σ xᵢ)/n` — all weights 1.
    Average,
    /// `Σ xᵢ` — weight 1 at node 0, 0 elsewhere.
    Sum,
}

impl AggregateKind {
    /// Initial weight vector for `n` nodes.
    pub fn weights(self, n: usize) -> Vec<f64> {
        match self {
            AggregateKind::Average => vec![1.0; n],
            AggregateKind::Sum => {
                let mut w = vec![0.0; n];
                if n > 0 {
                    w[0] = 1.0;
                }
                w
            }
        }
    }

    /// Short label used in experiment output ("AVG"/"SUM", as in the
    /// paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            AggregateKind::Average => "AVG",
            AggregateKind::Sum => "SUM",
        }
    }
}

/// The initial data of a reduction: per-node values and weights.
#[derive(Clone, Debug)]
pub struct InitialData<P> {
    values: Vec<P>,
    weights: Vec<f64>,
    dim: usize,
}

impl<P: Payload> InitialData<P> {
    /// Build from explicit values and weights.
    ///
    /// # Panics
    /// Panics if lengths differ, values have inconsistent dimensions, or
    /// all weights are zero (the target `Σx/Σw` would be undefined).
    pub fn new(values: Vec<P>, weights: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            weights.len(),
            "values/weights length mismatch"
        );
        assert!(!values.is_empty(), "empty reduction");
        let dim = values[0].dim();
        assert!(
            values.iter().all(|v| v.dim() == dim),
            "inconsistent payload dimensions"
        );
        assert!(
            weights.iter().any(|&w| w != 0.0),
            "all-zero weights: aggregate undefined"
        );
        InitialData {
            values,
            weights,
            dim,
        }
    }

    /// Initial data for the given aggregate kind.
    pub fn with_kind(values: Vec<P>, kind: AggregateKind) -> Self {
        let w = kind.weights(values.len());
        Self::new(values, w)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no nodes (never constructible; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Payload dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Value of node `i`.
    pub fn value(&self, i: usize) -> &P {
        &self.values[i]
    }

    /// Weight of node `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// High-precision reference aggregate, componentwise
    /// `(Σᵢ xᵢ[k])/(Σᵢ wᵢ)`.
    pub fn reference(&self) -> Vec<Dd> {
        self.reference_over(0..self.len())
            .expect("constructor guarantees nonzero total weight")
    }

    /// Reference aggregate over a surviving subset of nodes — after a
    /// fail-stop crash the remaining nodes converge to the aggregate of
    /// the *survivors'* data (the crashed node's mass is excised by the
    /// failure handling). `None` if the surviving weights sum to zero.
    pub fn reference_over<I: IntoIterator<Item = usize>>(&self, nodes: I) -> Option<Vec<Dd>> {
        let mut vsum = vec![Dd::ZERO; self.dim];
        let mut wsum = Dd::ZERO;
        for i in nodes {
            for (acc, &c) in vsum.iter_mut().zip(self.values[i].components()) {
                *acc += c;
            }
            wsum += self.weights[i];
        }
        if wsum.is_zero() {
            return None;
        }
        Some(vsum.into_iter().map(|v| v / wsum).collect())
    }
}

impl InitialData<f64> {
    /// Uniform `[0, 1)` scalar values (seeded), the workload used for the
    /// accuracy-vs-scale sweeps (the paper does not pin a distribution;
    /// uniform data is the conventional choice and reproduces the shapes).
    pub fn uniform_random(n: usize, kind: AggregateKind, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        Self::with_kind(values, kind)
    }

    /// The Sec. II-B bus case study: `v₁ = n + 1`, `vᵢ = 1` otherwise,
    /// unit weights ⇒ the average is exactly 2 for every `n`.
    pub fn bus_case(n: usize) -> Self {
        assert!(n >= 1);
        let mut values = vec![1.0; n];
        values[0] = (n + 1) as f64;
        Self::with_kind(values, AggregateKind::Average)
    }

    /// A single spike: node 0 holds `n`, everyone else 0 (average 1).
    /// Stresses mass transport across the full diameter.
    pub fn spike(n: usize) -> Self {
        let mut values = vec![0.0; n];
        values[0] = n as f64;
        Self::with_kind(values, AggregateKind::Average)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_for_kinds() {
        assert_eq!(AggregateKind::Average.weights(3), vec![1.0; 3]);
        assert_eq!(AggregateKind::Sum.weights(3), vec![1.0, 0.0, 0.0]);
        assert_eq!(AggregateKind::Sum.label(), "SUM");
    }

    #[test]
    fn average_reference() {
        let d = InitialData::with_kind(vec![1.0, 2.0, 3.0], AggregateKind::Average);
        assert_eq!(d.reference()[0].to_f64(), 2.0);
    }

    #[test]
    fn sum_reference() {
        let d = InitialData::with_kind(vec![1.0, 2.0, 3.0], AggregateKind::Sum);
        assert_eq!(d.reference()[0].to_f64(), 6.0);
    }

    #[test]
    fn vector_reference_componentwise() {
        let d = InitialData::with_kind(
            vec![vec![1.0, 10.0], vec![3.0, 30.0]],
            AggregateKind::Average,
        );
        let r = d.reference();
        assert_eq!(r[0].to_f64(), 2.0);
        assert_eq!(r[1].to_f64(), 20.0);
    }

    #[test]
    fn survivor_reference() {
        let d = InitialData::with_kind(vec![1.0, 100.0, 3.0], AggregateKind::Average);
        let r = d.reference_over([0, 2]).unwrap();
        assert_eq!(r[0].to_f64(), 2.0);
    }

    #[test]
    fn survivor_reference_zero_weight_is_none() {
        let d = InitialData::with_kind(vec![1.0, 2.0], AggregateKind::Sum);
        // node 0 holds the only weight; if it dies SUM is undefined
        assert!(d.reference_over([1]).is_none());
    }

    #[test]
    fn bus_case_average_is_two() {
        for n in [1, 2, 5, 100] {
            let d = InitialData::bus_case(n);
            assert_eq!(d.reference()[0].to_f64(), 2.0, "n={n}");
        }
    }

    #[test]
    fn spike_average_is_one() {
        let d = InitialData::spike(17);
        assert_eq!(d.reference()[0].to_f64(), 1.0);
    }

    #[test]
    fn uniform_random_reproducible() {
        let a = InitialData::uniform_random(10, AggregateKind::Average, 5);
        let b = InitialData::uniform_random(10, AggregateKind::Average, 5);
        assert_eq!(a.value(3), b.value(3));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = InitialData::new(vec![1.0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn zero_weights_rejected() {
        let _ = InitialData::new(vec![1.0, 2.0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent payload dimensions")]
    fn ragged_vectors_rejected() {
        let _ = InitialData::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 1.0]);
    }
}
