//! Push-pull sum: bidirectional mass exchange per contact.
//!
//! The push-only protocols share a structural weakness on
//! degree-asymmetric topologies: a node sheds half its mass every time it
//! *initiates* but is replenished only when someone happens to pick *it*,
//! so rarely-contacted nodes (star leaves, low-degree nodes next to hubs)
//! see their holdings decay geometrically. For push-sum the tiny holdings
//! stay *exact* (mass is stored directly) and only the conditioning
//! suffers; for the flow algorithms the holding is **derived** as
//! `v − ϕ` from O(1) bookkeeping, so once it falls below `ε·|ϕ|` it
//! quantizes to garbage and the resulting NaN estimates spread (see
//! `gr-spectral`'s starvation notes). Push-**pull** closes the loop: when
//! `i` contacts `k`, `k` replies with half of its own mass in the same
//! exchange, so every contact is mass-balancing in both directions — a
//! node's holding is refilled by its *own* activity, which the scheduler
//! guarantees every round.
//!
//! The price is the same as push-sum's: mass rides in messages, so a lost
//! message (or a lost *reply*) permanently deletes mass. Push-pull is the
//! right baseline for topology studies, not a fault-tolerance contender —
//! combining pull-style replies with flow bookkeeping is an open corner
//! the paper doesn't touch.

use crate::aggregate::InitialData;
use crate::payload::{Mass, Payload};
use crate::protocol::ReductionProtocol;
use gr_netsim::Protocol;
use gr_topology::{Graph, NodeId};

/// Push-pull-sum protocol state (all nodes).
pub struct PushPullSum<P: Payload> {
    mass: Vec<Mass<P>>,
    /// Retained initial data for node restarts (cf. [`crate::PushSum`]).
    init: Vec<Mass<P>>,
    dim: usize,
    /// Recycled wire buffers (fed by [`Protocol::reclaim`]).
    pool: Vec<Mass<P>>,
}

impl<P: Payload> PushPullSum<P> {
    /// Initialise from per-node data.
    pub fn new(graph: &Graph, init: &InitialData<P>) -> Self {
        assert_eq!(graph.len(), init.len(), "graph/init size mismatch");
        let mass: Vec<Mass<P>> = (0..init.len())
            .map(|i| Mass::new(init.value(i).clone(), init.weight(i)))
            .collect();
        PushPullSum {
            init: mass.clone(),
            mass,
            dim: init.dim(),
            pool: Vec::new(),
        }
    }

    /// Current mass of a node (inspection hook).
    pub fn mass(&self, node: NodeId) -> &Mass<P> {
        &self.mass[node as usize]
    }

    /// Smallest weight currently held by any node — the starvation
    /// indicator push-pull keeps bounded away from zero.
    pub fn min_weight(&self) -> f64 {
        self.mass
            .iter()
            .map(|m| m.weight)
            .fold(f64::INFINITY, f64::min)
    }
}

impl<P: Payload> Protocol for PushPullSum<P> {
    type Msg = Mass<P>;

    fn on_send(&mut self, node: NodeId, _target: NodeId) -> Mass<P> {
        // Recycled buffers are fully overwritten, so the wire bytes are
        // identical to a freshly cloned message.
        let out = self.pool.pop();
        let m = &mut self.mass[node as usize];
        m.scale(0.5);
        match out {
            Some(mut buf) => {
                buf.copy_from(m);
                buf
            }
            None => m.clone(),
        }
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, msg: &mut Mass<P>) {
        self.mass[node as usize].add_assign(msg);
    }

    fn reply(&mut self, node: NodeId, _from: NodeId) -> Option<Mass<P>> {
        // The pull half: answer with half of our own (post-merge) mass.
        let out = self.pool.pop();
        let m = &mut self.mass[node as usize];
        m.scale(0.5);
        Some(match out {
            Some(mut buf) => {
                buf.copy_from(m);
                buf
            }
            None => m.clone(),
        })
    }

    fn reclaim(&mut self, msg: Mass<P>) {
        self.pool.push(msg);
    }

    fn on_restart(&mut self, node: NodeId) {
        // Same story as push-sum: rejoin with the retained initial mass;
        // the previous life's dispersed mass stays unaccounted (biased
        // limit — this family is the non-fault-tolerant baseline).
        self.mass[node as usize] = self.init[node as usize].clone();
    }
}

impl<P: Payload> ReductionProtocol for PushPullSum<P> {
    fn node_count(&self) -> usize {
        self.mass.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn write_estimate(&self, node: NodeId, out: &mut [f64]) {
        self.mass[node as usize].write_estimate(out);
    }

    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64 {
        let m = &self.mass[node as usize];
        values.copy_from_slice(m.value.components());
        m.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;
    use crate::push_sum::PushSum;
    use gr_netsim::{FaultPlan, Simulator};
    use gr_numerics::max_relative_error;
    use gr_topology::{complete, hypercube, star};

    fn avg_data(n: usize, seed: u64) -> InitialData<f64> {
        InitialData::uniform_random(n, AggregateKind::Average, seed)
    }

    #[test]
    fn converges_on_complete_graph() {
        let g = complete(16);
        let data = avg_data(16, 1);
        let mut sim = Simulator::new(&g, PushPullSum::new(&g, &data), FaultPlan::none(), 1);
        sim.run(150);
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err < 1e-12, "err={err}");
    }

    #[test]
    fn mass_conserved_failure_free() {
        let g = hypercube(4);
        let data = avg_data(16, 2);
        let mut sim = Simulator::new(&g, PushPullSum::new(&g, &data), FaultPlan::none(), 2);
        for _ in 0..100 {
            sim.step();
            let w: f64 = (0..16).map(|i| sim.protocol().mass(i).weight).sum();
            assert!((w - 16.0).abs() < 1e-11, "weight mass drifted: {w}");
        }
    }

    #[test]
    fn star_does_not_starve_under_push_pull() {
        // The structural fix: push-pull leaves refill themselves at every
        // own contact, so the minimum weight stays bounded (push-only
        // leaf weights decay to ~2^-gap since their last contact) and the
        // reduction converges to machine precision over arbitrarily long
        // runs.
        let g = star(17);
        let data = avg_data(17, 3);
        let reference = data.reference()[0];
        let mut sim = Simulator::new(&g, PushPullSum::new(&g, &data), FaultPlan::none(), 3);
        sim.run(4000); // far beyond the flow-algorithms' quantization horizon
        let minw = sim.protocol().min_weight();
        assert!(
            minw > 1e-6,
            "push-pull should keep leaf weights alive, min = {minw:e}"
        );
        let err = max_relative_error(sim.protocol().scalar_estimates(), reference);
        assert!(err < 1e-12, "err={err}");
        // Contrast the weight conditioning with push-only on the same
        // setup: its smallest weight is orders of magnitude smaller.
        let mut push = Simulator::new(&g, PushSum::new(&g, &data), FaultPlan::none(), 3);
        push.run(4000);
        let push_minw = push
            .protocol()
            .scalar_estimates() // estimates stay fine (mass is exact) ...
            .iter()
            .map(|e| ((e - reference.to_f64()) / reference.to_f64()).abs())
            .fold(0.0f64, f64::max);
        assert!(push_minw < 1e-9, "push-sum's direct mass keeps ratios fine");
        let w_push: Vec<f64> = (0..17).map(|i| push.protocol().mass(i).weight).collect();
        let push_min = w_push.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            push_min < minw / 100.0,
            "push-only weights should be far worse conditioned: {push_min:e} vs {minw:e}"
        );
    }

    #[test]
    fn star_flow_algorithms_starve_where_push_pull_does_not() {
        // The derived-state quantization: PF on a star for thousands of
        // rounds destroys leaf estimates (holdings below ε·|bookkeeping|
        // quantize to garbage and NaN spreads), while push-pull stays at
        // machine precision above.
        use crate::push_flow::PushFlow;
        let g = star(17);
        let data = avg_data(17, 3);
        let reference = data.reference()[0];
        let mut pf = Simulator::new(&g, PushFlow::new(&g, &data), FaultPlan::none(), 3);
        pf.run(4000);
        let pf_err = max_relative_error(pf.protocol().scalar_estimates(), reference);
        assert!(
            pf_err > 1e-8,
            "flow-derived state should quantization-degrade on the star, err={pf_err:e}"
        );
    }

    #[test]
    fn message_loss_still_fatal() {
        // Push-pull does not gain fault tolerance: lost replies delete
        // mass exactly like lost pushes.
        let g = complete(16);
        let data = avg_data(16, 4);
        let mut sim = Simulator::new(
            &g,
            PushPullSum::new(&g, &data),
            FaultPlan::with_loss(0.1),
            4,
        );
        sim.run(400);
        let w: f64 = (0..16).map(|i| sim.protocol().mass(i).weight).sum();
        assert!(w < 15.0, "loss should leak mass: {w}");
        let err = max_relative_error(sim.protocol().scalar_estimates(), data.reference()[0]);
        assert!(err > 1e-8, "biased limit expected, err={err}");
    }

    #[test]
    fn vector_payloads_work() {
        let g = hypercube(3);
        let values: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0]).collect();
        let data = InitialData::with_kind(values, AggregateKind::Average);
        let mut sim = Simulator::new(&g, PushPullSum::new(&g, &data), FaultPlan::none(), 5);
        sim.run(300);
        let mut out = [0.0; 2];
        sim.protocol().write_estimate(4, &mut out);
        assert!((out[0] - 3.5).abs() < 1e-12);
        assert!((out[1] - 1.0).abs() < 1e-12);
    }
}
