//! Structure-of-arrays flow storage for the flow-based protocols.
//!
//! PF and PCF keep one (PF) or four (PCF) vector-valued flow variables per
//! directed arc. Storing them as `Vec<Mass<P>>` means every variable is its
//! own heap object: vector payloads scatter across the allocator and every
//! componentwise update walks a pointer. A [`FlowBank`] instead packs *all*
//! value components of *all* arcs into one contiguous, 64-byte-aligned
//! `f64` slab, indexed by the same CSR `arc_base`/`neighbor_slot` scheme as
//! the rest of the per-arc state:
//!
//! ```text
//! offset(arc, field) = (arc * fields + field) * dim
//! ```
//!
//! Arc-major order keeps every field of one arc on the same (or adjacent)
//! cache line — a message receipt touches all fields of exactly one arc.
//! Weights and per-arc control words stay in small arrays-of-structs next
//! to the bank; only the `dim`-sized value vectors move here.
//!
//! The componentwise kernels the protocols run over bank slices live in
//! [`crate::kernels`] in lane-blocked SIMD form (AVX2/NEON with a
//! structurally identical scalar fallback) and are re-exported here
//! under their historical `bank::` names. Each one performs *exactly*
//! the per-component IEEE-754 operations (in the same order) as the
//! `Mass`-level code it replaced, so runs are bit-identical to the
//! array-of-structs implementation — pinned by the golden-schedule
//! hashes, the `payload_equiv` proptest, and the `kernel_equiv`
//! SIMD-vs-scalar sweep.

/// One 64-byte cache line of components. The slab is a `Vec<Line>` so the
/// allocation is 64-byte aligned without any unstable allocator API; it is
/// viewed as a flat `[f64]` for all arithmetic.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Line([f64; 8]);

const LINE_F64S: usize = 8;

/// A contiguous, 64-byte-aligned slab of per-arc vector flow components.
#[derive(Clone)]
pub(crate) struct FlowBank {
    lines: Vec<Line>,
    /// Total live `f64` count: `arcs * fields * dim` (the slab may carry up
    /// to 7 trailing padding slots to fill the last line).
    len: usize,
    fields: usize,
    dim: usize,
}

impl FlowBank {
    /// An all-zero bank for `arcs` arcs with `fields` vector variables of
    /// dimension `dim` each.
    pub fn new(arcs: usize, fields: usize, dim: usize) -> Self {
        let len = arcs * fields * dim;
        FlowBank {
            lines: vec![Line([0.0; LINE_F64S]); len.div_ceil(LINE_F64S)],
            len,
            fields,
            dim,
        }
    }

    #[inline]
    fn offset(&self, arc: usize, field: usize) -> usize {
        debug_assert!(field < self.fields);
        (arc * self.fields + field) * self.dim
    }

    #[inline]
    fn flat(&self) -> &[f64] {
        // SAFETY: the Vec<Line> owns `lines.len() * 8 >= len` initialized,
        // properly aligned f64s; Line is repr(C) over [f64; 8].
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<f64>(), self.len) }
    }

    #[inline]
    fn flat_mut(&mut self) -> &mut [f64] {
        // SAFETY: as in `flat`, and the borrow is exclusive.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<f64>(), self.len) }
    }

    /// The components of one field of one arc.
    #[inline]
    pub fn slice(&self, arc: usize, field: usize) -> &[f64] {
        let o = self.offset(arc, field);
        &self.flat()[o..o + self.dim]
    }

    /// Mutable components of one field of one arc.
    #[inline]
    pub fn slice_mut(&mut self, arc: usize, field: usize) -> &mut [f64] {
        let o = self.offset(arc, field);
        let dim = self.dim;
        &mut self.flat_mut()[o..o + dim]
    }

    /// Borrow one field read-only and another mutably on the same arc.
    #[inline]
    pub fn src_dst(&mut self, arc: usize, src: usize, dst: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(src, dst, "src and dst fields must differ");
        let (os, od) = (self.offset(arc, src), self.offset(arc, dst));
        let dim = self.dim;
        let ptr = self.flat_mut().as_mut_ptr();
        // SAFETY: both ranges lie inside the slab (offset + dim <= len) and
        // are disjoint because src != dst implies |os - od| >= dim.
        unsafe {
            (
                std::slice::from_raw_parts(ptr.add(os), dim),
                std::slice::from_raw_parts_mut(ptr.add(od), dim),
            )
        }
    }

    /// Borrow two fields read-only and a third mutably on the same arc.
    #[inline]
    pub fn two_src_dst(
        &mut self,
        arc: usize,
        src_a: usize,
        src_b: usize,
        dst: usize,
    ) -> (&[f64], &[f64], &mut [f64]) {
        assert!(src_a != dst && src_b != dst, "dst must differ from sources");
        let (oa, ob, od) = (
            self.offset(arc, src_a),
            self.offset(arc, src_b),
            self.offset(arc, dst),
        );
        let dim = self.dim;
        let ptr = self.flat_mut().as_mut_ptr();
        // SAFETY: all ranges lie inside the slab; dst is disjoint from both
        // sources (asserted), and the sources are only read (aliasing two
        // shared borrows is fine, including src_a == src_b).
        unsafe {
            (
                std::slice::from_raw_parts(ptr.add(oa), dim),
                std::slice::from_raw_parts(ptr.add(ob), dim),
                std::slice::from_raw_parts_mut(ptr.add(od), dim),
            )
        }
    }

    /// Copy one field of an arc onto another field of the same arc.
    #[inline]
    pub fn copy_field(&mut self, arc: usize, src: usize, dst: usize) {
        let (os, od) = (self.offset(arc, src), self.offset(arc, dst));
        let dim = self.dim;
        self.flat_mut().copy_within(os..os + dim, od);
    }

    /// Zero one field of one arc (exact `+0.0`, clearing non-finite
    /// components — the slice analogue of `Mass::clear` on the value).
    #[inline]
    pub fn fill_zero(&mut self, arc: usize, field: usize) {
        self.slice_mut(arc, field).fill(0.0);
    }

    /// Every field of arcs `arc0 .. arc0 + narcs` as one contiguous slice
    /// (arc-major layout makes a node's arc range a single run). This is
    /// the input the fused estimate kernels ([`sub_rows`],
    /// [`sub_leading2_rows`]) stream over — one bounds check for the whole
    /// neighborhood instead of one `slice()` per arc per field.
    #[inline]
    pub fn arc_rows(&self, arc0: usize, narcs: usize) -> &[f64] {
        let o = arc0 * self.fields * self.dim;
        &self.flat()[o..o + narcs * self.fields * self.dim]
    }
}

#[cfg(test)]
pub(crate) use crate::kernels::sub;
pub(crate) use crate::kernels::{
    add, add_sum, fold1, fold2, is_neg, store_neg, sub_leading2_rows, sub_rows, sub_sum,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_is_cache_line_aligned_and_indexed_arc_major() {
        let mut bank = FlowBank::new(3, 4, 5);
        assert_eq!(bank.flat().as_ptr() as usize % 64, 0);
        bank.slice_mut(2, 3)[4] = 7.0;
        // offset = (2*4 + 3) * 5 + 4 = 59
        assert_eq!(bank.flat()[59], 7.0);
        assert_eq!(bank.slice(2, 3), &[0.0, 0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn split_borrows_are_disjoint() {
        let mut bank = FlowBank::new(2, 4, 3);
        bank.slice_mut(1, 0).copy_from_slice(&[1.0, 2.0, 3.0]);
        bank.slice_mut(1, 1).copy_from_slice(&[10.0, 20.0, 30.0]);
        {
            let (f0, f1, base) = bank.two_src_dst(1, 0, 1, 3);
            for ((b, x), y) in base.iter_mut().zip(f0).zip(f1) {
                *b = *x + *y;
            }
        }
        assert_eq!(bank.slice(1, 3), &[11.0, 22.0, 33.0]);
        {
            let (src, dst) = bank.src_dst(1, 3, 2);
            dst.copy_from_slice(src);
        }
        assert_eq!(bank.slice(1, 2), &[11.0, 22.0, 33.0]);
        bank.copy_field(1, 0, 2);
        assert_eq!(bank.slice(1, 2), &[1.0, 2.0, 3.0]);
        bank.fill_zero(1, 0);
        assert_eq!(bank.slice(1, 0), &[0.0; 3]);
        // untouched neighbors
        assert_eq!(bank.slice(0, 0), &[0.0; 3]);
        assert_eq!(bank.slice(1, 1), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn kernels_match_reference_semantics() {
        let mut d = vec![1.0, -2.0, 0.5];
        add(&mut d, &[1.0, 1.0, 1.0]);
        assert_eq!(d, vec![2.0, -1.0, 1.5]);
        sub(&mut d, &[0.5, 0.5, 0.5]);
        assert_eq!(d, vec![1.5, -1.5, 1.0]);
        store_neg(&mut d, &[3.0, -4.0, 0.0]);
        assert_eq!(d, vec![-3.0, 4.0, -0.0]);
        sub_sum(&mut d, &[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]);
        assert_eq!(d, vec![-6.0, 1.0, -3.0]);
        assert!(is_neg(&[0.0, 1.0], &[-0.0, -1.0]));
        assert!(!is_neg(&[f64::NAN], &[f64::NAN]));
        assert!(!is_neg(&[1.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn src_dst_rejects_aliasing() {
        let mut bank = FlowBank::new(1, 2, 2);
        let _ = bank.src_dst(0, 1, 1);
    }

    #[test]
    fn fused_row_kernels_match_per_slot_loops() {
        // Single-field bank: sub_rows over a 3-arc range must equal three
        // per-slot subs, bitwise.
        let mut bank = FlowBank::new(4, 1, 2);
        for arc in 0..4 {
            let v = (arc as f64 + 1.0) * 0.1;
            bank.slice_mut(arc, 0).copy_from_slice(&[v, -v]);
        }
        let mut fused = [1.0, 2.0];
        sub_rows(&mut fused, bank.arc_rows(1, 3));
        let mut slow = [1.0, 2.0];
        for arc in 1..4 {
            sub(&mut slow, bank.slice(arc, 0));
        }
        assert_eq!(fused, slow);

        // Multi-field bank: sub_leading2_rows must subtract exactly fields
        // 0 and 1 of each arc, in slot order.
        let mut bank = FlowBank::new(3, 4, 2);
        for arc in 0..3 {
            for field in 0..4 {
                let v = (arc * 4 + field) as f64;
                bank.slice_mut(arc, field).copy_from_slice(&[v, v + 0.5]);
            }
        }
        let mut fused = [100.0, 200.0];
        sub_leading2_rows(&mut fused, bank.arc_rows(0, 3), 4);
        let mut slow = [100.0, 200.0];
        for arc in 0..3 {
            sub(&mut slow, bank.slice(arc, 0));
            sub(&mut slow, bank.slice(arc, 1));
        }
        assert_eq!(fused, slow);
    }
}
