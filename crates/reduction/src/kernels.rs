//! Lane-blocked componentwise kernels over flow-bank slices.
//!
//! Every kernel here is *componentwise*: component `k` of the output
//! depends only on component `k` of the inputs, with no cross-lane
//! reduction and therefore no reassociation. Executing four components
//! per step (one 256-bit vector of `f64`s) performs exactly the same
//! IEEE-754 operations on exactly the same values as the scalar loop —
//! only the issue order *across* components changes, which cannot change
//! any component's result. SIMD execution is therefore bit-identical to
//! scalar execution, which the golden-schedule hashes and the
//! `kernel_equiv` proptests pin.
//!
//! Three implementations exist per kernel:
//!
//! * [`scalar`] — the fallback, written in the same lane-blocked shape
//!   as the vector code (a 4-wide block loop plus a remainder loop) so
//!   the two paths stay structurally comparable;
//! * an AVX2 path (`x86_64`, runtime-detected via
//!   `is_x86_feature_detected!`) using 4×`f64` `_mm256` vectors;
//! * a NEON path (`aarch64`, baseline feature) using pairs of 2×`f64`
//!   vectors per 4-wide block.
//!
//! The top-level functions dispatch through a cached flag. The SIMD path
//! can be forced off two ways: the `force-scalar` cargo feature compiles
//! the dispatch to scalar-only, and setting `GR_SIMD=0` in the
//! environment disables it at startup (the CI scalar leg uses the env
//! var so one binary exercises both paths). [`simd`] exposes the vector
//! path directly for the A/B benches and equivalence tests.
//!
//! Negation is a sign-bit XOR (exact; never rounds). Equality uses
//! ordered non-signaling compares (`_CMP_EQ_OQ`), matching scalar `==`:
//! signed zeros compare equal, NaN never.

use std::sync::atomic::{AtomicU8, Ordering};

/// Components per block: one 256-bit vector of `f64`s.
pub const LANES: usize = 4;

const MODE_UNKNOWN: u8 = 0;
const MODE_SIMD: u8 = 1;
const MODE_SCALAR: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNKNOWN);

/// `true` iff this build and CPU have a vector path at all (ignores the
/// `GR_SIMD` env override — see [`simd_enabled`] for the dispatch state).
#[inline(always)]
pub fn simd_supported() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
    {
        true
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        feature = "force-scalar"
    ))]
    {
        false
    }
}

/// `true` iff the dispatching kernels take the vector path: the CPU
/// supports it, the `force-scalar` feature is off, and `GR_SIMD=0` was
/// not set when first queried. Cached after the first call.
#[inline(always)]
pub fn simd_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_SIMD => true,
        MODE_SCALAR => false,
        _ => init_mode(),
    }
}

/// Name of the active dispatch path, for reports: `"avx2"`, `"neon"`, or
/// `"scalar"`.
pub fn active_path() -> &'static str {
    if simd_enabled() {
        if cfg!(target_arch = "x86_64") {
            "avx2"
        } else {
            "neon"
        }
    } else {
        "scalar"
    }
}

#[cold]
fn init_mode() -> bool {
    let forced_off = std::env::var_os("GR_SIMD").is_some_and(|v| v == "0");
    let on = !forced_off && simd_supported();
    MODE.store(if on { MODE_SIMD } else { MODE_SCALAR }, Ordering::Relaxed);
    on
}

// ---- dispatching kernels ----------------------------------------------
//
// These are the entry points the protocols use. Length agreement is a
// debug assertion only — every implementation (scalar and vector alike)
// bounds its pointer arithmetic by the minimum of its operand lengths,
// so a release-mode mismatch truncates instead of reading out of
// bounds. Dispatch is whole-kernel — one cached-flag branch per call,
// not per block — and slices shorter than one lane block skip it
// entirely.

macro_rules! dispatch {
    ($len:expr, $name:ident($($arg:expr),*)) => {{
        // Below one lane block there is no vector work at all — the
        // vector path would run only its remainder loop while paying the
        // dispatch branch plus a non-inlinable `target_feature` call.
        // Scalar (dim-1) payloads live entirely on this fast path, where
        // the `#[inline]` scalar kernel collapses into the caller.
        if $len < LANES {
            return scalar::$name($($arg),*);
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        if simd_enabled() {
            // SAFETY: `simd_enabled` is true only when `simd_supported`
            // confirmed AVX2 at runtime.
            return unsafe { avx2::$name($($arg),*) };
        }
        #[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
        if simd_enabled() {
            return neon::$name($($arg),*);
        }
        scalar::$name($($arg),*)
    }};
}

/// `dst[k] += src[k]` — the accumulate kernel (message receipt into a
/// flow slot, estimate accumulation).
#[inline(always)]
pub fn add(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(dst.len(), add(dst, src))
}

/// `dst[k] -= src[k]`.
#[inline(always)]
pub fn sub(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(dst.len(), sub(dst, src))
}

/// `dst[k] = -src[k]` — the overwrite-with-negation a receiver performs
/// on its mirror flow (sign-bit XOR: exact, never rounds).
#[inline(always)]
pub fn store_neg(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    dispatch!(dst.len(), store_neg(dst, src))
}

/// `dst[k] -= a[k] + b[k]` — the fused form of `delta = a + b;
/// dst -= delta` (two rounded operations per component, unchanged).
#[inline(always)]
pub fn sub_sum(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    dispatch!(dst.len(), sub_sum(dst, a, b))
}

/// `dst[k] *= c` — payload scaling.
#[inline(always)]
pub fn scale(dst: &mut [f64], c: f64) {
    dispatch!(dst.len(), scale(dst, c))
}

/// `dst[k] = -dst[k]` — in-place negation (sign-bit XOR: exact for every
/// bit pattern including NaN, unlike multiplication by −1).
#[inline(always)]
pub fn neg(dst: &mut [f64]) {
    dispatch!(dst.len(), neg(dst))
}

/// `p[k] += f[k]; b[k] += f[k]` — the hardened-mode single-slot fold:
/// one flow accumulated into both ϕ and the base field.
#[inline(always)]
pub fn fold1(p: &mut [f64], b: &mut [f64], f: &[f64]) {
    debug_assert_eq!(p.len(), f.len());
    debug_assert_eq!(b.len(), f.len());
    dispatch!(f.len(), fold1(p, b, f))
}

/// `t = f1[k] + f2[k]; p[k] += t; b[k] += t` — the hardened-mode
/// whole-arc fold: both flow slots summed once, accumulated into both
/// ϕ and the base field.
#[inline(always)]
pub fn fold2(p: &mut [f64], b: &mut [f64], f1: &[f64], f2: &[f64]) {
    debug_assert_eq!(p.len(), f1.len());
    debug_assert_eq!(p.len(), f2.len());
    debug_assert_eq!(b.len(), f1.len());
    dispatch!(f1.len(), fold2(p, b, f1, f2))
}

/// `b[k] += f1[k] + f2[k]` — the eager-mode whole-arc fold (ϕ already
/// tracks the running sum, only the base field moves).
#[inline(always)]
pub fn add_sum(b: &mut [f64], f1: &[f64], f2: &[f64]) {
    debug_assert_eq!(b.len(), f1.len());
    debug_assert_eq!(b.len(), f2.len());
    dispatch!(f1.len(), add_sum(b, f1, f2))
}

/// `dst -= row` for each `dst.len()`-sized row of `rows`, in row order —
/// the PF estimate kernel over a node's whole arc range.
#[inline(always)]
pub fn sub_rows(dst: &mut [f64], rows: &[f64]) {
    assert!(!dst.is_empty() && rows.len() % dst.len() == 0);
    dispatch!(dst.len(), sub_rows(dst, rows))
}

/// For each `fields * dst.len()`-sized arc group of `rows`, subtract the
/// group's first two fields from `dst` in field order — the PCF estimate
/// kernel over a node's whole arc range.
#[inline(always)]
pub fn sub_leading2_rows(dst: &mut [f64], rows: &[f64], fields: usize) {
    assert!(fields >= 2);
    assert!(!dst.is_empty() && rows.len() % (fields * dst.len()) == 0);
    dispatch!(dst.len(), sub_leading2_rows(dst, rows, fields))
}

/// `true` iff `a[k] == -b[k]` for every component (IEEE semantics:
/// signed zeros compare equal, NaN never).
#[inline(always)]
pub fn is_neg(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    dispatch!(a.len(), is_neg(a, b))
}

// ---- scalar fallback --------------------------------------------------

/// Scalar fallback kernels, written in the same 4-wide block + remainder
/// shape as the vector paths. Public so the equivalence proptests and the
/// A/B benches can pin SIMD output against them regardless of dispatch
/// state.
pub mod scalar {
    use super::LANES;

    /// `dst[k] += src[k]`.
    #[inline(always)]
    pub fn add(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                dst[k + j] += src[k + j];
            }
            k += LANES;
        }
        while k < n {
            dst[k] += src[k];
            k += 1;
        }
    }

    /// `dst[k] -= src[k]`.
    #[inline(always)]
    pub fn sub(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                dst[k + j] -= src[k + j];
            }
            k += LANES;
        }
        while k < n {
            dst[k] -= src[k];
            k += 1;
        }
    }

    /// `dst[k] = -src[k]`.
    #[inline(always)]
    pub fn store_neg(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                dst[k + j] = -src[k + j];
            }
            k += LANES;
        }
        while k < n {
            dst[k] = -src[k];
            k += 1;
        }
    }

    /// `dst[k] -= a[k] + b[k]`.
    #[inline(always)]
    pub fn sub_sum(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n = dst.len().min(a.len()).min(b.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                dst[k + j] -= a[k + j] + b[k + j];
            }
            k += LANES;
        }
        while k < n {
            dst[k] -= a[k] + b[k];
            k += 1;
        }
    }

    /// `dst[k] *= c`.
    #[inline(always)]
    pub fn scale(dst: &mut [f64], c: f64) {
        let n = dst.len();
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                dst[k + j] *= c;
            }
            k += LANES;
        }
        while k < n {
            dst[k] *= c;
            k += 1;
        }
    }

    /// `dst[k] = -dst[k]`.
    #[inline(always)]
    pub fn neg(dst: &mut [f64]) {
        let n = dst.len();
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                dst[k + j] = -dst[k + j];
            }
            k += LANES;
        }
        while k < n {
            dst[k] = -dst[k];
            k += 1;
        }
    }

    /// `p[k] += f[k]; b[k] += f[k]`.
    #[inline(always)]
    pub fn fold1(p: &mut [f64], b: &mut [f64], f: &[f64]) {
        let n = p.len().min(b.len()).min(f.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                p[k + j] += f[k + j];
                b[k + j] += f[k + j];
            }
            k += LANES;
        }
        while k < n {
            p[k] += f[k];
            b[k] += f[k];
            k += 1;
        }
    }

    /// `t = f1[k] + f2[k]; p[k] += t; b[k] += t`.
    #[inline(always)]
    pub fn fold2(p: &mut [f64], b: &mut [f64], f1: &[f64], f2: &[f64]) {
        let n = p.len().min(b.len()).min(f1.len()).min(f2.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                let t = f1[k + j] + f2[k + j];
                p[k + j] += t;
                b[k + j] += t;
            }
            k += LANES;
        }
        while k < n {
            let t = f1[k] + f2[k];
            p[k] += t;
            b[k] += t;
            k += 1;
        }
    }

    /// `b[k] += f1[k] + f2[k]`.
    #[inline(always)]
    pub fn add_sum(b: &mut [f64], f1: &[f64], f2: &[f64]) {
        let n = b.len().min(f1.len()).min(f2.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                b[k + j] += f1[k + j] + f2[k + j];
            }
            k += LANES;
        }
        while k < n {
            b[k] += f1[k] + f2[k];
            k += 1;
        }
    }

    /// `dst -= row` per `dst.len()`-sized row, in row order.
    #[inline(always)]
    pub fn sub_rows(dst: &mut [f64], rows: &[f64]) {
        for row in rows.chunks_exact(dst.len()) {
            sub(dst, row);
        }
    }

    /// Subtract fields 0 and 1 of each `fields * dst.len()`-sized group.
    #[inline(always)]
    pub fn sub_leading2_rows(dst: &mut [f64], rows: &[f64], fields: usize) {
        let dim = dst.len();
        for group in rows.chunks_exact(fields * dim) {
            sub(dst, &group[..dim]);
            sub(dst, &group[dim..2 * dim]);
        }
    }

    /// `all(a[k] == -b[k])`.
    #[inline(always)]
    pub fn is_neg(a: &[f64], b: &[f64]) -> bool {
        let n = a.len().min(b.len());
        let mut k = 0;
        while k + LANES <= n {
            for j in 0..LANES {
                if a[k + j] != -b[k + j] {
                    return false;
                }
            }
            k += LANES;
        }
        while k < n {
            if a[k] != -b[k] {
                return false;
            }
            k += 1;
        }
        true
    }
}

// ---- AVX2 path --------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod avx2 {
    use core::arch::x86_64::*;

    // All loads/stores are unaligned (`loadu`/`storeu`): bank rows start
    // at arbitrary `dim`-multiples inside the 64-byte-aligned slab, so a
    // dim-3 row has no 32-byte alignment guarantee. Every kernel bounds
    // its pointer arithmetic by the minimum of its operand lengths, so
    // no access exceeds any slice.

    const NEG: f64 = -0.0;

    #[target_feature(enable = "avx2")]
    pub unsafe fn add(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let v = _mm256_add_pd(_mm256_loadu_pd(d.add(k)), _mm256_loadu_pd(s.add(k)));
            _mm256_storeu_pd(d.add(k), v);
            k += 4;
        }
        while k < n {
            *d.add(k) += *s.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let v = _mm256_sub_pd(_mm256_loadu_pd(d.add(k)), _mm256_loadu_pd(s.add(k)));
            _mm256_storeu_pd(d.add(k), v);
            k += 4;
        }
        while k < n {
            *d.add(k) -= *s.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn store_neg(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let sign = _mm256_set1_pd(NEG);
        let mut k = 0;
        while k + 4 <= n {
            _mm256_storeu_pd(d.add(k), _mm256_xor_pd(_mm256_loadu_pd(s.add(k)), sign));
            k += 4;
        }
        while k < n {
            *d.add(k) = -*s.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_sum(dst: &mut [f64], a: &[f64], b: &[f64]) {
        // NOT fma: `a + b` must round before the subtraction, exactly as
        // the scalar `*d -= *x + *y` does.
        let n = dst.len().min(a.len()).min(b.len());
        let (d, pa, pb) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let t = _mm256_add_pd(_mm256_loadu_pd(pa.add(k)), _mm256_loadu_pd(pb.add(k)));
            _mm256_storeu_pd(d.add(k), _mm256_sub_pd(_mm256_loadu_pd(d.add(k)), t));
            k += 4;
        }
        while k < n {
            *d.add(k) -= *pa.add(k) + *pb.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(dst: &mut [f64], c: f64) {
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let vc = _mm256_set1_pd(c);
        let mut k = 0;
        while k + 4 <= n {
            _mm256_storeu_pd(d.add(k), _mm256_mul_pd(_mm256_loadu_pd(d.add(k)), vc));
            k += 4;
        }
        while k < n {
            *d.add(k) *= c;
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn neg(dst: &mut [f64]) {
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let sign = _mm256_set1_pd(NEG);
        let mut k = 0;
        while k + 4 <= n {
            _mm256_storeu_pd(d.add(k), _mm256_xor_pd(_mm256_loadu_pd(d.add(k)), sign));
            k += 4;
        }
        while k < n {
            *d.add(k) = -*d.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fold1(p: &mut [f64], b: &mut [f64], f: &[f64]) {
        let n = p.len().min(b.len()).min(f.len());
        let (pp, pb, pf) = (p.as_mut_ptr(), b.as_mut_ptr(), f.as_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let vf = _mm256_loadu_pd(pf.add(k));
            _mm256_storeu_pd(pp.add(k), _mm256_add_pd(_mm256_loadu_pd(pp.add(k)), vf));
            _mm256_storeu_pd(pb.add(k), _mm256_add_pd(_mm256_loadu_pd(pb.add(k)), vf));
            k += 4;
        }
        while k < n {
            *pp.add(k) += *pf.add(k);
            *pb.add(k) += *pf.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fold2(p: &mut [f64], b: &mut [f64], f1: &[f64], f2: &[f64]) {
        let n = p.len().min(b.len()).min(f1.len()).min(f2.len());
        let (pp, pb, p1, p2) = (p.as_mut_ptr(), b.as_mut_ptr(), f1.as_ptr(), f2.as_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let t = _mm256_add_pd(_mm256_loadu_pd(p1.add(k)), _mm256_loadu_pd(p2.add(k)));
            _mm256_storeu_pd(pp.add(k), _mm256_add_pd(_mm256_loadu_pd(pp.add(k)), t));
            _mm256_storeu_pd(pb.add(k), _mm256_add_pd(_mm256_loadu_pd(pb.add(k)), t));
            k += 4;
        }
        while k < n {
            let t = *p1.add(k) + *p2.add(k);
            *pp.add(k) += t;
            *pb.add(k) += t;
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_sum(b: &mut [f64], f1: &[f64], f2: &[f64]) {
        let n = b.len().min(f1.len()).min(f2.len());
        let (pb, p1, p2) = (b.as_mut_ptr(), f1.as_ptr(), f2.as_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let t = _mm256_add_pd(_mm256_loadu_pd(p1.add(k)), _mm256_loadu_pd(p2.add(k)));
            _mm256_storeu_pd(pb.add(k), _mm256_add_pd(_mm256_loadu_pd(pb.add(k)), t));
            k += 4;
        }
        while k < n {
            *pb.add(k) += *p1.add(k) + *p2.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_rows(dst: &mut [f64], rows: &[f64]) {
        for row in rows.chunks_exact(dst.len()) {
            sub(dst, row);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_leading2_rows(dst: &mut [f64], rows: &[f64], fields: usize) {
        let dim = dst.len();
        for group in rows.chunks_exact(fields * dim) {
            sub(dst, &group[..dim]);
            sub(dst, &group[dim..2 * dim]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn is_neg(a: &[f64], b: &[f64]) -> bool {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let sign = _mm256_set1_pd(NEG);
        let mut k = 0;
        while k + 4 <= n {
            let x = _mm256_loadu_pd(pa.add(k));
            let y = _mm256_xor_pd(_mm256_loadu_pd(pb.add(k)), sign);
            let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(x, y);
            if _mm256_movemask_pd(eq) != 0xF {
                return false;
            }
            k += 4;
        }
        while k < n {
            if *pa.add(k) != -*pb.add(k) {
                return false;
            }
            k += 1;
        }
        true
    }
}

// ---- NEON path --------------------------------------------------------

#[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
mod neon {
    use core::arch::aarch64::*;

    // NEON f64 vectors are 2 wide; each 4-wide block is two pairs, kept
    // in the same block structure as the AVX2 path. NEON is a baseline
    // feature of the aarch64 targets we build, so these are safe fns.

    #[inline(always)]
    pub fn add(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                vst1q_f64(
                    d.add(k),
                    vaddq_f64(vld1q_f64(d.add(k)), vld1q_f64(s.add(k))),
                );
                vst1q_f64(
                    d.add(k + 2),
                    vaddq_f64(vld1q_f64(d.add(k + 2)), vld1q_f64(s.add(k + 2))),
                );
                k += 4;
            }
            while k < n {
                *d.add(k) += *s.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn sub(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                vst1q_f64(
                    d.add(k),
                    vsubq_f64(vld1q_f64(d.add(k)), vld1q_f64(s.add(k))),
                );
                vst1q_f64(
                    d.add(k + 2),
                    vsubq_f64(vld1q_f64(d.add(k + 2)), vld1q_f64(s.add(k + 2))),
                );
                k += 4;
            }
            while k < n {
                *d.add(k) -= *s.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn store_neg(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                vst1q_f64(d.add(k), vnegq_f64(vld1q_f64(s.add(k))));
                vst1q_f64(d.add(k + 2), vnegq_f64(vld1q_f64(s.add(k + 2))));
                k += 4;
            }
            while k < n {
                *d.add(k) = -*s.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn sub_sum(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n = dst.len().min(a.len()).min(b.len());
        let (d, pa, pb) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                let t0 = vaddq_f64(vld1q_f64(pa.add(k)), vld1q_f64(pb.add(k)));
                vst1q_f64(d.add(k), vsubq_f64(vld1q_f64(d.add(k)), t0));
                let t1 = vaddq_f64(vld1q_f64(pa.add(k + 2)), vld1q_f64(pb.add(k + 2)));
                vst1q_f64(d.add(k + 2), vsubq_f64(vld1q_f64(d.add(k + 2)), t1));
                k += 4;
            }
            while k < n {
                *d.add(k) -= *pa.add(k) + *pb.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn scale(dst: &mut [f64], c: f64) {
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let mut k = 0;
        unsafe {
            let vc = vdupq_n_f64(c);
            while k + 4 <= n {
                vst1q_f64(d.add(k), vmulq_f64(vld1q_f64(d.add(k)), vc));
                vst1q_f64(d.add(k + 2), vmulq_f64(vld1q_f64(d.add(k + 2)), vc));
                k += 4;
            }
            while k < n {
                *d.add(k) *= c;
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn neg(dst: &mut [f64]) {
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                vst1q_f64(d.add(k), vnegq_f64(vld1q_f64(d.add(k))));
                vst1q_f64(d.add(k + 2), vnegq_f64(vld1q_f64(d.add(k + 2))));
                k += 4;
            }
            while k < n {
                *d.add(k) = -*d.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn fold1(p: &mut [f64], b: &mut [f64], f: &[f64]) {
        let n = p.len().min(b.len()).min(f.len());
        let (pp, pb, pf) = (p.as_mut_ptr(), b.as_mut_ptr(), f.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                for h in [0, 2] {
                    let vf = vld1q_f64(pf.add(k + h));
                    vst1q_f64(pp.add(k + h), vaddq_f64(vld1q_f64(pp.add(k + h)), vf));
                    vst1q_f64(pb.add(k + h), vaddq_f64(vld1q_f64(pb.add(k + h)), vf));
                }
                k += 4;
            }
            while k < n {
                *pp.add(k) += *pf.add(k);
                *pb.add(k) += *pf.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn fold2(p: &mut [f64], b: &mut [f64], f1: &[f64], f2: &[f64]) {
        let n = p.len().min(b.len()).min(f1.len()).min(f2.len());
        let (pp, pb, p1, p2) = (p.as_mut_ptr(), b.as_mut_ptr(), f1.as_ptr(), f2.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                for h in [0, 2] {
                    let t = vaddq_f64(vld1q_f64(p1.add(k + h)), vld1q_f64(p2.add(k + h)));
                    vst1q_f64(pp.add(k + h), vaddq_f64(vld1q_f64(pp.add(k + h)), t));
                    vst1q_f64(pb.add(k + h), vaddq_f64(vld1q_f64(pb.add(k + h)), t));
                }
                k += 4;
            }
            while k < n {
                let t = *p1.add(k) + *p2.add(k);
                *pp.add(k) += t;
                *pb.add(k) += t;
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn add_sum(b: &mut [f64], f1: &[f64], f2: &[f64]) {
        let n = b.len().min(f1.len()).min(f2.len());
        let (pb, p1, p2) = (b.as_mut_ptr(), f1.as_ptr(), f2.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                for h in [0, 2] {
                    let t = vaddq_f64(vld1q_f64(p1.add(k + h)), vld1q_f64(p2.add(k + h)));
                    vst1q_f64(pb.add(k + h), vaddq_f64(vld1q_f64(pb.add(k + h)), t));
                }
                k += 4;
            }
            while k < n {
                *pb.add(k) += *p1.add(k) + *p2.add(k);
                k += 1;
            }
        }
    }

    #[inline(always)]
    pub fn sub_rows(dst: &mut [f64], rows: &[f64]) {
        for row in rows.chunks_exact(dst.len()) {
            sub(dst, row);
        }
    }

    #[inline(always)]
    pub fn sub_leading2_rows(dst: &mut [f64], rows: &[f64], fields: usize) {
        let dim = dst.len();
        for group in rows.chunks_exact(fields * dim) {
            sub(dst, &group[..dim]);
            sub(dst, &group[dim..2 * dim]);
        }
    }

    #[inline(always)]
    pub fn is_neg(a: &[f64], b: &[f64]) -> bool {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut k = 0;
        unsafe {
            while k + 4 <= n {
                for h in [0, 2] {
                    let x = vld1q_f64(pa.add(k + h));
                    let y = vnegq_f64(vld1q_f64(pb.add(k + h)));
                    let eq = vceqq_f64(x, y);
                    if vgetq_lane_u64::<0>(eq) != u64::MAX || vgetq_lane_u64::<1>(eq) != u64::MAX {
                        return false;
                    }
                }
                k += 4;
            }
            while k < n {
                if *pa.add(k) != -*pb.add(k) {
                    return false;
                }
                k += 1;
            }
        }
        true
    }
}

// ---- forced vector entry points ---------------------------------------

/// The vector path, callable directly (panics if the CPU lacks it).
/// This exists for the A/B benches and the `kernel_equiv` proptests,
/// which must pin the SIMD path against [`scalar`] even when dispatch
/// has been forced off with `GR_SIMD=0`. On targets without a vector
/// path these delegate to [`scalar`].
pub mod simd {
    macro_rules! forced {
        ($(fn $name:ident($($arg:ident : $ty:ty),*) $(-> $ret:ty)?;)*) => {$(
            #[inline]
            #[allow(unused_variables)]
            pub fn $name($($arg: $ty),*) $(-> $ret)? {
                #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
                {
                    assert!(
                        super::simd_supported(),
                        "SIMD kernel path requires AVX2 on x86_64"
                    );
                    // SAFETY: AVX2 availability asserted above.
                    unsafe { super::avx2::$name($($arg),*) }
                }
                #[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
                {
                    super::neon::$name($($arg),*)
                }
                #[cfg(any(
                    not(any(target_arch = "x86_64", target_arch = "aarch64")),
                    feature = "force-scalar"
                ))]
                {
                    super::scalar::$name($($arg),*)
                }
            }
        )*};
    }

    forced! {
        fn add(dst: &mut [f64], src: &[f64]);
        fn sub(dst: &mut [f64], src: &[f64]);
        fn store_neg(dst: &mut [f64], src: &[f64]);
        fn sub_sum(dst: &mut [f64], a: &[f64], b: &[f64]);
        fn scale(dst: &mut [f64], c: f64);
        fn neg(dst: &mut [f64]);
        fn fold1(p: &mut [f64], b: &mut [f64], f: &[f64]);
        fn fold2(p: &mut [f64], b: &mut [f64], f1: &[f64], f2: &[f64]);
        fn add_sum(b: &mut [f64], f1: &[f64], f2: &[f64]);
        fn sub_rows(dst: &mut [f64], rows: &[f64]);
        fn sub_leading2_rows(dst: &mut [f64], rows: &[f64], fields: usize);
        fn is_neg(a: &[f64], b: &[f64]) -> bool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_mode_is_cached_and_consistent() {
        let first = simd_enabled();
        assert_eq!(simd_enabled(), first);
        if !simd_supported() {
            assert!(!first, "dispatch cannot exceed hardware support");
        }
        let path = active_path();
        assert!(["avx2", "neon", "scalar"].contains(&path));
    }

    #[test]
    fn forced_simd_matches_scalar_on_remainder_dims() {
        // Quick smoke across the lane boundary; the exhaustive sweep
        // lives in tests/kernel_equiv.rs.
        for dim in [1, 3, 4, 5, 7, 8, 16, 67] {
            let src: Vec<f64> = (0..dim).map(|k| (k as f64) * 0.25 - 3.0).collect();
            let mut a: Vec<f64> = (0..dim).map(|k| (k as f64).sin()).collect();
            let mut b = a.clone();
            simd::add(&mut a, &src);
            scalar::add(&mut b, &src);
            assert_eq!(a, b, "dim {dim}");
        }
    }

    #[test]
    fn fold_kernels_match_reference_loops() {
        let f1: Vec<f64> = (0..7).map(|k| k as f64 * 0.3).collect();
        let f2: Vec<f64> = (0..7).map(|k| 1.0 - k as f64).collect();
        let mut p = vec![1.0; 7];
        let mut b = vec![-2.0; 7];
        fold2(&mut p, &mut b, &f1, &f2);
        for k in 0..7 {
            let t = f1[k] + f2[k];
            assert_eq!(p[k].to_bits(), (1.0 + t).to_bits());
            assert_eq!(b[k].to_bits(), (-2.0 + t).to_bits());
        }
        let mut b2 = vec![-2.0; 7];
        add_sum(&mut b2, &f1, &f2);
        assert_eq!(b, b2);
        let mut p = vec![0.5; 5];
        let mut b = vec![0.25; 5];
        fold1(&mut p, &mut b, &f1[..5]);
        for k in 0..5 {
            assert_eq!(p[k], 0.5 + f1[k]);
            assert_eq!(b[k], 0.25 + f1[k]);
        }
    }
}
