//! The common interface of all reduction protocols.

use gr_netsim::Protocol;
use gr_topology::NodeId;

/// A gossip protocol that computes an all-to-all aggregate: every node
/// carries a converging local estimate of `(Σ xᵢ)/(Σ wᵢ)`.
///
/// Extends the simulator-facing [`Protocol`] with estimate inspection —
/// the simulator never looks at estimates, but runners, convergence
/// detectors and experiments do.
pub trait ReductionProtocol: Protocol {
    /// Number of nodes the protocol instance manages.
    fn node_count(&self) -> usize;

    /// Dimension of the aggregated value (1 for scalar reductions).
    fn dim(&self) -> usize;

    /// Write node `node`'s current estimate, componentwise, into `out`
    /// (`out.len()` must equal [`dim`](Self::dim)). Components may be NaN
    /// while a node's weight estimate is still zero.
    fn write_estimate(&self, node: NodeId, out: &mut [f64]);

    /// Write node `node`'s current *mass* — the `(value, weight)` pair its
    /// estimate is the ratio of — into `values` (length [`dim`](Self::dim))
    /// and return the weight. The oracle uses this to recompute the
    /// achievable aggregate over survivors after a node crash: whatever
    /// mass the dead node held is gone, and the survivors' target is the
    /// ratio of their *current* total mass, not of their initial data.
    fn write_mass(&self, node: NodeId, values: &mut [f64]) -> f64;

    /// Write the net flow node `i` currently accounts for toward its
    /// neighbor `j` into `values` (length [`dim`](Self::dim)) and return
    /// the flow's weight component. For slot-structured protocols (PCF)
    /// this is the per-edge *sum* over slots. Returns `None` for
    /// protocols without per-edge flow variables (the push-sum family),
    /// and for those `values` is left untouched.
    ///
    /// This is the hook the campaign oracle's flow checks stand on: after
    /// a completed exchange, flow conservation requires
    /// `flow(i, j) == −flow(j, i)` componentwise, and summing
    /// `v_i − Σ_j flow(i, j)` over nodes must reproduce the global mass.
    fn write_flow(&self, i: NodeId, j: NodeId, values: &mut [f64]) -> Option<f64> {
        let _ = (i, j, values);
        None
    }

    /// Largest live flow-component magnitude across all edges, or `None`
    /// for protocols without flow variables. The paper's structural claim
    /// (Sec. III): PCF keeps this `O(|aggregate|)` while PF's and FU's
    /// grow with the execution.
    fn max_flow(&self) -> Option<f64> {
        None
    }

    /// Convenience accessor for scalar (`dim() == 1`) reductions.
    fn scalar_estimate(&self, node: NodeId) -> f64 {
        debug_assert_eq!(self.dim(), 1, "scalar_estimate on a vector reduction");
        let mut buf = [0.0];
        self.write_estimate(node, &mut buf);
        buf[0]
    }

    /// All scalar estimates as a vector (testing/experiment convenience).
    fn scalar_estimates(&self) -> Vec<f64> {
        (0..self.node_count() as NodeId)
            .map(|i| self.scalar_estimate(i))
            .collect()
    }
}
